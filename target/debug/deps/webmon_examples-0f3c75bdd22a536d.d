/root/repo/target/debug/deps/webmon_examples-0f3c75bdd22a536d.d: examples/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libwebmon_examples-0f3c75bdd22a536d.rmeta: examples/src/lib.rs Cargo.toml

examples/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
