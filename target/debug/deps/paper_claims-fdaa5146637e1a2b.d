/root/repo/target/debug/deps/paper_claims-fdaa5146637e1a2b.d: tests/tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-fdaa5146637e1a2b.rmeta: tests/tests/paper_claims.rs Cargo.toml

tests/tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
