/root/repo/target/debug/deps/experiments-776b9c010a7f6259.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-776b9c010a7f6259: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
