/root/repo/target/debug/deps/properties-23fca50588d2a173.d: tests/tests/properties.rs

/root/repo/target/debug/deps/properties-23fca50588d2a173: tests/tests/properties.rs

tests/tests/properties.rs:
