/root/repo/target/debug/deps/webmon_bench-411e78785161d683.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/extensions.rs crates/bench/src/fig09.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/fig14.rs crates/bench/src/fig15.rs crates/bench/src/runtime_offline.rs crates/bench/src/table1.rs Cargo.toml

/root/repo/target/debug/deps/libwebmon_bench-411e78785161d683.rmeta: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/extensions.rs crates/bench/src/fig09.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/fig14.rs crates/bench/src/fig15.rs crates/bench/src/runtime_offline.rs crates/bench/src/table1.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/extensions.rs:
crates/bench/src/fig09.rs:
crates/bench/src/fig10.rs:
crates/bench/src/fig11.rs:
crates/bench/src/fig12.rs:
crates/bench/src/fig13.rs:
crates/bench/src/fig14.rs:
crates/bench/src/fig15.rs:
crates/bench/src/runtime_offline.rs:
crates/bench/src/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
