/root/repo/target/debug/deps/exp_extensions-3bc8631d19298f18.d: crates/bench/src/bin/exp_extensions.rs

/root/repo/target/debug/deps/exp_extensions-3bc8631d19298f18: crates/bench/src/bin/exp_extensions.rs

crates/bench/src/bin/exp_extensions.rs:
