/root/repo/target/debug/deps/engine_throughput-d5d000ea7c7761e1.d: crates/bench/benches/engine_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libengine_throughput-d5d000ea7c7761e1.rmeta: crates/bench/benches/engine_throughput.rs Cargo.toml

crates/bench/benches/engine_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
