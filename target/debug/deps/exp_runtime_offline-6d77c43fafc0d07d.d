/root/repo/target/debug/deps/exp_runtime_offline-6d77c43fafc0d07d.d: crates/bench/src/bin/exp_runtime_offline.rs Cargo.toml

/root/repo/target/debug/deps/libexp_runtime_offline-6d77c43fafc0d07d.rmeta: crates/bench/src/bin/exp_runtime_offline.rs Cargo.toml

crates/bench/src/bin/exp_runtime_offline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
