/root/repo/target/debug/deps/exp_fig12-8c8b45cb9333e515.d: crates/bench/src/bin/exp_fig12.rs

/root/repo/target/debug/deps/exp_fig12-8c8b45cb9333e515: crates/bench/src/bin/exp_fig12.rs

crates/bench/src/bin/exp_fig12.rs:
