/root/repo/target/debug/deps/properties-c4fb5d8a62c9f1eb.d: tests/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-c4fb5d8a62c9f1eb.rmeta: tests/tests/properties.rs Cargo.toml

tests/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
