/root/repo/target/debug/deps/exp_fig14-19cad7826b4a4d61.d: crates/bench/src/bin/exp_fig14.rs

/root/repo/target/debug/deps/exp_fig14-19cad7826b4a4d61: crates/bench/src/bin/exp_fig14.rs

crates/bench/src/bin/exp_fig14.rs:
