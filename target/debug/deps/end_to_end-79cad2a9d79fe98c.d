/root/repo/target/debug/deps/end_to_end-79cad2a9d79fe98c.d: tests/tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-79cad2a9d79fe98c: tests/tests/end_to_end.rs

tests/tests/end_to_end.rs:
