/root/repo/target/debug/deps/webmon_integration-0d3f0dbef552833e.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libwebmon_integration-0d3f0dbef552833e.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
