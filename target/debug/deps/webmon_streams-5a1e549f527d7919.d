/root/repo/target/debug/deps/webmon_streams-5a1e549f527d7919.d: crates/streams/src/lib.rs crates/streams/src/auction.rs crates/streams/src/fitted.rs crates/streams/src/fpn.rs crates/streams/src/io.rs crates/streams/src/news.rs crates/streams/src/poisson.rs crates/streams/src/rng.rs crates/streams/src/trace.rs crates/streams/src/zipf.rs

/root/repo/target/debug/deps/libwebmon_streams-5a1e549f527d7919.rlib: crates/streams/src/lib.rs crates/streams/src/auction.rs crates/streams/src/fitted.rs crates/streams/src/fpn.rs crates/streams/src/io.rs crates/streams/src/news.rs crates/streams/src/poisson.rs crates/streams/src/rng.rs crates/streams/src/trace.rs crates/streams/src/zipf.rs

/root/repo/target/debug/deps/libwebmon_streams-5a1e549f527d7919.rmeta: crates/streams/src/lib.rs crates/streams/src/auction.rs crates/streams/src/fitted.rs crates/streams/src/fpn.rs crates/streams/src/io.rs crates/streams/src/news.rs crates/streams/src/poisson.rs crates/streams/src/rng.rs crates/streams/src/trace.rs crates/streams/src/zipf.rs

crates/streams/src/lib.rs:
crates/streams/src/auction.rs:
crates/streams/src/fitted.rs:
crates/streams/src/fpn.rs:
crates/streams/src/io.rs:
crates/streams/src/news.rs:
crates/streams/src/poisson.rs:
crates/streams/src/rng.rs:
crates/streams/src/trace.rs:
crates/streams/src/zipf.rs:
