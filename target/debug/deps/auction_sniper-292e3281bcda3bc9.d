/root/repo/target/debug/deps/auction_sniper-292e3281bcda3bc9.d: examples/src/bin/auction_sniper.rs

/root/repo/target/debug/deps/auction_sniper-292e3281bcda3bc9: examples/src/bin/auction_sniper.rs

examples/src/bin/auction_sniper.rs:
