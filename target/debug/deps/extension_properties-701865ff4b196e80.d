/root/repo/target/debug/deps/extension_properties-701865ff4b196e80.d: tests/tests/extension_properties.rs Cargo.toml

/root/repo/target/debug/deps/libextension_properties-701865ff4b196e80.rmeta: tests/tests/extension_properties.rs Cargo.toml

tests/tests/extension_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
