/root/repo/target/debug/deps/paper_claims-7a7a1649a24fc6a5.d: tests/tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-7a7a1649a24fc6a5: tests/tests/paper_claims.rs

tests/tests/paper_claims.rs:
