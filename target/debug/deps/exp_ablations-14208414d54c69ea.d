/root/repo/target/debug/deps/exp_ablations-14208414d54c69ea.d: crates/bench/src/bin/exp_ablations.rs

/root/repo/target/debug/deps/exp_ablations-14208414d54c69ea: crates/bench/src/bin/exp_ablations.rs

crates/bench/src/bin/exp_ablations.rs:
