/root/repo/target/debug/deps/webmon_integration-d56086fca94cdb6d.d: tests/src/lib.rs

/root/repo/target/debug/deps/libwebmon_integration-d56086fca94cdb6d.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libwebmon_integration-d56086fca94cdb6d.rmeta: tests/src/lib.rs

tests/src/lib.rs:
