/root/repo/target/debug/deps/mashup-251f053649d67821.d: examples/src/bin/mashup.rs Cargo.toml

/root/repo/target/debug/deps/libmashup-251f053649d67821.rmeta: examples/src/bin/mashup.rs Cargo.toml

examples/src/bin/mashup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
