/root/repo/target/debug/deps/webmon_integration-8fe7c5d73707a47d.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libwebmon_integration-8fe7c5d73707a47d.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
