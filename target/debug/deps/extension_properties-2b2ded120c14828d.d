/root/repo/target/debug/deps/extension_properties-2b2ded120c14828d.d: tests/tests/extension_properties.rs

/root/repo/target/debug/deps/extension_properties-2b2ded120c14828d: tests/tests/extension_properties.rs

tests/tests/extension_properties.rs:
