/root/repo/target/debug/deps/webmon_workload-9a8704d8adef6df4.d: crates/workload/src/lib.rs crates/workload/src/arbitrage.rs crates/workload/src/generator.rs crates/workload/src/length.rs crates/workload/src/mashup.rs crates/workload/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libwebmon_workload-9a8704d8adef6df4.rmeta: crates/workload/src/lib.rs crates/workload/src/arbitrage.rs crates/workload/src/generator.rs crates/workload/src/length.rs crates/workload/src/mashup.rs crates/workload/src/spec.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/arbitrage.rs:
crates/workload/src/generator.rs:
crates/workload/src/length.rs:
crates/workload/src/mashup.rs:
crates/workload/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
