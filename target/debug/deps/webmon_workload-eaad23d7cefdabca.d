/root/repo/target/debug/deps/webmon_workload-eaad23d7cefdabca.d: crates/workload/src/lib.rs crates/workload/src/arbitrage.rs crates/workload/src/generator.rs crates/workload/src/length.rs crates/workload/src/mashup.rs crates/workload/src/spec.rs

/root/repo/target/debug/deps/libwebmon_workload-eaad23d7cefdabca.rlib: crates/workload/src/lib.rs crates/workload/src/arbitrage.rs crates/workload/src/generator.rs crates/workload/src/length.rs crates/workload/src/mashup.rs crates/workload/src/spec.rs

/root/repo/target/debug/deps/libwebmon_workload-eaad23d7cefdabca.rmeta: crates/workload/src/lib.rs crates/workload/src/arbitrage.rs crates/workload/src/generator.rs crates/workload/src/length.rs crates/workload/src/mashup.rs crates/workload/src/spec.rs

crates/workload/src/lib.rs:
crates/workload/src/arbitrage.rs:
crates/workload/src/generator.rs:
crates/workload/src/length.rs:
crates/workload/src/mashup.rs:
crates/workload/src/spec.rs:
