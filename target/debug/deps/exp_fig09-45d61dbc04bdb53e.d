/root/repo/target/debug/deps/exp_fig09-45d61dbc04bdb53e.d: crates/bench/src/bin/exp_fig09.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig09-45d61dbc04bdb53e.rmeta: crates/bench/src/bin/exp_fig09.rs Cargo.toml

crates/bench/src/bin/exp_fig09.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
