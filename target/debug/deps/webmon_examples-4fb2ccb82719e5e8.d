/root/repo/target/debug/deps/webmon_examples-4fb2ccb82719e5e8.d: examples/src/lib.rs

/root/repo/target/debug/deps/webmon_examples-4fb2ccb82719e5e8: examples/src/lib.rs

examples/src/lib.rs:
