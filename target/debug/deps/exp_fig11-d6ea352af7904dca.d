/root/repo/target/debug/deps/exp_fig11-d6ea352af7904dca.d: crates/bench/src/bin/exp_fig11.rs

/root/repo/target/debug/deps/exp_fig11-d6ea352af7904dca: crates/bench/src/bin/exp_fig11.rs

crates/bench/src/bin/exp_fig11.rs:
