/root/repo/target/debug/deps/exp_fig11-a83b7242195b85d2.d: crates/bench/src/bin/exp_fig11.rs

/root/repo/target/debug/deps/exp_fig11-a83b7242195b85d2: crates/bench/src/bin/exp_fig11.rs

crates/bench/src/bin/exp_fig11.rs:
