/root/repo/target/debug/deps/mashup-d9973c58b0356b85.d: examples/src/bin/mashup.rs

/root/repo/target/debug/deps/mashup-d9973c58b0356b85: examples/src/bin/mashup.rs

examples/src/bin/mashup.rs:
