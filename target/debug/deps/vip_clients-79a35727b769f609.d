/root/repo/target/debug/deps/vip_clients-79a35727b769f609.d: examples/src/bin/vip_clients.rs Cargo.toml

/root/repo/target/debug/deps/libvip_clients-79a35727b769f609.rmeta: examples/src/bin/vip_clients.rs Cargo.toml

examples/src/bin/vip_clients.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
