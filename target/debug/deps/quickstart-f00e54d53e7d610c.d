/root/repo/target/debug/deps/quickstart-f00e54d53e7d610c.d: examples/src/bin/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-f00e54d53e7d610c.rmeta: examples/src/bin/quickstart.rs Cargo.toml

examples/src/bin/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
