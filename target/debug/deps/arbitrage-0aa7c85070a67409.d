/root/repo/target/debug/deps/arbitrage-0aa7c85070a67409.d: examples/src/bin/arbitrage.rs

/root/repo/target/debug/deps/arbitrage-0aa7c85070a67409: examples/src/bin/arbitrage.rs

examples/src/bin/arbitrage.rs:
