/root/repo/target/debug/deps/exp_fig14-a35bb24bdd160059.d: crates/bench/src/bin/exp_fig14.rs

/root/repo/target/debug/deps/exp_fig14-a35bb24bdd160059: crates/bench/src/bin/exp_fig14.rs

crates/bench/src/bin/exp_fig14.rs:
