/root/repo/target/debug/deps/webmon_sim-fc51edd2d345d747.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/experiment.rs crates/sim/src/parallel.rs crates/sim/src/policies.rs crates/sim/src/report.rs crates/sim/src/summary.rs crates/sim/src/table.rs

/root/repo/target/debug/deps/libwebmon_sim-fc51edd2d345d747.rlib: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/experiment.rs crates/sim/src/parallel.rs crates/sim/src/policies.rs crates/sim/src/report.rs crates/sim/src/summary.rs crates/sim/src/table.rs

/root/repo/target/debug/deps/libwebmon_sim-fc51edd2d345d747.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/experiment.rs crates/sim/src/parallel.rs crates/sim/src/policies.rs crates/sim/src/report.rs crates/sim/src/summary.rs crates/sim/src/table.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/experiment.rs:
crates/sim/src/parallel.rs:
crates/sim/src/policies.rs:
crates/sim/src/report.rs:
crates/sim/src/summary.rs:
crates/sim/src/table.rs:
