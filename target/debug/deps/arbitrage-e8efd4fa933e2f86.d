/root/repo/target/debug/deps/arbitrage-e8efd4fa933e2f86.d: examples/src/bin/arbitrage.rs Cargo.toml

/root/repo/target/debug/deps/libarbitrage-e8efd4fa933e2f86.rmeta: examples/src/bin/arbitrage.rs Cargo.toml

examples/src/bin/arbitrage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
