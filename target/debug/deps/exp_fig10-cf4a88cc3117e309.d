/root/repo/target/debug/deps/exp_fig10-cf4a88cc3117e309.d: crates/bench/src/bin/exp_fig10.rs

/root/repo/target/debug/deps/exp_fig10-cf4a88cc3117e309: crates/bench/src/bin/exp_fig10.rs

crates/bench/src/bin/exp_fig10.rs:
