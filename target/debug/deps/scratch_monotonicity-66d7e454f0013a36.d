/root/repo/target/debug/deps/scratch_monotonicity-66d7e454f0013a36.d: tests/tests/scratch_monotonicity.rs

/root/repo/target/debug/deps/scratch_monotonicity-66d7e454f0013a36: tests/tests/scratch_monotonicity.rs

tests/tests/scratch_monotonicity.rs:
