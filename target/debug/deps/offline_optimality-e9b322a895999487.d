/root/repo/target/debug/deps/offline_optimality-e9b322a895999487.d: tests/tests/offline_optimality.rs

/root/repo/target/debug/deps/offline_optimality-e9b322a895999487: tests/tests/offline_optimality.rs

tests/tests/offline_optimality.rs:
