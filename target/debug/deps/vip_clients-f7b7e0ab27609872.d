/root/repo/target/debug/deps/vip_clients-f7b7e0ab27609872.d: examples/src/bin/vip_clients.rs Cargo.toml

/root/repo/target/debug/deps/libvip_clients-f7b7e0ab27609872.rmeta: examples/src/bin/vip_clients.rs Cargo.toml

examples/src/bin/vip_clients.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
