/root/repo/target/debug/deps/exp_fig10-2697ad7bfe51c968.d: crates/bench/src/bin/exp_fig10.rs

/root/repo/target/debug/deps/exp_fig10-2697ad7bfe51c968: crates/bench/src/bin/exp_fig10.rs

crates/bench/src/bin/exp_fig10.rs:
