/root/repo/target/debug/deps/webmon_workload-ebd8560ed75321ea.d: crates/workload/src/lib.rs crates/workload/src/arbitrage.rs crates/workload/src/generator.rs crates/workload/src/length.rs crates/workload/src/mashup.rs crates/workload/src/spec.rs

/root/repo/target/debug/deps/webmon_workload-ebd8560ed75321ea: crates/workload/src/lib.rs crates/workload/src/arbitrage.rs crates/workload/src/generator.rs crates/workload/src/length.rs crates/workload/src/mashup.rs crates/workload/src/spec.rs

crates/workload/src/lib.rs:
crates/workload/src/arbitrage.rs:
crates/workload/src/generator.rs:
crates/workload/src/length.rs:
crates/workload/src/mashup.rs:
crates/workload/src/spec.rs:
