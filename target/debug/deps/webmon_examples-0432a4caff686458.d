/root/repo/target/debug/deps/webmon_examples-0432a4caff686458.d: examples/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libwebmon_examples-0432a4caff686458.rmeta: examples/src/lib.rs Cargo.toml

examples/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
