/root/repo/target/debug/deps/webmon_core-e59497613a532461.d: crates/core/src/lib.rs crates/core/src/diagnostics.rs crates/core/src/engine/mod.rs crates/core/src/engine/runner.rs crates/core/src/model/mod.rs crates/core/src/model/budget.rs crates/core/src/model/builder.rs crates/core/src/model/capture.rs crates/core/src/model/cei.rs crates/core/src/model/costs.rs crates/core/src/model/instance.rs crates/core/src/model/interval.rs crates/core/src/model/profile.rs crates/core/src/model/resource.rs crates/core/src/model/schedule.rs crates/core/src/model/time.rs crates/core/src/offline/mod.rs crates/core/src/offline/enumeration.rs crates/core/src/offline/local_ratio.rs crates/core/src/offline/transform.rs crates/core/src/policy/mod.rs crates/core/src/policy/m_edf.rs crates/core/src/policy/mrsf.rs crates/core/src/policy/random.rs crates/core/src/policy/round_robin.rs crates/core/src/policy/s_edf.rs crates/core/src/policy/utility.rs crates/core/src/policy/wic.rs crates/core/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libwebmon_core-e59497613a532461.rmeta: crates/core/src/lib.rs crates/core/src/diagnostics.rs crates/core/src/engine/mod.rs crates/core/src/engine/runner.rs crates/core/src/model/mod.rs crates/core/src/model/budget.rs crates/core/src/model/builder.rs crates/core/src/model/capture.rs crates/core/src/model/cei.rs crates/core/src/model/costs.rs crates/core/src/model/instance.rs crates/core/src/model/interval.rs crates/core/src/model/profile.rs crates/core/src/model/resource.rs crates/core/src/model/schedule.rs crates/core/src/model/time.rs crates/core/src/offline/mod.rs crates/core/src/offline/enumeration.rs crates/core/src/offline/local_ratio.rs crates/core/src/offline/transform.rs crates/core/src/policy/mod.rs crates/core/src/policy/m_edf.rs crates/core/src/policy/mrsf.rs crates/core/src/policy/random.rs crates/core/src/policy/round_robin.rs crates/core/src/policy/s_edf.rs crates/core/src/policy/utility.rs crates/core/src/policy/wic.rs crates/core/src/stats.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/diagnostics.rs:
crates/core/src/engine/mod.rs:
crates/core/src/engine/runner.rs:
crates/core/src/model/mod.rs:
crates/core/src/model/budget.rs:
crates/core/src/model/builder.rs:
crates/core/src/model/capture.rs:
crates/core/src/model/cei.rs:
crates/core/src/model/costs.rs:
crates/core/src/model/instance.rs:
crates/core/src/model/interval.rs:
crates/core/src/model/profile.rs:
crates/core/src/model/resource.rs:
crates/core/src/model/schedule.rs:
crates/core/src/model/time.rs:
crates/core/src/offline/mod.rs:
crates/core/src/offline/enumeration.rs:
crates/core/src/offline/local_ratio.rs:
crates/core/src/offline/transform.rs:
crates/core/src/policy/mod.rs:
crates/core/src/policy/m_edf.rs:
crates/core/src/policy/mrsf.rs:
crates/core/src/policy/random.rs:
crates/core/src/policy/round_robin.rs:
crates/core/src/policy/s_edf.rs:
crates/core/src/policy/utility.rs:
crates/core/src/policy/wic.rs:
crates/core/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
