/root/repo/target/debug/deps/exp_extensions-56779ed99245a698.d: crates/bench/src/bin/exp_extensions.rs Cargo.toml

/root/repo/target/debug/deps/libexp_extensions-56779ed99245a698.rmeta: crates/bench/src/bin/exp_extensions.rs Cargo.toml

crates/bench/src/bin/exp_extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
