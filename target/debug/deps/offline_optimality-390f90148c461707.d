/root/repo/target/debug/deps/offline_optimality-390f90148c461707.d: tests/tests/offline_optimality.rs Cargo.toml

/root/repo/target/debug/deps/liboffline_optimality-390f90148c461707.rmeta: tests/tests/offline_optimality.rs Cargo.toml

tests/tests/offline_optimality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
