/root/repo/target/debug/deps/experiments-58b737c6ad61d0a7.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-58b737c6ad61d0a7: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
