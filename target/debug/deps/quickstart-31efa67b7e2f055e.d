/root/repo/target/debug/deps/quickstart-31efa67b7e2f055e.d: examples/src/bin/quickstart.rs

/root/repo/target/debug/deps/quickstart-31efa67b7e2f055e: examples/src/bin/quickstart.rs

examples/src/bin/quickstart.rs:
