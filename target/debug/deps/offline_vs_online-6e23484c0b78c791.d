/root/repo/target/debug/deps/offline_vs_online-6e23484c0b78c791.d: crates/bench/benches/offline_vs_online.rs Cargo.toml

/root/repo/target/debug/deps/liboffline_vs_online-6e23484c0b78c791.rmeta: crates/bench/benches/offline_vs_online.rs Cargo.toml

crates/bench/benches/offline_vs_online.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
