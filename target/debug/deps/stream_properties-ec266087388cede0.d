/root/repo/target/debug/deps/stream_properties-ec266087388cede0.d: tests/tests/stream_properties.rs Cargo.toml

/root/repo/target/debug/deps/libstream_properties-ec266087388cede0.rmeta: tests/tests/stream_properties.rs Cargo.toml

tests/tests/stream_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
