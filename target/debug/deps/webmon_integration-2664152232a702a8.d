/root/repo/target/debug/deps/webmon_integration-2664152232a702a8.d: tests/src/lib.rs

/root/repo/target/debug/deps/webmon_integration-2664152232a702a8: tests/src/lib.rs

tests/src/lib.rs:
