/root/repo/target/debug/deps/exp_fig09-0429e81ecd4f2072.d: crates/bench/src/bin/exp_fig09.rs

/root/repo/target/debug/deps/exp_fig09-0429e81ecd4f2072: crates/bench/src/bin/exp_fig09.rs

crates/bench/src/bin/exp_fig09.rs:
