/root/repo/target/debug/deps/webmon-355ea706312c8f1b.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libwebmon-355ea706312c8f1b.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
