/root/repo/target/debug/deps/vip_clients-16ac57615b7d9774.d: examples/src/bin/vip_clients.rs

/root/repo/target/debug/deps/vip_clients-16ac57615b7d9774: examples/src/bin/vip_clients.rs

examples/src/bin/vip_clients.rs:
