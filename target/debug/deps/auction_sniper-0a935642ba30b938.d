/root/repo/target/debug/deps/auction_sniper-0a935642ba30b938.d: examples/src/bin/auction_sniper.rs Cargo.toml

/root/repo/target/debug/deps/libauction_sniper-0a935642ba30b938.rmeta: examples/src/bin/auction_sniper.rs Cargo.toml

examples/src/bin/auction_sniper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
