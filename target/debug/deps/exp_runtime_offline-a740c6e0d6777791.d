/root/repo/target/debug/deps/exp_runtime_offline-a740c6e0d6777791.d: crates/bench/src/bin/exp_runtime_offline.rs

/root/repo/target/debug/deps/exp_runtime_offline-a740c6e0d6777791: crates/bench/src/bin/exp_runtime_offline.rs

crates/bench/src/bin/exp_runtime_offline.rs:
