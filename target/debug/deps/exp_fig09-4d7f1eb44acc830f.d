/root/repo/target/debug/deps/exp_fig09-4d7f1eb44acc830f.d: crates/bench/src/bin/exp_fig09.rs

/root/repo/target/debug/deps/exp_fig09-4d7f1eb44acc830f: crates/bench/src/bin/exp_fig09.rs

crates/bench/src/bin/exp_fig09.rs:
