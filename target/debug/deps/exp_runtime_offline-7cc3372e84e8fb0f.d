/root/repo/target/debug/deps/exp_runtime_offline-7cc3372e84e8fb0f.d: crates/bench/src/bin/exp_runtime_offline.rs

/root/repo/target/debug/deps/exp_runtime_offline-7cc3372e84e8fb0f: crates/bench/src/bin/exp_runtime_offline.rs

crates/bench/src/bin/exp_runtime_offline.rs:
