/root/repo/target/debug/deps/exp_extensions-a82d01963909401e.d: crates/bench/src/bin/exp_extensions.rs Cargo.toml

/root/repo/target/debug/deps/libexp_extensions-a82d01963909401e.rmeta: crates/bench/src/bin/exp_extensions.rs Cargo.toml

crates/bench/src/bin/exp_extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
