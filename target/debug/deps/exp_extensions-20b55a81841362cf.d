/root/repo/target/debug/deps/exp_extensions-20b55a81841362cf.d: crates/bench/src/bin/exp_extensions.rs

/root/repo/target/debug/deps/exp_extensions-20b55a81841362cf: crates/bench/src/bin/exp_extensions.rs

crates/bench/src/bin/exp_extensions.rs:
