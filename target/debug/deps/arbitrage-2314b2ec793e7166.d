/root/repo/target/debug/deps/arbitrage-2314b2ec793e7166.d: examples/src/bin/arbitrage.rs Cargo.toml

/root/repo/target/debug/deps/libarbitrage-2314b2ec793e7166.rmeta: examples/src/bin/arbitrage.rs Cargo.toml

examples/src/bin/arbitrage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
