/root/repo/target/debug/deps/stream_properties-16db36bdda49e2bb.d: tests/tests/stream_properties.rs

/root/repo/target/debug/deps/stream_properties-16db36bdda49e2bb: tests/tests/stream_properties.rs

tests/tests/stream_properties.rs:
