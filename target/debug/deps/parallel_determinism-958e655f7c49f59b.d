/root/repo/target/debug/deps/parallel_determinism-958e655f7c49f59b.d: tests/tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-958e655f7c49f59b: tests/tests/parallel_determinism.rs

tests/tests/parallel_determinism.rs:
