/root/repo/target/debug/deps/exp_fig13-ec23669d60e42e61.d: crates/bench/src/bin/exp_fig13.rs

/root/repo/target/debug/deps/exp_fig13-ec23669d60e42e61: crates/bench/src/bin/exp_fig13.rs

crates/bench/src/bin/exp_fig13.rs:
