/root/repo/target/debug/deps/exp_fig09-babc0e3c826aacfb.d: crates/bench/src/bin/exp_fig09.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig09-babc0e3c826aacfb.rmeta: crates/bench/src/bin/exp_fig09.rs Cargo.toml

crates/bench/src/bin/exp_fig09.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
