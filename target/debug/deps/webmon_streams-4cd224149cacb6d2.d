/root/repo/target/debug/deps/webmon_streams-4cd224149cacb6d2.d: crates/streams/src/lib.rs crates/streams/src/auction.rs crates/streams/src/fitted.rs crates/streams/src/fpn.rs crates/streams/src/io.rs crates/streams/src/news.rs crates/streams/src/poisson.rs crates/streams/src/rng.rs crates/streams/src/trace.rs crates/streams/src/zipf.rs

/root/repo/target/debug/deps/webmon_streams-4cd224149cacb6d2: crates/streams/src/lib.rs crates/streams/src/auction.rs crates/streams/src/fitted.rs crates/streams/src/fpn.rs crates/streams/src/io.rs crates/streams/src/news.rs crates/streams/src/poisson.rs crates/streams/src/rng.rs crates/streams/src/trace.rs crates/streams/src/zipf.rs

crates/streams/src/lib.rs:
crates/streams/src/auction.rs:
crates/streams/src/fitted.rs:
crates/streams/src/fpn.rs:
crates/streams/src/io.rs:
crates/streams/src/news.rs:
crates/streams/src/poisson.rs:
crates/streams/src/rng.rs:
crates/streams/src/trace.rs:
crates/streams/src/zipf.rs:
