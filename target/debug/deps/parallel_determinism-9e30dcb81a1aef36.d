/root/repo/target/debug/deps/parallel_determinism-9e30dcb81a1aef36.d: tests/tests/parallel_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_determinism-9e30dcb81a1aef36.rmeta: tests/tests/parallel_determinism.rs Cargo.toml

tests/tests/parallel_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
