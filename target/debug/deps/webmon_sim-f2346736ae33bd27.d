/root/repo/target/debug/deps/webmon_sim-f2346736ae33bd27.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/experiment.rs crates/sim/src/parallel.rs crates/sim/src/policies.rs crates/sim/src/report.rs crates/sim/src/summary.rs crates/sim/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libwebmon_sim-f2346736ae33bd27.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/experiment.rs crates/sim/src/parallel.rs crates/sim/src/policies.rs crates/sim/src/report.rs crates/sim/src/summary.rs crates/sim/src/table.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/experiment.rs:
crates/sim/src/parallel.rs:
crates/sim/src/policies.rs:
crates/sim/src/report.rs:
crates/sim/src/summary.rs:
crates/sim/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
