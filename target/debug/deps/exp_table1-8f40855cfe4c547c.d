/root/repo/target/debug/deps/exp_table1-8f40855cfe4c547c.d: crates/bench/src/bin/exp_table1.rs

/root/repo/target/debug/deps/exp_table1-8f40855cfe4c547c: crates/bench/src/bin/exp_table1.rs

crates/bench/src/bin/exp_table1.rs:
