/root/repo/target/debug/deps/exp_fig15-d540324cc290dd8c.d: crates/bench/src/bin/exp_fig15.rs

/root/repo/target/debug/deps/exp_fig15-d540324cc290dd8c: crates/bench/src/bin/exp_fig15.rs

crates/bench/src/bin/exp_fig15.rs:
