/root/repo/target/debug/deps/exp_fig12-90a22a8f705782ba.d: crates/bench/src/bin/exp_fig12.rs

/root/repo/target/debug/deps/exp_fig12-90a22a8f705782ba: crates/bench/src/bin/exp_fig12.rs

crates/bench/src/bin/exp_fig12.rs:
