/root/repo/target/debug/deps/webmon_examples-afab1a773f4708d9.d: examples/src/lib.rs

/root/repo/target/debug/deps/libwebmon_examples-afab1a773f4708d9.rlib: examples/src/lib.rs

/root/repo/target/debug/deps/libwebmon_examples-afab1a773f4708d9.rmeta: examples/src/lib.rs

examples/src/lib.rs:
