/root/repo/target/debug/deps/exp_ablations-2400666a088ac058.d: crates/bench/src/bin/exp_ablations.rs

/root/repo/target/debug/deps/exp_ablations-2400666a088ac058: crates/bench/src/bin/exp_ablations.rs

crates/bench/src/bin/exp_ablations.rs:
