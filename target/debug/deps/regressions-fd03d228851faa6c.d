/root/repo/target/debug/deps/regressions-fd03d228851faa6c.d: tests/tests/regressions.rs Cargo.toml

/root/repo/target/debug/deps/libregressions-fd03d228851faa6c.rmeta: tests/tests/regressions.rs Cargo.toml

tests/tests/regressions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
