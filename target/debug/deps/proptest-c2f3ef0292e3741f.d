/root/repo/target/debug/deps/proptest-c2f3ef0292e3741f.d: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-c2f3ef0292e3741f.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/sample.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
