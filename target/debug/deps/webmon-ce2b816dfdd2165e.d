/root/repo/target/debug/deps/webmon-ce2b816dfdd2165e.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/webmon-ce2b816dfdd2165e: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
