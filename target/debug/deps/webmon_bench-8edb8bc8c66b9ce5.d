/root/repo/target/debug/deps/webmon_bench-8edb8bc8c66b9ce5.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/extensions.rs crates/bench/src/fig09.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/fig14.rs crates/bench/src/fig15.rs crates/bench/src/runtime_offline.rs crates/bench/src/table1.rs Cargo.toml

/root/repo/target/debug/deps/libwebmon_bench-8edb8bc8c66b9ce5.rmeta: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/extensions.rs crates/bench/src/fig09.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/fig14.rs crates/bench/src/fig15.rs crates/bench/src/runtime_offline.rs crates/bench/src/table1.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/extensions.rs:
crates/bench/src/fig09.rs:
crates/bench/src/fig10.rs:
crates/bench/src/fig11.rs:
crates/bench/src/fig12.rs:
crates/bench/src/fig13.rs:
crates/bench/src/fig14.rs:
crates/bench/src/fig15.rs:
crates/bench/src/runtime_offline.rs:
crates/bench/src/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
