/root/repo/target/debug/deps/proptest-26814b7f28ec8240.d: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-26814b7f28ec8240.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-26814b7f28ec8240.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/sample.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
