/root/repo/target/debug/deps/exp_fig13-b3fd968656e0fca6.d: crates/bench/src/bin/exp_fig13.rs

/root/repo/target/debug/deps/exp_fig13-b3fd968656e0fca6: crates/bench/src/bin/exp_fig13.rs

crates/bench/src/bin/exp_fig13.rs:
