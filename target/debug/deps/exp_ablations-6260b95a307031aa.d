/root/repo/target/debug/deps/exp_ablations-6260b95a307031aa.d: crates/bench/src/bin/exp_ablations.rs Cargo.toml

/root/repo/target/debug/deps/libexp_ablations-6260b95a307031aa.rmeta: crates/bench/src/bin/exp_ablations.rs Cargo.toml

crates/bench/src/bin/exp_ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
