/root/repo/target/debug/deps/exp_fig15-ac1780f66aa927b3.d: crates/bench/src/bin/exp_fig15.rs

/root/repo/target/debug/deps/exp_fig15-ac1780f66aa927b3: crates/bench/src/bin/exp_fig15.rs

crates/bench/src/bin/exp_fig15.rs:
