/root/repo/target/debug/deps/exp_table1-932a4d47ae2e979c.d: crates/bench/src/bin/exp_table1.rs

/root/repo/target/debug/deps/exp_table1-932a4d47ae2e979c: crates/bench/src/bin/exp_table1.rs

crates/bench/src/bin/exp_table1.rs:
