/root/repo/target/debug/deps/webmon_streams-a6e4d6eb74a96328.d: crates/streams/src/lib.rs crates/streams/src/auction.rs crates/streams/src/fitted.rs crates/streams/src/fpn.rs crates/streams/src/io.rs crates/streams/src/news.rs crates/streams/src/poisson.rs crates/streams/src/rng.rs crates/streams/src/trace.rs crates/streams/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/libwebmon_streams-a6e4d6eb74a96328.rmeta: crates/streams/src/lib.rs crates/streams/src/auction.rs crates/streams/src/fitted.rs crates/streams/src/fpn.rs crates/streams/src/io.rs crates/streams/src/news.rs crates/streams/src/poisson.rs crates/streams/src/rng.rs crates/streams/src/trace.rs crates/streams/src/zipf.rs Cargo.toml

crates/streams/src/lib.rs:
crates/streams/src/auction.rs:
crates/streams/src/fitted.rs:
crates/streams/src/fpn.rs:
crates/streams/src/io.rs:
crates/streams/src/news.rs:
crates/streams/src/poisson.rs:
crates/streams/src/rng.rs:
crates/streams/src/trace.rs:
crates/streams/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
