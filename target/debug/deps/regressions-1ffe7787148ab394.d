/root/repo/target/debug/deps/regressions-1ffe7787148ab394.d: tests/tests/regressions.rs

/root/repo/target/debug/deps/regressions-1ffe7787148ab394: tests/tests/regressions.rs

tests/tests/regressions.rs:
