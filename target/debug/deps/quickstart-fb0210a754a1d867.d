/root/repo/target/debug/deps/quickstart-fb0210a754a1d867.d: examples/src/bin/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-fb0210a754a1d867.rmeta: examples/src/bin/quickstart.rs Cargo.toml

examples/src/bin/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
