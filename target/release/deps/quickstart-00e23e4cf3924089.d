/root/repo/target/release/deps/quickstart-00e23e4cf3924089.d: examples/src/bin/quickstart.rs

/root/repo/target/release/deps/quickstart-00e23e4cf3924089: examples/src/bin/quickstart.rs

examples/src/bin/quickstart.rs:
