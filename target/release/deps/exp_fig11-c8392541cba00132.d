/root/repo/target/release/deps/exp_fig11-c8392541cba00132.d: crates/bench/src/bin/exp_fig11.rs

/root/repo/target/release/deps/exp_fig11-c8392541cba00132: crates/bench/src/bin/exp_fig11.rs

crates/bench/src/bin/exp_fig11.rs:
