/root/repo/target/release/deps/proptest-7861e35aadc59fa9.d: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-7861e35aadc59fa9.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-7861e35aadc59fa9.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/sample.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
