/root/repo/target/release/deps/experiments-f2989abe3fc77532.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-f2989abe3fc77532: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
