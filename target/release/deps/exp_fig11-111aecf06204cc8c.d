/root/repo/target/release/deps/exp_fig11-111aecf06204cc8c.d: crates/bench/src/bin/exp_fig11.rs

/root/repo/target/release/deps/exp_fig11-111aecf06204cc8c: crates/bench/src/bin/exp_fig11.rs

crates/bench/src/bin/exp_fig11.rs:
