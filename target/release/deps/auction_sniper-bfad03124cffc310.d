/root/repo/target/release/deps/auction_sniper-bfad03124cffc310.d: examples/src/bin/auction_sniper.rs

/root/repo/target/release/deps/auction_sniper-bfad03124cffc310: examples/src/bin/auction_sniper.rs

examples/src/bin/auction_sniper.rs:
