/root/repo/target/release/deps/exp_fig12-0138e11fe150fa29.d: crates/bench/src/bin/exp_fig12.rs

/root/repo/target/release/deps/exp_fig12-0138e11fe150fa29: crates/bench/src/bin/exp_fig12.rs

crates/bench/src/bin/exp_fig12.rs:
