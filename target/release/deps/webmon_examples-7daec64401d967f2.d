/root/repo/target/release/deps/webmon_examples-7daec64401d967f2.d: examples/src/lib.rs

/root/repo/target/release/deps/libwebmon_examples-7daec64401d967f2.rlib: examples/src/lib.rs

/root/repo/target/release/deps/libwebmon_examples-7daec64401d967f2.rmeta: examples/src/lib.rs

examples/src/lib.rs:
