/root/repo/target/release/deps/stream_properties-90e1e6fb91c5764c.d: tests/tests/stream_properties.rs

/root/repo/target/release/deps/stream_properties-90e1e6fb91c5764c: tests/tests/stream_properties.rs

tests/tests/stream_properties.rs:
