/root/repo/target/release/deps/exp_table1-cc36917350a8d182.d: crates/bench/src/bin/exp_table1.rs

/root/repo/target/release/deps/exp_table1-cc36917350a8d182: crates/bench/src/bin/exp_table1.rs

crates/bench/src/bin/exp_table1.rs:
