/root/repo/target/release/deps/webmon_examples-5df7ecfbd1bf02da.d: examples/src/lib.rs

/root/repo/target/release/deps/webmon_examples-5df7ecfbd1bf02da: examples/src/lib.rs

examples/src/lib.rs:
