/root/repo/target/release/deps/exp_fig15-ad1c833d36639179.d: crates/bench/src/bin/exp_fig15.rs

/root/repo/target/release/deps/exp_fig15-ad1c833d36639179: crates/bench/src/bin/exp_fig15.rs

crates/bench/src/bin/exp_fig15.rs:
