/root/repo/target/release/deps/vip_clients-6a25572166c0f732.d: examples/src/bin/vip_clients.rs

/root/repo/target/release/deps/vip_clients-6a25572166c0f732: examples/src/bin/vip_clients.rs

examples/src/bin/vip_clients.rs:
