/root/repo/target/release/deps/webmon-37160d1907196b49.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/webmon-37160d1907196b49: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
