/root/repo/target/release/deps/exp_extensions-3669d50b22168e45.d: crates/bench/src/bin/exp_extensions.rs

/root/repo/target/release/deps/exp_extensions-3669d50b22168e45: crates/bench/src/bin/exp_extensions.rs

crates/bench/src/bin/exp_extensions.rs:
