/root/repo/target/release/deps/experiments-df40bacdc0e464e3.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-df40bacdc0e464e3: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
