/root/repo/target/release/deps/offline_optimality-659271202600fcab.d: tests/tests/offline_optimality.rs

/root/repo/target/release/deps/offline_optimality-659271202600fcab: tests/tests/offline_optimality.rs

tests/tests/offline_optimality.rs:
