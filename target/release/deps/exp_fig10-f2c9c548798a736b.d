/root/repo/target/release/deps/exp_fig10-f2c9c548798a736b.d: crates/bench/src/bin/exp_fig10.rs

/root/repo/target/release/deps/exp_fig10-f2c9c548798a736b: crates/bench/src/bin/exp_fig10.rs

crates/bench/src/bin/exp_fig10.rs:
