/root/repo/target/release/deps/paper_claims-69ff28e7d55e5972.d: tests/tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-69ff28e7d55e5972: tests/tests/paper_claims.rs

tests/tests/paper_claims.rs:
