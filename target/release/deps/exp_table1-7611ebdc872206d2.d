/root/repo/target/release/deps/exp_table1-7611ebdc872206d2.d: crates/bench/src/bin/exp_table1.rs

/root/repo/target/release/deps/exp_table1-7611ebdc872206d2: crates/bench/src/bin/exp_table1.rs

crates/bench/src/bin/exp_table1.rs:
