/root/repo/target/release/deps/webmon_workload-618634041bedd8e4.d: crates/workload/src/lib.rs crates/workload/src/arbitrage.rs crates/workload/src/generator.rs crates/workload/src/length.rs crates/workload/src/mashup.rs crates/workload/src/spec.rs

/root/repo/target/release/deps/libwebmon_workload-618634041bedd8e4.rlib: crates/workload/src/lib.rs crates/workload/src/arbitrage.rs crates/workload/src/generator.rs crates/workload/src/length.rs crates/workload/src/mashup.rs crates/workload/src/spec.rs

/root/repo/target/release/deps/libwebmon_workload-618634041bedd8e4.rmeta: crates/workload/src/lib.rs crates/workload/src/arbitrage.rs crates/workload/src/generator.rs crates/workload/src/length.rs crates/workload/src/mashup.rs crates/workload/src/spec.rs

crates/workload/src/lib.rs:
crates/workload/src/arbitrage.rs:
crates/workload/src/generator.rs:
crates/workload/src/length.rs:
crates/workload/src/mashup.rs:
crates/workload/src/spec.rs:
