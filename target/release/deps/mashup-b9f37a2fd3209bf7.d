/root/repo/target/release/deps/mashup-b9f37a2fd3209bf7.d: examples/src/bin/mashup.rs

/root/repo/target/release/deps/mashup-b9f37a2fd3209bf7: examples/src/bin/mashup.rs

examples/src/bin/mashup.rs:
