/root/repo/target/release/deps/exp_ablations-9004e783a68053c7.d: crates/bench/src/bin/exp_ablations.rs

/root/repo/target/release/deps/exp_ablations-9004e783a68053c7: crates/bench/src/bin/exp_ablations.rs

crates/bench/src/bin/exp_ablations.rs:
