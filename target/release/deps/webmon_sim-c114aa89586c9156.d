/root/repo/target/release/deps/webmon_sim-c114aa89586c9156.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/experiment.rs crates/sim/src/parallel.rs crates/sim/src/policies.rs crates/sim/src/report.rs crates/sim/src/summary.rs crates/sim/src/table.rs

/root/repo/target/release/deps/libwebmon_sim-c114aa89586c9156.rlib: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/experiment.rs crates/sim/src/parallel.rs crates/sim/src/policies.rs crates/sim/src/report.rs crates/sim/src/summary.rs crates/sim/src/table.rs

/root/repo/target/release/deps/libwebmon_sim-c114aa89586c9156.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/experiment.rs crates/sim/src/parallel.rs crates/sim/src/policies.rs crates/sim/src/report.rs crates/sim/src/summary.rs crates/sim/src/table.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/experiment.rs:
crates/sim/src/parallel.rs:
crates/sim/src/policies.rs:
crates/sim/src/report.rs:
crates/sim/src/summary.rs:
crates/sim/src/table.rs:
