/root/repo/target/release/deps/arbitrage-7ffda37ccebc6f6e.d: examples/src/bin/arbitrage.rs

/root/repo/target/release/deps/arbitrage-7ffda37ccebc6f6e: examples/src/bin/arbitrage.rs

examples/src/bin/arbitrage.rs:
