/root/repo/target/release/deps/exp_fig14-dcca42b6a05b6baf.d: crates/bench/src/bin/exp_fig14.rs

/root/repo/target/release/deps/exp_fig14-dcca42b6a05b6baf: crates/bench/src/bin/exp_fig14.rs

crates/bench/src/bin/exp_fig14.rs:
