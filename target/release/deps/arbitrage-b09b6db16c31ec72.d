/root/repo/target/release/deps/arbitrage-b09b6db16c31ec72.d: examples/src/bin/arbitrage.rs

/root/repo/target/release/deps/arbitrage-b09b6db16c31ec72: examples/src/bin/arbitrage.rs

examples/src/bin/arbitrage.rs:
