/root/repo/target/release/deps/webmon_bench-ffc2738c439c8d76.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/extensions.rs crates/bench/src/fig09.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/fig14.rs crates/bench/src/fig15.rs crates/bench/src/runtime_offline.rs crates/bench/src/table1.rs

/root/repo/target/release/deps/libwebmon_bench-ffc2738c439c8d76.rlib: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/extensions.rs crates/bench/src/fig09.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/fig14.rs crates/bench/src/fig15.rs crates/bench/src/runtime_offline.rs crates/bench/src/table1.rs

/root/repo/target/release/deps/libwebmon_bench-ffc2738c439c8d76.rmeta: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/extensions.rs crates/bench/src/fig09.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/fig14.rs crates/bench/src/fig15.rs crates/bench/src/runtime_offline.rs crates/bench/src/table1.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/extensions.rs:
crates/bench/src/fig09.rs:
crates/bench/src/fig10.rs:
crates/bench/src/fig11.rs:
crates/bench/src/fig12.rs:
crates/bench/src/fig13.rs:
crates/bench/src/fig14.rs:
crates/bench/src/fig15.rs:
crates/bench/src/runtime_offline.rs:
crates/bench/src/table1.rs:
