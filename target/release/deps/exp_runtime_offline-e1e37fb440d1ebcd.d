/root/repo/target/release/deps/exp_runtime_offline-e1e37fb440d1ebcd.d: crates/bench/src/bin/exp_runtime_offline.rs

/root/repo/target/release/deps/exp_runtime_offline-e1e37fb440d1ebcd: crates/bench/src/bin/exp_runtime_offline.rs

crates/bench/src/bin/exp_runtime_offline.rs:
