/root/repo/target/release/deps/mashup-c281ba78c82a9199.d: examples/src/bin/mashup.rs

/root/repo/target/release/deps/mashup-c281ba78c82a9199: examples/src/bin/mashup.rs

examples/src/bin/mashup.rs:
