/root/repo/target/release/deps/exp_fig14-a94ddb5531d8c8ac.d: crates/bench/src/bin/exp_fig14.rs

/root/repo/target/release/deps/exp_fig14-a94ddb5531d8c8ac: crates/bench/src/bin/exp_fig14.rs

crates/bench/src/bin/exp_fig14.rs:
