/root/repo/target/release/deps/exp_fig09-d7be6bdf9d0de84e.d: crates/bench/src/bin/exp_fig09.rs

/root/repo/target/release/deps/exp_fig09-d7be6bdf9d0de84e: crates/bench/src/bin/exp_fig09.rs

crates/bench/src/bin/exp_fig09.rs:
