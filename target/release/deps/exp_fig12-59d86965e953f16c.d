/root/repo/target/release/deps/exp_fig12-59d86965e953f16c.d: crates/bench/src/bin/exp_fig12.rs

/root/repo/target/release/deps/exp_fig12-59d86965e953f16c: crates/bench/src/bin/exp_fig12.rs

crates/bench/src/bin/exp_fig12.rs:
