/root/repo/target/release/deps/webmon_streams-74e49e4c10e773d4.d: crates/streams/src/lib.rs crates/streams/src/auction.rs crates/streams/src/fitted.rs crates/streams/src/fpn.rs crates/streams/src/io.rs crates/streams/src/news.rs crates/streams/src/poisson.rs crates/streams/src/rng.rs crates/streams/src/trace.rs crates/streams/src/zipf.rs

/root/repo/target/release/deps/libwebmon_streams-74e49e4c10e773d4.rlib: crates/streams/src/lib.rs crates/streams/src/auction.rs crates/streams/src/fitted.rs crates/streams/src/fpn.rs crates/streams/src/io.rs crates/streams/src/news.rs crates/streams/src/poisson.rs crates/streams/src/rng.rs crates/streams/src/trace.rs crates/streams/src/zipf.rs

/root/repo/target/release/deps/libwebmon_streams-74e49e4c10e773d4.rmeta: crates/streams/src/lib.rs crates/streams/src/auction.rs crates/streams/src/fitted.rs crates/streams/src/fpn.rs crates/streams/src/io.rs crates/streams/src/news.rs crates/streams/src/poisson.rs crates/streams/src/rng.rs crates/streams/src/trace.rs crates/streams/src/zipf.rs

crates/streams/src/lib.rs:
crates/streams/src/auction.rs:
crates/streams/src/fitted.rs:
crates/streams/src/fpn.rs:
crates/streams/src/io.rs:
crates/streams/src/news.rs:
crates/streams/src/poisson.rs:
crates/streams/src/rng.rs:
crates/streams/src/trace.rs:
crates/streams/src/zipf.rs:
