/root/repo/target/release/deps/exp_runtime_offline-aaa96c398e9f1c7b.d: crates/bench/src/bin/exp_runtime_offline.rs

/root/repo/target/release/deps/exp_runtime_offline-aaa96c398e9f1c7b: crates/bench/src/bin/exp_runtime_offline.rs

crates/bench/src/bin/exp_runtime_offline.rs:
