/root/repo/target/release/deps/extension_properties-49f1ddfecea00a40.d: tests/tests/extension_properties.rs

/root/repo/target/release/deps/extension_properties-49f1ddfecea00a40: tests/tests/extension_properties.rs

tests/tests/extension_properties.rs:
