/root/repo/target/release/deps/properties-16cda3917ae53d25.d: tests/tests/properties.rs

/root/repo/target/release/deps/properties-16cda3917ae53d25: tests/tests/properties.rs

tests/tests/properties.rs:
