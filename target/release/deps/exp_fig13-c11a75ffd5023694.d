/root/repo/target/release/deps/exp_fig13-c11a75ffd5023694.d: crates/bench/src/bin/exp_fig13.rs

/root/repo/target/release/deps/exp_fig13-c11a75ffd5023694: crates/bench/src/bin/exp_fig13.rs

crates/bench/src/bin/exp_fig13.rs:
