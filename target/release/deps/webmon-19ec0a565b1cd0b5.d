/root/repo/target/release/deps/webmon-19ec0a565b1cd0b5.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/webmon-19ec0a565b1cd0b5: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
