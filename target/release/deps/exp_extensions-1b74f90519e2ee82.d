/root/repo/target/release/deps/exp_extensions-1b74f90519e2ee82.d: crates/bench/src/bin/exp_extensions.rs

/root/repo/target/release/deps/exp_extensions-1b74f90519e2ee82: crates/bench/src/bin/exp_extensions.rs

crates/bench/src/bin/exp_extensions.rs:
