/root/repo/target/release/deps/webmon_integration-41dcb2d0be33a7eb.d: tests/src/lib.rs

/root/repo/target/release/deps/libwebmon_integration-41dcb2d0be33a7eb.rlib: tests/src/lib.rs

/root/repo/target/release/deps/libwebmon_integration-41dcb2d0be33a7eb.rmeta: tests/src/lib.rs

tests/src/lib.rs:
