/root/repo/target/release/deps/exp_fig10-f1f4f0d0b96ac0be.d: crates/bench/src/bin/exp_fig10.rs

/root/repo/target/release/deps/exp_fig10-f1f4f0d0b96ac0be: crates/bench/src/bin/exp_fig10.rs

crates/bench/src/bin/exp_fig10.rs:
