/root/repo/target/release/deps/exp_fig13-b9e1216adda9d4dc.d: crates/bench/src/bin/exp_fig13.rs

/root/repo/target/release/deps/exp_fig13-b9e1216adda9d4dc: crates/bench/src/bin/exp_fig13.rs

crates/bench/src/bin/exp_fig13.rs:
