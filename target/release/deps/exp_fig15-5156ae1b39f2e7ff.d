/root/repo/target/release/deps/exp_fig15-5156ae1b39f2e7ff.d: crates/bench/src/bin/exp_fig15.rs

/root/repo/target/release/deps/exp_fig15-5156ae1b39f2e7ff: crates/bench/src/bin/exp_fig15.rs

crates/bench/src/bin/exp_fig15.rs:
