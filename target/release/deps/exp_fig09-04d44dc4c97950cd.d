/root/repo/target/release/deps/exp_fig09-04d44dc4c97950cd.d: crates/bench/src/bin/exp_fig09.rs

/root/repo/target/release/deps/exp_fig09-04d44dc4c97950cd: crates/bench/src/bin/exp_fig09.rs

crates/bench/src/bin/exp_fig09.rs:
