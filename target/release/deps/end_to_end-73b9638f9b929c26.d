/root/repo/target/release/deps/end_to_end-73b9638f9b929c26.d: tests/tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-73b9638f9b929c26: tests/tests/end_to_end.rs

tests/tests/end_to_end.rs:
