/root/repo/target/release/deps/auction_sniper-2fa06b02731c40e7.d: examples/src/bin/auction_sniper.rs

/root/repo/target/release/deps/auction_sniper-2fa06b02731c40e7: examples/src/bin/auction_sniper.rs

examples/src/bin/auction_sniper.rs:
