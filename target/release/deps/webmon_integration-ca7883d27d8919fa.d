/root/repo/target/release/deps/webmon_integration-ca7883d27d8919fa.d: tests/src/lib.rs

/root/repo/target/release/deps/webmon_integration-ca7883d27d8919fa: tests/src/lib.rs

tests/src/lib.rs:
