/root/repo/target/release/deps/webmon_sim-33ffa71d8114a6b0.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/experiment.rs crates/sim/src/policies.rs crates/sim/src/report.rs crates/sim/src/summary.rs crates/sim/src/table.rs

/root/repo/target/release/deps/webmon_sim-33ffa71d8114a6b0: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/experiment.rs crates/sim/src/policies.rs crates/sim/src/report.rs crates/sim/src/summary.rs crates/sim/src/table.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/experiment.rs:
crates/sim/src/policies.rs:
crates/sim/src/report.rs:
crates/sim/src/summary.rs:
crates/sim/src/table.rs:
