/root/repo/target/release/deps/vip_clients-b9dd5309a726f861.d: examples/src/bin/vip_clients.rs

/root/repo/target/release/deps/vip_clients-b9dd5309a726f861: examples/src/bin/vip_clients.rs

examples/src/bin/vip_clients.rs:
