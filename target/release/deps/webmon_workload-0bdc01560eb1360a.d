/root/repo/target/release/deps/webmon_workload-0bdc01560eb1360a.d: crates/workload/src/lib.rs crates/workload/src/arbitrage.rs crates/workload/src/generator.rs crates/workload/src/length.rs crates/workload/src/mashup.rs crates/workload/src/spec.rs

/root/repo/target/release/deps/webmon_workload-0bdc01560eb1360a: crates/workload/src/lib.rs crates/workload/src/arbitrage.rs crates/workload/src/generator.rs crates/workload/src/length.rs crates/workload/src/mashup.rs crates/workload/src/spec.rs

crates/workload/src/lib.rs:
crates/workload/src/arbitrage.rs:
crates/workload/src/generator.rs:
crates/workload/src/length.rs:
crates/workload/src/mashup.rs:
crates/workload/src/spec.rs:
