/root/repo/target/release/deps/exp_ablations-24e7558f5bf90a80.d: crates/bench/src/bin/exp_ablations.rs

/root/repo/target/release/deps/exp_ablations-24e7558f5bf90a80: crates/bench/src/bin/exp_ablations.rs

crates/bench/src/bin/exp_ablations.rs:
