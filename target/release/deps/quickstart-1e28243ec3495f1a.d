/root/repo/target/release/deps/quickstart-1e28243ec3495f1a.d: examples/src/bin/quickstart.rs

/root/repo/target/release/deps/quickstart-1e28243ec3495f1a: examples/src/bin/quickstart.rs

examples/src/bin/quickstart.rs:
