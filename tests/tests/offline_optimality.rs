//! Offline baselines vs the exact optimum on small instances, across many
//! seeded workloads: the optimum must dominate every online policy and the
//! Local-Ratio baseline, and the certified approximation bound must hold.

use webmon_core::engine::{EngineConfig, OnlineEngine};
use webmon_core::model::Budget;
use webmon_core::offline::{
    local_ratio_schedule, optimal_schedule, LocalRatioConfig, SearchLimits,
};
use webmon_core::policy::{MEdf, Mrsf, Policy, SEdf, Wic};
use webmon_streams::fpn::NoisyTrace;
use webmon_streams::poisson::PoissonProcess;
use webmon_streams::rng::SimRng;
use webmon_workload::{generate, EiLength, GeneratedWorkload, RankSpec, WorkloadConfig};

/// A tiny seeded workload the exact search can handle.
fn tiny_workload(seed: u64) -> GeneratedWorkload {
    let trace = PoissonProcess::new(4.0).sample_trace(4, 24, &SimRng::new(seed));
    let cfg = WorkloadConfig {
        n_profiles: 3,
        rank: RankSpec::UpTo { k: 2, beta: 0.0 },
        resource_alpha: 0.0,
        length: EiLength::Window(2),
        distinct_resources: true,
        max_ceis: Some(8),
        no_intra_resource_overlap: false,
    };
    generate(
        &cfg,
        &NoisyTrace::exact(&trace),
        Budget::Uniform(1),
        &SimRng::new(seed ^ 0xABCD),
    )
}

#[test]
fn exact_optimum_dominates_every_policy_and_baseline() {
    let mut nontrivial = 0;
    for seed in 0..25u64 {
        let w = tiny_workload(seed);
        if w.instance.ceis.is_empty() {
            continue;
        }
        let Ok((_, opt)) = optimal_schedule(&w.instance, SearchLimits::default()) else {
            continue; // instance too large for the node budget
        };
        nontrivial += 1;

        for policy in [&SEdf as &dyn Policy, &Mrsf, &MEdf, &Wic::paper()] {
            for config in [EngineConfig::preemptive(), EngineConfig::non_preemptive()] {
                let run = OnlineEngine::run(&w.instance, policy, config);
                assert!(
                    run.stats.ceis_captured <= opt.ceis_captured,
                    "seed {seed}: {} {:?} captured {} > optimum {}",
                    policy.name(),
                    config,
                    run.stats.ceis_captured,
                    opt.ceis_captured
                );
            }
        }

        let lr = local_ratio_schedule(&w.instance, LocalRatioConfig::default()).unwrap();
        assert!(
            lr.stats.ceis_captured <= opt.ceis_captured,
            "seed {seed}: LR beat the optimum"
        );
        // Certified bound (rank 2, general instance, C = 1): the scheme is a
        // (2k+2)-approximation — and the realized schedule with completion
        // does far better in practice. Assert the certified envelope.
        let k = u64::from(w.instance.rank());
        assert!(
            lr.stats.ceis_captured * (2 * k + 2) >= opt.ceis_captured,
            "seed {seed}: LR {} breached the (2k+2) bound vs optimum {}",
            lr.stats.ceis_captured,
            opt.ceis_captured
        );
    }
    assert!(nontrivial >= 15, "only {nontrivial} instances exercised");
}

#[test]
fn optimum_is_invariant_to_policy_irrelevant_details() {
    // The enumerated optimum must not depend on CEI insertion order: permute
    // profiles by regenerating with the same seed and compare counts.
    for seed in [3u64, 7, 11] {
        let w = tiny_workload(seed);
        if w.instance.ceis.is_empty() {
            continue;
        }
        let (_, a) = optimal_schedule(&w.instance, SearchLimits::default()).unwrap();
        let (_, b) = optimal_schedule(&w.instance, SearchLimits::default()).unwrap();
        assert_eq!(a.ceis_captured, b.ceis_captured);
    }
}
