//! End-to-end tests of the `webmon serve` daemon.
//!
//! The PR's keystone contract: the daemon under a deterministic
//! [`ReplayExecutor`] reproduces the simulator's schedule, `RunMetrics`,
//! and JSONL trace **byte for byte** — under any clock, with or without
//! fault injection and churn. On top of the identity corpus this file
//! exercises the socket protocol (mid-run attach, live registration,
//! malformed requests), the live TCP probe executor against local
//! fixtures, and the structured error path for corrupt replay feeds.
//!
//! The daemon always runs on the test's main thread (policies are `Sync`
//! but boxed policies are not `Send`); clients and clock drivers run on
//! spawned threads, exactly inverse to production where the engine owns
//! the main thread and clients arrive over the socket.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::thread;
use std::time::Duration;
use webmon_cli::args::Args;
use webmon_cli::commands::dispatch;
use webmon_cli::serve::{Daemon, DaemonOutcome, ServeOptions, ServeSession};
use webmon_core::engine::{
    EngineConfig, Mutation, MutationQueue, OnlineEngine, RunResult, ScriptedMutations,
};
use webmon_core::fault::{Backoff, FaultConfig, IidFaults, NoFaults};
use webmon_core::model::{Budget, CeiId, Instance, InstanceBuilder};
use webmon_core::obs::{JsonlTraceObserver, MetricsObserver, RunMetrics, Tee};
use webmon_core::policy::{MEdf, Mrsf, Policy, SEdf, Wic};
use webmon_core::serve::journal::{scan_journal, JOURNAL_FILE};
use webmon_core::serve::{
    FreeClock, FsyncPolicy, JournalConfig, ManualClock, ProbeExecutor, ReplayExecutor,
    TcpProbeExecutor,
};
use webmon_core::stats::CeiOutcome;
use webmon_streams::SimRng;
use webmon_testkit::corpus::{conformance_cases, small_instance};
use webmon_workload::churn::overlay;
use webmon_workload::ChurnConfig;

/// A unique temp-file path per call (tests run concurrently in one binary).
fn temp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("webmon-serve-{}-{tag}-{n}", std::process::id()))
}

/// The simulator reference: one fully observed run — result, merged
/// metrics, raw JSONL trace bytes.
fn sim_observed(
    instance: &Instance,
    policy: &dyn Policy,
    config: EngineConfig,
) -> (RunResult, RunMetrics, Vec<u8>) {
    let mut metrics = MetricsObserver::new();
    let mut trace = JsonlTraceObserver::new(Vec::new());
    let result = {
        let mut tee = Tee(&mut metrics, &mut trace);
        OnlineEngine::run_observed(instance, policy, config, &mut tee)
    };
    assert_eq!(trace.write_errors(), 0);
    (result, metrics.finish(), trace.finish().unwrap())
}

/// Same through the fault-injected entry point.
fn sim_observed_faulted(
    instance: &Instance,
    policy: &dyn Policy,
    config: EngineConfig,
    rate: f64,
    seed: u64,
    fault_config: FaultConfig,
) -> (RunResult, RunMetrics, Vec<u8>) {
    let mut metrics = MetricsObserver::new();
    let mut trace = JsonlTraceObserver::new(Vec::new());
    let mut model = IidFaults::new(rate, seed);
    let result = {
        let mut tee = Tee(&mut metrics, &mut trace);
        OnlineEngine::run_faulted(instance, policy, config, &mut model, fault_config, &mut tee)
    };
    assert_eq!(trace.write_errors(), 0);
    (result, metrics.finish(), trace.finish().unwrap())
}

/// Same through the churned entry point.
fn sim_observed_mutated(
    instance: &Instance,
    policy: &dyn Policy,
    config: EngineConfig,
    queue: &MutationQueue,
) -> (RunResult, RunMetrics, Vec<u8>) {
    let mut metrics = MetricsObserver::new();
    let mut trace = JsonlTraceObserver::new(Vec::new());
    let result = {
        let mut tee = Tee(&mut metrics, &mut trace);
        OnlineEngine::run_mutated(
            instance,
            policy,
            config,
            &mut NoFaults,
            FaultConfig::default(),
            queue,
            &mut tee,
        )
    };
    assert_eq!(trace.write_errors(), 0);
    (result, metrics.finish(), trace.finish().unwrap())
}

/// Runs a full daemon lifetime with no clients: bind, run to horizon on a
/// free clock, collect the outcome and the trace file's bytes.
fn daemon_observed<E: ProbeExecutor>(
    instance: &Instance,
    policy: Box<dyn Policy>,
    config: EngineConfig,
    fault_config: FaultConfig,
    queue: &MutationQueue,
    executor: E,
) -> (RunResult, RunMetrics, Vec<u8>) {
    let path = temp_path("trace");
    let daemon = Daemon::bind("127.0.0.1:0").unwrap();
    let script = ScriptedMutations::compile(queue, instance.epoch.len(), instance.ceis.len());
    let session = ServeSession {
        instance: instance.clone(),
        policy,
        config,
        fault_config,
        script,
    };
    let outcome = daemon
        .run(session, executor, FreeClock, Some(&path))
        .unwrap();
    assert_eq!(outcome.write_errors, 0);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(
        outcome.events_written,
        bytes
            .split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .count() as u64
    );
    (outcome.result, outcome.metrics, bytes)
}

fn assert_identical(
    label: &str,
    sim: &(RunResult, RunMetrics, Vec<u8>),
    daemon: &(RunResult, RunMetrics, Vec<u8>),
) {
    assert_eq!(sim.0.schedule, daemon.0.schedule, "{label}: schedule");
    assert_eq!(sim.0.stats, daemon.0.stats, "{label}: stats");
    assert_eq!(sim.0.outcomes, daemon.0.outcomes, "{label}: outcomes");
    assert_eq!(sim.1, daemon.1, "{label}: RunMetrics");
    assert_eq!(sim.2, daemon.2, "{label}: JSONL trace bytes");
}

type PolicyCtor = fn() -> Box<dyn Policy>;

fn policies() -> [(&'static str, PolicyCtor); 4] {
    [
        ("S-EDF", || Box::new(SEdf)),
        ("MRSF", || Box::new(Mrsf)),
        ("M-EDF", || Box::new(MEdf)),
        ("W-IC", || Box::new(Wic::paper())),
    ]
}

/// Keystone identity: daemon + replay executor ≡ simulator, bit for bit,
/// over a conformance-corpus slice × 4 policies × P/NP.
#[test]
fn daemon_replay_is_bit_identical_to_simulator_on_corpus_slice() {
    let seeds: Vec<u64> = (0..conformance_cases()).step_by(4).take(5).collect();
    for &seed in &seeds {
        let instance = small_instance(seed, false);
        for (name, make) in policies() {
            for config in [EngineConfig::preemptive(), EngineConfig::non_preemptive()] {
                let sim = sim_observed(&instance, make().as_ref(), config);
                let daemon = daemon_observed(
                    &instance,
                    make(),
                    config,
                    FaultConfig::default(),
                    &MutationQueue::new(),
                    ReplayExecutor::faultless(),
                );
                assert_identical(
                    &format!("seed {seed}: {name} {}", config.label()),
                    &sim,
                    &daemon,
                );
            }
        }
    }
}

/// The identity holds through the fault path: a scripted i.i.d. fault model
/// behind the replay executor ≡ the simulator's `run_faulted`, including
/// retry/backoff accounting.
#[test]
fn faulted_daemon_matches_faulted_simulator() {
    let instance = small_instance(3, false);
    let fault_config = FaultConfig::charged().with_backoff(Backoff::new(1, 8));
    for config in [EngineConfig::preemptive(), EngineConfig::non_preemptive()] {
        let sim = sim_observed_faulted(&instance, &MEdf, config, 0.4, 77, fault_config);
        let daemon = daemon_observed(
            &instance,
            Box::new(MEdf),
            config,
            fault_config,
            &MutationQueue::new(),
            ReplayExecutor::scripted(IidFaults::new(0.4, 77)),
        );
        assert_identical(&format!("faulted {}", config.label()), &sim, &daemon);
        assert!(daemon.1.probes_failed > 0, "fault model must actually bite");
    }
}

/// And through the churn path: a compiled churn script ≡ `run_mutated` on
/// the same queue.
#[test]
fn churned_daemon_matches_churned_simulator() {
    let instance = small_instance(5, false);
    let config = ChurnConfig::new(0.4, 0.3).with_reconfigurations(2);
    let queue = overlay(&instance, &config, &SimRng::new(0xC0DE));
    assert!(!queue.is_empty(), "churn overlay must script something");
    let engine = EngineConfig::preemptive();
    let sim = sim_observed_mutated(&instance, &MEdf, engine, &queue);
    let daemon = daemon_observed(
        &instance,
        Box::new(MEdf),
        engine,
        FaultConfig::default(),
        &queue,
        ReplayExecutor::faultless(),
    );
    assert_identical("churned", &sim, &daemon);
}

/// An instance sized so the socket tests can register/cancel with visible
/// effects: CEI 0's window only opens at chronon 5 (still pending — hence
/// cancellable — when mutations drain at chronon 2), CEI 1 releases late.
fn protocol_instance() -> Instance {
    let mut b = InstanceBuilder::new(2, 30, Budget::Uniform(1));
    let p = b.profile();
    b.cei(p, &[(0, 5, 25)]);
    b.cei_released(p, 20, &[(1, 20, 28)]);
    b.build()
}

fn serve_session(instance: Instance) -> ServeSession {
    ServeSession {
        policy: Box::new(MEdf),
        config: EngineConfig::preemptive(),
        fault_config: FaultConfig::default(),
        script: ScriptedMutations::default(),
        instance,
    }
}

/// Connects, reads with a timeout so a protocol bug cannot hang the suite.
fn connect(addr: std::net::SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    (BufReader::new(stream.try_clone().unwrap()), stream)
}

fn send_line(stream: &mut TcpStream, line: &str) {
    writeln!(stream, "{line}").unwrap();
}

fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    line.trim().to_string()
}

/// Registration API round-trip over the socket: `register` activates a
/// not-yet-released CEI (CeiRegistered event, later capture), `cancel`
/// resolves a live one as Cancelled, and both drain at the deterministic
/// next chronon under a manual clock.
///
/// The attached event stream is the synchronization point: once the
/// `ChrononEnd` line for chronon 1 arrives, the engine has finished every
/// drain it can reach before blocking at the chronon-2 gate, so mutations
/// submitted now — and acknowledged before the gate opens — drain exactly
/// at chronon 2. (Submitting without that barrier races against the
/// engine's own chronon-0/1 drains: the gate admits chronon 0 from
/// construction.)
#[test]
fn socket_registration_round_trip() {
    let path = temp_path("reg");
    let daemon = Daemon::bind("127.0.0.1:0").unwrap();
    let addr = daemon.local_addr().unwrap();
    let (clock, handle) = ManualClock::new();

    let client = thread::spawn(move || {
        let (mut events, mut attach) = connect(addr);
        send_line(&mut attach, "attach");
        assert_eq!(read_line(&mut events), r#"{"ok":"attached"}"#);
        // The ok response precedes the socket's handover to the event hub;
        // give the client thread time to complete it before opening the
        // gate so promotion happens no later than chronon 1's boundary.
        thread::sleep(Duration::from_millis(100));
        let (mut reader, mut stream) = connect(addr);
        handle.advance_to(1);
        loop {
            let line = read_line(&mut events);
            if line.starts_with(r#"{"ChrononEnd":{"t":1,"#) {
                break;
            }
        }
        send_line(&mut stream, "register 1");
        assert_eq!(read_line(&mut reader), r#"{"ok":{"register":1}}"#);
        send_line(&mut stream, "cancel 0");
        assert_eq!(read_line(&mut reader), r#"{"ok":{"cancel":0}}"#);
        handle.release();
    });

    let outcome = daemon
        .run(
            serve_session(protocol_instance()),
            ReplayExecutor::faultless(),
            clock,
            Some(&path),
        )
        .unwrap();
    client.join().unwrap();

    assert_eq!(outcome.result.outcomes[0], CeiOutcome::Cancelled { at: 2 });
    assert!(
        outcome.result.outcomes[1].is_captured(),
        "registered CEI must capture, got {:?}",
        outcome.result.outcomes[1]
    );
    let trace = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(
        trace.contains(r#"{"CeiRegistered":{"cei":1,"at":2}}"#),
        "live registration must be drained at chronon 2"
    );
    assert!(
        trace.contains(r#"{"CeiCancelled":{"cei":0,"at":2}}"#),
        "live cancellation must be drained at chronon 2"
    );
}

/// A mid-run `attach` turns the connection into the JSONL event stream:
/// well-formed from its first line, which is always a `ChrononStart` (the
/// hub promotes pending sockets only at chronon boundaries), and flowing
/// until the run ends and the daemon closes the socket.
#[test]
fn socket_attach_streams_wellformed_jsonl_from_a_chronon_boundary() {
    let daemon = Daemon::bind("127.0.0.1:0").unwrap();
    let addr = daemon.local_addr().unwrap();
    let (clock, handle) = ManualClock::new();

    let client = thread::spawn(move || {
        let (mut reader, mut stream) = connect(addr);
        send_line(&mut stream, "attach");
        assert_eq!(read_line(&mut reader), r#"{"ok":"attached"}"#);
        // The ok response precedes the socket's handover to the event hub;
        // give the client thread time to complete it before opening the
        // gate, so the attach point is strictly mid-run.
        thread::sleep(Duration::from_millis(100));
        handle.release();
        let mut lines = Vec::new();
        let mut line = String::new();
        while reader.read_line(&mut line).unwrap() > 0 {
            lines.push(line.trim().to_string());
            line.clear();
        }
        lines
    });

    let outcome = daemon
        .run(
            serve_session(protocol_instance()),
            ReplayExecutor::faultless(),
            clock,
            None,
        )
        .unwrap();
    let lines = client.join().unwrap();

    assert!(!lines.is_empty(), "attached stream must carry events");
    assert!(
        lines[0].starts_with(r#"{"ChrononStart":"#),
        "stream must start at a chronon boundary, got {}",
        lines[0]
    );
    for l in &lines {
        let v: serde_json::Value = serde_json::from_str(l)
            .unwrap_or_else(|e| panic!("attached stream line is not JSON: {l} ({e})"));
        assert!(v.is_object(), "{l}");
    }
    // The attached stream is a suffix of the full event stream.
    assert!(lines.len() as u64 <= outcome.events_written);
}

/// Malformed request lines get structured JSON errors and leave the
/// connection usable; `shutdown` then releases the clock so the paced run
/// free-runs to the horizon and exits cleanly.
#[test]
fn socket_malformed_lines_and_shutdown() {
    let daemon = Daemon::bind("127.0.0.1:0").unwrap();
    let addr = daemon.local_addr().unwrap();
    let stop = daemon.stop_flag();
    let (clock, _handle) = ManualClock::new();

    let client = thread::spawn(move || {
        let (mut reader, mut stream) = connect(addr);
        for bad in ["frobnicate", "register", "register xyz", "register 999"] {
            send_line(&mut stream, bad);
            let resp = read_line(&mut reader);
            let v: serde_json::Value = serde_json::from_str(&resp).unwrap();
            assert!(!v["err"].is_null(), "{bad} -> {resp}");
            assert_eq!(v["err"]["input"], *bad, "{resp}");
        }
        send_line(&mut stream, "ping");
        assert_eq!(
            read_line(&mut reader),
            r#"{"ok":"pong"}"#,
            "connection must survive malformed lines"
        );
        send_line(&mut stream, "shutdown");
        assert_eq!(read_line(&mut reader), r#"{"ok":"shutting-down"}"#);
    });

    // The manual clock is never advanced: only the shutdown release lets
    // this return. Completing at the full horizon is the clean-exit proof.
    let outcome = daemon
        .run(
            serve_session(protocol_instance()),
            ReplayExecutor::faultless(),
            clock,
            None,
        )
        .unwrap();
    client.join().unwrap();
    assert!(stop.load(Ordering::SeqCst));
    let sim = OnlineEngine::run(&protocol_instance(), &MEdf, EngineConfig::preemptive());
    assert_eq!(
        outcome.result.schedule, sim.schedule,
        "shutdown free-runs the full schedule"
    );
}

/// One CEI per chronon-window on resource 0, so every chronon issues
/// exactly one live TCP probe against the fixture.
fn live_instance(horizon: u32) -> Instance {
    let mut b = InstanceBuilder::new(1, horizon, Budget::Uniform(1));
    let p = b.profile();
    for t in 1..horizon {
        b.cei(p, &[(0, t, t)]);
    }
    b.build()
}

/// Live executor against an unresponsive port: every probe maps to
/// `ProbeFailed`, charged and backed off per the `FaultConfig`, and nothing
/// captures.
#[test]
fn live_executor_unresponsive_port_feeds_fault_machinery() {
    // Bind-then-drop: the OS rejects connections to the freed port fast
    // (ECONNREFUSED), no timeout involved.
    let dead_addr = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let instance = live_instance(8);
    let daemon = Daemon::bind("127.0.0.1:0").unwrap();
    let path = temp_path("live-dead");
    let mut session = serve_session(instance);
    session.fault_config = FaultConfig::charged().with_backoff(Backoff::new(1, 8));
    let outcome = daemon
        .run(
            session,
            TcpProbeExecutor::new(vec![dead_addr], Duration::from_millis(200)),
            FreeClock,
            Some(&path),
        )
        .unwrap();
    assert_eq!(outcome.result.stats.ceis_captured, 0);
    assert!(outcome.metrics.probes_failed > 0, "probes must fail");
    let trace = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(
        trace.contains(r#"{"ProbeFailed":"#),
        "trace must record the failures"
    );
}

/// Live executor against a responsive local listener: probes succeed (the
/// kernel backlog accepts the connection) and CEIs capture.
#[test]
fn live_executor_responsive_port_captures() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let daemon = Daemon::bind("127.0.0.1:0").unwrap();
    let outcome = daemon
        .run(
            serve_session(live_instance(6)),
            TcpProbeExecutor::new(vec![addr], Duration::from_millis(500)),
            FreeClock,
            None,
        )
        .unwrap();
    assert!(
        outcome.result.stats.ceis_captured > 0,
        "live probes must capture"
    );
    drop(listener);
}

/// Daemon shutdown mid-backoff exits cleanly: the shutdown hook flips the
/// executor's stop flag (in-flight and future probes fail fast instead of
/// waiting out their timeout), the released clock free-runs the engine to
/// the horizon, and `run` returns with every thread joined.
#[test]
fn live_executor_shutdown_mid_backoff_exits_cleanly() {
    let dead_addr = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let mut daemon = Daemon::bind("127.0.0.1:0").unwrap();
    let addr = daemon.local_addr().unwrap();
    let executor = TcpProbeExecutor::new(vec![dead_addr], Duration::from_millis(200));
    let stop = executor.stop_flag();
    daemon.on_shutdown(std::sync::Arc::new({
        let stop = stop.clone();
        move || stop.store(true, Ordering::SeqCst)
    }));
    let (clock, handle) = ManualClock::new();

    let client = thread::spawn(move || {
        let (mut reader, mut stream) = connect(addr);
        // Admit a few chronons so failing probes engage the backoff state,
        // then shut down while retries are still pending.
        handle.advance_to(3);
        thread::sleep(Duration::from_millis(50));
        send_line(&mut stream, "shutdown");
        assert_eq!(read_line(&mut reader), r#"{"ok":"shutting-down"}"#);
    });

    let mut session = serve_session(live_instance(20));
    session.fault_config = FaultConfig::charged().with_backoff(Backoff::new(2, 16));
    let outcome = daemon.run(session, executor, clock, None).unwrap();
    client.join().unwrap();
    assert!(stop.load(Ordering::SeqCst), "shutdown hook must fire");
    assert!(outcome.metrics.probes_failed > 0);
    assert_eq!(outcome.write_errors, 0);
}

/// A replay feed truncated mid-line surfaces as the loader's structured,
/// line-numbered error through the `serve` command — exit code 2, daemon
/// never started — not a panic.
#[test]
fn serve_truncated_replay_feed_is_a_structured_error() {
    let feed = temp_path("feed");
    std::fs::write(&feed, "resource,chronon\n0,5\n1,").unwrap();
    // The loader reports the exact file line of the truncated record.
    let err = webmon_streams::read_csv_file(&feed, None, None).unwrap_err();
    assert_eq!(
        err,
        webmon_streams::TraceIoError::BadLine {
            line: 3,
            content: "1,".into()
        }
    );
    // And the daemon command turns it into exit code 2.
    let toks = [
        "serve",
        "--replay-feed",
        feed.to_str().unwrap(),
        "--listen",
        "127.0.0.1:0",
        "--horizon",
        "10",
        "--resources",
        "2",
    ];
    let args = Args::parse(toks.iter().map(|s| s.to_string())).unwrap();
    assert_eq!(dispatch(&args).unwrap(), 2);
    std::fs::remove_file(&feed).ok();
}

/// A client that dies mid-line — EOF with a partial command buffered —
/// drops only that session: the fragment is never executed, and the
/// daemon keeps serving other connections.
#[test]
fn socket_disconnect_mid_line_drops_only_that_session() {
    let daemon = Daemon::bind("127.0.0.1:0").unwrap();
    let addr = daemon.local_addr().unwrap();
    let stop = daemon.stop_flag();
    let (clock, _handle) = ManualClock::new();

    let client = thread::spawn(move || {
        // A complete command with no trailing newline, then a hard close:
        // the torn fragment must be discarded, not executed.
        let (_reader, mut stream) = connect(addr);
        stream.write_all(b"shutdown").unwrap();
        drop(stream);
        thread::sleep(Duration::from_millis(200));
        assert!(
            !stop.load(Ordering::SeqCst),
            "a command torn by disconnect must not execute"
        );
        // The daemon is still serving: a healthy client works, and ends
        // the run with a properly terminated command.
        let (mut reader, mut stream) = connect(addr);
        send_line(&mut stream, "ping");
        assert_eq!(read_line(&mut reader), r#"{"ok":"pong"}"#);
        send_line(&mut stream, "shutdown");
        assert_eq!(read_line(&mut reader), r#"{"ok":"shutting-down"}"#);
    });

    let outcome = daemon
        .run(
            serve_session(protocol_instance()),
            ReplayExecutor::faultless(),
            clock,
            None,
        )
        .unwrap();
    client.join().unwrap();
    let sim = OnlineEngine::run(&protocol_instance(), &MEdf, EngineConfig::preemptive());
    assert_eq!(
        outcome.result.schedule, sim.schedule,
        "the torn session must not perturb the run"
    );
}

/// The shutdown/register race under a journal: a mutation acknowledged
/// before the shutdown reply is journaled *and* drained — never
/// half-applied — while one arriving after the shutdown reply is rejected
/// with a structured error (or a closed connection), never silently
/// applied.
#[test]
fn shutdown_racing_register_is_journaled_or_rejected() {
    let dir = temp_path("race-journal");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = temp_path("race-trace");
    let daemon = Daemon::bind("127.0.0.1:0").unwrap();
    let addr = daemon.local_addr().unwrap();
    let (clock, handle) = ManualClock::new();

    let client = thread::spawn(move || {
        let (mut events, mut attach) = connect(addr);
        send_line(&mut attach, "attach");
        assert_eq!(read_line(&mut events), r#"{"ok":"attached"}"#);
        thread::sleep(Duration::from_millis(100));
        let (mut a_reader, mut a) = connect(addr);
        let (mut b_reader, mut b) = connect(addr);
        handle.advance_to(1);
        loop {
            let line = read_line(&mut events);
            if line.starts_with(r#"{"ChrononEnd":{"t":1,"#) {
                break;
            }
        }
        // Acknowledged before the shutdown reply: must be journaled and
        // drained at chronon 2.
        send_line(&mut a, "register 1");
        assert_eq!(read_line(&mut a_reader), r#"{"ok":{"register":1}}"#);
        send_line(&mut a, "shutdown");
        assert_eq!(read_line(&mut a_reader), r#"{"ok":"shutting-down"}"#);
        // Arriving after the shutdown reply: structured rejection or a
        // closed socket — never a half-applied mutation.
        send_line(&mut b, "cancel 0");
        let mut resp = String::new();
        let n = b_reader.read_line(&mut resp).unwrap_or(0);
        assert!(
            n == 0 || resp.contains(r#""err""#),
            "post-shutdown mutation must be rejected, got {resp:?}"
        );
    });

    let opts = ServeOptions {
        trace_out: Some(trace_path.clone()),
        journal: Some(JournalConfig {
            dir: dir.clone(),
            fsync: FsyncPolicy::EveryChronon,
            snapshot_every: 8,
        }),
        recover: false,
        resync_executor: false,
    };
    let outcome = daemon
        .run_with(
            serve_session(protocol_instance()),
            ReplayExecutor::faultless(),
            |_| clock,
            opts,
        )
        .unwrap();
    client.join().unwrap();
    assert!(outcome.io_errors.is_empty(), "{:?}", outcome.io_errors);

    // Fully applied: the registered CEI drained at chronon 2 and captured.
    assert!(
        outcome.result.outcomes[1].is_captured(),
        "pre-shutdown registration must apply, got {:?}",
        outcome.result.outcomes[1]
    );
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    assert!(
        trace.contains(r#"{"CeiRegistered":{"cei":1,"at":2}}"#),
        "acknowledged registration must drain at chronon 2"
    );
    // And journaled before the ack: a crash after the reply would recover
    // it from the journal's live-mutation records.
    let scan = scan_journal(&dir.join(JOURNAL_FILE)).unwrap();
    assert!(
        scan.live
            .iter()
            .any(|(_, m)| *m == Mutation::Register { cei: CeiId(1) }),
        "acknowledged mutation must be in the journal, got {:?}",
        scan.live
    );
    // The rejected cancel never touched CEI 0.
    assert!(
        !matches!(outcome.result.outcomes[0], CeiOutcome::Cancelled { .. }),
        "rejected mutation must not apply, got {:?}",
        outcome.result.outcomes[0]
    );
    std::fs::remove_file(&trace_path).ok();
    std::fs::remove_dir_all(&dir).ok();
}

/// Sanity: `DaemonOutcome` carries the counts CI's smoke job asserts on.
#[test]
fn daemon_outcome_counts_match_trace_file() {
    let path = temp_path("counts");
    let daemon = Daemon::bind("127.0.0.1:0").unwrap();
    let outcome: DaemonOutcome = daemon
        .run(
            serve_session(protocol_instance()),
            ReplayExecutor::faultless(),
            FreeClock,
            Some(&path),
        )
        .unwrap();
    let lines = std::fs::read_to_string(&path).unwrap().lines().count() as u64;
    std::fs::remove_file(&path).ok();
    assert_eq!(outcome.events_written, lines);
    assert_eq!(outcome.write_errors, 0);
}
