//! Profile-churn conformance: the dynamic-registration path of the engine
//! checked from three directions —
//!
//! 1. **Zero-churn identity**: an empty (or quiescent) mutation queue is
//!    bit-identical to the mutation-free engine path, for every paper
//!    policy in both execution modes, and independent of the simulation
//!    worker count.
//! 2. **Churned corpus conformance**: every fixed-corpus instance rerun
//!    under a seeded churn overlay passes the churn-aware
//!    [`InvariantObserver`](webmon_core::check::InvariantObserver) with a
//!    clean report, and resolves every CEI.
//! 3. **Churned trace replay**: the persisted JSONL trace of a churned run
//!    is deterministic byte for byte and replays to the live metrics.

use webmon_core::engine::{EngineConfig, MutationQueue, OnlineEngine};
use webmon_core::fault::{FaultConfig, NoFaults};
use webmon_core::model::Budget;
use webmon_core::obs::{replay_metrics, JsonlTraceObserver, MetricsObserver, Tee};
use webmon_core::policy::{MEdf, Mrsf, Policy, SEdf, Wic};
use webmon_core::stats::CeiOutcome;
use webmon_sim::parallel::serial;
use webmon_sim::{ChurnSpec, Experiment, ExperimentConfig, PolicySpec, TraceSpec};
use webmon_streams::SimRng;
use webmon_testkit::checks::{conformant_churned_run, conformant_run};
use webmon_testkit::corpus::{conformance_cases, small_instance};
use webmon_workload::churn::overlay;
use webmon_workload::{ChurnConfig, EiLength, RankSpec, WorkloadConfig};

/// The seeded overlay used by the corpus sweep: high enough rates that the
/// fixed corpus exercises registration, cancellation, and reconfiguration.
fn corpus_overlay(seed: u64, instance: &webmon_core::model::Instance) -> MutationQueue {
    let config = ChurnConfig::new(0.5, 0.4)
        .with_alpha(0.8)
        .with_reconfigurations(1);
    overlay(instance, &config, &SimRng::new(seed))
}

/// An empty mutation queue must leave the engine on the exact static path:
/// schedule, stats, and outcomes bit-identical to `run_observed`, for every
/// paper policy in both modes across the fixed corpus.
#[test]
fn empty_queue_is_bit_identical_to_the_static_engine() {
    let empty = MutationQueue::new();
    for seed in 0..conformance_cases() {
        let instance = small_instance(seed, true);
        for policy in [&SEdf as &dyn Policy, &Mrsf, &MEdf, &Wic::paper()] {
            for config in [EngineConfig::preemptive(), EngineConfig::non_preemptive()] {
                let stat = conformant_run(&instance, policy, config);
                let churned = conformant_churned_run(&instance, policy, config, &empty);
                assert_eq!(stat.schedule, churned.schedule, "seed {seed}");
                assert_eq!(stat.stats, churned.stats, "seed {seed}");
                assert_eq!(stat.outcomes, churned.outcomes, "seed {seed}");
            }
        }
    }
}

fn experiment_config() -> ExperimentConfig {
    ExperimentConfig {
        n_resources: 40,
        horizon: 200,
        budget: 2,
        workload: WorkloadConfig {
            n_profiles: 20,
            rank: RankSpec::UpTo { k: 3, beta: 0.5 },
            resource_alpha: 0.3,
            length: EiLength::Window(4),
            distinct_resources: true,
            max_ceis: Some(400),
            no_intra_resource_overlap: false,
        },
        trace: TraceSpec::Poisson { lambda: 4.0 },
        noise: None,
        repetitions: 4,
        seed: 0xC4A2,
    }
}

/// A quiescent churn spec (both rates zero) run through the full simulation
/// driver reproduces the static experiment bit for bit — serially and on
/// the parallel worker pool, for every policy in both modes.
#[test]
fn quiescent_churn_matches_static_across_worker_counts() {
    let quiescent = ChurnSpec::new(0.0, 0.0, 7);
    let baseline = serial(|| {
        let exp = Experiment::materialize(experiment_config());
        let aggs: Vec<_> = PolicySpec::preemption_grid()
            .into_iter()
            .map(|s| exp.run_spec(s))
            .collect();
        (exp, aggs)
    });

    // Serial churned run, then the same on the default worker pool.
    let churned_serial = serial(|| {
        let exp = Experiment::materialize(experiment_config());
        PolicySpec::preemption_grid()
            .into_iter()
            .map(|s| exp.run_spec_churned(s, quiescent))
            .collect::<Vec<_>>()
    });
    let exp = Experiment::materialize(experiment_config());
    let churned_parallel: Vec<_> = PolicySpec::preemption_grid()
        .into_iter()
        .map(|s| exp.run_spec_churned(s, quiescent))
        .collect();

    for (base, churned) in baseline
        .1
        .iter()
        .zip(churned_serial.iter().zip(&churned_parallel))
    {
        for variant in [churned.0, churned.1] {
            assert_eq!(base.label, variant.label);
            assert_eq!(base.repetitions.len(), variant.repetitions.len());
            for (b, c) in base.repetitions.iter().zip(&variant.repetitions) {
                assert_eq!(b.stats, c.stats, "{}: stats diverged", base.label);
                assert_eq!(b.metrics, c.metrics, "{}: metrics diverged", base.label);
            }
        }
    }
}

/// Churned corpus conformance: every corpus instance under the seeded
/// overlay passes the churn-aware checker cleanly, and every CEI resolves
/// to captured, failed, or cancelled. The overlay coverage itself is
/// asserted in aggregate so the sweep cannot go quietly quiescent.
#[test]
fn churned_corpus_runs_are_clean_and_fully_resolved() {
    let mut registered = 0usize;
    let mut cancelled = 0u64;
    let mut reconfigured = 0usize;
    for seed in 0..conformance_cases() {
        let instance = small_instance(seed, true);
        let mutations = corpus_overlay(seed, &instance);
        for (t, m) in mutations.entries() {
            match m {
                webmon_core::engine::Mutation::Register { .. } => registered += 1,
                webmon_core::engine::Mutation::SetBudget { .. } => reconfigured += 1,
                webmon_core::engine::Mutation::Cancel { .. } => {
                    assert!(*t < instance.epoch.len(), "seed {seed}: out-of-epoch entry");
                }
            }
        }
        for policy in [&SEdf as &dyn Policy, &Mrsf, &MEdf, &Wic::paper()] {
            for config in [EngineConfig::preemptive(), EngineConfig::non_preemptive()] {
                let run = conformant_churned_run(&instance, policy, config, &mutations);
                assert_eq!(
                    run.stats.ceis_captured + run.stats.ceis_failed + run.stats.ceis_cancelled,
                    run.stats.n_ceis,
                    "seed {seed}: {} under {} left a CEI unresolved",
                    policy.name(),
                    config.label()
                );
                assert!(
                    run.outcomes.iter().all(|o| *o != CeiOutcome::Pending),
                    "seed {seed}: pending outcome after the epoch"
                );
                cancelled += run.stats.ceis_cancelled;
            }
        }
    }
    assert!(registered > 0, "corpus overlay never registered a CEI");
    assert!(cancelled > 0, "corpus sweep never cancelled a live CEI");
    assert!(reconfigured > 0, "corpus overlay never reconfigured budget");
}

/// Mid-run budget reconfiguration through the real drain path: the checker
/// accepts the announced trajectory and the schedule respects the mutated
/// budget from the chronon after the drain.
#[test]
fn reconfigured_budget_is_respected_from_the_next_chronon() {
    for seed in 0..conformance_cases() {
        let instance = small_instance(seed, true);
        let horizon = instance.epoch.len();
        if horizon < 3 {
            continue;
        }
        let at = horizon / 2;
        let mut mutations = MutationQueue::new();
        mutations.set_budget(at, 1);
        let run = conformant_churned_run(&instance, &Mrsf, EngineConfig::preemptive(), &mutations);
        // Effective from `at + 1`: no later chronon may exceed one probe.
        for t in (at + 1)..horizon {
            assert!(
                run.schedule.probes_at(t).len() <= 1,
                "seed {seed}: {} probes at chronon {t} after SetBudget(1)",
                run.schedule.probes_at(t).len()
            );
        }
        assert!(run.schedule.is_feasible(&Budget::PerChronon(
            (0..horizon)
                .map(|t| if t > at { 1 } else { instance.budget.at(t) })
                .collect()
        )));
    }
}

/// Mid-run Register and Cancel mutations landing on a **non-zero shard**:
/// with 8 resources and 4 shards the partition is `[0,2) [2,4) [4,6)
/// [6,8)`, so a CEI registered on resources 6–7 inserts into shard 3's
/// index and a cancellation on resources 4–5 routes its removals through
/// shard 2 — and the sharded churned run must match the serial churned run
/// bit for bit (schedule, stats, outcomes, metrics, trace bytes).
#[test]
fn midrun_mutations_on_a_nonzero_shard_match_serial() {
    let mut b = webmon_core::model::InstanceBuilder::new(8, 16, Budget::Uniform(2));
    let p = b.profile();
    b.cei(p, &[(0, 0, 6)]); // shard 0 background load
    b.cei(p, &[(3, 0, 14)]); // shard 1
                             // Shard 2, cancelled mid-run: the second EI only opens at chronon 8,
                             // so the CEI cannot resolve before the cancellation drains at 5.
    b.cei(p, &[(4, 2, 12), (5, 8, 12)]);
    b.cei_released(p, 5, &[(6, 5, 12), (7, 6, 13)]); // shard 3: registered mid-run
    let inst = b.build();

    let mut mutations = MutationQueue::new();
    mutations.register(5, inst.ceis[3].id);
    mutations.cancel(5, inst.ceis[2].id);
    mutations.set_budget(8, 1);

    for policy in [&SEdf as &dyn Policy, &Mrsf, &MEdf, &Wic::paper()] {
        for base in [EngineConfig::preemptive(), EngineConfig::non_preemptive()] {
            let mut runs = Vec::new();
            for shards in [1u32, 4] {
                let config = base.with_shards(shards);
                let run = conformant_churned_run(&inst, policy, config, &mutations);
                let mut tee = Tee(MetricsObserver::new(), JsonlTraceObserver::new(Vec::new()));
                OnlineEngine::run_mutated(
                    &inst,
                    policy,
                    config,
                    &mut NoFaults,
                    FaultConfig::default(),
                    &mutations,
                    &mut tee,
                );
                let Tee(metrics, trace) = tee;
                runs.push((
                    run,
                    metrics.finish(),
                    trace.finish().expect("Vec<u8> sink cannot fail"),
                ));
            }
            let label = format!("{} {}", policy.name(), base.label());
            assert_eq!(runs[0].0.schedule, runs[1].0.schedule, "{label}: schedule");
            assert_eq!(runs[0].0.stats, runs[1].0.stats, "{label}: stats");
            assert_eq!(runs[0].0.outcomes, runs[1].0.outcomes, "{label}: outcomes");
            assert_eq!(runs[0].1, runs[1].1, "{label}: RunMetrics");
            assert_eq!(runs[0].2, runs[1].2, "{label}: trace bytes");
            // The mutations actually landed: the shard-2 CEI is cancelled.
            assert_eq!(runs[1].0.stats.ceis_cancelled, 1, "{label}: cancel");
            assert_eq!(runs[1].0.outcomes[2], CeiOutcome::Cancelled { at: 5 });
        }
    }
}

/// Churned trace replay: the JSONL trace of a churned run is deterministic
/// byte for byte across reruns, and folding it through the pure
/// re-derivation reproduces the live `RunMetrics` exactly.
#[test]
fn churned_trace_replays_byte_for_byte() {
    for seed in 0..conformance_cases() {
        let instance = small_instance(seed, true);
        let mutations = corpus_overlay(seed, &instance);
        let mut traces = Vec::new();
        for _ in 0..2 {
            let mut tee = Tee(MetricsObserver::new(), JsonlTraceObserver::new(Vec::new()));
            OnlineEngine::run_mutated(
                &instance,
                &Mrsf,
                EngineConfig::preemptive(),
                &mut NoFaults,
                FaultConfig::default(),
                &mutations,
                &mut tee,
            );
            let Tee(metrics, trace) = tee;
            let live = metrics.finish();
            let bytes = trace.finish().expect("Vec<u8> sink cannot fail");
            let text = String::from_utf8(bytes).expect("trace is UTF-8");
            let replayed = replay_metrics(&text)
                .unwrap_or_else(|e| panic!("seed {seed}: churned trace failed to replay: {e}"));
            assert_eq!(live, replayed, "seed {seed}: replayed metrics diverged");
            traces.push(text);
        }
        assert_eq!(
            traces[0], traces[1],
            "seed {seed}: churned trace is not deterministic"
        );
    }
}
