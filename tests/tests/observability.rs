//! Golden cross-checks for the observability layer: the in-run
//! [`MetricsObserver`] totals must equal the post-hoc values computed from
//! [`RunStats`] and [`ScheduleDiagnostics`] — for preemptive and
//! non-preemptive configs, and identically under a 4-worker pool.
//!
//! The determinism contract of the parallel layer extends to `RunMetrics`:
//! the merged metrics of an experiment cell are bit-identical for every
//! worker count.

use webmon_core::diagnostics::ScheduleDiagnostics;
use webmon_core::engine::{EngineConfig, OnlineEngine};
use webmon_core::obs::{JsonlTraceObserver, MetricsObserver, RunMetrics};
use webmon_core::policy::{MEdf, Mrsf, Policy, SEdf};
use webmon_sim::parallel::{par_map_with, serial};
use webmon_sim::{Experiment, ExperimentConfig, PolicyKind, PolicySpec, TraceSpec};
use webmon_workload::{EiLength, RankSpec, WorkloadConfig};

/// The shared fixture: a contended mid-size workload (same shape as the
/// parallel-determinism golden tests).
fn config() -> ExperimentConfig {
    ExperimentConfig {
        n_resources: 60,
        horizon: 300,
        budget: 2,
        workload: WorkloadConfig {
            n_profiles: 25,
            rank: RankSpec::UpTo { k: 4, beta: 0.5 },
            resource_alpha: 0.3,
            length: EiLength::Window(4),
            distinct_resources: true,
            max_ceis: Some(800),
            no_intra_resource_overlap: false,
        },
        trace: TraceSpec::Poisson { lambda: 6.0 },
        noise: None,
        repetitions: 6,
        seed: 0xDE7E,
    }
}

/// Metrics totals equal the post-hoc `RunStats` and `ScheduleDiagnostics`
/// values on every fixture instance, both engine modes, driven through an
/// explicit 4-worker pool.
#[test]
fn metrics_totals_match_post_hoc_values_under_pool() {
    let exp = serial(|| Experiment::materialize(config()));
    for engine_cfg in [EngineConfig::preemptive(), EngineConfig::non_preemptive()] {
        for policy in [&SEdf as &dyn Policy, &Mrsf, &MEdf] {
            let runs = par_map_with(4, exp.workloads().iter().collect(), |_, w| {
                let mut observer = MetricsObserver::new();
                let run =
                    OnlineEngine::run_observed(&w.instance, policy, engine_cfg, &mut observer);
                (run, observer.finish(), w)
            });
            for (run, metrics, w) in runs {
                let label = format!("{}{}", policy.name(), engine_cfg.label());
                let errs = metrics.consistency_errors(&run.stats);
                assert!(errs.is_empty(), "{label}: {errs:?}");

                let diag = ScheduleDiagnostics::compute(&w.instance, &run.schedule);
                assert_eq!(
                    metrics.probes_issued,
                    diag.probes_per_resource
                        .iter()
                        .map(|&c| u64::from(c))
                        .sum::<u64>(),
                    "{label}: probe totals diverged from diagnostics"
                );
                // The engine only probes to serve live candidates, so the
                // post-hoc capture set is exactly the engine's: same mass
                // (capture-latency histogram), same missed EIs, no waste.
                assert_eq!(
                    metrics.capture_latency.count,
                    diag.capture_latencies.len() as u64,
                    "{label}: capture-latency mass diverged"
                );
                assert_eq!(
                    metrics.capture_latency.sum,
                    diag.capture_latencies.iter().map(|&l| u64::from(l)).sum(),
                    "{label}: capture-latency sum diverged"
                );
                assert_eq!(
                    diag.missed_eis as u64,
                    w.instance.total_eis() as u64 - metrics.eis_captured,
                    "{label}: missed EIs diverged"
                );
                assert_eq!(diag.wasted_probes, 0, "{label}: engine wasted probes");
                assert!(run.schedule.is_feasible(&w.instance.budget));
            }
        }
    }
}

/// An observed run is the same run: schedule, stats, and outcomes are
/// bit-identical to the unobserved engine.
#[test]
fn observation_does_not_perturb_the_run() {
    let exp = serial(|| Experiment::materialize(config()));
    let w = &exp.workloads()[0];
    for engine_cfg in [EngineConfig::preemptive(), EngineConfig::non_preemptive()] {
        let plain = OnlineEngine::run(&w.instance, &Mrsf, engine_cfg);
        let mut observer = MetricsObserver::new();
        let observed = OnlineEngine::run_observed(&w.instance, &Mrsf, engine_cfg, &mut observer);
        assert_eq!(plain.schedule, observed.schedule);
        assert_eq!(plain.stats, observed.stats);
        assert_eq!(plain.outcomes, observed.outcomes);
    }
}

/// Experiment-cell `RunMetrics` are covered by the PR-1 determinism
/// contract: the pooled aggregate equals the serial one bit for bit.
#[test]
fn aggregate_metrics_are_worker_count_invariant() {
    let baseline = serial(|| {
        let exp = Experiment::materialize(config());
        exp.run_spec(PolicySpec::p(PolicyKind::Mrsf))
    });
    let exp = Experiment::materialize(config());
    let pooled = exp.run_spec(PolicySpec::p(PolicyKind::Mrsf));
    assert_eq!(baseline.metrics, pooled.metrics);
    for (p, b) in pooled.repetitions.iter().zip(&baseline.repetitions) {
        assert_eq!(p.metrics, b.metrics, "per-repetition metrics diverged");
    }
    let manual = RunMetrics::merged(pooled.repetitions.iter().map(|o| &o.metrics));
    assert_eq!(pooled.metrics, manual, "merge order drifted");
}

/// The JSONL trace is a faithful, reproducible transcript: re-tracing the
/// same repetition yields byte-identical output, and the event count in the
/// stream matches what the observer reports.
#[test]
fn jsonl_trace_is_reproducible() {
    let exp = serial(|| Experiment::materialize(config()));
    let spec = PolicySpec::p(PolicyKind::MEdf);
    let (a, n_a) = exp.trace_spec(spec, 0, Vec::new()).unwrap();
    let (b, n_b) = exp.trace_spec(spec, 0, Vec::new()).unwrap();
    assert_eq!(a, b, "trace bytes diverged between identical runs");
    assert_eq!(n_a, n_b);
    assert_eq!(a.iter().filter(|&&c| c == b'\n').count() as u64, n_a);

    // The trace agrees with the metrics of the same run.
    let w = &exp.workloads()[0];
    let policy = spec.kind.build(exp.config().seed);
    let mut observer = MetricsObserver::new();
    OnlineEngine::run_observed(
        &w.instance,
        policy.as_ref(),
        spec.engine_config(),
        &mut observer,
    );
    let metrics = observer.finish();
    let text = String::from_utf8(a).unwrap();
    let probes = text
        .lines()
        .filter(|l| l.contains("\"ProbeIssued\""))
        .count();
    assert_eq!(probes as u64, metrics.probes_issued);
    let _ = JsonlTraceObserver::new(Vec::new()); // link-check the export
}
