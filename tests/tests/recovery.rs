//! Crash-injection and recovery tests for the durable run journal.
//!
//! The PR's keystone contract: a daemon SIGKILLed after **any** chronon
//! and restarted with `--recover` produces a final JSONL trace, schedule,
//! and `RunMetrics` byte-identical to an uninterrupted run. With
//! `every-chronon` fsync, the file a SIGKILL leaves behind is exactly the
//! full journal truncated at that chronon's frame boundary (or torn
//! mid-record if the kill lands inside an append), so crashes are
//! simulated here by truncating a completed journal at scanned offsets —
//! every kill point is reachable, not just the ones a racing signal
//! happens to hit. The wall-clock SIGKILL path is exercised by the
//! `recovery-smoke` CI job.
//!
//! On top of the kill-resume corpus this file pins the journal format's
//! edge cases: header-only journals, snapshot-only tails, a final record
//! torn at every byte offset, mid-file corruption (a hard error, never a
//! silent partial replay), and cross-version / cross-configuration
//! headers.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use webmon_cli::serve::{Daemon, ServeOptions, ServeSession};
use webmon_core::engine::{
    EngineConfig, MutationQueue, OnlineEngine, RunResult, ScriptedMutations,
};
use webmon_core::fault::{Backoff, FaultConfig, IidFaults, NoFaults};
use webmon_core::model::{Budget, Instance};
use webmon_core::obs::{JsonlTraceObserver, MetricsObserver, RunMetrics, Tee};
use webmon_core::policy::{MEdf, Mrsf, Policy, SEdf, Wic};
use webmon_core::serve::journal::{scan_journal, JOURNAL_FILE};
use webmon_core::serve::{
    CaptureAt, FreeClock, FsyncPolicy, JournalConfig, NoSnapshots, ProbeExecutor, ReplayExecutor,
};
use webmon_streams::{write_record, SimRng};
use webmon_testkit::corpus::{conformance_cases, small_instance};
use webmon_workload::churn::overlay;
use webmon_workload::ChurnConfig;

/// Small enough that every corpus instance (horizon 4–10) crosses at
/// least one snapshot boundary, so recovery actually exercises
/// restore-then-replay rather than replay-from-zero.
const SNAPSHOT_EVERY: u32 = 3;

/// A unique temp directory per call (tests run concurrently in one binary).
fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("webmon-recovery-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn journal_config(dir: &Path) -> JournalConfig {
    JournalConfig {
        dir: dir.to_path_buf(),
        fsync: FsyncPolicy::EveryChronon,
        snapshot_every: SNAPSHOT_EVERY,
    }
}

/// One crash-injection case: instance + policy + engine config, optionally
/// fault-injected or churned. The executor and session are rebuilt fresh
/// for every daemon lifetime, exactly as a real restart would.
struct Case {
    label: String,
    instance: Instance,
    make_policy: fn() -> Box<dyn Policy>,
    config: EngineConfig,
    fault_config: FaultConfig,
    fault: Option<(f64, u64)>,
    queue: MutationQueue,
}

impl Case {
    fn faultless(
        label: String,
        instance: Instance,
        make_policy: fn() -> Box<dyn Policy>,
        config: EngineConfig,
    ) -> Case {
        Case {
            label,
            instance,
            make_policy,
            config,
            fault_config: FaultConfig::default(),
            fault: None,
            queue: MutationQueue::new(),
        }
    }

    fn session(&self) -> ServeSession {
        ServeSession {
            instance: self.instance.clone(),
            policy: (self.make_policy)(),
            config: self.config,
            fault_config: self.fault_config,
            script: ScriptedMutations::compile(
                &self.queue,
                self.instance.epoch.len(),
                self.instance.ceis.len(),
            ),
        }
    }

    fn executor(&self) -> Box<dyn ProbeExecutor> {
        match self.fault {
            Some((rate, seed)) => Box::new(ReplayExecutor::scripted(IidFaults::new(rate, seed))),
            None => Box::new(ReplayExecutor::faultless()),
        }
    }

    /// The uninterrupted simulator reference this case must reproduce.
    fn sim(&self) -> (RunResult, RunMetrics, Vec<u8>) {
        let policy = (self.make_policy)();
        let mut metrics = MetricsObserver::new();
        let mut trace = JsonlTraceObserver::new(Vec::new());
        let result = {
            let mut tee = Tee(&mut metrics, &mut trace);
            match self.fault {
                Some((rate, seed)) => {
                    let mut model = IidFaults::new(rate, seed);
                    OnlineEngine::run_faulted(
                        &self.instance,
                        policy.as_ref(),
                        self.config,
                        &mut model,
                        self.fault_config,
                        &mut tee,
                    )
                }
                None => OnlineEngine::run_mutated(
                    &self.instance,
                    policy.as_ref(),
                    self.config,
                    &mut NoFaults,
                    self.fault_config,
                    &self.queue,
                    &mut tee,
                ),
            }
        };
        assert_eq!(trace.write_errors(), 0);
        (result, metrics.finish(), trace.finish().unwrap())
    }
}

fn assert_identical(
    label: &str,
    sim: &(RunResult, RunMetrics, Vec<u8>),
    daemon: &(RunResult, RunMetrics, Vec<u8>),
) {
    assert_eq!(sim.0.schedule, daemon.0.schedule, "{label}: schedule");
    assert_eq!(sim.0.stats, daemon.0.stats, "{label}: stats");
    assert_eq!(sim.0.outcomes, daemon.0.outcomes, "{label}: outcomes");
    assert_eq!(sim.1, daemon.1, "{label}: RunMetrics");
    assert_eq!(sim.2, daemon.2, "{label}: JSONL trace bytes");
}

/// Runs one journaled daemon lifetime to the horizon (no clients, free
/// clock) and returns (result, metrics, trace-file bytes).
fn daemon_journaled(case: &Case, dir: &Path, recover: bool) -> (RunResult, RunMetrics, Vec<u8>) {
    let trace = dir.join("trace.jsonl");
    let daemon = Daemon::bind("127.0.0.1:0").unwrap();
    let opts = ServeOptions {
        trace_out: Some(trace.clone()),
        journal: Some(journal_config(dir)),
        recover,
        resync_executor: true,
    };
    let outcome = daemon
        .run_with(case.session(), case.executor(), |_| FreeClock, opts)
        .unwrap();
    assert!(
        outcome.io_errors.is_empty(),
        "{}: io errors {:?}",
        case.label,
        outcome.io_errors
    );
    let bytes = std::fs::read(&trace).unwrap();
    std::fs::remove_file(&trace).ok();
    (outcome.result, outcome.metrics, bytes)
}

/// The keystone check for one case: run journaled to completion (itself an
/// identity check), then simulate a SIGKILL after each of `kills` distinct
/// randomized chronons by truncating the journal at the scanned frame
/// boundary, recover each, and demand byte-identity with the simulator.
fn check_kill_resume(case: &Case, kill_rng: &mut SimRng, kills: usize) {
    let sim = case.sim();
    let dir = temp_dir("full");
    let full = daemon_journaled(case, &dir, false);
    assert_identical(&format!("{}: journaled full run", case.label), &sim, &full);

    let journal = dir.join(JOURNAL_FILE);
    let scan = scan_journal(&journal).unwrap();
    let horizon = case.instance.epoch.len();
    assert_eq!(
        scan.frames.len(),
        horizon as usize,
        "{}: one frame per chronon",
        case.label
    );
    assert!(scan.torn_tail.is_none(), "{}: clean journal", case.label);
    let bytes = std::fs::read(&journal).unwrap();

    let mut cuts = BTreeSet::new();
    while cuts.len() < kills.min(horizon as usize) {
        cuts.insert(kill_rng.below(u64::from(horizon)) as usize);
    }
    for &k in &cuts {
        let rdir = temp_dir("kill");
        // With every-chronon fsync, SIGKILL after chronon `k` leaves
        // exactly the bytes up to frame k's end on disk.
        std::fs::write(rdir.join(JOURNAL_FILE), &bytes[..scan.frames[k].end]).unwrap();
        let recovered = daemon_journaled(case, &rdir, true);
        assert_identical(
            &format!("{}: killed after chronon {k}", case.label),
            &sim,
            &recovered,
        );
        // The continued journal is complete again: a *second* crash at any
        // later chronon would recover the same way.
        let rescan = scan_journal(&rdir.join(JOURNAL_FILE)).unwrap();
        assert_eq!(
            rescan.frames.len(),
            horizon as usize,
            "{}: continued journal has every frame",
            case.label
        );
        assert!(
            rescan.torn_tail.is_none(),
            "{}: continued journal must have no tear: {:?}",
            case.label,
            rescan.torn_tail
        );
        std::fs::remove_dir_all(&rdir).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Kill-resume identity over a conformance-corpus slice × 4 policies ×
/// preemptive/non-preemptive, ≥ 3 distinct randomized kill chronons each.
#[test]
fn kill_resume_is_bit_identical_on_corpus_slice() {
    type PolicyCtor = fn() -> Box<dyn Policy>;
    let policies: [(&str, PolicyCtor); 4] = [
        ("S-EDF", || Box::new(SEdf)),
        ("MRSF", || Box::new(Mrsf)),
        ("M-EDF", || Box::new(MEdf)),
        ("W-IC", || Box::new(Wic::paper())),
    ];
    let seeds: Vec<u64> = (0..conformance_cases()).step_by(4).take(3).collect();
    let mut kill_rng = SimRng::new(0x4B494C4C);
    for &seed in &seeds {
        let instance = small_instance(seed, false);
        for (name, make) in policies {
            for config in [EngineConfig::preemptive(), EngineConfig::non_preemptive()] {
                let case = Case::faultless(
                    format!("seed {seed}: {name} {}", config.label()),
                    instance.clone(),
                    make,
                    config,
                );
                check_kill_resume(&case, &mut kill_rng, 3);
            }
        }
    }
}

/// The identity survives a crash mid-outage: the journal's event frames
/// carry the fault outcomes, and `resync_executor` steps the scripted
/// i.i.d. model through the replayed probes so retry/backoff state is
/// exact at the handover.
#[test]
fn kill_resume_is_bit_identical_under_faults() {
    let mut kill_rng = SimRng::new(0xFA17);
    for config in [EngineConfig::preemptive(), EngineConfig::non_preemptive()] {
        let case = Case {
            label: format!("faulted {}", config.label()),
            instance: small_instance(3, false),
            make_policy: || Box::new(MEdf),
            config,
            fault_config: FaultConfig::charged().with_backoff(Backoff::new(1, 8)),
            fault: Some((0.4, 77)),
            queue: MutationQueue::new(),
        };
        assert!(case.sim().1.probes_failed > 0, "fault model must bite");
        check_kill_resume(&case, &mut kill_rng, 3);
    }
}

/// And a crash mid-churn: scripted registrations, cancellations, and
/// budget reconfigurations applied before the kill are replayed from the
/// journal, not re-drained from the script.
#[test]
fn kill_resume_is_bit_identical_under_churn() {
    let instance = small_instance(5, false);
    let churn = ChurnConfig::new(0.4, 0.3).with_reconfigurations(2);
    let queue = overlay(&instance, &churn, &SimRng::new(0xC0DE));
    assert!(!queue.is_empty(), "churn overlay must script something");
    let case = Case {
        label: "churned".into(),
        instance,
        make_policy: || Box::new(MEdf),
        config: EngineConfig::preemptive(),
        fault_config: FaultConfig::default(),
        fault: None,
        queue,
    };
    let mut kill_rng = SimRng::new(0xC408);
    check_kill_resume(&case, &mut kill_rng, 3);
}

fn simple_case(seed: u64) -> Case {
    Case::faultless(
        format!("seed {seed}: M-EDF P"),
        small_instance(seed, false),
        || Box::new(MEdf),
        EngineConfig::preemptive(),
    )
}

/// Writes a completed journal for `case` and returns its bytes and scan.
fn completed_journal(case: &Case) -> (Vec<u8>, webmon_core::serve::journal::JournalScan) {
    let dir = temp_dir("donor");
    let full = daemon_journaled(case, &dir, false);
    assert_identical(&format!("{}: donor run", case.label), &case.sim(), &full);
    let journal = dir.join(JOURNAL_FILE);
    let scan = scan_journal(&journal).unwrap();
    let bytes = std::fs::read(&journal).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    (bytes, scan)
}

/// A crash before the first chronon completed leaves a header-only
/// journal; recovery is simply a full fresh run — still byte-identical.
#[test]
fn header_only_journal_recovers_to_a_full_run() {
    let case = simple_case(1);
    let (bytes, scan) = completed_journal(&case);
    let rdir = temp_dir("header-only");
    std::fs::write(rdir.join(JOURNAL_FILE), &bytes[..scan.frames[0].offset]).unwrap();
    let recovered = daemon_journaled(&case, &rdir, true);
    assert_identical("header-only recovery", &case.sim(), &recovered);
    let rescan = scan_journal(&rdir.join(JOURNAL_FILE)).unwrap();
    assert_eq!(
        rescan.frames.len(),
        case.instance.epoch.len() as usize,
        "continued journal has every frame"
    );
    std::fs::remove_dir_all(&rdir).ok();
}

/// A crash landing right after a snapshot record — before the boundary's
/// frame was appended — recovers from the snapshot with an empty replay
/// range: restore, then run the rest live.
#[test]
fn snapshot_only_tail_recovers_without_replay() {
    let case = simple_case(2);
    let (bytes, scan) = completed_journal(&case);
    // The file order around boundary 3 is: frame 2, snapshot at 3,
    // frame 3 — truncating at frame 3's offset keeps the snapshot as the
    // final record.
    let snap = scan
        .snapshots
        .iter()
        .find(|s| s.at == SNAPSHOT_EVERY)
        .expect("horizon ≥ 4 crosses boundary 3");
    assert_eq!(snap.at, 3);
    let cut = scan.frames[SNAPSHOT_EVERY as usize].offset;
    let rdir = temp_dir("snapshot-only");
    std::fs::write(rdir.join(JOURNAL_FILE), &bytes[..cut]).unwrap();
    let tail = scan_journal(&rdir.join(JOURNAL_FILE)).unwrap();
    assert_eq!(tail.frames.last().unwrap().t, SNAPSHOT_EVERY - 1);
    assert_eq!(tail.snapshots.last().unwrap().at, SNAPSHOT_EVERY);
    let recovered = daemon_journaled(&case, &rdir, true);
    assert_identical("snapshot-only recovery", &case.sim(), &recovered);
    std::fs::remove_dir_all(&rdir).ok();
}

/// A record torn at **every** byte offset of the final frame is detected
/// by the length/checksum framing, discarded, and reported — the scan
/// still succeeds with every earlier frame intact. A cut exactly on the
/// record boundary is simply a clean, shorter journal.
#[test]
fn final_record_torn_at_every_byte_is_discarded_and_reported() {
    let case = simple_case(4);
    let (bytes, scan) = completed_journal(&case);
    let last = scan.frames.last().unwrap();
    assert_eq!(last.end, bytes.len(), "final record is the last frame");
    let torn = temp_dir("torn");
    let path = torn.join(JOURNAL_FILE);

    std::fs::write(&path, &bytes[..last.offset]).unwrap();
    let clean = scan_journal(&path).unwrap();
    assert_eq!(clean.frames.len(), scan.frames.len() - 1);
    assert!(clean.torn_tail.is_none(), "boundary cut is not a tear");

    for cut in last.offset + 1..bytes.len() {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let s = scan_journal(&path).unwrap();
        assert_eq!(s.frames.len(), scan.frames.len() - 1, "cut at byte {cut}");
        assert!(s.torn_tail.is_some(), "cut at byte {cut} must be reported");
    }
    std::fs::remove_dir_all(&torn).ok();
}

/// End-to-end: recovery from a journal whose final record was torn
/// mid-append (or corrupted in place at the tail) discards the tear and
/// still reproduces the uninterrupted run byte for byte.
#[test]
fn recovery_from_a_torn_tail_is_still_identical() {
    let case = simple_case(6);
    let sim = case.sim();
    let (bytes, scan) = completed_journal(&case);
    let last = scan.frames.last().unwrap();
    let mid = last.offset + (last.end - last.offset) / 2;
    let mut flipped = bytes.clone();
    flipped[last.offset + 6] ^= 0xFF; // inside the final payload: checksum fails at EOF
    for (tag, journal_bytes) in [
        ("torn early", &bytes[..last.offset + 1]),
        ("torn mid", &bytes[..mid]),
        ("torn late", &bytes[..bytes.len() - 1]),
        ("bit-flipped tail", &flipped[..]),
    ] {
        let rdir = temp_dir("torn-recover");
        std::fs::write(rdir.join(JOURNAL_FILE), journal_bytes).unwrap();
        let pre = scan_journal(&rdir.join(JOURNAL_FILE)).unwrap();
        assert!(pre.torn_tail.is_some(), "{tag}: tear must be reported");
        let recovered = daemon_journaled(&case, &rdir, true);
        assert_identical(&format!("torn-tail recovery ({tag})"), &sim, &recovered);
        // The torn bytes were truncated before the continuation appended:
        // the continued journal is complete and cleanly scannable, so a
        // *second* crash recovers too instead of hitting garbage between
        // the old prefix and the appended records.
        let rescan = scan_journal(&rdir.join(JOURNAL_FILE))
            .unwrap_or_else(|e| panic!("{tag}: continued journal must scan cleanly: {e}"));
        assert_eq!(
            rescan.frames.len(),
            case.instance.epoch.len() as usize,
            "{tag}: continued journal has every frame"
        );
        assert!(
            rescan.torn_tail.is_none(),
            "{tag}: no residual tear: {:?}",
            rescan.torn_tail
        );
        std::fs::remove_dir_all(&rdir).ok();
    }
}

/// Corruption with valid records *after* it is a hard structured error —
/// the journal is never silently replayed around damage — and the daemon
/// surfaces it as a failed recovery, not a panic.
#[test]
fn mid_file_corruption_is_a_structured_error_not_a_partial_replay() {
    let case = simple_case(8);
    let (bytes, scan) = completed_journal(&case);
    let mut corrupt = bytes.clone();
    corrupt[scan.frames[0].offset + 6] ^= 0xFF;
    let rdir = temp_dir("corrupt");
    std::fs::write(rdir.join(JOURNAL_FILE), &corrupt).unwrap();

    let err = scan_journal(&rdir.join(JOURNAL_FILE)).unwrap_err();
    assert!(
        err.to_string().contains("corrupt"),
        "scan error must name the corruption: {err}"
    );

    let daemon = Daemon::bind("127.0.0.1:0").unwrap();
    let opts = ServeOptions {
        trace_out: None,
        journal: Some(journal_config(&rdir)),
        recover: true,
        resync_executor: true,
    };
    let err = daemon
        .run_with(case.session(), case.executor(), |_| FreeClock, opts)
        .unwrap_err();
    assert!(
        err.to_string().contains("corrupt"),
        "daemon must surface the corruption: {err}"
    );
    std::fs::remove_dir_all(&rdir).ok();
}

/// A journal written by a different format version is refused with a
/// structured error naming both versions.
#[test]
fn cross_version_header_is_a_structured_error() {
    let rdir = temp_dir("version");
    let path = rdir.join(JOURNAL_FILE);
    let mut buf: Vec<u8> = Vec::new();
    write_record(&mut buf, 1, br#"{"version":99,"fingerprint":"fp"}"#, &path).unwrap();
    std::fs::write(&path, &buf).unwrap();

    let err = scan_journal(&path).unwrap_err();
    assert!(
        err.to_string().contains("version 99"),
        "scan error must name the found version: {err}"
    );

    let case = simple_case(10);
    let daemon = Daemon::bind("127.0.0.1:0").unwrap();
    let opts = ServeOptions {
        trace_out: None,
        journal: Some(journal_config(&rdir)),
        recover: true,
        resync_executor: true,
    };
    let err = daemon
        .run_with(case.session(), case.executor(), |_| FreeClock, opts)
        .unwrap_err();
    assert!(
        err.to_string().contains("version 99"),
        "daemon must refuse the foreign version: {err}"
    );
    std::fs::remove_dir_all(&rdir).ok();
}

/// Recovering under a different serve configuration than the journal was
/// written with is refused by the fingerprint check.
#[test]
fn cross_configuration_recovery_is_refused_by_fingerprint() {
    let case = simple_case(12);
    let (bytes, _) = completed_journal(&case);
    let rdir = temp_dir("fingerprint");
    std::fs::write(rdir.join(JOURNAL_FILE), &bytes).unwrap();

    // Same instance, different policy: the journaled decisions would not
    // be reproducible, so recovery must refuse up front.
    let other = Case::faultless(
        "S-EDF imposter".into(),
        case.instance.clone(),
        || Box::new(SEdf),
        EngineConfig::preemptive(),
    );
    let daemon = Daemon::bind("127.0.0.1:0").unwrap();
    let opts = ServeOptions {
        trace_out: None,
        journal: Some(journal_config(&rdir)),
        recover: true,
        resync_executor: true,
    };
    let err = daemon
        .run_with(other.session(), other.executor(), |_| FreeClock, opts)
        .unwrap_err();
    assert!(
        err.to_string().contains("fingerprint"),
        "policy mismatch must be refused: {err}"
    );
    std::fs::remove_dir_all(&rdir).ok();
}

/// The fingerprint covers run **content**, not just shape: recovery with a
/// same-shaped but different instance, fault script, or churn script is
/// refused up front by the header check — it would otherwise pass the
/// dimension comparison and then diverge mid-replay.
#[test]
fn same_shape_different_content_is_refused_by_fingerprint() {
    fn refuse(journal_bytes: &[u8], case: &Case, what: &str) {
        let rdir = temp_dir("content");
        std::fs::write(rdir.join(JOURNAL_FILE), journal_bytes).unwrap();
        let opts = ServeOptions {
            trace_out: None,
            journal: Some(journal_config(&rdir)),
            recover: true,
            resync_executor: true,
        };
        let err = Daemon::bind("127.0.0.1:0")
            .unwrap()
            .run_with(case.session(), case.executor(), |_| FreeClock, opts)
            .unwrap_err();
        assert!(
            err.to_string().contains("fingerprint"),
            "{what}: must be refused by fingerprint: {err}"
        );
        std::fs::remove_dir_all(&rdir).ok();
    }

    // Same dimensions, different instance content: only the budget differs.
    let case = simple_case(14);
    let (bytes, _) = completed_journal(&case);
    let mut imposter = simple_case(14);
    imposter.instance.budget = Budget::Uniform(imposter.instance.budget.at(0) + 1);
    refuse(&bytes, &imposter, "instance content");

    // Identical shape, different fault seed behind the executor.
    let faulted = |seed| Case {
        label: format!("faulted seed {seed}"),
        instance: small_instance(3, false),
        make_policy: || Box::new(MEdf),
        config: EngineConfig::preemptive(),
        fault_config: FaultConfig::charged().with_backoff(Backoff::new(1, 8)),
        fault: Some((0.4, seed)),
        queue: MutationQueue::new(),
    };
    let (bytes, _) = completed_journal(&faulted(77));
    refuse(&bytes, &faulted(78), "fault seed");

    // Same instance, different churn script.
    let instance = small_instance(5, false);
    let churn = ChurnConfig::new(0.4, 0.3).with_reconfigurations(2);
    let queue = overlay(&instance, &churn, &SimRng::new(0xC0DE));
    assert!(!queue.is_empty(), "churn overlay must script something");
    let churned = Case {
        label: "churned donor".into(),
        instance: instance.clone(),
        make_policy: || Box::new(MEdf),
        config: EngineConfig::preemptive(),
        fault_config: FaultConfig::default(),
        fault: None,
        queue,
    };
    let (bytes, _) = completed_journal(&churned);
    let unchurned = Case::faultless(
        "unchurned imposter".into(),
        instance,
        || Box::new(MEdf),
        EngineConfig::preemptive(),
    );
    refuse(&bytes, &unchurned, "churn script");
}

/// An empty journal file (zero bytes — creat() succeeded, nothing was
/// ever flushed) has no header and is a structured error, not a crash.
#[test]
fn empty_journal_file_is_a_structured_error() {
    let rdir = temp_dir("empty");
    let path = rdir.join(JOURNAL_FILE);
    std::fs::write(&path, b"").unwrap();
    let err = scan_journal(&path).unwrap_err();
    assert!(
        err.to_string().contains("header"),
        "empty journal must report the missing header: {err}"
    );
    std::fs::remove_dir_all(&rdir).ok();
}

/// The runner-level resume contract under the journal's snapshot sink:
/// capturing at a boundary and resuming from it reproduces the schedule,
/// outcomes, and the exact trace suffix from that boundary on.
#[test]
fn runner_snapshot_resume_reproduces_the_trace_tail() {
    let instance = small_instance(9, false);
    let config = EngineConfig::preemptive();
    let mut sink = CaptureAt::new(vec![2]);
    let mut full_trace = JsonlTraceObserver::new(Vec::new());
    let full = OnlineEngine::run_driven_resumable(
        &instance,
        &MEdf,
        config,
        &mut NoFaults,
        FaultConfig::default(),
        &mut ScriptedMutations::default(),
        &mut full_trace,
        None,
        &mut sink,
    );
    let full_bytes = String::from_utf8(full_trace.finish().unwrap()).unwrap();
    let snap = &sink.taken[0];
    assert_eq!(snap.at, 2);

    let mut tail_trace = JsonlTraceObserver::new(Vec::new());
    let resumed = OnlineEngine::run_driven_resumable(
        &instance,
        &MEdf,
        config,
        &mut NoFaults,
        FaultConfig::default(),
        &mut ScriptedMutations::default(),
        &mut tail_trace,
        Some(snap),
        &mut NoSnapshots,
    );
    assert_eq!(full.schedule, resumed.schedule, "resumed schedule");
    assert_eq!(full.stats, resumed.stats, "resumed stats");
    assert_eq!(full.outcomes, resumed.outcomes, "resumed outcomes");
    let tail = String::from_utf8(tail_trace.finish().unwrap()).unwrap();
    let split = full_bytes
        .find(r#"{"ChrononStart":{"t":2"#)
        .expect("boundary 2 starts a chronon frame");
    assert_eq!(&full_bytes[split..], tail, "trace tail from the boundary");
}
