//! End-to-end contracts of the declarative `WorkloadSpec` v2 path:
//!
//! * **Legacy bit-identity** — a spec lifted from a legacy
//!   `ExperimentConfig` (Poisson updates, Zipfian placement, no hot class,
//!   AND semantics) must reproduce the legacy generator byte-for-byte
//!   across a grid of Table-I-shaped configurations: same instances, same
//!   ground-truth traces, same schedules/stats/metrics, and the same JSONL
//!   engine trace bytes.
//! * **Jobs invariance** — materializing and running a skewed, bursty spec
//!   on the worker pool is bit-identical to running it inline
//!   (`webmon_sim::parallel::serial`), extending the PR-1 determinism
//!   contract to the v2 path.

use webmon_sim::parallel::serial;
use webmon_sim::{Experiment, ExperimentConfig, PolicyKind, PolicySpec, TraceSpec};
use webmon_streams::bursty::{DiurnalConfig, UpdateModel};
use webmon_workload::{DistributionSpec, EiLength, RankSpec, WorkloadConfig, WorkloadSpec};

/// A small grid of legacy configurations covering both rank specs, both EI
/// length semantics, uniform and skewed placement, and the overlap-free
/// premise.
fn legacy_grid() -> Vec<ExperimentConfig> {
    let mut grid = Vec::new();
    for (alpha, rank, length, overlap_free) in [
        (
            0.0,
            RankSpec::UpTo { k: 3, beta: 0.0 },
            EiLength::Window(3),
            false,
        ),
        (
            0.3,
            RankSpec::UpTo { k: 5, beta: 0.5 },
            EiLength::Overwrite { max_len: Some(10) },
            false,
        ),
        (1.37, RankSpec::Fixed(2), EiLength::Window(0), true),
    ] {
        grid.push(ExperimentConfig {
            n_resources: 40,
            horizon: 150,
            budget: 1,
            workload: WorkloadConfig {
                n_profiles: 12,
                rank,
                resource_alpha: alpha,
                length,
                distinct_resources: true,
                max_ceis: Some(600),
                no_intra_resource_overlap: overlap_free,
            },
            trace: TraceSpec::Poisson { lambda: 7.0 },
            noise: None,
            repetitions: 3,
            seed: 0xBEEF ^ (alpha.to_bits() >> 32),
        });
    }
    grid
}

fn lift(cfg: &ExperimentConfig) -> WorkloadSpec {
    let TraceSpec::Poisson { lambda } = cfg.trace else {
        panic!("grid uses Poisson traces only");
    };
    WorkloadSpec::from_legacy(
        &cfg.workload,
        cfg.n_resources,
        cfg.horizon,
        cfg.budget,
        lambda,
        cfg.repetitions,
        cfg.seed,
    )
}

#[test]
fn uniform_spec_reproduces_the_legacy_generator_bit_for_bit() {
    for cfg in legacy_grid() {
        let legacy = Experiment::materialize(cfg.clone());
        let spec = Experiment::materialize_spec(&lift(&cfg)).unwrap();

        // Instances and ground-truth traces are identical per repetition.
        assert_eq!(legacy.workloads().len(), spec.workloads().len());
        for (a, b) in legacy.workloads().iter().zip(spec.workloads()) {
            assert_eq!(a.instance, b.instance, "instance drifted: {cfg:?}");
            assert_eq!(a.truth, b.truth, "truth trace drifted: {cfg:?}");
        }

        // Scheduling runs agree: stats and engine metrics.
        for policy in [
            PolicySpec::p(PolicyKind::Mrsf),
            PolicySpec::np(PolicyKind::SEdf),
        ] {
            let pa = legacy.run_spec(policy);
            let pb = spec.run_spec(policy);
            for (a, b) in pa.repetitions.iter().zip(&pb.repetitions) {
                assert_eq!(a.stats, b.stats, "stats drifted: {cfg:?}");
                assert_eq!(a.metrics, b.metrics, "metrics drifted: {cfg:?}");
            }
        }

        // The JSONL engine event trace is byte-identical too.
        let policy = PolicySpec::p(PolicyKind::MEdf);
        let (ta, ea) = legacy.trace_spec(policy, 0, Vec::new()).unwrap();
        let (tb, eb) = spec.trace_spec(policy, 0, Vec::new()).unwrap();
        assert_eq!(ea, eb);
        assert_eq!(ta, tb, "trace bytes drifted: {cfg:?}");
    }
}

/// A spec exercising every v2 knob at once: diurnal updates, a skewed
/// base placement, a hot-key class, and threshold semantics.
fn skewed_spec() -> WorkloadSpec {
    let mut spec = WorkloadSpec::paper_baseline();
    spec.resources = 50;
    spec.horizon = 200;
    spec.profiles = 14;
    spec.repetitions = 4;
    spec.seed = 0xD1CE;
    spec.updates = UpdateModel::Diurnal(DiurnalConfig {
        rate_per_epoch: 12.0,
        period: 40,
        duty: 0.25,
        night_level: 0.1,
    });
    spec.with_placement(DistributionSpec::Latest { alpha: 1.0 })
        .with_hot(0.4, DistributionSpec::HotSet { n: 3, mass: 0.9 })
        .with_required_fraction(0.6)
}

#[test]
fn spec_path_is_bit_identical_across_worker_counts() {
    let spec = skewed_spec();
    let baseline = serial(|| {
        let exp = Experiment::materialize_spec(&spec).unwrap();
        let agg = exp.run_spec(PolicySpec::p(PolicyKind::Mrsf));
        let (trace, _) = exp
            .trace_spec(PolicySpec::p(PolicyKind::Mrsf), 1, Vec::new())
            .unwrap();
        (exp, agg, trace)
    });
    // The pooled run (whatever the ambient worker count is).
    let exp = Experiment::materialize_spec(&spec).unwrap();
    let agg = exp.run_spec(PolicySpec::p(PolicyKind::Mrsf));
    let (trace, _) = exp
        .trace_spec(PolicySpec::p(PolicyKind::Mrsf), 1, Vec::new())
        .unwrap();

    let (base_exp, base_agg, base_trace) = baseline;
    for (a, b) in base_exp.workloads().iter().zip(exp.workloads()) {
        assert_eq!(a.instance, b.instance);
        assert_eq!(a.truth, b.truth);
    }
    for (a, b) in base_agg.repetitions.iter().zip(&agg.repetitions) {
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.metrics, b.metrics);
    }
    assert_eq!(base_agg.metrics, agg.metrics);
    assert_eq!(base_trace, trace);
}

#[test]
fn skewed_spec_round_trips_through_json_and_reruns_identically() {
    let spec = skewed_spec();
    let reparsed = WorkloadSpec::from_json(&spec.to_json()).unwrap();
    assert_eq!(spec, reparsed);
    let a = Experiment::materialize_spec(&spec).unwrap();
    let b = Experiment::materialize_spec(&reparsed).unwrap();
    for (wa, wb) in a.workloads().iter().zip(b.workloads()) {
        assert_eq!(wa.instance, wb.instance);
    }
    // Threshold semantics actually landed: some CEI requires fewer EIs
    // than it holds.
    assert!(a
        .workloads()
        .iter()
        .flat_map(|w| &w.instance.ceis)
        .any(|c| usize::from(c.required) < c.size()));
}
