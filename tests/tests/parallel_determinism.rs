//! Golden determinism tests for the parallel execution layer: running an
//! experiment on a worker pool must be **bit-identical** to running it
//! inline on one thread — parallelism may only change wall-clock time, so
//! the timing fields (`runtime`, `micros_per_ei`) are the only ones
//! excluded from comparison.
//!
//! The serial baseline uses [`webmon_sim::parallel::serial`] (a thread-local
//! pin) rather than the global jobs setting, so these tests cannot race
//! with each other or with anything else in the process.

use webmon_core::engine::{EngineConfig, OnlineEngine};
use webmon_core::offline::LocalRatioConfig;
use webmon_core::policy::Mrsf;
use webmon_sim::parallel::{par_map_with, serial};
use webmon_sim::{Experiment, ExperimentConfig, PolicyKind, PolicySpec, TraceSpec};
use webmon_workload::{EiLength, RankSpec, WorkloadConfig};

/// A contended mid-size workload — large enough that repetitions genuinely
/// interleave on the pool, small enough for the test suite.
fn config() -> ExperimentConfig {
    ExperimentConfig {
        n_resources: 60,
        horizon: 300,
        budget: 2,
        workload: WorkloadConfig {
            n_profiles: 25,
            rank: RankSpec::UpTo { k: 4, beta: 0.5 },
            resource_alpha: 0.3,
            length: EiLength::Window(4),
            distinct_resources: true,
            max_ceis: Some(800),
            no_intra_resource_overlap: false,
        },
        trace: TraceSpec::Poisson { lambda: 6.0 },
        noise: None,
        repetitions: 6,
        seed: 0xDE7E,
    }
}

/// Every paper policy in both modes, plus the stateful `Random` policy —
/// the case that would expose order-dependent RNG draws under parallelism.
fn specs() -> Vec<PolicySpec> {
    let mut specs = PolicySpec::preemption_grid();
    specs.push(PolicySpec::p(PolicyKind::Wic));
    specs.push(PolicySpec::p(PolicyKind::Random));
    specs.push(PolicySpec::np(PolicyKind::Random));
    specs
}

#[test]
fn parallel_experiment_matches_serial_bit_for_bit() {
    // Serial baseline: everything inline on this thread (jobs = 1).
    let baseline = serial(|| {
        let exp = Experiment::materialize(config());
        let aggs: Vec<_> = specs().into_iter().map(|s| exp.run_spec(s)).collect();
        let bounds = exp.ei_upper_bounds();
        (exp, aggs, bounds)
    });

    // Parallel run on the default worker pool (the machine's cores).
    let exp = Experiment::materialize(config());
    assert_eq!(
        exp.workloads().len(),
        baseline.0.workloads().len(),
        "materialize must produce the same repetition count"
    );
    for (a, b) in exp.workloads().iter().zip(baseline.0.workloads()) {
        assert_eq!(a.instance, b.instance, "materialized instances diverged");
    }

    for (spec, base) in specs().into_iter().zip(&baseline.1) {
        let par = exp.run_spec(spec);
        assert_eq!(par.label, base.label);
        assert_eq!(
            par.repetitions.len(),
            base.repetitions.len(),
            "{}: repetition count diverged",
            par.label
        );
        for (p, b) in par.repetitions.iter().zip(&base.repetitions) {
            // Everything except wall-clock timing must match exactly.
            assert_eq!(
                p.stats, b.stats,
                "{}: per-repetition stats diverged",
                par.label
            );
            assert_eq!(
                p.metrics, b.metrics,
                "{}: per-repetition metrics diverged",
                par.label
            );
            assert_eq!(p.n_eis, b.n_eis);
        }
        assert_eq!(
            par.metrics, base.metrics,
            "{}: merged metrics diverged",
            par.label
        );
        // Aggregates derived from the stats must therefore match too.
        assert_eq!(par.completeness.mean, base.completeness.mean);
        assert_eq!(par.completeness.std, base.completeness.std);
        assert_eq!(par.ei_completeness.mean, base.ei_completeness.mean);
        assert_eq!(par.budget_utilization.mean, base.budget_utilization.mean);
        let par_sizes: Vec<_> = par.by_size.iter().map(|(&s, v)| (s, v.mean)).collect();
        let base_sizes: Vec<_> = base.by_size.iter().map(|(&s, v)| (s, v.mean)).collect();
        assert_eq!(
            par_sizes, base_sizes,
            "{}: by-size breakdown diverged",
            par.label
        );
    }

    assert_eq!(exp.ei_upper_bounds(), baseline.2, "upper bounds diverged");
}

#[test]
fn parallel_local_ratio_matches_serial() {
    // Unit-width EIs keep the Prop. 5 expansion trivial.
    let mut cfg = config();
    cfg.workload.length = EiLength::Window(0);
    cfg.budget = 1;

    let base = serial(|| {
        Experiment::materialize(cfg.clone()).run_local_ratio(LocalRatioConfig::default())
    });
    let par = Experiment::materialize(cfg).run_local_ratio(LocalRatioConfig::default());
    for (p, b) in par.repetitions.iter().zip(&base.repetitions) {
        assert_eq!(p.stats, b.stats, "Local-Ratio repetition stats diverged");
    }
    assert_eq!(par.completeness.mean, base.completeness.mean);
}

#[test]
fn lazy_heap_and_scan_runs_are_identical_under_the_pool() {
    // Drive raw engine runs (both selection strategies, both modes) through
    // an explicit 4-worker pool and compare against a sequential map.
    let exp = serial(|| Experiment::materialize(config()));
    for engine_cfg in [
        EngineConfig::preemptive(),
        EngineConfig::non_preemptive(),
        EngineConfig::preemptive().with_lazy_heap(),
        EngineConfig::non_preemptive().with_lazy_heap(),
    ] {
        let sequential: Vec<_> = exp
            .workloads()
            .iter()
            .map(|w| {
                let run = OnlineEngine::run(&w.instance, &Mrsf, engine_cfg);
                (run.schedule, run.stats, run.outcomes)
            })
            .collect();
        let pooled = par_map_with(4, exp.workloads().iter().collect(), |_, w| {
            let run = OnlineEngine::run(&w.instance, &Mrsf, engine_cfg);
            (run.schedule, run.stats, run.outcomes)
        });
        assert_eq!(sequential, pooled, "{}", engine_cfg.label());
    }
}
