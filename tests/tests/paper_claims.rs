//! Integration tests pinning the paper's qualitative claims — the shapes
//! the reproduction must preserve (DESIGN.md §2).

use webmon_core::offline::LocalRatioConfig;
use webmon_sim::{Experiment, ExperimentConfig, NoiseSpec, PolicyKind, PolicySpec, TraceSpec};
use webmon_streams::fpn::FpnModel;
use webmon_workload::{EiLength, RankSpec, WorkloadConfig};

/// A contended Table-I-style setting where policy quality matters.
fn contended(budget: u32, rank: RankSpec) -> ExperimentConfig {
    ExperimentConfig {
        n_resources: 300,
        horizon: 500,
        budget,
        workload: WorkloadConfig {
            n_profiles: 60,
            rank,
            resource_alpha: 0.3,
            length: EiLength::Overwrite { max_len: Some(10) },
            distinct_resources: true,
            max_ceis: None,
            no_intra_resource_overlap: false,
        },
        trace: TraceSpec::Poisson { lambda: 15.0 },
        noise: None,
        repetitions: 4,
        seed: 0xC1A1,
    }
}

const UPTO5: RankSpec = RankSpec::UpTo { k: 5, beta: 0.0 };

/// Section V-C/V-E: the rank-aware policies dominate the simple ones.
#[test]
fn mrsf_and_medf_dominate_sedf_and_wic() {
    let exp = Experiment::materialize(contended(1, UPTO5));
    let mrsf = exp
        .run_spec(PolicySpec::p(PolicyKind::Mrsf))
        .completeness
        .mean;
    let medf = exp
        .run_spec(PolicySpec::p(PolicyKind::MEdf))
        .completeness
        .mean;
    let sedf = exp
        .run_spec(PolicySpec::p(PolicyKind::SEdf))
        .completeness
        .mean;
    let wic = exp
        .run_spec(PolicySpec::p(PolicyKind::Wic))
        .completeness
        .mean;
    assert!(mrsf > sedf, "MRSF(P) {mrsf} vs S-EDF(P) {sedf}");
    assert!(medf > sedf, "M-EDF(P) {medf} vs S-EDF(P) {sedf}");
    assert!(mrsf > wic, "MRSF(P) {mrsf} vs WIC {wic}");
}

/// Section V-F: completeness rises sharply with budget, and the rank-aware
/// policies use extra budget better than S-EDF(P).
#[test]
fn budget_helps_and_rank_aware_policies_use_it_better() {
    let lo = Experiment::materialize(contended(1, UPTO5));
    let hi = Experiment::materialize(contended(3, UPTO5));
    let spec_m = PolicySpec::p(PolicyKind::Mrsf);
    let spec_s = PolicySpec::p(PolicyKind::SEdf);

    let m1 = lo.run_spec(spec_m).completeness.mean;
    let m3 = hi.run_spec(spec_m).completeness.mean;
    let s1 = lo.run_spec(spec_s).completeness.mean;
    let s3 = hi.run_spec(spec_s).completeness.mean;

    assert!(
        m3 > m1 && s3 > s1,
        "budget must help ({m1}→{m3}, {s1}→{s3})"
    );
    assert!(m1 > s1, "at C=1 MRSF {m1} should lead S-EDF {s1}");
    // Near saturation S-EDF can close the gap (the paper's own Figure 13
    // shows S-EDF catching up at C = 5); require MRSF to stay in the band.
    assert!(
        m3 > s3 * 0.85,
        "at C=3 MRSF ({m3}) should stay competitive with S-EDF ({s3})"
    );
}

/// Section V-E: completeness degrades gracefully as update intensity grows.
#[test]
fn completeness_decreases_with_update_intensity() {
    let mut quiet = contended(1, UPTO5);
    quiet.trace = TraceSpec::Poisson { lambda: 8.0 };
    let mut busy = contended(1, UPTO5);
    busy.trace = TraceSpec::Poisson { lambda: 30.0 };
    let spec = PolicySpec::p(PolicyKind::MEdf);
    let q = Experiment::materialize(quiet)
        .run_spec(spec)
        .completeness
        .mean;
    let b = Experiment::materialize(busy)
        .run_spec(spec)
        .completeness
        .mean;
    assert!(b < q, "λ=30 ({b}) must be below λ=8 ({q})");
}

/// Section V-C: completeness decreases as profile rank grows.
#[test]
fn completeness_decreases_with_rank() {
    let spec = PolicySpec::p(PolicyKind::Mrsf);
    let mut prev = f64::INFINITY;
    for k in [1u16, 3, 5] {
        let exp = Experiment::materialize(contended(1, RankSpec::Fixed(k)));
        let c = exp.run_spec(spec).completeness.mean;
        assert!(
            c < prev + 0.02,
            "rank {k}: completeness {c} should not exceed rank {} level {prev}",
            k.saturating_sub(2)
        );
        prev = c;
    }
}

/// Section V-H: completeness decreases with model noise, at every rank.
#[test]
fn completeness_decreases_with_noise() {
    let spec = PolicySpec::p(PolicyKind::MEdf);
    let mut prev = 0.0;
    for z in [0.0, 0.5, 1.0] {
        let mut cfg = contended(1, RankSpec::Fixed(2));
        cfg.workload.length = EiLength::Window(8);
        cfg.noise = Some(NoiseSpec::Fpn(FpnModel::new(z, 8)));
        let c = Experiment::materialize(cfg)
            .run_spec(spec)
            .completeness
            .mean;
        assert!(
            c >= prev - 0.02,
            "Z={z}: completeness {c} should not fall below the noisier level {prev}"
        );
        prev = c;
    }
}

/// Section V-G: resource-access skew (α) creates intra-resource overlap the
/// online policies exploit.
#[test]
fn resource_skew_increases_completeness() {
    let spec = PolicySpec::p(PolicyKind::Mrsf);
    let uniform = Experiment::materialize(contended(1, UPTO5))
        .run_spec(spec)
        .completeness
        .mean;
    let mut skewed_cfg = contended(1, UPTO5);
    skewed_cfg.workload.resource_alpha = 1.37;
    let skewed = Experiment::materialize(skewed_cfg)
        .run_spec(spec)
        .completeness
        .mean;
    assert!(
        skewed > uniform,
        "α=1.37 ({skewed}) should beat α=0.3 ({uniform})"
    );
}

/// Section V-D: the offline approximation costs far more per EI than the
/// online policies once the P^[1] expansion is involved.
#[test]
fn offline_pipeline_costs_more_per_ei() {
    let mut cfg = contended(1, RankSpec::Fixed(4));
    cfg.workload.length = EiLength::Window(1); // 2^4 expansion
    let exp = Experiment::materialize(cfg);
    let online = exp
        .run_spec(PolicySpec::p(PolicyKind::Mrsf))
        .micros_per_ei
        .mean;
    let offline = exp
        .run_local_ratio(LocalRatioConfig::default())
        .micros_per_ei
        .mean;
    assert!(
        offline > online * 2.0,
        "offline {offline} µs/EI should far exceed online {online} µs/EI"
    );
}
