//! Bit-identity of the incremental selection path.
//!
//! The PR-5 engine refactor replaced the per-phase `BinaryHeap` +
//! `HashMap<u32, Vec<PoolEntry>>` rebuilds of the `LazyHeap` selector with
//! the engine-owned incremental candidate index
//! ([`SelectionStrategy::Incremental`], the new default). The optimization
//! must be *observationally invisible*: over the whole conformance corpus,
//! in every policy × mode cell, `Incremental` must reproduce the
//! pre-refactor `LazyHeap` output **bit for bit** — the schedule, the
//! `RunStats`/outcomes, the merged `RunMetrics` (including `heap_pops`
//! inside `CandidateSet` events), and the raw JSONL trace bytes — and the
//! `Scan` reference must agree on everything except the selection-step
//! accounting that heap selectors add to the trace.
//!
//! The identity is also pinned under parallel execution (jobs 1 vs 4) and
//! under fault injection at a nonzero failure rate, so neither the worker
//! pool nor the fault paths can reorder the incremental bookkeeping.
//!
//! The PR-7 sharded engine extends the same contract to intra-cell
//! parallelism: `shards = N` must be bit-identical to `shards = 1` —
//! schedule, stats, outcomes, `RunMetrics`, and JSONL trace bytes — for
//! every shard count in the suite grid, across policies × P/NP × selection
//! strategies, with and without fault injection and profile churn, and on
//! an instance large enough to force the threaded shard dispatch path.

use webmon_core::engine::{EngineConfig, MutationQueue, OnlineEngine, SelectionStrategy};
use webmon_core::fault::{FaultConfig, IidFaults, NoFaults};
use webmon_core::model::{Budget, Chronon, Instance, InstanceBuilder};
use webmon_core::obs::{JsonlTraceObserver, MetricsObserver, RunMetrics, Tee};
use webmon_core::policy::{MEdf, Mrsf, Policy, SEdf, Wic};
use webmon_core::RunResult;
use webmon_sim::parallel::par_map_with;
use webmon_streams::SimRng;
use webmon_testkit::corpus::{conformance_cases, small_instance, CorpusRng};
use webmon_workload::churn::overlay;
use webmon_workload::ChurnConfig;

/// The four paper policies of the identity grid.
fn policies() -> [(&'static str, Box<dyn Policy>); 4] {
    [
        ("S-EDF", Box::new(SEdf)),
        ("MRSF", Box::new(Mrsf)),
        ("M-EDF", Box::new(MEdf)),
        ("W-IC", Box::new(Wic::paper())),
    ]
}

/// Both execution modes with the given selection strategy.
fn configs(strategy: SelectionStrategy) -> [EngineConfig; 2] {
    [
        EngineConfig::preemptive().with_selection(strategy),
        EngineConfig::non_preemptive().with_selection(strategy),
    ]
}

/// One fully observed run: result + merged metrics + raw JSONL trace bytes.
fn observed(
    instance: &Instance,
    policy: &dyn Policy,
    config: EngineConfig,
) -> (RunResult, RunMetrics, Vec<u8>) {
    let mut metrics = MetricsObserver::new();
    let mut trace = JsonlTraceObserver::new(Vec::new());
    let result = {
        let mut tee = Tee(&mut metrics, &mut trace);
        OnlineEngine::run_observed(instance, policy, config, &mut tee)
    };
    assert_eq!(trace.write_errors(), 0);
    let bytes = trace.finish().expect("Vec<u8> sink cannot fail");
    (result, metrics.finish(), bytes)
}

/// Same, through the fault-injected entry point.
fn observed_faulted(
    instance: &Instance,
    policy: &dyn Policy,
    config: EngineConfig,
    rate: f64,
    seed: u64,
) -> (RunResult, RunMetrics, Vec<u8>) {
    let mut metrics = MetricsObserver::new();
    let mut trace = JsonlTraceObserver::new(Vec::new());
    let mut model = IidFaults::new(rate, seed);
    let result = {
        let mut tee = Tee(&mut metrics, &mut trace);
        OnlineEngine::run_faulted(
            instance,
            policy,
            config,
            &mut model,
            FaultConfig::charged(),
            &mut tee,
        )
    };
    assert_eq!(trace.write_errors(), 0);
    let bytes = trace.finish().expect("Vec<u8> sink cannot fail");
    (result, metrics.finish(), bytes)
}

fn assert_identical(
    label: &str,
    a: &(RunResult, RunMetrics, Vec<u8>),
    b: &(RunResult, RunMetrics, Vec<u8>),
) {
    assert_eq!(a.0.schedule, b.0.schedule, "{label}: schedule");
    assert_eq!(a.0.stats, b.0.stats, "{label}: stats");
    assert_eq!(a.0.outcomes, b.0.outcomes, "{label}: outcomes");
    assert_eq!(a.1, b.1, "{label}: RunMetrics");
    assert_eq!(a.2, b.2, "{label}: JSONL trace bytes");
}

/// Tentpole identity: `Incremental` vs the pre-refactor `LazyHeap` over the
/// full corpus, 4 policies × P/NP — schedule, stats, outcomes, metrics, and
/// trace bytes all byte-identical.
#[test]
fn incremental_is_bit_identical_to_lazy_heap_on_the_corpus() {
    for seed in 0..conformance_cases() {
        let instance = small_instance(seed, false);
        for (name, policy) in &policies() {
            for (lazy, incr) in configs(SelectionStrategy::LazyHeap)
                .into_iter()
                .zip(configs(SelectionStrategy::Incremental))
            {
                let a = observed(&instance, policy.as_ref(), lazy);
                let b = observed(&instance, policy.as_ref(), incr);
                assert_identical(&format!("seed {seed}: {name} {}", lazy.label()), &a, &b);
            }
        }
    }
}

/// The `Scan` reference agrees with `Incremental` on every semantic output
/// (schedule, stats, outcomes). Trace bytes differ only in the selection
/// accounting (`heap_pops`), so they are not compared here — the
/// heap-selector trace identity is pinned against `LazyHeap` above.
#[test]
fn incremental_matches_scan_semantics_on_the_corpus() {
    for seed in 0..conformance_cases() {
        let instance = small_instance(seed, false);
        for (name, policy) in &policies() {
            for (scan, incr) in configs(SelectionStrategy::Scan)
                .into_iter()
                .zip(configs(SelectionStrategy::Incremental))
            {
                let a = OnlineEngine::run(&instance, policy.as_ref(), scan);
                let b = OnlineEngine::run(&instance, policy.as_ref(), incr);
                let label = format!("seed {seed}: {name} {}", scan.label());
                assert_eq!(a.schedule, b.schedule, "{label}: schedule");
                assert_eq!(a.stats, b.stats, "{label}: stats");
                assert_eq!(a.outcomes, b.outcomes, "{label}: outcomes");
            }
        }
    }
}

/// The identity survives fault injection at a nonzero rate: failed probes,
/// retries, outages, and shedding all drive the incremental index through
/// its removal paths, and the output must still match `LazyHeap` bit for
/// bit.
#[test]
fn incremental_matches_lazy_heap_under_faults() {
    let cases = conformance_cases().min(120);
    for seed in 0..cases {
        let instance = small_instance(seed, false);
        for (name, policy) in &policies() {
            for (lazy, incr) in configs(SelectionStrategy::LazyHeap)
                .into_iter()
                .zip(configs(SelectionStrategy::Incremental))
            {
                let a = observed_faulted(&instance, policy.as_ref(), lazy, 0.3, seed);
                let b = observed_faulted(&instance, policy.as_ref(), incr, 0.3, seed);
                assert_identical(
                    &format!("seed {seed}: {name} {} rate 0.3", lazy.label()),
                    &a,
                    &b,
                );
            }
        }
    }
}

/// Digest of one strategy's output over a slice of the corpus, computed on
/// a worker pool: per-case trace bytes and metrics, in case order.
fn corpus_digest(strategy: SelectionStrategy, jobs: usize, cases: u64) -> Vec<(Vec<u8>, String)> {
    par_map_with(jobs, (0..cases).collect(), |_, seed| {
        let instance = small_instance(seed, false);
        let mut bytes = Vec::new();
        let mut summary = String::new();
        for (name, policy) in &policies() {
            for config in configs(strategy) {
                let (result, metrics, trace) = observed(&instance, policy.as_ref(), config);
                bytes.extend_from_slice(&trace);
                summary.push_str(&format!(
                    "{name}/{}: probes {} steps {} captured {} pool-max {}\n",
                    config.label(),
                    metrics.probes_issued,
                    metrics.selection_steps,
                    result.stats.ceis_captured,
                    metrics.candidate_set.max,
                ));
            }
        }
        (bytes, summary)
    })
}

/// The PR-1 determinism contract extends to the incremental path: the whole
/// corpus digest (trace bytes + metric counters) is identical on 1 worker
/// and on 4, and identical between `LazyHeap` and `Incremental`.
#[test]
fn corpus_digest_is_jobs_invariant_and_strategy_invariant() {
    let cases = conformance_cases().min(60);
    let incr_1 = corpus_digest(SelectionStrategy::Incremental, 1, cases);
    let incr_4 = corpus_digest(SelectionStrategy::Incremental, 4, cases);
    assert_eq!(incr_1, incr_4, "jobs 1 vs jobs 4 digests differ");
    let lazy_1 = corpus_digest(SelectionStrategy::LazyHeap, 1, cases);
    assert_eq!(incr_1, lazy_1, "Incremental vs LazyHeap digests differ");
}

// ---------------------------------------------------------------------------
// Sharded vs serial identity (PR-7).
// ---------------------------------------------------------------------------

/// Shard counts exercised against the `shards = 1` baseline. The corpus
/// instances have 1–3 resources, so 2 lands on a real partition, while 4
/// and 7 also pin the `shards > |R|` clamp (a requested count above the
/// resource count resolves to one shard per resource).
const SHARD_COUNTS: [u32; 3] = [2, 4, 7];

/// Same, through the mutation-drain entry point with a churn overlay.
fn observed_churned(
    instance: &Instance,
    policy: &dyn Policy,
    config: EngineConfig,
    mutations: &MutationQueue,
) -> (RunResult, RunMetrics, Vec<u8>) {
    let mut metrics = MetricsObserver::new();
    let mut trace = JsonlTraceObserver::new(Vec::new());
    let result = {
        let mut tee = Tee(&mut metrics, &mut trace);
        OnlineEngine::run_mutated(
            instance,
            policy,
            config,
            &mut NoFaults,
            FaultConfig::default(),
            mutations,
            &mut tee,
        )
    };
    assert_eq!(trace.write_errors(), 0);
    let bytes = trace.finish().expect("Vec<u8> sink cannot fail");
    (result, metrics.finish(), bytes)
}

/// Tentpole identity: every sharded run reproduces the serial run bit for
/// bit over the full corpus — 4 policies × P/NP × shards {2, 4, 7}, on the
/// default `Incremental` strategy. Schedule, stats, outcomes, `RunMetrics`
/// (including `heap_pops` inside `CandidateSet` events), and raw JSONL
/// trace bytes must all match.
#[test]
fn sharded_is_bit_identical_to_serial_on_the_corpus() {
    for seed in 0..conformance_cases() {
        let instance = small_instance(seed, false);
        for (name, policy) in &policies() {
            for config in configs(SelectionStrategy::Incremental) {
                let serial = observed(&instance, policy.as_ref(), config.with_shards(1));
                for shards in SHARD_COUNTS {
                    let sharded = observed(&instance, policy.as_ref(), config.with_shards(shards));
                    assert_identical(
                        &format!("seed {seed}: {name} {} shards {shards}", config.label()),
                        &serial,
                        &sharded,
                    );
                }
            }
        }
    }
}

/// The shard identity is strategy-independent: `Scan`, `LazyHeap`, and
/// `Incremental` each reproduce their own serial output bit for bit under
/// sharding (each strategy is compared against itself, so the selection-step
/// accounting differences between strategies never enter the comparison).
#[test]
fn sharded_identity_holds_for_every_selection_strategy() {
    let cases = conformance_cases().min(120);
    for seed in 0..cases {
        let instance = small_instance(seed, false);
        for strategy in [
            SelectionStrategy::Scan,
            SelectionStrategy::LazyHeap,
            SelectionStrategy::Incremental,
        ] {
            for config in configs(strategy) {
                let serial = observed(&instance, &Mrsf, config.with_shards(1));
                for shards in SHARD_COUNTS {
                    let sharded = observed(&instance, &Mrsf, config.with_shards(shards));
                    assert_identical(
                        &format!(
                            "seed {seed}: {strategy:?} {} shards {shards}",
                            config.label()
                        ),
                        &serial,
                        &sharded,
                    );
                }
            }
        }
    }
}

/// Sharding composes with fault injection: failed probes, retries, and
/// shedding drive the per-shard indices through their removal paths, and
/// the faulted sharded run still matches the faulted serial run bit for
/// bit.
#[test]
fn sharded_identity_survives_fault_injection() {
    let cases = conformance_cases().min(120);
    for seed in 0..cases {
        let instance = small_instance(seed, false);
        for (name, policy) in &policies() {
            for config in configs(SelectionStrategy::Incremental) {
                let serial =
                    observed_faulted(&instance, policy.as_ref(), config.with_shards(1), 0.3, seed);
                for shards in [2, 7] {
                    let sharded = observed_faulted(
                        &instance,
                        policy.as_ref(),
                        config.with_shards(shards),
                        0.3,
                        seed,
                    );
                    assert_identical(
                        &format!(
                            "seed {seed}: {name} {} shards {shards} rate 0.3",
                            config.label()
                        ),
                        &serial,
                        &sharded,
                    );
                }
            }
        }
    }
}

/// Sharding composes with profile churn: mid-run registrations insert into
/// the owning shard's index, cancellations route per-EI, and the churned
/// sharded run matches the churned serial run bit for bit.
#[test]
fn sharded_identity_survives_profile_churn() {
    let cases = conformance_cases().min(120);
    let churn = ChurnConfig::new(0.5, 0.4)
        .with_alpha(0.8)
        .with_reconfigurations(1);
    for seed in 0..cases {
        let instance = small_instance(seed, true);
        let mutations = overlay(&instance, &churn, &SimRng::new(seed));
        for (name, policy) in &policies() {
            for config in configs(SelectionStrategy::Incremental) {
                let serial = observed_churned(
                    &instance,
                    policy.as_ref(),
                    config.with_shards(1),
                    &mutations,
                );
                for shards in [2, 7] {
                    let sharded = observed_churned(
                        &instance,
                        policy.as_ref(),
                        config.with_shards(shards),
                        &mutations,
                    );
                    assert_identical(
                        &format!(
                            "seed {seed}: {name} {} shards {shards} churned",
                            config.label()
                        ),
                        &serial,
                        &sharded,
                    );
                }
            }
        }
    }
}

/// A deterministic instance big enough (> 4096 EIs) that multi-shard runs
/// take the *threaded* shard dispatch path rather than the inline loop.
fn large_instance(seed: u64) -> Instance {
    let n_resources = 48u32;
    let horizon: Chronon = 80;
    let mut rng = CorpusRng::new(seed);
    let mut b = InstanceBuilder::new(n_resources, horizon, Budget::Uniform(3));
    let p = b.profile();
    for _ in 0..2600 {
        let n_eis = rng.range(1, 3);
        let eis: Vec<(u32, Chronon, Chronon)> = (0..n_eis)
            .map(|_| {
                let r = rng.below(u64::from(n_resources)) as u32;
                let start = rng.below(u64::from(horizon)) as Chronon;
                let end = (start + rng.below(6) as Chronon).min(horizon - 1);
                (r, start, end)
            })
            .collect();
        b.cei(p, &eis);
    }
    b.build()
}

/// The identity holds on the threaded dispatch path: an instance with
/// thousands of EIs spread over 48 resources, where `shards > 1` actually
/// fans the per-chronon maintenance and scoring out on the scoped-thread
/// pool, still reproduces the serial trace byte for byte.
#[test]
fn sharded_identity_holds_on_the_threaded_dispatch_path() {
    let instance = large_instance(0x5AAD);
    assert!(
        instance.total_eis() > 4096,
        "fixture too small to force threaded dispatch: {} EIs",
        instance.total_eis()
    );
    for policy in [&Mrsf as &dyn Policy, &Wic::paper()] {
        for config in configs(SelectionStrategy::Incremental) {
            let serial = observed(&instance, policy, config.with_shards(1));
            for shards in SHARD_COUNTS {
                let sharded = observed(&instance, policy, config.with_shards(shards));
                assert_identical(
                    &format!("{} {} shards {shards}", policy.name(), config.label()),
                    &serial,
                    &sharded,
                );
            }
        }
    }
}
