//! Property-based tests over randomly generated problem instances: the
//! engine and the offline baselines must uphold their invariants on *any*
//! well-formed input, not just the workloads the generators produce.
//!
//! Generators live in `webmon_testkit::strategies`; the invariant bundles
//! (which also drive every run through the conformance checker) live in
//! `webmon_testkit::checks`.

use proptest::prelude::*;
use webmon_core::engine::{EngineConfig, OnlineEngine};
use webmon_core::offline::{local_ratio_schedule, LocalRatioConfig};
use webmon_core::policy::{MEdf, Mrsf, Policy, SEdf, Wic};
use webmon_testkit::checks::assert_engine_invariants;
use webmon_testkit::strategies::{core_instance_strategy, rebuild_with_budget};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The engine's schedule is always budget-feasible, its bookkeeping
    /// matches a from-scratch re-evaluation, every CEI resolves, and the
    /// live invariant checker stays clean.
    #[test]
    fn engine_invariants(instance in core_instance_strategy()) {
        assert_engine_invariants(&instance);
        for policy in [&SEdf as &dyn Policy, &Mrsf, &MEdf, &Wic::paper()] {
            for config in [EngineConfig::preemptive(), EngineConfig::non_preemptive()] {
                let run = OnlineEngine::run(&instance, policy, config);
                prop_assert!(run.stats.eis_captured >= run.stats.probes_used
                    || instance.budget.at(0) == 0);
            }
        }
    }

    /// More budget cannot *collapse* a deterministic policy's completeness
    /// (same instance, budgets 1 vs 2).
    ///
    /// Strict monotonicity (`two >= one`) is NOT an engine invariant:
    /// a larger budget changes which CEIs the greedy policy commits probes
    /// to, and the reshuffled commitments can finish one CEI worse. A
    /// 50k-instance stress of this generator found strict violations at a
    /// rate of ~1/10k cases, every one of them off by exactly one CEI.
    /// A *collapse* (losing more than a third) was never observed and
    /// would indicate an engine bug rather than greedy pathology, so that
    /// is the bound this property pins.
    #[test]
    fn budget_monotonicity(instance in core_instance_strategy()) {
        let one = OnlineEngine::run(
            &rebuild_with_budget(&instance, 1),
            &Mrsf,
            EngineConfig::preemptive(),
        );
        let two = OnlineEngine::run(
            &rebuild_with_budget(&instance, 2),
            &Mrsf,
            EngineConfig::preemptive(),
        );
        prop_assert!(
            3 * two.stats.ceis_captured + 1 >= 2 * one.stats.ceis_captured,
            "budget 2 captured {} vs budget 1 {}",
            two.stats.ceis_captured,
            one.stats.ceis_captured
        );
    }

    /// The Local-Ratio baseline always emits feasible schedules and never
    /// reports captures the schedule cannot justify.
    #[test]
    fn local_ratio_invariants(instance in core_instance_strategy()) {
        use webmon_core::model::evaluate_schedule;
        for cfg in [LocalRatioConfig::default(), LocalRatioConfig::paper()] {
            if let Ok(out) = local_ratio_schedule(&instance, cfg) {
                prop_assert!(out.schedule.is_feasible(&instance.budget));
                let reeval = evaluate_schedule(&instance, &out.schedule);
                prop_assert_eq!(out.stats.ceis_captured, reeval.ceis_captured);
                // Every selected original CEI is genuinely captured.
                prop_assert!(out.selected.len() as u64 <= out.stats.ceis_captured);
            }
        }
    }

    /// The lazy-heap selection strategy (Appendix B) is decision-for-
    /// decision equivalent to the reference scan on arbitrary instances.
    #[test]
    fn lazy_heap_equals_scan(instance in core_instance_strategy()) {
        for policy in [&SEdf as &dyn Policy, &Mrsf, &MEdf, &Wic::paper()] {
            for base in [EngineConfig::preemptive(), EngineConfig::non_preemptive()] {
                let scan = OnlineEngine::run(&instance, policy, base);
                let heap = OnlineEngine::run(&instance, policy, base.with_lazy_heap());
                prop_assert_eq!(&scan.schedule, &heap.schedule);
                prop_assert_eq!(scan.stats, heap.stats);
            }
        }
    }

    /// Probe sharing can only help: the ablated engine never beats the
    /// paper's R_ids engine on the same instance and policy.
    #[test]
    fn probe_sharing_dominates_ablation(instance in core_instance_strategy()) {
        let on = OnlineEngine::run(&instance, &Mrsf, EngineConfig::preemptive());
        let off = OnlineEngine::run(
            &instance,
            &Mrsf,
            EngineConfig::preemptive().without_probe_sharing(),
        );
        // Sharing captures a superset of EIs per probe; tie-breaking can
        // still shuffle which CEIs complete, so allow a one-CEI slack.
        prop_assert!(
            on.stats.eis_captured + 1 >= off.stats.eis_captured,
            "sharing on captured {} EIs vs off {}",
            on.stats.eis_captured,
            off.stats.eis_captured
        );
    }
}
