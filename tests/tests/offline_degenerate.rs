//! Degenerate-instance audit of the three offline baselines.
//!
//! `local_ratio.rs` indexes `demands[0]` and `by_origin[&origin]` without
//! guards; the invariants that make those safe (every expanded job inherits
//! at least one demand because `Cei::new` forbids empty CEIs, and the origin
//! map is built from the same job list it is queried with) are documented at
//! the call sites. This suite pins the boundary cases those arguments lean
//! on: empty profiles, zero-budget chronons, a single-chronon epoch, and
//! `release == deadline` CEIs — through **all three** baselines
//! (branch-and-bound enumeration, the Prop. 5 unit transform, and the
//! Local-Ratio scheme) so a future refactor that weakens an invariant fails
//! here instead of panicking in an experiment sweep.

use webmon_core::model::{Budget, Instance, InstanceBuilder};
use webmon_core::offline::{
    expand_to_unit, local_ratio_schedule, optimal_schedule, LocalRatioConfig, SearchLimits,
};

/// Runs one instance through all three baselines and returns the CEIs each
/// captured, asserting the shared sanity conditions on the way.
fn all_baselines(instance: &Instance) -> (u64, u64) {
    let (schedule, enum_stats) =
        optimal_schedule(instance, SearchLimits::default()).expect("degenerate instances are tiny");
    assert_eq!(enum_stats.n_ceis, instance.ceis.len() as u64);
    assert!(enum_stats.budget_spent <= enum_stats.probes_available);
    assert_eq!(schedule.horizon(), instance.epoch.len());
    assert_eq!(schedule.n_resources(), instance.n_resources);

    let expansion =
        expand_to_unit(instance, 100_000).expect("degenerate instances expand within cap");
    assert_eq!(expansion.origin.len(), expansion.instance.ceis.len());
    for cei in &expansion.instance.ceis {
        assert!(!cei.eis.is_empty(), "expansion may not emit an empty CEI");
        for ei in &cei.eis {
            assert_eq!(ei.start, ei.end, "expanded EIs are unit width");
        }
    }

    for config in [LocalRatioConfig::default(), LocalRatioConfig::paper()] {
        let outcome = local_ratio_schedule(instance, config).expect("within expansion cap");
        assert_eq!(outcome.stats.n_ceis, instance.ceis.len() as u64);
        assert!(outcome.stats.ceis_captured <= enum_stats.ceis_captured);
        assert!(outcome.selected.len() as u64 >= outcome.stats.ceis_captured);
    }

    let lr = local_ratio_schedule(instance, LocalRatioConfig::default()).unwrap();
    (enum_stats.ceis_captured, lr.stats.ceis_captured)
}

#[test]
fn empty_profile_zero_ceis() {
    // The empty instance: profiles may exist with no CEIs attached, or the
    // profile set itself may be empty. `decompose` then iterates zero jobs
    // and the unwinding accepts nothing.
    let no_profiles = InstanceBuilder::new(3, 5, Budget::Uniform(1)).build();
    assert_eq!(all_baselines(&no_profiles), (0, 0));

    let mut b = InstanceBuilder::new(3, 5, Budget::Uniform(1));
    b.profile();
    b.profile();
    let empty_profiles = b.build();
    assert_eq!(all_baselines(&empty_profiles), (0, 0));
}

#[test]
fn zero_budget_chronons() {
    // A fully zero budget: nothing is capturable, but every baseline must
    // still terminate with a well-formed (empty) schedule.
    let mut b = InstanceBuilder::new(2, 4, Budget::Uniform(0));
    let p = b.profile();
    b.cei(p, &[(0, 0, 2)]);
    b.cei(p, &[(1, 1, 3), (0, 2, 3)]);
    let starved = b.build();
    assert_eq!(all_baselines(&starved), (0, 0));

    // Budget present only at chronon 2: the single-EI CEI on resource 0 is
    // live there, so the optimum captures exactly it; the two-EI CEI needs
    // two funded chronons and must fail without panicking in the
    // completion/leftover passes.
    let mut b = InstanceBuilder::new(2, 4, Budget::PerChronon(vec![0, 0, 1, 0]));
    let p = b.profile();
    b.cei(p, &[(0, 0, 2)]);
    b.cei(p, &[(1, 1, 3), (0, 3, 3)]);
    let pinched = b.build();
    let (best, lr) = all_baselines(&pinched);
    assert_eq!(best, 1);
    assert!(lr <= 1);
}

#[test]
fn single_chronon_epoch() {
    // Horizon 1: every window is [0, 0], every expanded job is a bundle of
    // chronon-0 demands, and the pivot ordering sort keys are all equal —
    // the tie-break on job index must keep the decomposition deterministic.
    let mut b = InstanceBuilder::new(3, 1, Budget::Uniform(2));
    let p = b.profile();
    b.cei(p, &[(0, 0, 0)]);
    b.cei(p, &[(1, 0, 0), (2, 0, 0)]);
    b.cei(p, &[(0, 0, 0), (1, 0, 0)]);
    let instant = b.build();
    let (best, lr) = all_baselines(&instant);
    // Budget 2 funds two probes; probing {0, 1} or {1, 2} plus sharing
    // yields two CEIs at best (CEI_0 + CEI_2 via resources {0, 1}).
    assert_eq!(best, 2);
    assert!(lr >= 1, "local ratio must capture something at C = 2");
}

#[test]
fn release_equals_deadline() {
    // A CEI released at the very chronon its only window closes: since the
    // model requires `release <= earliest start`, release == deadline means
    // the window collapses to the release chronon itself. Exercises
    // `released_at` bucketing and the expansion's release-min clamp
    // (`cei.release.min(earliest start)`).
    let mut b = InstanceBuilder::new(2, 6, Budget::Uniform(1));
    let p = b.profile();
    b.cei_released(p, 3, &[(0, 3, 3)]);
    b.cei_released(p, 5, &[(1, 5, 5)]); // released at its own deadline
    let brink = b.build();
    let (best, lr) = all_baselines(&brink);
    assert_eq!(best, 2, "both one-shot windows are capturable");
    assert!(lr <= 2);
}

#[test]
fn offline_matches_online_upper_bound_on_degenerates() {
    // The exact optimum must never lose to the default online engine on any
    // of the degenerate shapes (it is an upper bound by construction).
    use webmon_core::engine::{EngineConfig, OnlineEngine};
    use webmon_core::policy::SEdf;

    let mut shapes: Vec<Instance> = Vec::new();
    shapes.push(InstanceBuilder::new(3, 5, Budget::Uniform(1)).build());
    let mut b = InstanceBuilder::new(2, 4, Budget::Uniform(0));
    let p = b.profile();
    b.cei(p, &[(0, 0, 2)]);
    shapes.push(b.build());
    let mut b = InstanceBuilder::new(3, 1, Budget::Uniform(2));
    let p = b.profile();
    b.cei(p, &[(0, 0, 0)]);
    b.cei(p, &[(1, 0, 0), (2, 0, 0)]);
    shapes.push(b.build());
    let mut b = InstanceBuilder::new(2, 6, Budget::Uniform(1));
    let p = b.profile();
    b.cei_released(p, 3, &[(0, 3, 3)]);
    shapes.push(b.build());

    for instance in &shapes {
        let (_, best) = optimal_schedule(instance, SearchLimits::default()).unwrap();
        let online = OnlineEngine::run(instance, &SEdf, EngineConfig::preemptive());
        assert!(
            best.ceis_captured >= online.stats.ceis_captured,
            "exact optimum lost to S-EDF: {} < {}",
            best.ceis_captured,
            online.stats.ceis_captured
        );
    }
}
