//! Boundary-condition tests for interval endpoints: probes exactly at
//! `T_s` and `T_f` (windows are **inclusive** on both ends), single-chronon
//! EIs, epoch-edge windows, release == deadline, and exact-budget
//! feasibility — across the pure capture indicators, `evaluate_schedule` /
//! `evaluate_outcomes`, `ScheduleDiagnostics`, and the live engine.
//!
//! Off-by-one regressions in any of these layers change answers silently
//! (a probe at a window's closing chronon is the canonical victim), so
//! every endpoint case is pinned explicitly.

use webmon_core::diagnostics::ScheduleDiagnostics;
use webmon_core::engine::EngineConfig;
use webmon_core::model::{
    ei_capture_chronon, ei_captured, evaluate_outcomes, evaluate_schedule, Budget, Ei, Epoch,
    Instance, InstanceBuilder, ResourceId, Schedule,
};
use webmon_core::policy::Mrsf;
use webmon_core::stats::CeiOutcome;
use webmon_testkit::checks::{assert_engine_invariants, conformant_run};

const R0: ResourceId = ResourceId(0);

fn one_ei_instance(start: u32, end: u32) -> Instance {
    let mut b = InstanceBuilder::new(1, 12, Budget::Uniform(1));
    let p = b.profile();
    b.cei(p, &[(0, start, end)]);
    b.build()
}

fn schedule_with(probes: &[(u32, u32)]) -> Schedule {
    let mut s = Schedule::new(1, Epoch::new(12));
    for &(r, t) in probes {
        s.probe(ResourceId(r), t);
    }
    s
}

/// A probe exactly at `T_s` captures; one chronon earlier does not.
#[test]
fn probe_at_window_open_captures() {
    let ei = Ei::new(R0, 3, 7);
    assert!(ei_captured(ei, &schedule_with(&[(0, 3)])));
    assert!(!ei_captured(ei, &schedule_with(&[(0, 2)])));
    assert_eq!(ei_capture_chronon(ei, &schedule_with(&[(0, 3)])), Some(3));
    let stats = evaluate_schedule(&one_ei_instance(3, 7), &schedule_with(&[(0, 3)]));
    assert_eq!(stats.ceis_captured, 1);
}

/// A probe exactly at `T_f` captures (inclusive deadline); one chronon
/// later does not.
#[test]
fn probe_at_window_close_captures() {
    let ei = Ei::new(R0, 3, 7);
    assert!(ei_captured(ei, &schedule_with(&[(0, 7)])));
    assert!(!ei_captured(ei, &schedule_with(&[(0, 8)])));
    let inst = one_ei_instance(3, 7);
    let stats = evaluate_schedule(&inst, &schedule_with(&[(0, 7)]));
    assert_eq!(stats.ceis_captured, 1);
    // The capture is dated at the probe chronon, the deadline itself.
    assert_eq!(
        evaluate_outcomes(&inst, &schedule_with(&[(0, 7)]))[0],
        CeiOutcome::Captured { at: 7 }
    );
    assert_eq!(
        evaluate_outcomes(&inst, &schedule_with(&[(0, 8)]))[0],
        CeiOutcome::Failed { at: 7 }
    );
}

/// A single-chronon EI (`T_s == T_f`) is capturable at exactly one chronon.
#[test]
fn single_chronon_window_has_one_live_chronon() {
    let ei = Ei::new(R0, 5, 5);
    assert!(!ei_captured(ei, &schedule_with(&[(0, 4)])));
    assert!(ei_captured(ei, &schedule_with(&[(0, 5)])));
    assert!(!ei_captured(ei, &schedule_with(&[(0, 6)])));
    // The engine finds that one chronon and captures with zero latency.
    let inst = one_ei_instance(5, 5);
    let run = conformant_run(&inst, &Mrsf, EngineConfig::preemptive());
    assert_eq!(run.stats.ceis_captured, 1);
    assert_eq!(run.outcomes[0], CeiOutcome::Captured { at: 5 });
    let diag = ScheduleDiagnostics::compute(&inst, &run.schedule);
    assert_eq!(diag.capture_latencies, vec![0]);
    assert_eq!(diag.missed_eis, 0);
    assert_eq!(diag.wasted_probes, 0);
}

/// Windows touching the epoch edges: an EI opening at chronon 0 and an EI
/// closing at the last chronon are both fully capturable.
#[test]
fn epoch_edge_windows_are_capturable() {
    for (start, end) in [(0, 0), (0, 2), (9, 11), (11, 11)] {
        let inst = one_ei_instance(start, end);
        assert_engine_invariants(&inst);
        let run = conformant_run(&inst, &Mrsf, EngineConfig::preemptive());
        assert_eq!(
            run.stats.ceis_captured, 1,
            "window [{start}, {end}] not captured"
        );
    }
}

/// Release == deadline: the proxy learns of the CEI at the very chronon its
/// only window closes. One probe must still capture it; the failure dating
/// of the unprobed twin lands on that same chronon.
#[test]
fn release_equal_to_deadline_is_satisfiable() {
    let mut b = InstanceBuilder::new(2, 12, Budget::Uniform(1));
    let p = b.profile();
    b.cei_released(p, 6, &[(0, 6, 6)]);
    b.cei_released(p, 6, &[(1, 6, 6)]);
    let inst = b.build();
    assert_engine_invariants(&inst);
    let run = conformant_run(&inst, &Mrsf, EngineConfig::preemptive());
    // Budget 1 serves exactly one of the two simultaneous deadlines.
    assert_eq!(run.stats.ceis_captured, 1);
    assert_eq!(run.stats.ceis_failed, 1);
    let failed = run
        .outcomes
        .iter()
        .find_map(|o| match o {
            CeiOutcome::Failed { at } => Some(*at),
            _ => None,
        })
        .expect("one CEI fails");
    assert_eq!(failed, 6, "failure must date to the closing chronon");
}

/// The dynamic twin of the release == deadline pin: the same single-chronon
/// CEIs *registered mid-run* at the very chronon their only window closes.
/// The registration drain precedes the `starts[t]` bucket, so one probe
/// still captures; registering one chronon too late dooms the CEI at the
/// drain itself (`CeiRegistered` then `CeiExpired` at the drain chronon).
#[test]
fn dynamically_registered_release_equal_to_deadline_is_satisfiable() {
    use webmon_core::engine::MutationQueue;
    use webmon_testkit::checks::conformant_churned_run;

    let mut b = InstanceBuilder::new(2, 12, Budget::Uniform(1));
    let p = b.profile();
    b.cei_released(p, 6, &[(0, 6, 6)]);
    b.cei_released(p, 6, &[(1, 6, 6)]);
    let inst = b.build();

    let mut on_time = MutationQueue::new();
    on_time
        .register(6, inst.ceis[0].id)
        .register(6, inst.ceis[1].id);
    let run = conformant_churned_run(&inst, &Mrsf, EngineConfig::preemptive(), &on_time);
    // Identical to the static pin: budget 1 serves exactly one deadline.
    assert_eq!(run.stats.ceis_captured, 1);
    assert_eq!(run.stats.ceis_failed, 1);
    assert!(run.outcomes.contains(&CeiOutcome::Failed { at: 6 }));

    // One chronon late: the window already closed, both CEIs are doomed at
    // the registration drain itself and dated to that drain chronon.
    let mut late = MutationQueue::new();
    late.register(7, inst.ceis[0].id)
        .register(7, inst.ceis[1].id);
    let run = conformant_churned_run(&inst, &Mrsf, EngineConfig::preemptive(), &late);
    assert_eq!(run.stats.ceis_captured, 0);
    assert_eq!(run.stats.ceis_failed, 2);
    assert!(run
        .outcomes
        .iter()
        .all(|o| *o == CeiOutcome::Failed { at: 7 }));
}

/// Exact-budget feasibility boundary: `C` probes in a chronon are feasible,
/// `C + 1` are not — for uniform and per-chronon budgets.
#[test]
fn feasibility_is_inclusive_at_the_budget() {
    let mut two = Schedule::new(3, Epoch::new(4));
    two.probe(ResourceId(0), 1);
    two.probe(ResourceId(1), 1);
    assert!(two.is_feasible(&Budget::Uniform(2)));
    assert!(!two.is_feasible(&Budget::Uniform(1)));
    assert!(two.is_feasible(&Budget::PerChronon(vec![0, 2, 0, 0])));
    assert!(!two.is_feasible(&Budget::PerChronon(vec![2, 1, 2, 2])));
    // Chronons past the end of a per-chronon vector have zero budget.
    let mut late = Schedule::new(3, Epoch::new(4));
    late.probe(ResourceId(0), 3);
    assert!(!late.is_feasible(&Budget::PerChronon(vec![1, 1, 1])));
}

/// Shard-routing endpoints: with 5 resources and 2 shards the contiguous
/// partition is `[0, 3)` / `[3, 5)`, so resources 2 and 3 sit on either
/// side of the shard boundary. A CEI straddling that boundary (EIs on both
/// resources) must still capture through cross-shard sibling refresh, and
/// the sharded run must equal the serial run exactly.
#[test]
fn shard_boundary_resources_route_and_capture() {
    let mut b = InstanceBuilder::new(5, 12, Budget::Uniform(1));
    let p = b.profile();
    // One CEI per boundary-adjacent resource, plus one straddling the
    // boundary itself.
    b.cei(p, &[(2, 1, 5)]);
    b.cei(p, &[(3, 1, 5)]);
    b.cei(p, &[(2, 6, 10), (3, 6, 10)]);
    let inst = b.build();
    assert_engine_invariants(&inst);
    let serial = conformant_run(&inst, &Mrsf, EngineConfig::preemptive().with_shards(1));
    let sharded = conformant_run(&inst, &Mrsf, EngineConfig::preemptive().with_shards(2));
    assert_eq!(serial.schedule, sharded.schedule);
    assert_eq!(serial.stats, sharded.stats);
    assert_eq!(serial.outcomes, sharded.outcomes);
    assert_eq!(sharded.stats.ceis_captured, 3, "boundary CEIs must capture");
}

/// The single-shard degenerate run: `with_shards(1)` is the serial engine,
/// and must be indistinguishable from the default (`shards = 0`, auto)
/// configuration on the same instance.
#[test]
fn single_shard_run_equals_the_default_configuration() {
    let inst = one_ei_instance(3, 7);
    let auto = conformant_run(&inst, &Mrsf, EngineConfig::preemptive());
    let one = conformant_run(&inst, &Mrsf, EngineConfig::preemptive().with_shards(1));
    assert_eq!(auto.schedule, one.schedule);
    assert_eq!(auto.stats, one.stats);
    assert_eq!(auto.outcomes, one.outcomes);
}

/// `shards > |R|` clamps to one shard per resource instead of leaving empty
/// shards in the partition: a single-resource instance under `shards = 4`
/// (and a 3-resource instance under `shards = 64`) runs identically to
/// serial and still captures.
#[test]
fn shard_count_above_resource_count_clamps() {
    let single = one_ei_instance(3, 7);
    let serial = conformant_run(&single, &Mrsf, EngineConfig::preemptive().with_shards(1));
    let clamped = conformant_run(&single, &Mrsf, EngineConfig::preemptive().with_shards(4));
    assert_eq!(serial.schedule, clamped.schedule);
    assert_eq!(serial.stats, clamped.stats);
    assert_eq!(clamped.stats.ceis_captured, 1);

    let mut b = InstanceBuilder::new(3, 12, Budget::Uniform(2));
    let p = b.profile();
    b.cei(p, &[(0, 0, 4)]);
    b.cei(p, &[(1, 2, 6)]);
    b.cei(p, &[(2, 4, 8)]);
    let inst = b.build();
    let serial = conformant_run(&inst, &Mrsf, EngineConfig::non_preemptive().with_shards(1));
    let clamped = conformant_run(&inst, &Mrsf, EngineConfig::non_preemptive().with_shards(64));
    assert_eq!(serial.schedule, clamped.schedule);
    assert_eq!(serial.stats, clamped.stats);
    assert_eq!(serial.outcomes, clamped.outcomes);
}

/// Diagnostics at the endpoints: probes at `T_s` and `T_f` of the same
/// window count one capture (first probe wins) and no waste; a probe one
/// past `T_f` is wasted.
#[test]
fn diagnostics_respect_inclusive_endpoints() {
    let inst = one_ei_instance(3, 7);
    let both_ends = schedule_with(&[(0, 3), (0, 7)]);
    let diag = ScheduleDiagnostics::compute(&inst, &both_ends);
    assert_eq!(diag.capture_latencies, vec![0], "earliest probe captures");
    assert_eq!(diag.missed_eis, 0);
    assert_eq!(diag.wasted_probes, 0, "a probe at T_f serves the window");

    let past_close = schedule_with(&[(0, 8)]);
    let diag = ScheduleDiagnostics::compute(&inst, &past_close);
    assert_eq!(diag.missed_eis, 1);
    assert_eq!(diag.wasted_probes, 1, "a probe at T_f + 1 serves nothing");

    let at_close = schedule_with(&[(0, 7)]);
    let diag = ScheduleDiagnostics::compute(&inst, &at_close);
    assert_eq!(diag.capture_latencies, vec![4], "latency is T_f - T_s");
    assert_eq!(diag.wasted_probes, 0);
}
