//! Property-based tests over the stream substrates: every generator must
//! emit well-formed traces, and every probe the engine issues must serve a
//! live window. Engine runs go through `webmon_testkit::checks`, so every
//! workload-generated instance is also a conformance case for the
//! `InvariantObserver`.

use proptest::prelude::*;
use webmon_core::engine::EngineConfig;
use webmon_core::model::Budget;
use webmon_core::policy::{MEdf, Mrsf, Policy, SEdf};
use webmon_streams::auction::{AuctionTrace, AuctionTraceConfig};
use webmon_streams::fpn::{FpnModel, NoisyTrace};
use webmon_streams::news::NewsTraceConfig;
use webmon_streams::poisson::PoissonProcess;
use webmon_streams::rng::SimRng;
use webmon_streams::zipf::Zipf;
use webmon_testkit::checks::conformant_run;
use webmon_workload::{generate, EiLength, RankSpec, WorkloadConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Zipf: pmf sums to one, is monotone non-increasing, and sampling
    /// stays in range for arbitrary parameters.
    #[test]
    fn zipf_wellformed(theta in 0.0..3.0f64, n in 1..200u32, seed in any::<u64>()) {
        let z = Zipf::new(theta, n);
        let total: f64 = (1..=n).map(|i| z.pmf(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        for i in 1..n {
            prop_assert!(z.pmf(i) >= z.pmf(i + 1) - 1e-12);
        }
        let mut rng = SimRng::new(seed);
        for _ in 0..64 {
            let s = z.sample(&mut rng);
            prop_assert!((1..=n).contains(&s));
        }
    }

    /// Every trace generator emits sorted, deduplicated, in-horizon events.
    #[test]
    fn traces_are_wellformed(
        seed in any::<u64>(),
        lambda in 0.0..60.0f64,
        n in 1..40u32,
        horizon in 50..400u32,
    ) {
        let traces = [
            PoissonProcess::new(lambda).sample_trace(n, horizon, &SimRng::new(seed)),
            AuctionTrace::generate(&AuctionTraceConfig::scaled(n, horizon), &SimRng::new(seed))
                .trace,
            NewsTraceConfig::scaled(n, horizon).generate(&SimRng::new(seed)),
        ];
        for t in &traces {
            prop_assert_eq!(t.horizon(), horizon);
            for r in 0..t.n_resources() {
                let evs = t.events_of(r);
                prop_assert!(evs.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
                prop_assert!(evs.iter().all(|&e| e < horizon));
            }
        }
    }

    /// FPN preserves event counts and keeps predictions in the epoch at any
    /// noise level.
    #[test]
    fn fpn_wellformed(
        seed in any::<u64>(),
        z in 0.0..=1.0f64,
        dev in 1..20u32,
    ) {
        let truth = PoissonProcess::new(15.0).sample_trace(10, 200, &SimRng::new(seed));
        let noisy = FpnModel::new(z, dev).apply(&truth, &SimRng::new(seed ^ 1));
        for r in 0..truth.n_resources() {
            prop_assert_eq!(noisy.pairs_of(r).len(), truth.events_of(r).len());
            for p in noisy.pairs_of(r) {
                prop_assert!(p.predicted < 200);
                prop_assert!(p.predicted.abs_diff(p.truth) <= dev.max(1));
            }
        }
    }

    /// Every probe the engine issues lands inside the window of at least one
    /// EI of the instance — the engine never wastes probes on dead air.
    #[test]
    fn probes_always_serve_a_window(seed in any::<u64>(), budget in 1..=3u32) {
        let trace = PoissonProcess::new(10.0).sample_trace(15, 150, &SimRng::new(seed));
        let cfg = WorkloadConfig {
            n_profiles: 8,
            rank: RankSpec::UpTo { k: 3, beta: 0.0 },
            resource_alpha: 0.3,
            length: EiLength::Overwrite { max_len: Some(6) },
            distinct_resources: true,
            max_ceis: Some(300),
            no_intra_resource_overlap: false,
        };
        let w = generate(
            &cfg,
            &NoisyTrace::exact(&trace),
            Budget::Uniform(budget),
            &SimRng::new(seed ^ 2),
        );
        for policy in [&SEdf as &dyn Policy, &Mrsf, &MEdf] {
            let run = conformant_run(&w.instance, policy, EngineConfig::preemptive());
            for (t, r) in run.schedule.iter() {
                let serves_window = w.instance.ceis.iter().any(|cei| {
                    cei.eis
                        .iter()
                        .any(|ei| ei.resource == r && ei.is_active(t))
                });
                prop_assert!(
                    serves_window,
                    "{}: probe ({t}, {r}) serves no window",
                    policy.name()
                );
            }
        }
    }
}
