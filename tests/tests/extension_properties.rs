//! Property-based tests for the §III/§VII extension semantics: thresholds,
//! utility weights, and probe costs must preserve the engine's invariants
//! and stay dominated by the exact optimum.

use proptest::prelude::*;
use webmon_core::engine::{EngineConfig, OnlineEngine};
use webmon_core::model::{
    evaluate_schedule, Budget, Chronon, Instance, InstanceBuilder, ProbeCosts,
};
use webmon_core::offline::{optimal_schedule, SearchLimits};
use webmon_core::policy::{MEdf, Mrsf, MrsfExact, Policy, SEdf, UtilityWeighted};

const HORIZON: Chronon = 24;
const N_RESOURCES: u32 = 4;

/// `(eis, required-percentage, weight)` — one generated CEI.
type CeiSpec = (Vec<(u32, Chronon, Chronon)>, u8, f32);

/// Strategy: a CEI spec `(eis, required_fraction, weight)`.
fn cei_strategy() -> impl Strategy<Value = CeiSpec> {
    (
        prop::collection::vec((0..N_RESOURCES, 0..HORIZON - 4, 0..4u32), 1..=3),
        1..=100u8,
        prop::sample::select(vec![1.0f32, 2.0, 5.0]),
    )
        .prop_map(|(eis, frac, weight)| {
            let eis = eis
                .into_iter()
                .map(|(r, s, len)| (r, s, (s + len).min(HORIZON - 1)))
                .collect();
            (eis, frac, weight)
        })
}

fn build_instance(specs: &[CeiSpec], budget: u32, costs: bool) -> Instance {
    let mut b = InstanceBuilder::new(N_RESOURCES, HORIZON, Budget::Uniform(budget));
    let p = b.profile();
    for (eis, frac, _) in specs {
        let size = eis.len() as u16;
        let required = ((u16::from(*frac) * size).div_ceil(100)).clamp(1, size);
        b.cei_threshold(p, required, eis);
    }
    let mut inst = b.build();
    // Weights are applied post-build (builder ids are dense and in order).
    for (cei, (_, _, weight)) in inst.ceis.iter_mut().zip(specs) {
        *cei = cei.clone().with_weight(*weight);
    }
    if costs {
        inst = inst.with_costs(ProbeCosts::per_resource(vec![1, 2, 1, 3]));
    }
    inst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Threshold + weighted instances uphold the core engine invariants.
    #[test]
    fn engine_invariants_under_extensions(
        specs in prop::collection::vec(cei_strategy(), 1..=8),
        budget in 0..=2u32,
        costs in any::<bool>(),
    ) {
        let instance = build_instance(&specs, budget, costs);
        let u_mrsf = UtilityWeighted::new(Mrsf, "U-MRSF");
        for policy in [&SEdf as &dyn Policy, &Mrsf, &MrsfExact, &MEdf, &u_mrsf] {
            for config in [EngineConfig::preemptive(), EngineConfig::non_preemptive()] {
                let run = OnlineEngine::run(&instance, policy, config);
                prop_assert!(run.schedule.is_feasible(&instance.budget)
                    || !instance.costs.is_uniform());
                prop_assert_eq!(
                    run.stats.ceis_captured + run.stats.ceis_failed,
                    run.stats.n_ceis
                );
                // Engine capture decisions must agree with re-evaluation
                // under threshold semantics.
                let reeval = evaluate_schedule(&instance, &run.schedule);
                prop_assert_eq!(run.stats.ceis_captured, reeval.ceis_captured);
                // Weighted accounting is internally consistent.
                prop_assert!(run.stats.weight_captured <= run.stats.weight_total + 1e-9);
                prop_assert!(
                    (run.stats.weighted_completeness() - 1.0) < 1e-9
                );
            }
        }
    }

    /// Lazy-heap equivalence holds under the extension semantics too.
    #[test]
    fn lazy_heap_equals_scan_under_extensions(
        specs in prop::collection::vec(cei_strategy(), 1..=8),
        costs in any::<bool>(),
    ) {
        let instance = build_instance(&specs, 2, costs);
        for policy in [&Mrsf as &dyn Policy, &MEdf] {
            let scan = OnlineEngine::run(&instance, policy, EngineConfig::preemptive());
            let heap = OnlineEngine::run(
                &instance,
                policy,
                EngineConfig::preemptive().with_lazy_heap(),
            );
            prop_assert_eq!(&scan.schedule, &heap.schedule);
            prop_assert_eq!(scan.stats, heap.stats);
        }
    }

    /// The exact optimum (which understands thresholds) dominates every
    /// online policy on threshold instances.
    #[test]
    fn optimum_dominates_online_under_thresholds(
        specs in prop::collection::vec(cei_strategy(), 1..=5),
    ) {
        let instance = build_instance(&specs, 1, false);
        if let Ok((_, opt)) = optimal_schedule(&instance, SearchLimits { max_nodes: 200_000 }) {
            for policy in [&SEdf as &dyn Policy, &Mrsf, &MEdf] {
                let run = OnlineEngine::run(&instance, policy, EngineConfig::preemptive());
                prop_assert!(
                    run.stats.ceis_captured <= opt.ceis_captured,
                    "{} captured {} > optimum {}",
                    policy.name(),
                    run.stats.ceis_captured,
                    opt.ceis_captured
                );
            }
        }
    }

    /// Lowering the threshold never lowers completeness (relaxation
    /// monotonicity) for the threshold-aware policies on the same schedule
    /// evaluation.
    #[test]
    fn threshold_relaxation_helps_evaluation(
        specs in prop::collection::vec(cei_strategy(), 1..=8),
    ) {
        let strict = build_instance(
            &specs.iter().map(|(e, _, w)| (e.clone(), 100u8, *w)).collect::<Vec<_>>(),
            1,
            false,
        );
        let relaxed = build_instance(&specs, 1, false);
        // Same schedule (produced against the strict instance), evaluated
        // under both semantics: the relaxed semantics can only capture more.
        let run = OnlineEngine::run(&strict, &Mrsf, EngineConfig::preemptive());
        let strict_eval = evaluate_schedule(&strict, &run.schedule);
        let relaxed_eval = evaluate_schedule(&relaxed, &run.schedule);
        prop_assert!(relaxed_eval.ceis_captured >= strict_eval.ceis_captured);
    }
}
