//! Property-based tests for the §III/§VII extension semantics: thresholds,
//! utility weights, and probe costs must preserve the engine's invariants
//! and stay dominated by the exact optimum.
//!
//! Generators and the spec→instance builder live in
//! `webmon_testkit::strategies` (shared with `regressions.rs`, which pins
//! this file's shrunk counterexamples deterministically).

use proptest::prelude::*;
use webmon_core::engine::{EngineConfig, OnlineEngine};
use webmon_core::model::evaluate_schedule;
use webmon_core::offline::{optimal_schedule, SearchLimits};
use webmon_core::policy::{MEdf, Mrsf, Policy, SEdf};
use webmon_testkit::checks::assert_extension_invariants;
use webmon_testkit::strategies::{extension_cei_strategy, extension_instance};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Threshold + weighted instances uphold the core engine invariants —
    /// including a clean conformance-checker report per run.
    #[test]
    fn engine_invariants_under_extensions(
        specs in prop::collection::vec(extension_cei_strategy(), 1..=8),
        budget in 0..=2u32,
        costs in any::<bool>(),
    ) {
        let instance = extension_instance(&specs, budget, costs);
        assert_extension_invariants(&instance);
    }

    /// Lazy-heap equivalence holds under the extension semantics too.
    #[test]
    fn lazy_heap_equals_scan_under_extensions(
        specs in prop::collection::vec(extension_cei_strategy(), 1..=8),
        costs in any::<bool>(),
    ) {
        let instance = extension_instance(&specs, 2, costs);
        for policy in [&Mrsf as &dyn Policy, &MEdf] {
            let scan = OnlineEngine::run(&instance, policy, EngineConfig::preemptive());
            let heap = OnlineEngine::run(
                &instance,
                policy,
                EngineConfig::preemptive().with_lazy_heap(),
            );
            prop_assert_eq!(&scan.schedule, &heap.schedule);
            prop_assert_eq!(scan.stats, heap.stats);
        }
    }

    /// The exact optimum (which understands thresholds) dominates every
    /// online policy on threshold instances.
    #[test]
    fn optimum_dominates_online_under_thresholds(
        specs in prop::collection::vec(extension_cei_strategy(), 1..=5),
    ) {
        let instance = extension_instance(&specs, 1, false);
        if let Ok((_, opt)) = optimal_schedule(&instance, SearchLimits { max_nodes: 200_000 }) {
            for policy in [&SEdf as &dyn Policy, &Mrsf, &MEdf] {
                let run = OnlineEngine::run(&instance, policy, EngineConfig::preemptive());
                prop_assert!(
                    run.stats.ceis_captured <= opt.ceis_captured,
                    "{} captured {} > optimum {}",
                    policy.name(),
                    run.stats.ceis_captured,
                    opt.ceis_captured
                );
            }
        }
    }

    /// Lowering the threshold never lowers completeness (relaxation
    /// monotonicity) for the threshold-aware policies on the same schedule
    /// evaluation.
    #[test]
    fn threshold_relaxation_helps_evaluation(
        specs in prop::collection::vec(extension_cei_strategy(), 1..=8),
    ) {
        let strict = extension_instance(
            &specs.iter().map(|(e, _, w)| (e.clone(), 100u8, *w)).collect::<Vec<_>>(),
            1,
            false,
        );
        let relaxed = extension_instance(&specs, 1, false);
        // Same schedule (produced against the strict instance), evaluated
        // under both semantics: the relaxed semantics can only capture more.
        let run = OnlineEngine::run(&strict, &Mrsf, EngineConfig::preemptive());
        let strict_eval = evaluate_schedule(&strict, &run.schedule);
        let relaxed_eval = evaluate_schedule(&relaxed, &run.schedule);
        prop_assert!(relaxed_eval.ceis_captured >= strict_eval.ceis_captured);
    }
}
