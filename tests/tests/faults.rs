//! Fault-injection integration suite:
//!
//! 1. **Zero-fault equivalence** — `run_faulted` at failure rate 0 is
//!    bit-identical (stats, outcomes, schedule, `RunMetrics`, JSONL trace
//!    bytes) to the pre-existing `run_observed`, and stays so for any
//!    worker count.
//! 2. **Faulted conformance** — the fixed corpus passes the fault-aware
//!    `InvariantObserver` with zero violations under i.i.d. losses, bursty
//!    outages, and rate limits, across retry disciplines.
//! 3. **Degradation monotonicity** — corpus-aggregate captured CEIs are
//!    non-increasing in the i.i.d. failure rate (the shipped model draws
//!    failure sets nested in the rate for a fixed seed).
//! 4. **Model determinism properties** — Gilbert–Elliott outage traces
//!    regenerate exactly from `(seed, params)` and agree with a live
//!    stepped model; i.i.d. failure sets are nested across rates.

use proptest::prelude::*;
use webmon_core::engine::{EngineConfig, OnlineEngine, RunResult};
use webmon_core::fault::{Backoff, FaultConfig, GilbertElliott, IidFaults, RateLimit};
use webmon_core::model::{Instance, ResourceId};
use webmon_core::obs::{
    replay_events, replay_metrics, Event, JsonlTraceObserver, MetricsObserver, RunMetrics, Tee,
};
use webmon_core::policy::{MEdf, Mrsf, Policy, SEdf, Wic};
use webmon_sim::parallel::par_map_with;
use webmon_testkit::checks::conformant_faulted_run;
use webmon_testkit::corpus::{conformance_cases, small_instance, BASE_CASES};

/// Calls `f` with the `idx`-th paper policy (S-EDF, MRSF, M-EDF, WIC).
fn with_policy<R>(idx: usize, f: impl FnOnce(&dyn Policy) -> R) -> R {
    let wic = Wic::paper();
    let policy: &dyn Policy = match idx {
        0 => &SEdf,
        1 => &Mrsf,
        2 => &MEdf,
        _ => &wic,
    };
    f(policy)
}

/// One observed run: metrics, serialized trace bytes, and the result.
fn observed(
    instance: &Instance,
    policy: &dyn Policy,
    config: EngineConfig,
) -> (RunMetrics, Vec<u8>, RunResult) {
    let mut tee = Tee(MetricsObserver::new(), JsonlTraceObserver::new(Vec::new()));
    let run = OnlineEngine::run_observed(instance, policy, config, &mut tee);
    let Tee(metrics, trace) = tee;
    (metrics.finish(), trace.finish().expect("Vec<u8> sink"), run)
}

/// The same run through `run_faulted` with a rate-0 i.i.d. model.
fn zero_faulted(
    instance: &Instance,
    policy: &dyn Policy,
    config: EngineConfig,
    seed: u64,
) -> (RunMetrics, Vec<u8>, RunResult) {
    let mut model = IidFaults::new(0.0, seed);
    let mut tee = Tee(MetricsObserver::new(), JsonlTraceObserver::new(Vec::new()));
    let run = OnlineEngine::run_faulted(
        instance,
        policy,
        config,
        &mut model,
        FaultConfig::default(),
        &mut tee,
    );
    let Tee(metrics, trace) = tee;
    (metrics.finish(), trace.finish().expect("Vec<u8> sink"), run)
}

/// Satellite 2 (core half): at failure rate 0 the faulted engine is the
/// fault-free engine — same schedule, stats, outcomes, metrics, and
/// byte-identical JSONL trace — for every paper policy in both modes.
#[test]
fn zero_fault_runs_are_bit_identical_to_fault_free_runs() {
    for seed in 0..48 {
        let instance = small_instance(seed, true);
        for p in 0..4 {
            with_policy(p, |policy| {
                for config in [EngineConfig::preemptive(), EngineConfig::non_preemptive()] {
                    let (base_m, base_t, base_r) = observed(&instance, policy, config);
                    let (fault_m, fault_t, fault_r) = zero_faulted(&instance, policy, config, seed);
                    let label = format!("seed {seed}, {} under {}", policy.name(), config.label());
                    assert_eq!(base_r.schedule, fault_r.schedule, "{label}: schedule");
                    assert_eq!(base_r.stats, fault_r.stats, "{label}: stats");
                    assert_eq!(base_r.outcomes, fault_r.outcomes, "{label}: outcomes");
                    assert_eq!(base_m, fault_m, "{label}: metrics");
                    assert_eq!(base_t, fault_t, "{label}: trace bytes");
                }
            });
        }
    }
}

/// Satellite 2 (parallel half): the zero-fault identity holds for any
/// worker count — 1 worker and 4 workers produce the *same bytes* as the
/// serial fault-free baseline for the whole (policy × mode) grid.
#[test]
fn zero_fault_identity_is_worker_count_invariant() {
    let grid: Vec<(u64, usize, bool)> = (0..12u64)
        .flat_map(|seed| (0..4usize).flat_map(move |p| [(seed, p, true), (seed, p, false)]))
        .collect();
    let baseline: Vec<(RunMetrics, Vec<u8>)> = grid
        .iter()
        .map(|&(seed, p, pre)| {
            let config = if pre {
                EngineConfig::preemptive()
            } else {
                EngineConfig::non_preemptive()
            };
            with_policy(p, |policy| {
                let (m, t, _) = observed(&small_instance(seed, true), policy, config);
                (m, t)
            })
        })
        .collect();
    for jobs in [1, 4] {
        let got = par_map_with(jobs, grid.clone(), |_, (seed, p, pre)| {
            let config = if pre {
                EngineConfig::preemptive()
            } else {
                EngineConfig::non_preemptive()
            };
            with_policy(p, |policy| {
                let (m, t, _) = zero_faulted(&small_instance(seed, true), policy, config, seed);
                (m, t)
            })
        });
        assert_eq!(
            got, baseline,
            "jobs {jobs} diverged from the serial fault-free baseline"
        );
    }
}

/// Satellite 4: the whole fixed corpus (extended by
/// `WEBMON_CONFORMANCE_CASES` in CI) passes the fault-aware invariant
/// checker with zero violations — cycling fault models (i.i.d., bursty,
/// rate-limit) and retry disciplines (charged immediate, free backoff,
/// charged quota) across cases.
#[test]
fn faulted_corpus_passes_the_invariant_checker() {
    for seed in 0..conformance_cases() {
        let instance = small_instance(seed, true);
        let n_res = instance.n_resources as usize;
        let fault_config = match seed % 3 {
            0 => FaultConfig::default(),
            1 => FaultConfig::default()
                .free_failures()
                .with_backoff(Backoff::new(1, 4)),
            _ => FaultConfig::default().with_retry_quota(1),
        };
        for config in [EngineConfig::preemptive(), EngineConfig::non_preemptive()] {
            match seed % 3 {
                0 => {
                    let mut model = IidFaults::new(0.4, seed);
                    conformant_faulted_run(&instance, &Mrsf, config, &mut model, fault_config);
                }
                1 => {
                    let mut model = GilbertElliott::new(0.3, 0.4, seed, n_res);
                    conformant_faulted_run(&instance, &Mrsf, config, &mut model, fault_config);
                }
                _ => {
                    let mut model = RateLimit::new(3, 1, n_res);
                    conformant_faulted_run(&instance, &Mrsf, config, &mut model, fault_config);
                }
            }
        }
    }
}

/// Faulted traces are lossless transcripts too: folding the persisted JSONL
/// trace of a fault-injected run back through a fresh `MetricsObserver`
/// reproduces the live metrics byte for byte, and across the scenario mix
/// every fault event kind (`ProbeFailed`, `ProbeRetried`, `ResourceDown`,
/// `ResourceUp`, `CeiShed`) appears in at least one trace.
#[test]
fn faulted_trace_replay_reproduces_run_metrics_byte_for_byte() {
    let mut seen = [false; 5]; // failed, retried, down, up, shed
    for seed in 0..24 {
        let instance = small_instance(seed, true);
        let n_res = instance.n_resources as usize;
        let (fault_config, scenario): (FaultConfig, &str) = match seed % 3 {
            0 => (
                FaultConfig::default().with_backoff(Backoff::new(1, 4)),
                "iid",
            ),
            1 => (FaultConfig::default().free_failures(), "burst"),
            _ => (FaultConfig::default().with_retry_quota(1), "ratelimit"),
        };
        let mut tee = Tee(MetricsObserver::new(), JsonlTraceObserver::new(Vec::new()));
        let config = EngineConfig::preemptive();
        match scenario {
            "iid" => {
                let mut model = IidFaults::new(0.5, seed);
                OnlineEngine::run_faulted(
                    &instance,
                    &Mrsf,
                    config,
                    &mut model,
                    fault_config,
                    &mut tee,
                );
            }
            "burst" => {
                let mut model = GilbertElliott::new(0.3, 0.4, seed, n_res);
                OnlineEngine::run_faulted(
                    &instance,
                    &Mrsf,
                    config,
                    &mut model,
                    fault_config,
                    &mut tee,
                );
            }
            _ => {
                let mut model = RateLimit::new(3, 1, n_res);
                OnlineEngine::run_faulted(
                    &instance,
                    &Mrsf,
                    config,
                    &mut model,
                    fault_config,
                    &mut tee,
                );
            }
        }
        let Tee(metrics, trace) = tee;
        let live = metrics.finish();
        let text = String::from_utf8(trace.finish().expect("Vec<u8> sink")).unwrap();
        let replayed = replay_metrics(&text)
            .unwrap_or_else(|e| panic!("seed {seed} ({scenario}): trace failed to replay: {e}"));
        assert_eq!(
            live, replayed,
            "seed {seed} ({scenario}): replayed metrics diverged"
        );
        assert_eq!(
            serde_json::to_string(&live).unwrap(),
            serde_json::to_string(&replayed).unwrap(),
            "seed {seed} ({scenario}): serialized metrics diverged"
        );
        for event in replay_events(&text).unwrap() {
            match event {
                Event::ProbeFailed { .. } => seen[0] = true,
                Event::ProbeRetried { .. } => seen[1] = true,
                Event::ResourceDown { .. } => seen[2] = true,
                Event::ResourceUp { .. } => seen[3] = true,
                Event::CeiShed { .. } => seen[4] = true,
                _ => {}
            }
        }
    }
    assert_eq!(
        seen, [true; 5],
        "some fault event kind never appeared (failed/retried/down/up/shed): {seen:?}"
    );
}

/// Satellite 3a: corpus-aggregate captured CEIs are non-increasing in the
/// i.i.d. failure rate. The shipped model keys each failure draw by
/// `(seed, t, resource, attempt)` and compares it against the rate, so the
/// failure sets at a fixed seed are nested across rates.
#[test]
fn corpus_aggregate_completeness_degrades_with_failure_rate() {
    let rates = [0.0, 0.3, 0.7, 0.95];
    let totals: Vec<u64> = rates
        .iter()
        .map(|&rate| {
            (0..BASE_CASES)
                .map(|seed| {
                    let instance = small_instance(seed, true);
                    let mut model = IidFaults::new(rate, 0xFA);
                    OnlineEngine::run_faulted(
                        &instance,
                        &Mrsf,
                        EngineConfig::preemptive(),
                        &mut model,
                        FaultConfig::default(),
                        &mut webmon_core::obs::NoopObserver,
                    )
                    .stats
                    .ceis_captured
                })
                .sum()
        })
        .collect();
    for (w, pair) in totals.windows(2).enumerate() {
        assert!(
            pair[1] <= pair[0],
            "aggregate captures rose from {} to {} between rates {} and {} ({totals:?})",
            pair[0],
            pair[1],
            rates[w],
            rates[w + 1]
        );
    }
    assert!(
        totals[0] > totals[rates.len() - 1],
        "95% loss did not reduce corpus-aggregate captures at all: {totals:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Satellite 3b: a Gilbert–Elliott outage trace is a pure function of
    /// `(seed, params)` — an identically-built model regenerates it
    /// exactly, and a live model stepped chronon by chronon reports
    /// `down_until = Some(t)` at precisely the trace's down chronons.
    #[test]
    fn gilbert_elliott_traces_regenerate_from_seed_and_params(
        p_fail in 0.05f64..0.95,
        p_recover in 0.05f64..0.95,
        seed in any::<u64>(),
        n_res in 1usize..5,
        horizon in 1u32..64,
    ) {
        let a = GilbertElliott::new(p_fail, p_recover, seed, n_res);
        let b = GilbertElliott::new(p_fail, p_recover, seed, n_res);
        let traces: Vec<Vec<bool>> = (0..n_res)
            .map(|r| a.outage_trace(ResourceId(r as u32), horizon))
            .collect();
        for (r, trace) in traces.iter().enumerate() {
            prop_assert_eq!(
                trace,
                &b.outage_trace(ResourceId(r as u32), horizon),
                "rebuilt model diverged on resource {}", r
            );
        }
        // A live model agrees with the precomputed traces at every chronon.
        let mut live = GilbertElliott::new(p_fail, p_recover, seed, n_res);
        use webmon_core::fault::FaultModel;
        for t in 0..horizon {
            live.begin_chronon(t);
            for (r, trace) in traces.iter().enumerate() {
                let down = live.down_until(ResourceId(r as u32)).is_some();
                prop_assert_eq!(
                    down, trace[t as usize],
                    "resource {} at chronon {}: live {} vs trace {}",
                    r, t, down, trace[t as usize]
                );
            }
        }
    }

    /// The i.i.d. model's failure sets are nested across rates for a fixed
    /// seed: any probe that fails at a lower rate also fails at any higher
    /// rate — the mechanism behind the monotone degradation curves.
    #[test]
    fn iid_failure_sets_are_nested_in_the_rate(
        lo in 0.0f64..1.0,
        hi in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        use webmon_core::fault::FaultModel;
        let mut at_lo = IidFaults::new(lo, seed);
        let mut at_hi = IidFaults::new(hi, seed);
        for t in 0..32u32 {
            for r in 0..4u32 {
                for attempt in 0..3u32 {
                    let fails_lo = !at_lo.probe_succeeds(t, ResourceId(r), attempt);
                    let fails_hi = !at_hi.probe_succeeds(t, ResourceId(r), attempt);
                    prop_assert!(
                        !fails_lo || fails_hi,
                        "probe (t={}, r={}, a={}) fails at rate {} but not at {}",
                        t, r, attempt, lo, hi
                    );
                }
            }
        }
    }
}
