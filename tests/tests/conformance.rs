//! The differential conformance suite: every case of the fixed seed corpus
//! is checked against ground truth from three independent directions —
//!
//! 1. **Online vs. offline** (Prop. 4): no online policy's gained
//!    completeness may exceed the branch-and-bound offline optimum, and
//!    every one of those runs must produce a clean
//!    [`InvariantObserver`](webmon_core::check::InvariantObserver) report.
//! 2. **Prop. 5**: the `P → P^[1]` expansion preserves `rank(P)`, yields
//!    unit-width EIs only, and every combination realizes its origin.
//! 3. **Trace replay**: re-deriving `RunMetrics` from the persisted JSONL
//!    trace reproduces the live observer's metrics byte for byte.
//!
//! The corpus is fixed (seeds `0..BASE_CASES`, identical on every machine);
//! `WEBMON_CONFORMANCE_CASES=<n>` extends it for local fuzzing but can
//! never shrink it. A mutation self-test closes the loop by proving the
//! checker actually rejects a corrupted stream — see `checker_flags_*`
//! below and the unit mutation tests in `webmon_core::check`.

use webmon_core::check::{InvariantObserver, Violation};
use webmon_core::engine::{EngineConfig, OnlineEngine};
use webmon_core::model::gained_completeness;
use webmon_core::obs::{replay_metrics, Event, JsonlTraceObserver, MetricsObserver, Observer, Tee};
use webmon_core::offline::{expand_to_unit, optimal_schedule, SearchLimits};
use webmon_core::policy::{MEdf, Mrsf, Policy, SEdf, Wic};
use webmon_testkit::checks::conformant_run;
use webmon_testkit::corpus::{conformance_cases, small_instance, BASE_CASES};

/// Prop. 4 differential: on every corpus instance the exact offline optimum
/// dominates every online policy in both execution modes — and each online
/// run passes the live invariant checker.
#[test]
fn online_gc_never_exceeds_offline_optimum() {
    let cases = conformance_cases();
    let mut aborted = 0u64;
    for seed in 0..cases {
        let instance = small_instance(seed, true);
        let opt = match optimal_schedule(
            &instance,
            SearchLimits {
                max_nodes: 2_000_000,
            },
        ) {
            Ok((schedule, stats)) => {
                assert!(schedule.is_feasible(&instance.budget), "seed {seed}");
                stats
            }
            Err(_) => {
                aborted += 1;
                continue;
            }
        };
        let opt_gc = opt.ceis_captured as f64 / instance.ceis.len() as f64;
        for policy in [&SEdf as &dyn Policy, &Mrsf, &MEdf, &Wic::paper()] {
            for config in [EngineConfig::preemptive(), EngineConfig::non_preemptive()] {
                let run = conformant_run(&instance, policy, config);
                assert!(
                    run.stats.ceis_captured <= opt.ceis_captured,
                    "seed {seed}: {} under {} captured {} > optimum {}",
                    policy.name(),
                    config.label(),
                    run.stats.ceis_captured,
                    opt.ceis_captured
                );
                let gc = gained_completeness(&instance, &run.schedule);
                assert!(
                    gc <= opt_gc + 1e-9,
                    "seed {seed}: GC {gc} > optimal GC {opt_gc}"
                );
            }
        }
    }
    // The corpus is sized for exact enumeration; if the search starts
    // aborting, the corpus (or the node cap) needs retuning, not skipping.
    assert!(
        aborted * 10 <= cases,
        "{aborted}/{cases} corpus instances exceeded the enumeration cap"
    );
}

/// Prop. 5 differential: the `P → P^[1]` expansion preserves the profile
/// rank, emits unit-width EIs only, produces exactly `Π_q n_q` combinations
/// per CEI, and every combination's windows sit inside its origin's.
#[test]
fn prop5_expansion_preserves_rank() {
    for seed in 0..conformance_cases() {
        // AND-only corpus: the expansion is defined for AND semantics.
        let instance = small_instance(seed, false);
        let exp =
            expand_to_unit(&instance, 100_000).expect("corpus windows are narrow enough to expand");
        assert_eq!(
            exp.instance.rank(),
            instance.rank(),
            "seed {seed}: rank(P^[1]) != rank(P)"
        );
        assert!(exp.instance.is_unit_width(), "seed {seed}");
        assert_eq!(exp.instance.epoch, instance.epoch);
        assert_eq!(exp.instance.budget, instance.budget);
        for cei in &instance.ceis {
            let product: usize = cei.eis.iter().map(|ei| ei.len() as usize).product();
            assert_eq!(
                exp.combinations_of(cei.id),
                product,
                "seed {seed}: {} combinations",
                cei.id
            );
        }
        for (combo, &origin) in exp.instance.ceis.iter().zip(&exp.origin) {
            let orig = instance.cei(origin);
            assert_eq!(combo.size(), orig.size(), "seed {seed}");
            for (unit, window) in combo.eis.iter().zip(&orig.eis) {
                assert_eq!(unit.resource, window.resource, "seed {seed}");
                assert_eq!(unit.start, unit.end, "seed {seed}");
                assert!(
                    window.start <= unit.start && unit.end <= window.end,
                    "seed {seed}: combination escapes its origin window"
                );
            }
        }
    }
}

/// Unit-rank CEIs leave preemption nothing to preempt: the paper's P and NP
/// modes must coincide exactly (schedule, stats, and outcomes) — the
/// degenerate case where preemptive dominance holds with equality.
#[test]
fn preemptive_equals_non_preemptive_on_unit_rank_instances() {
    use webmon_core::model::InstanceBuilder;
    for seed in 0..conformance_cases() {
        let full = small_instance(seed, false);
        // Truncate every CEI to its first EI: rank-1, AND semantics.
        let mut b = InstanceBuilder::new(full.n_resources, full.epoch.len(), full.budget.clone());
        let p = b.profile();
        for cei in &full.ceis {
            let first = cei.eis[0];
            b.cei_from_eis(p, vec![first], Some(cei.release.min(first.start)));
        }
        let instance = b.build();
        for policy in [&SEdf as &dyn Policy, &Mrsf, &MEdf] {
            let pre = conformant_run(&instance, policy, EngineConfig::preemptive());
            let non = conformant_run(&instance, policy, EngineConfig::non_preemptive());
            assert_eq!(pre.schedule, non.schedule, "seed {seed}: {}", policy.name());
            assert_eq!(pre.stats, non.stats, "seed {seed}: {}", policy.name());
            assert_eq!(pre.outcomes, non.outcomes, "seed {seed}: {}", policy.name());
        }
    }
}

/// Where the modes *can* diverge (rank ≥ 2), preemption must not lose in
/// aggregate over the fixed corpus — a deterministic pin of the paper's
/// §V observation that preemptive execution dominates on average.
#[test]
fn preemptive_dominates_non_preemptive_in_corpus_aggregate() {
    let mut pre_total = 0u64;
    let mut non_total = 0u64;
    // Fixed prefix only: the aggregate must not drift when the corpus is
    // extended via WEBMON_CONFORMANCE_CASES.
    for seed in 0..BASE_CASES {
        let instance = small_instance(seed, true);
        let pre = OnlineEngine::run(&instance, &Mrsf, EngineConfig::preemptive());
        let non = OnlineEngine::run(&instance, &Mrsf, EngineConfig::non_preemptive());
        pre_total += pre.stats.ceis_captured;
        non_total += non.stats.ceis_captured;
    }
    assert!(
        pre_total >= non_total,
        "preemptive captured {pre_total} < non-preemptive {non_total} over the fixed corpus"
    );
}

/// Trace-replay differential: folding the persisted JSONL trace through the
/// pure re-derivation reproduces the live `RunMetrics` exactly — equal as
/// values and byte-for-byte in serialized form.
#[test]
fn trace_replay_reproduces_run_metrics_byte_for_byte() {
    for seed in 0..conformance_cases() {
        let instance = small_instance(seed, true);
        for config in [EngineConfig::preemptive(), EngineConfig::non_preemptive()] {
            let mut tee = Tee(MetricsObserver::new(), JsonlTraceObserver::new(Vec::new()));
            OnlineEngine::run_observed(&instance, &Mrsf, config, &mut tee);
            let Tee(metrics, trace) = tee;
            let live = metrics.finish();
            let bytes = trace.finish().expect("Vec<u8> sink cannot fail");
            let text = String::from_utf8(bytes).expect("trace is UTF-8");
            let replayed = replay_metrics(&text)
                .unwrap_or_else(|e| panic!("seed {seed}: trace failed to replay: {e}"));
            assert_eq!(live, replayed, "seed {seed}: replayed metrics diverged");
            assert_eq!(
                serde_json::to_string(&live).unwrap(),
                serde_json::to_string(&replayed).unwrap(),
                "seed {seed}: serialized metrics diverged"
            );
        }
    }
}

/// Mutation self-test on corpus instances: a deliberately corrupted stream
/// (extra probe outside every window, tampered spend) must be flagged — the
/// harness is not vacuously green.
#[test]
fn checker_flags_injected_corruption_on_corpus_instances() {
    struct Rec(Vec<Event>);
    impl Observer for Rec {
        fn on_event(&mut self, event: Event) {
            self.0.push(event);
        }
    }
    let mut flagged_probe = 0u32;
    let mut flagged_spent = 0u32;
    let mut checked = 0u32;
    for seed in 0..24 {
        let instance = small_instance(seed, true);
        if instance.budget.at(0) == 0 || instance.ceis.is_empty() {
            continue;
        }
        checked += 1;
        let config = EngineConfig::preemptive();
        let mut rec = Rec(Vec::new());
        OnlineEngine::run_observed(&instance, &Mrsf, config, &mut rec);

        // Mutation A: tamper with the reported spend of the last chronon.
        let mut tampered = rec.0.clone();
        for e in tampered.iter_mut().rev() {
            if let Event::ChrononEnd { spent, .. } = e {
                *spent += 1;
                break;
            }
        }
        let mut checker = InvariantObserver::new(&instance, config);
        for e in &tampered {
            checker.on_event(*e);
        }
        let report = checker.finish();
        if report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::SpentMismatch { .. }))
        {
            flagged_spent += 1;
        }

        // Mutation B: inject a probe into the final chronon; at best it is
        // over budget or outside every window, at worst both.
        let mut injected = rec.0.clone();
        let last_end = injected.len() - 1;
        let Event::ChrononEnd { t, .. } = injected[last_end] else {
            panic!("stream must close with ChrononEnd");
        };
        injected.insert(
            last_end,
            Event::ProbeIssued {
                t,
                resource: webmon_core::model::ResourceId(0),
                cost: instance.budget.at(t) + 1,
                shared_eis: 0,
            },
        );
        let mut checker = InvariantObserver::new(&instance, config);
        for e in &injected {
            checker.on_event(*e);
        }
        if !checker.finish().is_clean() {
            flagged_probe += 1;
        }
    }
    assert!(
        checked >= 8,
        "corpus prefix too degenerate: {checked} cases"
    );
    assert_eq!(
        flagged_spent, checked,
        "tampered spend went undetected on some instance"
    );
    assert_eq!(
        flagged_probe, checked,
        "injected probe went undetected on some instance"
    );
}
