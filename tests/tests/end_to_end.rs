//! End-to-end pipeline tests: trace generation → noise → workload →
//! scheduling → validation, across all crates.

use webmon_core::engine::{EngineConfig, OnlineEngine};
use webmon_core::model::{evaluate_schedule, Budget};
use webmon_core::policy::{MEdf, Mrsf, Policy, RandomPolicy, RoundRobin, SEdf, Wic};
use webmon_sim::{Experiment, ExperimentConfig, NoiseSpec, PolicyKind, PolicySpec, TraceSpec};
use webmon_streams::auction::AuctionTraceConfig;
use webmon_streams::fpn::{FpnModel, NoisyTrace};
use webmon_streams::news::NewsTraceConfig;
use webmon_streams::poisson::PoissonProcess;
use webmon_streams::rng::SimRng;
use webmon_workload::{generate, EiLength, RankSpec, WorkloadConfig};

fn pipeline_config() -> ExperimentConfig {
    ExperimentConfig {
        n_resources: 80,
        horizon: 400,
        budget: 1,
        workload: WorkloadConfig {
            n_profiles: 25,
            rank: RankSpec::UpTo { k: 4, beta: 0.5 },
            resource_alpha: 0.5,
            length: EiLength::Overwrite { max_len: Some(8) },
            distinct_resources: true,
            max_ceis: None,
            no_intra_resource_overlap: false,
        },
        trace: TraceSpec::Poisson { lambda: 12.0 },
        noise: None,
        repetitions: 3,
        seed: 777,
    }
}

#[test]
fn engine_stats_agree_with_schedule_reevaluation() {
    // The engine's incremental capture bookkeeping must agree exactly with
    // re-evaluating its emitted schedule from scratch.
    let exp = Experiment::materialize(pipeline_config());
    for w in exp.workloads() {
        for policy in [&SEdf as &dyn Policy, &Mrsf, &MEdf, &Wic::paper()] {
            for config in [EngineConfig::preemptive(), EngineConfig::non_preemptive()] {
                let run = OnlineEngine::run(&w.instance, policy, config);
                let reeval = evaluate_schedule(&w.instance, &run.schedule);
                assert_eq!(
                    run.stats.ceis_captured,
                    reeval.ceis_captured,
                    "{} {:?}: CEI capture mismatch",
                    policy.name(),
                    config
                );
                // The raw indicator can exceed the engine's count: probes
                // landing in windows of already-failed CEIs are credited by
                // the indicator but not by the engine.
                assert!(run.stats.eis_captured <= reeval.eis_captured);
                assert!(run.schedule.is_feasible(&w.instance.budget));
            }
        }
    }
}

#[test]
fn every_policy_resolves_every_cei() {
    let exp = Experiment::materialize(pipeline_config());
    let w = &exp.workloads()[0];
    for policy in [
        &SEdf as &dyn Policy,
        &Mrsf,
        &MEdf,
        &Wic::paper(),
        &RandomPolicy::new(1),
        &RoundRobin,
    ] {
        let run = OnlineEngine::run(&w.instance, policy, EngineConfig::preemptive());
        assert_eq!(
            run.stats.ceis_captured + run.stats.ceis_failed,
            run.stats.n_ceis,
            "{}",
            policy.name()
        );
        // Every probe captures at least the EI it was issued for.
        assert!(run.stats.eis_captured >= run.stats.probes_used);
    }
}

#[test]
fn full_experiment_is_deterministic_across_processes() {
    let a = Experiment::materialize(pipeline_config()).run_spec(PolicySpec::p(PolicyKind::MEdf));
    let b = Experiment::materialize(pipeline_config()).run_spec(PolicySpec::p(PolicyKind::MEdf));
    assert_eq!(a.completeness.mean, b.completeness.mean);
    assert_eq!(a.ei_completeness.mean, b.ei_completeness.mean);
}

#[test]
fn noisy_pipeline_validates_against_truth() {
    let mut cfg = pipeline_config();
    cfg.noise = Some(NoiseSpec::Fpn(FpnModel::new(0.5, 6)));
    let exp = Experiment::materialize(cfg);
    for w in exp.workloads() {
        // Predicted and truth instances pair CEIs one-to-one.
        assert_eq!(w.instance.ceis.len(), w.truth.ceis.len());
        for (p, t) in w.instance.ceis.iter().zip(&w.truth.ceis) {
            assert_eq!(p.id, t.id);
            assert_eq!(p.size(), t.size());
            for (pe, te) in p.eis.iter().zip(&t.eis) {
                assert_eq!(pe.resource, te.resource);
            }
        }
        // Truth-validated completeness never exceeds scheduled completeness
        // by more than chance would allow; both stay in [0, 1].
        let run = OnlineEngine::run(&w.instance, &MEdf, EngineConfig::preemptive());
        let truth_stats = evaluate_schedule(&w.truth, &run.schedule);
        assert!(truth_stats.completeness() <= 1.0);
        assert!(truth_stats.ceis_captured <= run.stats.ceis_captured + w.truth.ceis.len() as u64);
    }
}

#[test]
fn auction_and_news_traces_drive_the_same_pipeline() {
    for trace in [
        TraceSpec::Auction(AuctionTraceConfig::scaled(60, 400)),
        TraceSpec::News(NewsTraceConfig::scaled(30, 400)),
    ] {
        let mut cfg = pipeline_config();
        cfg.trace = trace;
        cfg.workload.max_ceis = Some(2000);
        let exp = Experiment::materialize(cfg);
        let agg = exp.run_spec(PolicySpec::p(PolicyKind::Mrsf));
        assert!(agg.completeness.mean > 0.0 && agg.completeness.mean <= 1.0);
    }
}

#[test]
fn workload_generation_without_sim_layer() {
    // The workload crate is usable directly against streams + core.
    let trace = PoissonProcess::new(10.0).sample_trace(20, 300, &SimRng::new(5));
    let noisy = NoisyTrace::exact(&trace);
    let cfg = WorkloadConfig {
        n_profiles: 8,
        rank: RankSpec::Fixed(2),
        resource_alpha: 0.0,
        length: EiLength::Window(4),
        distinct_resources: true,
        max_ceis: None,
        no_intra_resource_overlap: false,
    };
    let w = generate(&cfg, &noisy, Budget::Uniform(2), &SimRng::new(6));
    let run = OnlineEngine::run(&w.instance, &Mrsf, EngineConfig::preemptive());
    assert_eq!(
        run.stats.ceis_captured + run.stats.ceis_failed,
        w.instance.ceis.len() as u64
    );
}
