//! Deterministic regression tests pinning the shrunk counterexamples from
//! the checked-in `*.proptest-regressions` files, plus the engine-vs-
//! re-evaluation outcome agreement those shrinks originally violated.
//!
//! The property tests sample fresh instances each run; these tests replay
//! the historical failures exactly, so they keep guarding the fixes even
//! if the sampler never revisits the same corner.

use webmon_core::engine::{EngineConfig, OnlineEngine};
use webmon_core::model::{
    evaluate_outcomes, evaluate_schedule, Budget, Chronon, Instance, InstanceBuilder, ProbeCosts,
};
use webmon_core::policy::{MEdf, Mrsf, MrsfExact, Policy, SEdf, UtilityWeighted, Wic};
use webmon_core::stats::CeiOutcome;

/// `properties.proptest-regressions`: one rank-2 CEI released at 3 with two
/// single-chronon EIs on distinct resources, both windowed to exactly
/// chronon 3, under a budget of `c` probes per chronon.
fn properties_shrunk_instance(budget: u32) -> Instance {
    let mut b = InstanceBuilder::new(5, 40, Budget::Uniform(budget));
    let p = b.profile();
    b.cei_released(p, 3, &[(0, 3, 3), (1, 3, 3)]);
    b.build()
}

/// A threshold CEI spec as `(eis, required-percentage, weight)`, mirroring
/// the generator in `extension_properties.rs`.
type CeiSpec = (Vec<(u32, Chronon, Chronon)>, u8, f32);

/// `extension_properties.proptest-regressions`: replay the shrunk threshold
/// CEI specs into an instance.
fn extension_instance(specs: &[CeiSpec], budget: u32, costs: bool) -> Instance {
    let mut b = InstanceBuilder::new(4, 24, Budget::Uniform(budget));
    let p = b.profile();
    for (eis, frac, _) in specs {
        let size = eis.len() as u16;
        let required = ((u16::from(*frac) * size).div_ceil(100)).clamp(1, size);
        b.cei_threshold(p, required, eis);
    }
    let mut inst = b.build();
    for (cei, (_, _, weight)) in inst.ceis.iter_mut().zip(specs) {
        *cei = cei.clone().with_weight(*weight);
    }
    if costs {
        inst = inst.with_costs(ProbeCosts::per_resource(vec![1, 2, 1, 3]));
    }
    inst
}

/// The core-engine invariants from `properties.rs::engine_invariants`,
/// applied to one instance across all policies and both modes.
fn assert_engine_invariants(instance: &Instance) {
    for policy in [&SEdf as &dyn Policy, &Mrsf, &MEdf, &Wic::paper()] {
        for config in [EngineConfig::preemptive(), EngineConfig::non_preemptive()] {
            let run = OnlineEngine::run(instance, policy, config);
            assert!(run.schedule.is_feasible(&instance.budget));
            assert_eq!(
                run.stats.ceis_captured + run.stats.ceis_failed,
                run.stats.n_ceis
            );
            let reeval = evaluate_schedule(instance, &run.schedule);
            assert_eq!(run.stats.ceis_captured, reeval.ceis_captured);
            assert!(run.stats.eis_captured <= reeval.eis_captured);
        }
    }
}

#[test]
fn shrunk_rank2_simultaneous_deadline_instance() {
    for budget in [1, 2] {
        assert_engine_invariants(&properties_shrunk_instance(budget));
    }
    // Scan and lazy-heap must take the same tie-break when both EIs carry
    // identical scores at chronon 3.
    let instance = properties_shrunk_instance(1);
    for policy in [&SEdf as &dyn Policy, &Mrsf, &MEdf, &Wic::paper()] {
        for base in [EngineConfig::preemptive(), EngineConfig::non_preemptive()] {
            let scan = OnlineEngine::run(&instance, policy, base);
            let heap = OnlineEngine::run(&instance, policy, base.with_lazy_heap());
            assert_eq!(scan.schedule, heap.schedule);
            assert_eq!(scan.stats, heap.stats);
        }
    }
    // Budget 1 cannot satisfy two simultaneous single-chronon windows;
    // budget 2 captures both with probes at chronon 3.
    let one = OnlineEngine::run(
        &properties_shrunk_instance(1),
        &Mrsf,
        EngineConfig::preemptive(),
    );
    let two = OnlineEngine::run(
        &properties_shrunk_instance(2),
        &Mrsf,
        EngineConfig::preemptive(),
    );
    assert_eq!(one.stats.ceis_captured, 0);
    assert_eq!(one.outcomes[0], CeiOutcome::Failed { at: 3 });
    assert_eq!(two.stats.ceis_captured, 1);
    assert_eq!(two.outcomes[0], CeiOutcome::Captured { at: 3 });
}

/// The extension-engine invariants from
/// `extension_properties.rs::engine_invariants_under_extensions`.
fn assert_extension_invariants(instance: &Instance) {
    let u_mrsf = UtilityWeighted::new(Mrsf, "U-MRSF");
    for policy in [&SEdf as &dyn Policy, &Mrsf, &MrsfExact, &MEdf, &u_mrsf] {
        for config in [EngineConfig::preemptive(), EngineConfig::non_preemptive()] {
            let run = OnlineEngine::run(instance, policy, config);
            assert!(run.schedule.is_feasible(&instance.budget) || !instance.costs.is_uniform());
            assert_eq!(
                run.stats.ceis_captured + run.stats.ceis_failed,
                run.stats.n_ceis
            );
            let reeval = evaluate_schedule(instance, &run.schedule);
            assert_eq!(run.stats.ceis_captured, reeval.ceis_captured);
            assert!(run.stats.weight_captured <= run.stats.weight_total + 1e-9);
            assert!(run.stats.weighted_completeness() - 1.0 < 1e-9);
        }
    }
}

#[test]
fn shrunk_threshold_overlap_instance() {
    // Two EIs of one 1-of-2 CEI overlap on resource 0, so a single shared
    // probe can capture both EIs at once; the other CEIs contend for the
    // single probe per chronon.
    let instance = extension_instance(
        &[
            (vec![(0, 9, 10), (0, 8, 10)], 1, 1.0),
            (vec![(0, 0, 0)], 1, 1.0),
            (vec![(1, 8, 8)], 1, 1.0),
        ],
        1,
        false,
    );
    assert_extension_invariants(&instance);
}

#[test]
fn shrunk_identical_single_chronon_pair_instance() {
    // A 1-of-2 CEI whose EIs are *identical* single-chronon windows: one
    // probe at chronon 14 captures both EIs simultaneously and must record
    // the CEI captured exactly once.
    let instance = extension_instance(&[(vec![(0, 14, 14), (0, 14, 14)], 1, 1.0)], 1, false);
    assert_extension_invariants(&instance);
    let run = OnlineEngine::run(&instance, &Mrsf, EngineConfig::preemptive());
    assert_eq!(run.stats.ceis_captured, 1);
    assert_eq!(run.stats.eis_captured, 2);
    assert_eq!(run.outcomes[0], CeiOutcome::Captured { at: 14 });
}

/// On clean (noise-free) runs the engine's per-CEI outcomes and a
/// from-scratch re-evaluation of its schedule must agree exactly —
/// including the `at` chronons, which `evaluate_schedule` used to get
/// wrong (it reported window ends for captures and the earliest deadline
/// over *all* EIs, captured or not, for failures).
#[test]
fn engine_outcomes_match_reevaluation_on_clean_runs() {
    let instances = vec![
        properties_shrunk_instance(1),
        properties_shrunk_instance(2),
        extension_instance(
            &[
                (vec![(0, 9, 10), (0, 8, 10)], 1, 1.0),
                (vec![(0, 0, 0)], 1, 1.0),
                (vec![(1, 8, 8)], 1, 1.0),
            ],
            1,
            false,
        ),
        extension_instance(&[(vec![(0, 14, 14), (0, 14, 14)], 1, 1.0)], 1, false),
        // A denser mixed instance: staggered windows, a threshold CEI, and
        // a CEI whose earliest-deadline EI is captured while a later one
        // fails (the exact shape the old `Failed { at }` got wrong).
        {
            let mut b = InstanceBuilder::new(4, 24, Budget::Uniform(1));
            let p = b.profile();
            b.cei(p, &[(0, 0, 4)]);
            b.cei(p, &[(1, 0, 2), (2, 10, 12)]);
            b.cei(p, &[(0, 6, 9), (1, 6, 9), (3, 7, 9)]);
            b.cei_threshold(p, 2, &[(0, 12, 15), (1, 12, 15), (2, 14, 17)]);
            b.cei(p, &[(3, 18, 18), (2, 18, 20)]);
            b.build()
        },
    ];
    for instance in &instances {
        for policy in [&SEdf as &dyn Policy, &Mrsf, &MEdf, &Wic::paper()] {
            for config in [
                EngineConfig::preemptive(),
                EngineConfig::non_preemptive(),
                EngineConfig::preemptive().with_lazy_heap(),
            ] {
                let run = OnlineEngine::run(instance, policy, config);
                let reeval = evaluate_outcomes(instance, &run.schedule);
                assert_eq!(
                    run.outcomes,
                    reeval,
                    "outcomes diverged for {} under {}",
                    policy.name(),
                    config.label()
                );
            }
        }
    }
}
