//! Deterministic regression tests pinning the shrunk counterexamples that
//! were once stored in the two `*.proptest-regressions` files, plus the
//! engine-vs-re-evaluation outcome agreement those shrinks originally
//! violated.
//!
//! The property tests sample fresh instances each run (the vendored
//! proptest does not replay regression files), so these tests replay the
//! historical failures exactly — they keep guarding the fixes even if the
//! sampler never revisits the same corner, and they survive generator
//! refactors because each case is spelled out as a literal spec. The
//! builders are shared with the live generators via
//! `webmon_testkit::strategies`, so a spec here is constructed precisely
//! the way the original generated case was.

use webmon_core::engine::{EngineConfig, OnlineEngine};
use webmon_core::model::{evaluate_outcomes, Budget, Instance, InstanceBuilder};
use webmon_core::policy::{MEdf, Mrsf, Policy, SEdf, Wic};
use webmon_core::stats::CeiOutcome;
use webmon_testkit::checks::{assert_engine_invariants, assert_extension_invariants};
use webmon_testkit::strategies::extension_instance;

/// `properties.proptest-regressions` (cc 5df6c7…): one rank-2 CEI released at
/// 3 with two single-chronon EIs on distinct resources, both windowed to
/// exactly chronon 3, under a budget of `c` probes per chronon.
///
/// Invariant it broke: the engine recorded the CEI *captured* while its
/// schedule re-evaluation said *failed* — probing one of two simultaneous
/// single-chronon deadlines must fail the CEI, consistently in both the
/// live bookkeeping and `evaluate_schedule`.
fn properties_shrunk_instance(budget: u32) -> Instance {
    let mut b = InstanceBuilder::new(5, 40, Budget::Uniform(budget));
    let p = b.profile();
    b.cei_released(p, 3, &[(0, 3, 3), (1, 3, 3)]);
    b.build()
}

#[test]
fn shrunk_rank2_simultaneous_deadline_instance() {
    for budget in [1, 2] {
        assert_engine_invariants(&properties_shrunk_instance(budget));
    }
    // Scan and lazy-heap must take the same tie-break when both EIs carry
    // identical scores at chronon 3.
    let instance = properties_shrunk_instance(1);
    for policy in [&SEdf as &dyn Policy, &Mrsf, &MEdf, &Wic::paper()] {
        for base in [EngineConfig::preemptive(), EngineConfig::non_preemptive()] {
            let scan = OnlineEngine::run(&instance, policy, base);
            let heap = OnlineEngine::run(&instance, policy, base.with_lazy_heap());
            assert_eq!(scan.schedule, heap.schedule);
            assert_eq!(scan.stats, heap.stats);
        }
    }
    // Budget 1 cannot satisfy two simultaneous single-chronon windows;
    // budget 2 captures both with probes at chronon 3.
    let one = OnlineEngine::run(
        &properties_shrunk_instance(1),
        &Mrsf,
        EngineConfig::preemptive(),
    );
    let two = OnlineEngine::run(
        &properties_shrunk_instance(2),
        &Mrsf,
        EngineConfig::preemptive(),
    );
    assert_eq!(one.stats.ceis_captured, 0);
    assert_eq!(one.outcomes[0], CeiOutcome::Failed { at: 3 });
    assert_eq!(two.stats.ceis_captured, 1);
    assert_eq!(two.outcomes[0], CeiOutcome::Captured { at: 3 });
}

/// `extension_properties.proptest-regressions` (cc 8ba050…): two EIs of one
/// 1-of-2 threshold CEI overlap on resource 0, so a single shared probe can
/// capture both EIs at once, while two more CEIs contend for the single
/// probe per chronon.
///
/// Invariant it broke: with intra-resource sharing, one probe crossing the
/// threshold via *two* simultaneous captures double-counted the CEI in the
/// capture bookkeeping (`ceis_captured` disagreed with re-evaluation).
#[test]
fn shrunk_threshold_overlap_instance() {
    let instance = extension_instance(
        &[
            (vec![(0, 9, 10), (0, 8, 10)], 1, 1.0),
            (vec![(0, 0, 0)], 1, 1.0),
            (vec![(1, 8, 8)], 1, 1.0),
        ],
        1,
        false,
    );
    assert_extension_invariants(&instance);
}

/// `extension_properties.proptest-regressions` (cc 69520a…): a 1-of-2
/// threshold CEI whose EIs are *identical* single-chronon windows.
///
/// Invariant it broke: one probe at chronon 14 captures both EIs
/// simultaneously and must record the CEI captured exactly once — the
/// shrink exposed a completion being counted per captured EI instead of
/// per threshold crossing.
#[test]
fn shrunk_identical_single_chronon_pair_instance() {
    let instance = extension_instance(&[(vec![(0, 14, 14), (0, 14, 14)], 1, 1.0)], 1, false);
    assert_extension_invariants(&instance);
    let run = OnlineEngine::run(&instance, &Mrsf, EngineConfig::preemptive());
    assert_eq!(run.stats.ceis_captured, 1);
    assert_eq!(run.stats.eis_captured, 2);
    assert_eq!(run.outcomes[0], CeiOutcome::Captured { at: 14 });
}

/// On clean (noise-free) runs the engine's per-CEI outcomes and a
/// from-scratch re-evaluation of its schedule must agree exactly —
/// including the `at` chronons, which `evaluate_schedule` used to get
/// wrong (it reported window ends for captures and the earliest deadline
/// over *all* EIs, captured or not, for failures).
#[test]
fn engine_outcomes_match_reevaluation_on_clean_runs() {
    let instances = vec![
        properties_shrunk_instance(1),
        properties_shrunk_instance(2),
        extension_instance(
            &[
                (vec![(0, 9, 10), (0, 8, 10)], 1, 1.0),
                (vec![(0, 0, 0)], 1, 1.0),
                (vec![(1, 8, 8)], 1, 1.0),
            ],
            1,
            false,
        ),
        extension_instance(&[(vec![(0, 14, 14), (0, 14, 14)], 1, 1.0)], 1, false),
        // A denser mixed instance: staggered windows, a threshold CEI, and
        // a CEI whose earliest-deadline EI is captured while a later one
        // fails (the exact shape the old `Failed { at }` got wrong).
        {
            let mut b = InstanceBuilder::new(4, 24, Budget::Uniform(1));
            let p = b.profile();
            b.cei(p, &[(0, 0, 4)]);
            b.cei(p, &[(1, 0, 2), (2, 10, 12)]);
            b.cei(p, &[(0, 6, 9), (1, 6, 9), (3, 7, 9)]);
            b.cei_threshold(p, 2, &[(0, 12, 15), (1, 12, 15), (2, 14, 17)]);
            b.cei(p, &[(3, 18, 18), (2, 18, 20)]);
            b.build()
        },
    ];
    for instance in &instances {
        for policy in [&SEdf as &dyn Policy, &Mrsf, &MEdf, &Wic::paper()] {
            for config in [
                EngineConfig::preemptive(),
                EngineConfig::non_preemptive(),
                EngineConfig::preemptive().with_lazy_heap(),
            ] {
                let run = OnlineEngine::run(instance, policy, config);
                let reeval = evaluate_outcomes(instance, &run.schedule);
                assert_eq!(
                    run.outcomes,
                    reeval,
                    "outcomes diverged for {} under {}",
                    policy.name(),
                    config.label()
                );
            }
        }
    }
}
