//! Cross-crate invariant bundles shared by the property, regression, and
//! conformance suites.
//!
//! Every bundle drives the engine through
//! [`webmon_core::check::InvariantObserver`] as well as
//! the post-hoc re-evaluation checks, so each property case doubles as a
//! live conformance case.

use webmon_core::check::InvariantObserver;
use webmon_core::engine::{EngineConfig, MutationQueue, OnlineEngine, RunResult};
use webmon_core::fault::{FaultConfig, FaultModel, NoFaults};
use webmon_core::model::{evaluate_schedule, Instance};
use webmon_core::policy::{MEdf, Mrsf, MrsfExact, Policy, SEdf, UtilityWeighted, Wic};

/// Runs `policy` under `config` with the invariant checker attached and
/// panics (with the violation report) on any divergence. Returns the run.
pub fn conformant_run(instance: &Instance, policy: &dyn Policy, config: EngineConfig) -> RunResult {
    let mut checker = InvariantObserver::new(instance, config);
    let run = OnlineEngine::run_observed(instance, policy, config, &mut checker);
    let report = checker.finish_with(&run);
    assert!(
        report.is_clean(),
        "{} under {}: {report}",
        policy.name(),
        config.label()
    );
    run
}

/// The fault-injected twin of [`conformant_run`]: drives the engine through
/// `faults` with a fault-aware invariant checker attached and panics on any
/// violation. Returns the run.
pub fn conformant_faulted_run<F: FaultModel>(
    instance: &Instance,
    policy: &dyn Policy,
    config: EngineConfig,
    faults: &mut F,
    fault_config: FaultConfig,
) -> RunResult {
    let mut checker = InvariantObserver::new(instance, config).with_faults(fault_config);
    let run =
        OnlineEngine::run_faulted(instance, policy, config, faults, fault_config, &mut checker);
    let report = checker.finish_with(&run);
    assert!(
        report.is_clean(),
        "{} under {} (faulted): {report}",
        policy.name(),
        config.label()
    );
    run
}

/// The churned twin of [`conformant_run`]: drains `mutations` through
/// [`OnlineEngine::run_mutated`] with a churn-aware invariant checker
/// attached and panics on any violation. Returns the run.
pub fn conformant_churned_run(
    instance: &Instance,
    policy: &dyn Policy,
    config: EngineConfig,
    mutations: &MutationQueue,
) -> RunResult {
    let mut checker = InvariantObserver::new(instance, config).with_mutations(mutations);
    let run = OnlineEngine::run_mutated(
        instance,
        policy,
        config,
        &mut NoFaults,
        FaultConfig::default(),
        mutations,
        &mut checker,
    );
    let report = checker.finish_with(&run);
    assert!(
        report.is_clean(),
        "{} under {} (churned): {report}",
        policy.name(),
        config.label()
    );
    run
}

/// The core-engine invariants (originally `properties.rs::engine_invariants`):
/// feasible schedules, complete resolution, agreement with a from-scratch
/// re-evaluation — plus a clean invariant-checker report — for every paper
/// policy in both execution modes.
pub fn assert_engine_invariants(instance: &Instance) {
    for policy in [&SEdf as &dyn Policy, &Mrsf, &MEdf, &Wic::paper()] {
        for config in [EngineConfig::preemptive(), EngineConfig::non_preemptive()] {
            let run = conformant_run(instance, policy, config);
            assert!(run.schedule.is_feasible(&instance.budget));
            assert_eq!(
                run.stats.ceis_captured + run.stats.ceis_failed,
                run.stats.n_ceis
            );
            let reeval = evaluate_schedule(instance, &run.schedule);
            assert_eq!(run.stats.ceis_captured, reeval.ceis_captured);
            // Raw indicator counts EIs of failed CEIs too.
            assert!(run.stats.eis_captured <= reeval.eis_captured);
        }
    }
}

/// The extension-engine invariants (originally
/// `extension_properties.rs::engine_invariants_under_extensions`): the same
/// bundle under threshold semantics, utility weights, and probe costs.
pub fn assert_extension_invariants(instance: &Instance) {
    let u_mrsf = UtilityWeighted::new(Mrsf, "U-MRSF");
    for policy in [&SEdf as &dyn Policy, &Mrsf, &MrsfExact, &MEdf, &u_mrsf] {
        for config in [EngineConfig::preemptive(), EngineConfig::non_preemptive()] {
            let run = conformant_run(instance, policy, config);
            assert!(run.schedule.is_feasible(&instance.budget) || !instance.costs.is_uniform());
            assert_eq!(
                run.stats.ceis_captured + run.stats.ceis_failed,
                run.stats.n_ceis
            );
            let reeval = evaluate_schedule(instance, &run.schedule);
            assert_eq!(run.stats.ceis_captured, reeval.ceis_captured);
            assert!(run.stats.weight_captured <= run.stats.weight_total + 1e-9);
            assert!(run.stats.weighted_completeness() - 1.0 < 1e-9);
        }
    }
}
