//! # webmon-testkit
//!
//! The shared test kit behind the integration and conformance suites:
//!
//! * [`strategies`] — the proptest generators (AND CEIs, threshold CEI
//!   specs, whole instances) that the property-test files used to duplicate,
//!   plus the deterministic builders that replay generated specs.
//! * [`corpus`] — the fixed-seed conformance corpus: a self-contained
//!   deterministic RNG (independent of proptest's per-test seeding) and
//!   small-instance generators sized for exact offline enumeration.
//! * [`checks`] — cross-crate invariant bundles: every engine run is also
//!   driven through [`webmon_core::check::InvariantObserver`] so each
//!   property case doubles as a conformance case.
//!
//! The crate also hosts the integration tests themselves (in `tests/`);
//! everything here is test support, never shipped.

pub mod checks;
pub mod corpus;
pub mod strategies;
