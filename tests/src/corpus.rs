//! The fixed-seed conformance corpus.
//!
//! The differential harness needs a corpus that is *identical* on every
//! machine and CI run. The vendored proptest's RNG is seeded per test name
//! (and perturbable via `PROPTEST_RNG_SEED`), so it cannot provide that;
//! this module carries its own splitmix64 generator, seeded purely by the
//! case index.
//!
//! Instances are sized for exact offline enumeration (Prop. 4 is
//! exponential): few resources, short epochs, small budgets, and narrow
//! windows — while still covering thresholds, releases, shared windows,
//! and zero-budget chronons.

use webmon_core::model::{Budget, Chronon, Instance, InstanceBuilder};

/// Base number of conformance cases checked in CI (the acceptance floor is
/// 200; a few extra guard against future case-splitting).
pub const BASE_CASES: u64 = 240;

/// Total conformance cases to run: `WEBMON_CONFORMANCE_CASES` extends the
/// fixed corpus for local extended fuzzing, but can never shrink it below
/// [`BASE_CASES`] — CI always checks at least the fixed prefix.
pub fn conformance_cases() -> u64 {
    std::env::var("WEBMON_CONFORMANCE_CASES")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(BASE_CASES, |n| n.max(BASE_CASES))
}

/// A tiny deterministic RNG (splitmix64): identical output for identical
/// seeds on every platform, with no dependency on the proptest stub's
/// per-test-name seeding.
#[derive(Debug, Clone)]
pub struct CorpusRng {
    state: u64,
}

impl CorpusRng {
    /// Seeds the generator; equal seeds yield equal streams forever.
    pub fn new(seed: u64) -> Self {
        CorpusRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (`n > 0`; the slight modulo bias is irrelevant at
    /// test-corpus scale).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform in `lo..=hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    /// `true` with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// One corpus instance: 1–3 resources, a 4–10 chronon epoch, uniform
/// budget 0–2, and 1–4 CEIs of 1–2 EIs with windows of at most 3 chronons.
/// With `allow_threshold`, multi-EI CEIs sometimes get `required <` size
/// (disable for Prop. 5 expansion, which is AND-only); some CEIs get an
/// early release chronon.
pub fn small_instance(seed: u64, allow_threshold: bool) -> Instance {
    let mut rng = CorpusRng::new(seed);
    let n_resources = rng.range(1, 3) as u32;
    let horizon = rng.range(4, 10) as Chronon;
    let budget = rng.below(3) as u32;
    let n_ceis = rng.range(1, 4);

    let mut b = InstanceBuilder::new(n_resources, horizon, Budget::Uniform(budget));
    let p = b.profile();
    for _ in 0..n_ceis {
        let n_eis = rng.range(1, 2);
        let eis: Vec<(u32, Chronon, Chronon)> = (0..n_eis)
            .map(|_| {
                let r = rng.below(u64::from(n_resources)) as u32;
                let start = rng.below(u64::from(horizon)) as Chronon;
                let end = (start + rng.below(3) as Chronon).min(horizon - 1);
                (r, start, end)
            })
            .collect();
        let earliest = eis.iter().map(|&(_, s, _)| s).min().expect("non-empty");
        if allow_threshold && n_eis > 1 && rng.chance(40) {
            b.cei_threshold(p, rng.range(1, n_eis) as u16, &eis);
        } else if rng.chance(30) {
            b.cei_released(p, rng.below(u64::from(earliest) + 1) as Chronon, &eis);
        } else {
            b.cei(p, &eis);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        for seed in 0..32 {
            let a = small_instance(seed, true);
            let b = small_instance(seed, true);
            assert_eq!(a.ceis, b.ceis);
            assert_eq!(a.budget, b.budget);
            assert_eq!(a.epoch, b.epoch);
        }
    }

    #[test]
    fn and_only_corpus_has_no_thresholds() {
        for seed in 0..BASE_CASES {
            let inst = small_instance(seed, false);
            for cei in &inst.ceis {
                assert_eq!(usize::from(cei.required), cei.size());
            }
        }
    }

    #[test]
    fn corpus_covers_the_interesting_shapes() {
        let mut any_threshold = false;
        let mut any_release = false;
        let mut any_zero_budget = false;
        let mut any_multi_ei = false;
        for seed in 0..BASE_CASES {
            let inst = small_instance(seed, true);
            any_zero_budget |= inst.budget.at(0) == 0;
            for cei in &inst.ceis {
                any_threshold |= usize::from(cei.required) < cei.size();
                any_release |= cei.release < cei.earliest_start();
                any_multi_ei |= cei.size() > 1;
            }
        }
        assert!(any_threshold, "corpus never generated a threshold CEI");
        assert!(any_release, "corpus never generated an early release");
        assert!(any_zero_budget, "corpus never generated a zero budget");
        assert!(any_multi_ei, "corpus never generated a multi-EI CEI");
    }

    #[test]
    fn env_extension_never_shrinks_the_corpus() {
        assert!(conformance_cases() >= BASE_CASES);
    }
}
