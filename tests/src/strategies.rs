//! Shared proptest strategies and the deterministic builders that replay
//! generated specs into [`Instance`]s.
//!
//! These were previously duplicated across `tests/{properties,
//! extension_properties}.rs` and `regressions.rs`; keeping the generator and
//! its replay builder side by side means a shrunk counterexample can always
//! be pinned as a deterministic test without re-deriving the construction.

use proptest::prelude::*;
use std::collections::HashMap;
use webmon_core::model::{Budget, Chronon, Instance, InstanceBuilder, ProbeCosts};

/// Dimensions of the core (AND-semantics) generator.
pub const CORE_N_RESOURCES: u32 = 5;
/// Epoch length of the core generator.
pub const CORE_HORIZON: Chronon = 40;
/// Dimensions of the extension (threshold/weight/cost) generator.
pub const EXT_N_RESOURCES: u32 = 4;
/// Epoch length of the extension generator.
pub const EXT_HORIZON: Chronon = 24;

/// One generated EI as `(resource, start, end)`, end inclusive.
pub type EiSpec = (u32, Chronon, Chronon);

/// One generated extension CEI as `(eis, required-percentage, weight)`.
pub type CeiSpec = (Vec<EiSpec>, u8, f32);

/// Strategy: an AND-semantics CEI as 1..=`max_eis` `(resource, start, end)`
/// triples with window length `< len_bound`, clamped into the epoch.
pub fn and_cei_strategy(
    n_resources: u32,
    horizon: Chronon,
    max_eis: usize,
    len_bound: u32,
) -> impl Strategy<Value = Vec<EiSpec>> {
    prop::collection::vec(
        (0..n_resources, 0..horizon - len_bound, 0..len_bound),
        1..=max_eis,
    )
    .prop_map(move |eis| {
        eis.into_iter()
            .map(|(r, s, len)| (r, s, (s + len).min(horizon - 1)))
            .collect()
    })
}

/// The core CEI strategy: 1–4 EIs over 5 resources in a 40-chronon epoch.
pub fn core_cei_strategy() -> impl Strategy<Value = Vec<EiSpec>> {
    and_cei_strategy(CORE_N_RESOURCES, CORE_HORIZON, 4, 6)
}

/// Replays core CEI specs into an instance: CEIs round-robin over
/// `n_profiles` profiles under a uniform budget.
pub fn core_instance(ceis: &[Vec<EiSpec>], n_profiles: u32, budget: u32) -> Instance {
    let mut b = InstanceBuilder::new(CORE_N_RESOURCES, CORE_HORIZON, Budget::Uniform(budget));
    let profiles: Vec<_> = (0..n_profiles.max(1)).map(|_| b.profile()).collect();
    for (i, eis) in ceis.iter().enumerate() {
        b.cei(profiles[i % profiles.len()], eis);
    }
    b.build()
}

/// The core instance strategy: 1–12 CEIs over 1–3 profiles, budget 0–3.
pub fn core_instance_strategy() -> impl Strategy<Value = Instance> {
    (
        prop::collection::vec(core_cei_strategy(), 1..=12),
        1..=3u32,
        0..=3u32,
    )
        .prop_map(|(ceis, n_profiles, budget)| core_instance(&ceis, n_profiles, budget))
}

/// The extension CEI-spec strategy: 1–3 EIs over 4 resources in a
/// 24-chronon epoch, a required-percentage, and a utility weight.
pub fn extension_cei_strategy() -> impl Strategy<Value = CeiSpec> {
    (
        prop::collection::vec((0..EXT_N_RESOURCES, 0..EXT_HORIZON - 4, 0..4u32), 1..=3),
        1..=100u8,
        prop::sample::select(vec![1.0f32, 2.0, 5.0]),
    )
        .prop_map(|(eis, frac, weight)| {
            let eis = eis
                .into_iter()
                .map(|(r, s, len)| (r, s, (s + len).min(EXT_HORIZON - 1)))
                .collect();
            (eis, frac, weight)
        })
}

/// The threshold a required-percentage resolves to for a CEI of `size` EIs:
/// `ceil(frac% · size)`, clamped to `1..=size`.
pub fn threshold_from_percent(frac: u8, size: u16) -> u16 {
    ((u16::from(frac) * size).div_ceil(100)).clamp(1, size)
}

/// Replays extension CEI specs into an instance: threshold semantics from
/// the required-percentage, post-build weights, and (optionally) the fixed
/// non-uniform per-resource costs `[1, 2, 1, 3]`.
pub fn extension_instance(specs: &[CeiSpec], budget: u32, costs: bool) -> Instance {
    let mut b = InstanceBuilder::new(EXT_N_RESOURCES, EXT_HORIZON, Budget::Uniform(budget));
    let p = b.profile();
    for (eis, frac, _) in specs {
        b.cei_threshold(p, threshold_from_percent(*frac, eis.len() as u16), eis);
    }
    let mut inst = b.build();
    // Weights are applied post-build (builder ids are dense and in order).
    for (cei, (_, _, weight)) in inst.ceis.iter_mut().zip(specs) {
        *cei = cei.clone().with_weight(*weight);
    }
    if costs {
        inst = inst.with_costs(ProbeCosts::per_resource(vec![1, 2, 1, 3]));
    }
    inst
}

/// Rebuilds `instance` with a different uniform budget, preserving
/// profiles, releases, thresholds, weights, and costs.
pub fn rebuild_with_budget(instance: &Instance, budget: u32) -> Instance {
    let mut b = InstanceBuilder::new(
        instance.n_resources,
        instance.epoch.len(),
        Budget::Uniform(budget),
    );
    let mut profile_map = HashMap::new();
    for p in &instance.profiles {
        profile_map.insert(p.id, b.profile());
    }
    for cei in &instance.ceis {
        b.cei_from_eis(
            profile_map[&cei.profile],
            cei.eis.clone(),
            Some(cei.release),
        );
    }
    let mut out = b.build();
    for (rebuilt, orig) in out.ceis.iter_mut().zip(&instance.ceis) {
        *rebuilt = rebuilt
            .clone()
            .with_required(orig.required)
            .with_weight(orig.weight);
    }
    out.with_costs(instance.costs.clone())
}
