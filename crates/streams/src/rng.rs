//! Seeded, forkable randomness for reproducible traces and workloads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random source. Every generator in this workspace draws from a
/// `SimRng`, so a `(seed, config)` pair fully determines a trace, a
/// workload, and therefore an experiment row.
///
/// [`fork`](SimRng::fork) derives independent substreams from string labels,
/// so adding a new consumer of randomness does not perturb existing ones —
/// the property that keeps experiment tables stable across code evolution.
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    inner: StdRng,
}

impl SimRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SimRng {
            seed,
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent substream keyed by `label` (and the original
    /// seed). Forking never advances `self`.
    pub fn fork(&self, label: &str) -> SimRng {
        SimRng::new(mix(self.seed, label))
    }

    /// Derives an independent substream keyed by an index (e.g. a resource
    /// id or a repetition number).
    pub fn fork_indexed(&self, label: &str, index: u64) -> SimRng {
        SimRng::new(mix(self.seed, label).wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        self.inner.random_range(0..n)
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        self.inner.random_range(lo..=hi)
    }

    /// Bernoulli trial: `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.inner.random::<f64>() < p
    }

    /// Exponential variate with the given rate (mean `1/rate`).
    ///
    /// # Panics
    /// Panics if `rate <= 0`.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        // Inverse CDF on (0, 1]; 1 - f64() avoids ln(0).
        -(1.0 - self.f64()).ln() / rate
    }
}

/// Mixes a seed and a label into a new seed (FNV-1a over the label, then
/// SplitMix64 finalization).
fn mix(seed: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // SplitMix64 finalizer for avalanche.
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..10 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn forks_are_independent_of_parent_state() {
        let parent = SimRng::new(7);
        let mut f1 = parent.fork("auction");
        let mut parent2 = SimRng::new(7);
        // Drawing from the parent must not change what a fork yields.
        let mut p = parent;
        let _ = p.f64();
        let mut f2 = parent2.fork("auction");
        assert_eq!(f1.below(1_000_000), f2.below(1_000_000));
        let _ = parent2.f64();
    }

    #[test]
    fn distinct_labels_yield_distinct_streams() {
        let parent = SimRng::new(7);
        let mut a = parent.fork("auction");
        let mut b = parent.fork("news");
        let xs: Vec<u64> = (0..4).map(|_| a.below(u64::MAX)).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.below(u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn fork_indexed_varies_by_index() {
        let parent = SimRng::new(7);
        let mut a = parent.fork_indexed("res", 0);
        let mut b = parent.fork_indexed("res", 1);
        assert_ne!(a.below(u64::MAX), b.below(u64::MAX));
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut rng = SimRng::new(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn range_inclusive_hits_bounds() {
        let mut rng = SimRng::new(5);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            match rng.range_inclusive(1, 3) {
                1 => lo_seen = true,
                3 => hi_seen = true,
                2 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_rejected() {
        SimRng::new(1).below(0);
    }
}
