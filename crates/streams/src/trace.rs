//! Update-event traces: the `(resource, chronon)` streams that drive EI
//! generation.

use serde::{Deserialize, Serialize};

/// Chronon type re-exported for convenience (matches `webmon_core`).
pub type Chronon = u32;

/// A trace of update events: for each resource, the sorted, deduplicated
/// chronons at which the resource's content changed. This is the *only*
/// interface between a stream source (synthetic, auction, news) and the
/// workload generator — any source producing plausible `(resource, chronon)`
/// pairs exercises the identical scheduling code path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateTrace {
    horizon: Chronon,
    /// `events[r]` = sorted update chronons of resource `r`.
    events: Vec<Vec<Chronon>>,
}

impl UpdateTrace {
    /// An empty trace over `n_resources` resources and `horizon` chronons.
    pub fn new(n_resources: u32, horizon: Chronon) -> Self {
        assert!(horizon > 0, "trace horizon must be positive");
        UpdateTrace {
            horizon,
            events: vec![Vec::new(); n_resources as usize],
        }
    }

    /// Builds a trace from per-resource event lists (sorted + deduplicated
    /// internally).
    ///
    /// # Panics
    /// Panics if any event lies at or beyond `horizon`.
    pub fn from_events(horizon: Chronon, mut events: Vec<Vec<Chronon>>) -> Self {
        for (r, evs) in events.iter_mut().enumerate() {
            evs.sort_unstable();
            evs.dedup();
            if let Some(&last) = evs.last() {
                assert!(
                    last < horizon,
                    "resource {r}: event at {last} beyond horizon {horizon}"
                );
            }
        }
        UpdateTrace { horizon, events }
    }

    /// Number of resources.
    pub fn n_resources(&self) -> u32 {
        self.events.len() as u32
    }

    /// Epoch length in chronons.
    pub fn horizon(&self) -> Chronon {
        self.horizon
    }

    /// Adds an update event. Keeps the list sorted; idempotent.
    pub fn push(&mut self, resource: u32, t: Chronon) {
        assert!(t < self.horizon, "event at {t} beyond horizon");
        let evs = &mut self.events[resource as usize];
        match evs.binary_search(&t) {
            Ok(_) => {}
            Err(pos) => evs.insert(pos, t),
        }
    }

    /// The sorted update chronons of resource `r`.
    pub fn events_of(&self, resource: u32) -> &[Chronon] {
        &self.events[resource as usize]
    }

    /// `true` if resource `r` updates at chronon `t`.
    pub fn has_update_at(&self, resource: u32, t: Chronon) -> bool {
        self.events[resource as usize].binary_search(&t).is_ok()
    }

    /// The first update of `r` strictly after chronon `t`, if any.
    pub fn next_update_after(&self, resource: u32, t: Chronon) -> Option<Chronon> {
        let evs = &self.events[resource as usize];
        let idx = evs.partition_point(|&e| e <= t);
        evs.get(idx).copied()
    }

    /// Total number of update events across all resources.
    pub fn total_events(&self) -> u64 {
        self.events.iter().map(|e| e.len() as u64).sum()
    }

    /// Mean updates per resource (the empirical `λ` of the trace).
    pub fn mean_intensity(&self) -> f64 {
        if self.events.is_empty() {
            0.0
        } else {
            self.total_events() as f64 / self.events.len() as f64
        }
    }

    /// Iterates `(resource, chronon)` over all events, resource-major.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Chronon)> + '_ {
        self.events
            .iter()
            .enumerate()
            .flat_map(|(r, evs)| evs.iter().map(move |&t| (r as u32, t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_events_sorts_and_dedupes() {
        let t = UpdateTrace::from_events(10, vec![vec![5, 1, 5, 3]]);
        assert_eq!(t.events_of(0), &[1, 3, 5]);
        assert_eq!(t.total_events(), 3);
    }

    #[test]
    #[should_panic(expected = "beyond horizon")]
    fn event_past_horizon_rejected() {
        let _ = UpdateTrace::from_events(10, vec![vec![10]]);
    }

    #[test]
    fn push_keeps_sorted_and_dedupes() {
        let mut t = UpdateTrace::new(2, 10);
        t.push(0, 7);
        t.push(0, 2);
        t.push(0, 7);
        assert_eq!(t.events_of(0), &[2, 7]);
        assert!(t.events_of(1).is_empty());
    }

    #[test]
    fn has_update_and_next_update() {
        let t = UpdateTrace::from_events(20, vec![vec![3, 9, 15]]);
        assert!(t.has_update_at(0, 9));
        assert!(!t.has_update_at(0, 10));
        assert_eq!(t.next_update_after(0, 3), Some(9));
        assert_eq!(t.next_update_after(0, 2), Some(3));
        assert_eq!(t.next_update_after(0, 15), None);
    }

    #[test]
    fn intensity_is_mean_events_per_resource() {
        let t = UpdateTrace::from_events(10, vec![vec![1, 2, 3], vec![4]]);
        assert!((t.mean_intensity() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn iter_is_resource_major() {
        let t = UpdateTrace::from_events(10, vec![vec![2, 4], vec![1]]);
        let all: Vec<_> = t.iter().collect();
        assert_eq!(all, vec![(0, 2), (0, 4), (1, 1)]);
    }
}
