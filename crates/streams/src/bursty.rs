//! Bursty update-event processes: diurnal on/off modulation and
//! Pareto-burst interarrivals.
//!
//! The paper's synthetic evaluation drives every resource with a
//! *homogeneous* Poisson stream; real web sources are anything but. Blog
//! and feed crawling studies (see PAPERS.md, "Continuous Web Monitoring
//! Through Online Crawling of Blogs") document a strong day/night cycle and
//! heavy-tailed inter-update gaps. This module supplies both shapes while
//! keeping the epoch-level mean rate comparable to the Poisson baseline, so
//! skew experiments vary *when* updates land without changing *how many*:
//!
//! * [`DiurnalConfig`] — a Poisson process whose rate switches between an
//!   on-phase ("day") and a damped off-phase ("night") with a fixed period,
//!   sampled by Lewis–Shedler thinning;
//! * [`ParetoBurstConfig`] — i.i.d. Pareto inter-arrival gaps: many short
//!   gaps (bursts) separated by occasional very long silences.
//!
//! [`UpdateModel`] is the serde-facing sum of the three synthetic models
//! (Poisson / Diurnal / ParetoBurst) consumed by the declarative
//! `WorkloadSpec`; its Poisson arm delegates to [`PoissonProcess`] with the
//! identical per-resource fork labels, so a spec-driven Poisson trace is
//! bit-identical to the legacy one.

use crate::poisson::PoissonProcess;
use crate::rng::SimRng;
use crate::trace::{Chronon, UpdateTrace};
use serde::{Deserialize, Serialize};

/// A structured validation error for bursty-model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstyError {
    /// The offending parameter name.
    pub field: &'static str,
    /// The rejected value, rendered for diagnostics.
    pub value: String,
    /// What the parameter must satisfy.
    pub expected: &'static str,
}

impl std::fmt::Display for BurstyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: got {}, expected {}",
            self.field, self.value, self.expected
        )
    }
}

impl std::error::Error for BurstyError {}

fn bad(field: &'static str, value: impl std::fmt::Display, expected: &'static str) -> BurstyError {
    BurstyError {
        field,
        value: value.to_string(),
        expected,
    }
}

/// A diurnally modulated Poisson process: the instantaneous rate is high for
/// the first `duty` fraction of every `period` chronons (the on-phase) and
/// damped to `night_level` of the peak for the rest. The peak rate is chosen
/// so the *epoch mean* stays `rate_per_epoch` regardless of duty cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalConfig {
    /// Expected number of events over the whole epoch (as for Poisson).
    pub rate_per_epoch: f64,
    /// Cycle length in chronons.
    pub period: Chronon,
    /// Fraction of each period spent in the on-phase, in `(0, 1]`.
    pub duty: f64,
    /// Off-phase rate as a fraction of the peak rate, in `[0, 1]`.
    /// `0` silences the night entirely; `1` degenerates to homogeneous.
    pub night_level: f64,
}

impl DiurnalConfig {
    /// Validates every parameter, returning the first violation.
    pub fn validate(&self) -> Result<(), BurstyError> {
        if !(self.rate_per_epoch.is_finite() && self.rate_per_epoch >= 0.0) {
            return Err(bad(
                "rate_per_epoch",
                self.rate_per_epoch,
                "a finite non-negative rate",
            ));
        }
        if self.period == 0 {
            return Err(bad("period", self.period, "a positive cycle length"));
        }
        if !(self.duty.is_finite() && self.duty > 0.0 && self.duty <= 1.0) {
            return Err(bad("duty", self.duty, "a duty cycle in (0, 1]"));
        }
        if !(self.night_level.is_finite() && (0.0..=1.0).contains(&self.night_level)) {
            return Err(bad("night_level", self.night_level, "a damping in [0, 1]"));
        }
        Ok(())
    }

    /// Samples event chronons over `0..horizon` (sorted, deduplicated at
    /// chronon granularity) by thinning a homogeneous process at the peak
    /// rate: an arrival in the off-phase survives with chance `night_level`.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see [`Self::validate`]).
    pub fn sample(&self, horizon: Chronon, rng: &mut SimRng) -> Vec<Chronon> {
        self.validate().unwrap_or_else(|e| panic!("diurnal {e}"));
        if self.rate_per_epoch == 0.0 {
            return Vec::new();
        }
        // mean = peak * (duty + night_level * (1 - duty))  ⇒  solve for peak.
        let dilution = self.duty + self.night_level * (1.0 - self.duty);
        let peak_per_chronon = self.rate_per_epoch / f64::from(horizon) / dilution;
        let on_span = self.duty * f64::from(self.period);
        let mut events = Vec::new();
        let mut t = 0.0;
        loop {
            t += rng.exponential(peak_per_chronon);
            if t >= f64::from(horizon) {
                break;
            }
            let phase = t % f64::from(self.period);
            if phase < on_span || rng.chance(self.night_level) {
                events.push(t as Chronon);
            }
        }
        events.dedup();
        events
    }

    /// Samples a full trace: one independent process per resource.
    pub fn sample_trace(&self, n_resources: u32, horizon: Chronon, rng: &SimRng) -> UpdateTrace {
        let events = (0..n_resources)
            .map(|r| {
                let mut sub = rng.fork_indexed("diurnal-resource", u64::from(r));
                self.sample(horizon, &mut sub)
            })
            .collect();
        UpdateTrace::from_events(horizon, events)
    }
}

/// A renewal process with Pareto-distributed inter-arrival gaps: the shape
/// parameter controls tail weight (smaller shape → heavier tail → burstier
/// stream). The scale is chosen so the *mean gap* matches a Poisson process
/// of the same `rate_per_epoch`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParetoBurstConfig {
    /// Expected number of events over the whole epoch (as for Poisson).
    pub rate_per_epoch: f64,
    /// Pareto tail exponent; must exceed 1 so the mean gap is finite.
    /// Values near 1 are extremely bursty; large values approach constancy.
    pub shape: f64,
}

impl ParetoBurstConfig {
    /// Validates every parameter, returning the first violation.
    pub fn validate(&self) -> Result<(), BurstyError> {
        if !(self.rate_per_epoch.is_finite() && self.rate_per_epoch >= 0.0) {
            return Err(bad(
                "rate_per_epoch",
                self.rate_per_epoch,
                "a finite non-negative rate",
            ));
        }
        if !(self.shape.is_finite() && self.shape > 1.0) {
            return Err(bad("shape", self.shape, "a tail exponent > 1"));
        }
        Ok(())
    }

    /// Samples event chronons over `0..horizon` (sorted, deduplicated at
    /// chronon granularity) with i.i.d. Pareto gaps via inverse transform:
    /// `gap = x_m / u^(1/shape)` with `u ~ U(0, 1]`.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see [`Self::validate`]).
    pub fn sample(&self, horizon: Chronon, rng: &mut SimRng) -> Vec<Chronon> {
        self.validate()
            .unwrap_or_else(|e| panic!("pareto-burst {e}"));
        if self.rate_per_epoch == 0.0 {
            return Vec::new();
        }
        // E[gap] = shape * x_m / (shape - 1)  ⇒  match the Poisson mean gap.
        let mean_gap = f64::from(horizon) / self.rate_per_epoch;
        let x_m = mean_gap * (self.shape - 1.0) / self.shape;
        let mut events = Vec::new();
        let mut t = 0.0;
        loop {
            let u = 1.0 - rng.f64(); // in (0, 1] — never divides by zero
            t += x_m / u.powf(1.0 / self.shape);
            if t >= f64::from(horizon) {
                break;
            }
            events.push(t as Chronon);
        }
        events.dedup();
        events
    }

    /// Samples a full trace: one independent process per resource.
    pub fn sample_trace(&self, n_resources: u32, horizon: Chronon, rng: &SimRng) -> UpdateTrace {
        let events = (0..n_resources)
            .map(|r| {
                let mut sub = rng.fork_indexed("pareto-resource", u64::from(r));
                self.sample(horizon, &mut sub)
            })
            .collect();
        UpdateTrace::from_events(horizon, events)
    }
}

/// The synthetic update models a declarative workload spec can name.
///
/// The Poisson arm delegates to [`PoissonProcess::sample_trace`] with the
/// identical `"poisson-resource"` fork labels, so a spec that asks for
/// `Poisson` produces byte-identical traces to the legacy simulator path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum UpdateModel {
    /// Homogeneous Poisson at `lambda` expected events per epoch.
    Poisson {
        /// Expected number of events over the whole epoch.
        lambda: f64,
    },
    /// Diurnal on/off modulated Poisson (day/night cycle).
    Diurnal(DiurnalConfig),
    /// Pareto-burst interarrivals (heavy-tailed gaps).
    ParetoBurst(ParetoBurstConfig),
}

impl UpdateModel {
    /// Validates the model parameters, returning the first violation.
    pub fn validate(&self) -> Result<(), BurstyError> {
        match self {
            UpdateModel::Poisson { lambda } => {
                if lambda.is_finite() && *lambda >= 0.0 {
                    Ok(())
                } else {
                    Err(bad("lambda", lambda, "a finite non-negative rate"))
                }
            }
            UpdateModel::Diurnal(c) => c.validate(),
            UpdateModel::ParetoBurst(c) => c.validate(),
        }
    }

    /// Expected number of events per resource over the epoch.
    pub fn rate_per_epoch(&self) -> f64 {
        match self {
            UpdateModel::Poisson { lambda } => *lambda,
            UpdateModel::Diurnal(c) => c.rate_per_epoch,
            UpdateModel::ParetoBurst(c) => c.rate_per_epoch,
        }
    }

    /// Samples a full trace: one independent process per resource, forked
    /// from `rng` by a model-specific label.
    ///
    /// # Panics
    /// Panics if the model is invalid (see [`Self::validate`]).
    pub fn sample_trace(&self, n_resources: u32, horizon: Chronon, rng: &SimRng) -> UpdateTrace {
        match self {
            UpdateModel::Poisson { lambda } => {
                PoissonProcess::new(*lambda).sample_trace(n_resources, horizon, rng)
            }
            UpdateModel::Diurnal(c) => c.sample_trace(n_resources, horizon, rng),
            UpdateModel::ParetoBurst(c) => c.sample_trace(n_resources, horizon, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diurnal(duty: f64, night: f64) -> DiurnalConfig {
        DiurnalConfig {
            rate_per_epoch: 20.0,
            period: 100,
            duty,
            night_level: night,
        }
    }

    #[test]
    fn diurnal_mean_matches_rate_across_duty_cycles() {
        for duty in [1.0, 0.5, 0.25, 0.125] {
            let cfg = diurnal(duty, 0.1);
            let mut rng = SimRng::new(42);
            let reps = 400;
            let total: usize = (0..reps).map(|_| cfg.sample(1000, &mut rng).len()).sum();
            let mean = total as f64 / f64::from(reps);
            assert!(
                (mean - 20.0).abs() < 1.5,
                "duty {duty}: mean {mean} far from 20"
            );
        }
    }

    #[test]
    fn diurnal_concentrates_events_in_the_on_phase() {
        let cfg = diurnal(0.25, 0.05);
        let mut rng = SimRng::new(7);
        let mut on = 0usize;
        let mut total = 0usize;
        for _ in 0..200 {
            for t in cfg.sample(1000, &mut rng) {
                total += 1;
                if f64::from(t % cfg.period) < cfg.duty * f64::from(cfg.period) {
                    on += 1;
                }
            }
        }
        // Uniform would put 25% in the on-phase; thinning should push > 80%.
        let frac = on as f64 / total as f64;
        assert!(frac > 0.8, "only {frac:.2} of events in the on-phase");
    }

    #[test]
    fn diurnal_night_zero_silences_the_off_phase() {
        let cfg = diurnal(0.5, 0.0);
        let mut rng = SimRng::new(11);
        for t in cfg.sample(1000, &mut rng) {
            assert!(f64::from(t % cfg.period) < cfg.duty * f64::from(cfg.period));
        }
    }

    #[test]
    fn diurnal_full_duty_is_homogeneous_poisson_law() {
        // duty = 1 never enters the off-phase branch: peak == mean rate.
        let cfg = diurnal(1.0, 0.0);
        let mut rng = SimRng::new(13);
        let evs = cfg.sample(1000, &mut rng);
        assert!(evs.windows(2).all(|w| w[0] < w[1]));
        assert!(evs.iter().all(|&t| t < 1000));
    }

    #[test]
    fn pareto_mean_matches_rate() {
        let cfg = ParetoBurstConfig {
            rate_per_epoch: 20.0,
            shape: 1.5,
        };
        let mut rng = SimRng::new(42);
        let reps = 2000;
        let total: usize = (0..reps).map(|_| cfg.sample(1000, &mut rng).len()).sum();
        let mean = total as f64 / f64::from(reps);
        // Heavy tails converge slowly; a loose band still catches scale bugs.
        assert!((mean - 20.0).abs() < 3.0, "mean {mean} far from 20");
    }

    #[test]
    fn pareto_stream_is_burstier_than_poisson() {
        // Index of dispersion (variance/mean of per-bin counts): ~1 for a
        // Poisson stream, clearly above it for heavy-tailed interarrivals.
        let dispersion = |samples: &mut dyn FnMut(&mut SimRng) -> Vec<Chronon>| {
            let mut rng = SimRng::new(5);
            let mut counts: Vec<f64> = Vec::new();
            for _ in 0..100 {
                let mut bins = [0u32; 50]; // 20-chronon bins over 1000
                for t in samples(&mut rng) {
                    bins[(t / 20) as usize] += 1;
                }
                counts.extend(bins.iter().map(|&c| f64::from(c)));
            }
            let mean = counts.iter().sum::<f64>() / counts.len() as f64;
            let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / counts.len() as f64;
            var / mean
        };
        let cfg = ParetoBurstConfig {
            rate_per_epoch: 50.0,
            shape: 1.1,
        };
        let poisson = PoissonProcess::new(50.0);
        let d_pareto = dispersion(&mut |rng| cfg.sample(1000, rng));
        let d_poisson = dispersion(&mut |rng| poisson.sample(1000, rng));
        assert!(
            d_pareto > 1.5 * d_poisson,
            "pareto dispersion {d_pareto:.2} not clearly above poisson {d_poisson:.2}"
        );
    }

    #[test]
    fn traces_are_reproducible_and_per_resource_independent() {
        let d = diurnal(0.5, 0.1);
        let t1 = d.sample_trace(5, 500, &SimRng::new(3));
        let t2 = d.sample_trace(5, 500, &SimRng::new(3));
        assert_eq!(t1, t2);
        assert_ne!(t1.events_of(0), t1.events_of(1));

        let p = ParetoBurstConfig {
            rate_per_epoch: 10.0,
            shape: 2.0,
        };
        let t1 = p.sample_trace(5, 500, &SimRng::new(3));
        let t2 = p.sample_trace(5, 500, &SimRng::new(3));
        assert_eq!(t1, t2);
        assert_ne!(t1.events_of(0), t1.events_of(1));
    }

    #[test]
    fn update_model_poisson_is_bit_identical_to_legacy() {
        let legacy = PoissonProcess::new(20.0).sample_trace(8, 500, &SimRng::new(9));
        let via_model = UpdateModel::Poisson { lambda: 20.0 }.sample_trace(8, 500, &SimRng::new(9));
        assert_eq!(legacy, via_model);
    }

    #[test]
    fn zero_rates_yield_empty_streams() {
        let mut rng = SimRng::new(1);
        let d = DiurnalConfig {
            rate_per_epoch: 0.0,
            ..diurnal(0.5, 0.1)
        };
        assert!(d.sample(100, &mut rng).is_empty());
        let p = ParetoBurstConfig {
            rate_per_epoch: 0.0,
            shape: 2.0,
        };
        assert!(p.sample(100, &mut rng).is_empty());
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(diurnal(0.0, 0.1).validate().is_err());
        assert!(diurnal(1.5, 0.1).validate().is_err());
        assert!(diurnal(0.5, -0.1).validate().is_err());
        assert!(diurnal(0.5, f64::NAN).validate().is_err());
        let d = DiurnalConfig {
            period: 0,
            ..diurnal(0.5, 0.1)
        };
        assert!(d.validate().is_err());
        let d = DiurnalConfig {
            rate_per_epoch: -1.0,
            ..diurnal(0.5, 0.1)
        };
        assert!(d.validate().is_err());
        for shape in [1.0, 0.5, f64::INFINITY, f64::NAN] {
            let p = ParetoBurstConfig {
                rate_per_epoch: 10.0,
                shape,
            };
            assert!(p.validate().is_err(), "shape {shape} accepted");
        }
        assert!(UpdateModel::Poisson { lambda: -1.0 }.validate().is_err());
        assert!(UpdateModel::Poisson { lambda: 20.0 }.validate().is_ok());
        let err = diurnal(2.0, 0.1).validate().unwrap_err();
        assert_eq!(err.field, "duty");
        assert!(err.to_string().contains("duty cycle"));
    }

    #[test]
    fn update_model_serde_round_trips() {
        for m in [
            UpdateModel::Poisson { lambda: 20.0 },
            UpdateModel::Diurnal(diurnal(0.25, 0.1)),
            UpdateModel::ParetoBurst(ParetoBurstConfig {
                rate_per_epoch: 15.0,
                shape: 1.5,
            }),
        ] {
            let json = serde_json::to_string(&m).unwrap();
            let back: UpdateModel = serde_json::from_str(&json).unwrap();
            assert_eq!(m, back);
        }
    }
}
