//! Length-prefixed, checksummed binary records — the on-disk substrate of
//! the serve journal.
//!
//! Layout of one record:
//!
//! ```text
//! [u32 le: len = 1 + payload.len()] [u8 kind] [payload ...] [u32 le: crc32]
//! ```
//!
//! The CRC-32 (IEEE 802.3 polynomial, the same one zip/gzip/png use) covers
//! the kind byte and the payload, so a torn tail — a record cut anywhere by
//! a crash — is always detectable: either the declared extent runs past the
//! end of the buffer ([`RecordError::Truncated`]) or the checksum of a
//! bit-flipped/short record fails ([`RecordError::BadChecksum`]). Readers
//! scan sequentially; there is no resync marker, so the first bad record
//! ends the parse and the caller decides whether the damage is a discardable
//! tail or mid-file corruption.
//!
//! [`write_all_tagged`] is the shared write-all helper: every byte sink that
//! must not silently drop data (trace files, journal files) routes through
//! it, and a short or failed write surfaces as a structured error carrying
//! the destination path and the exact byte count that made it out.

use std::fmt;
use std::io::{ErrorKind, Write};
use std::path::Path;

/// Computes the IEEE CRC-32 of `bytes` (reflected, init/xorout `!0`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// A structured failure while writing or parsing framed records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// An I/O failure, tagged with the destination path and a detail that
    /// includes how many bytes were written before the failure (so a
    /// partial write — ENOSPC mid-record, a full pipe — is visible, not
    /// silently absorbed).
    Io {
        /// The file (or sink label) being written.
        path: String,
        /// Human-readable failure detail.
        detail: String,
    },
    /// A record's declared extent runs past the end of the buffer — the
    /// classic torn tail left by a crash mid-append.
    Truncated {
        /// Byte offset of the record's length prefix.
        offset: usize,
    },
    /// A record's checksum does not match its content.
    BadChecksum {
        /// Byte offset of the record's length prefix.
        offset: usize,
    },
    /// A record declared a zero length (even an empty payload occupies one
    /// kind byte), which only corruption produces.
    BadLength {
        /// Byte offset of the record's length prefix.
        offset: usize,
    },
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Io { path, detail } => write!(f, "{path}: {detail}"),
            RecordError::Truncated { offset } => {
                write!(
                    f,
                    "record at byte {offset} truncated before its declared end"
                )
            }
            RecordError::BadChecksum { offset } => {
                write!(f, "record at byte {offset} failed its CRC-32 check")
            }
            RecordError::BadLength { offset } => {
                write!(f, "record at byte {offset} declares an impossible length")
            }
        }
    }
}

impl std::error::Error for RecordError {}

impl RecordError {
    /// Builds an [`RecordError::Io`] from a raw I/O error and a path.
    pub fn io(path: &Path, e: &std::io::Error) -> Self {
        RecordError::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        }
    }
}

/// Writes every byte of `bytes` to `w`, retrying interrupted writes, and
/// reports any failure — including a stalled sink that accepts zero bytes —
/// as a structured [`RecordError::Io`] naming `path` and the number of
/// bytes that made it out before the failure.
pub fn write_all_tagged<W: Write + ?Sized>(
    w: &mut W,
    bytes: &[u8],
    path: &Path,
) -> Result<(), RecordError> {
    let total = bytes.len();
    let mut rest = bytes;
    while !rest.is_empty() {
        match w.write(rest) {
            Ok(0) => {
                return Err(RecordError::Io {
                    path: path.display().to_string(),
                    detail: format!(
                        "write stalled after {} of {total} bytes",
                        total - rest.len()
                    ),
                })
            }
            Ok(n) => rest = &rest[n..],
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => {
                return Err(RecordError::Io {
                    path: path.display().to_string(),
                    detail: format!("{e} (after {} of {total} bytes)", total - rest.len()),
                })
            }
        }
    }
    Ok(())
}

/// Appends one framed record (`kind` + `payload`) to `w`, routing the bytes
/// through [`write_all_tagged`] so partial writes surface structurally.
pub fn write_record<W: Write + ?Sized>(
    w: &mut W,
    kind: u8,
    payload: &[u8],
    path: &Path,
) -> Result<(), RecordError> {
    let len = 1 + payload.len();
    let mut buf = Vec::with_capacity(4 + len + 4);
    buf.extend_from_slice(
        &u32::try_from(len)
            .expect("record payload exceeds u32")
            .to_le_bytes(),
    );
    buf.push(kind);
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&crc32(&buf[4..]).to_le_bytes());
    write_all_tagged(w, &buf, path)
}

/// One record parsed out of a byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record<'a> {
    /// Byte offset of this record's length prefix within the buffer.
    pub offset: usize,
    /// Byte offset one past this record's trailing checksum — where the
    /// next record starts, and the truncation point that drops this record
    /// and everything after it.
    pub end: usize,
    /// The record kind byte.
    pub kind: u8,
    /// The record payload.
    pub payload: &'a [u8],
}

/// Parses the record starting at `offset` in `buf`. Returns `Ok(None)` at a
/// clean end of buffer (`offset == buf.len()`); a record whose extent runs
/// past the buffer is [`RecordError::Truncated`] (this includes a partial
/// length prefix), and a complete record with a wrong checksum is
/// [`RecordError::BadChecksum`].
pub fn parse_record(buf: &[u8], offset: usize) -> Result<Option<Record<'_>>, RecordError> {
    if offset == buf.len() {
        return Ok(None);
    }
    if buf.len() - offset < 4 {
        return Err(RecordError::Truncated { offset });
    }
    let len = u32::from_le_bytes(buf[offset..offset + 4].try_into().unwrap()) as usize;
    if len == 0 {
        return Err(RecordError::BadLength { offset });
    }
    let body = offset + 4;
    let end = match body.checked_add(len).and_then(|e| e.checked_add(4)) {
        Some(end) if end <= buf.len() => end,
        _ => return Err(RecordError::Truncated { offset }),
    };
    let framed = &buf[body..body + len];
    let stored = u32::from_le_bytes(buf[body + len..end].try_into().unwrap());
    if crc32(framed) != stored {
        return Err(RecordError::BadChecksum { offset });
    }
    Ok(Some(Record {
        offset,
        end,
        kind: framed[0],
        payload: &framed[1..],
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn path() -> &'static Path {
        Path::new("/test/sink")
    }

    #[test]
    fn record_roundtrip() {
        let mut buf = Vec::new();
        write_record(&mut buf, 7, b"hello", path()).unwrap();
        write_record(&mut buf, 9, b"", path()).unwrap();
        let first = parse_record(&buf, 0).unwrap().unwrap();
        assert_eq!((first.kind, first.payload), (7, b"hello".as_slice()));
        let second = parse_record(&buf, first.end).unwrap().unwrap();
        assert_eq!((second.kind, second.payload), (9, b"".as_slice()));
        assert_eq!(parse_record(&buf, second.end).unwrap(), None);
    }

    #[test]
    fn truncation_at_every_byte_is_detected() {
        let mut buf = Vec::new();
        write_record(&mut buf, 3, b"payload bytes", path()).unwrap();
        for cut in 0..buf.len() {
            let r = parse_record(&buf[..cut], 0);
            assert!(
                matches!(r, Err(RecordError::Truncated { offset: 0 }) | Ok(None)),
                "cut at {cut}: {r:?}"
            );
            // Only the empty prefix parses as a clean end.
            if cut > 0 {
                assert!(r.is_err(), "cut at {cut} silently accepted");
            }
        }
    }

    #[test]
    fn corruption_of_every_byte_fails_the_checksum() {
        let mut buf = Vec::new();
        write_record(&mut buf, 3, b"payload", path()).unwrap();
        for i in 4..buf.len() {
            // Flipping any bit of the framed content or the stored checksum
            // must be caught (length-prefix corruption lands on Truncated
            // or BadLength instead, tested separately).
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            assert!(parse_record(&bad, 0).is_err(), "flip at {i} accepted");
        }
    }

    #[test]
    fn zero_length_is_structurally_rejected() {
        let mut buf = vec![0, 0, 0, 0];
        buf.extend_from_slice(&crc32(b"").to_le_bytes());
        assert_eq!(
            parse_record(&buf, 0).unwrap_err(),
            RecordError::BadLength { offset: 0 }
        );
    }

    #[test]
    fn write_all_tagged_reports_partial_writes_with_path() {
        struct Stall;
        impl Write for Stall {
            fn write(&mut self, _b: &[u8]) -> std::io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let err = write_all_tagged(&mut Stall, b"abc", Path::new("/var/trace.jsonl")).unwrap_err();
        match err {
            RecordError::Io { path, detail } => {
                assert_eq!(path, "/var/trace.jsonl");
                assert!(detail.contains("0 of 3"), "{detail}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn write_all_tagged_reports_enospc_style_failures() {
        struct Half(bool);
        impl Write for Half {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                if self.0 {
                    Err(std::io::Error::other("no space left"))
                } else {
                    self.0 = true;
                    Ok(b.len() / 2)
                }
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let err = write_all_tagged(&mut Half(false), b"abcdefgh", path()).unwrap_err();
        match err {
            RecordError::Io { detail, .. } => {
                assert!(detail.contains("no space left"), "{detail}");
                assert!(detail.contains("4 of 8"), "{detail}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}
