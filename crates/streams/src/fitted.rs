//! The Poisson-fitted update model of Section V-H's news-trace experiment:
//! "we used an homogeneous Poisson update model calculating λ as the average
//! number of updates of each RSS news resource ... to generate the EIs. We
//! then validated the capture of events against the real event trace."
//!
//! Unlike [`FpnModel`](crate::fpn::FpnModel) — which perturbs each true
//! event — this model throws the true timestamps away entirely and predicts
//! from the fitted rate alone: the proxy knows *how often* a feed updates,
//! not *when*. Prediction quality then depends on how bursty the real
//! process is; a feed that actually updates like a Poisson process is
//! predicted decently, a diurnal or sniping-shaped one poorly.

use crate::fpn::{EventPair, NoisyTrace};
use crate::poisson::PoissonProcess;
use crate::rng::SimRng;
use crate::trace::UpdateTrace;

/// The homogeneous Poisson-fitted update model.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoissonFittedModel;

impl PoissonFittedModel {
    /// Fits a per-resource rate to `truth` (its exact event count over the
    /// epoch) and samples predicted events from it, pairing the i-th
    /// predicted event with the i-th true event. Events beyond the shorter
    /// of the two sequences are unpaired: a surplus of predictions wastes
    /// probes, a surplus of true events goes unmonitored — both are real
    /// model failure modes and both lower validated completeness.
    pub fn apply(&self, truth: &UpdateTrace, rng: &SimRng) -> NoisyTrace {
        let horizon = truth.horizon();
        let pairs: Vec<Vec<EventPair>> = (0..truth.n_resources())
            .map(|r| {
                let mut sub = rng.fork_indexed("poisson-fitted", u64::from(r));
                let events = truth.events_of(r);
                let rate = events.len() as f64;
                let predicted = PoissonProcess::new(rate).sample(horizon, &mut sub);
                events
                    .iter()
                    .zip(&predicted)
                    .map(|(&t, &p)| EventPair {
                        truth: t,
                        predicted: p,
                    })
                    .collect()
            })
            .collect();
        NoisyTrace::from_pairs(horizon, pairs)
    }
}

/// A prefix-trained variant: the model observes the first
/// `train_fraction` of the epoch (a real proxy's warm-up crawl), fits each
/// resource's rate on that prefix only, and predicts the *remainder* of the
/// epoch from the fitted rate. Events inside the training prefix are
/// predicted exactly (the proxy saw them); events after it get rate-based
/// predictions. The out-of-sample half is where estimation error lives —
/// e.g. a feed that sped up after the warm-up is under-monitored.
#[derive(Debug, Clone, Copy)]
pub struct PrefixFittedModel {
    /// Fraction of the epoch used for training, in `(0, 1)`.
    pub train_fraction: f64,
}

impl PrefixFittedModel {
    /// A model training on the leading `train_fraction` of the epoch.
    ///
    /// # Panics
    /// Panics unless `0 < train_fraction < 1`.
    pub fn new(train_fraction: f64) -> Self {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train fraction must lie in (0, 1) (got {train_fraction})"
        );
        PrefixFittedModel { train_fraction }
    }

    /// Applies the model to a ground-truth trace.
    pub fn apply(&self, truth: &UpdateTrace, rng: &SimRng) -> NoisyTrace {
        let horizon = truth.horizon();
        let split = ((f64::from(horizon) * self.train_fraction) as u32).clamp(1, horizon - 1);
        let test_len = horizon - split;

        let pairs: Vec<Vec<EventPair>> =
            (0..truth.n_resources())
                .map(|r| {
                    let mut sub = rng.fork_indexed("prefix-fitted", u64::from(r));
                    let events = truth.events_of(r);
                    let n_train = events.partition_point(|&t| t < split);

                    // In-sample events: known exactly.
                    let mut out: Vec<EventPair> = events[..n_train]
                        .iter()
                        .map(|&t| EventPair {
                            truth: t,
                            predicted: t,
                        })
                        .collect();

                    // Out-of-sample: predict from the trained rate, scaled to
                    // the test region's length.
                    let rate_per_chronon = n_train as f64 / f64::from(split);
                    let expected_test = rate_per_chronon * f64::from(test_len);
                    let predicted: Vec<u32> = PoissonProcess::new(expected_test)
                        .sample(test_len, &mut sub)
                        .into_iter()
                        .map(|t| t + split)
                        .collect();
                    out.extend(events[n_train..].iter().zip(&predicted).map(|(&t, &p)| {
                        EventPair {
                            truth: t,
                            predicted: p,
                        }
                    }));
                    out
                })
                .collect();
        NoisyTrace::from_pairs(horizon, pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> UpdateTrace {
        PoissonProcess::new(25.0).sample_trace(30, 1000, &SimRng::new(42))
    }

    #[test]
    fn prefix_model_is_exact_in_sample() {
        let t = truth();
        let model = PrefixFittedModel::new(0.5);
        let noisy = model.apply(&t, &SimRng::new(9));
        for r in 0..t.n_resources() {
            for p in noisy.pairs_of(r) {
                if p.truth < 500 {
                    assert!(p.is_exact(), "in-sample event {p:?} must be exact");
                } else {
                    assert!(p.predicted >= 500, "test predictions stay out of sample");
                }
            }
        }
    }

    #[test]
    fn prefix_model_degrades_out_of_sample() {
        let t = truth();
        let noisy = PrefixFittedModel::new(0.5).apply(&t, &SimRng::new(9));
        let out_of_sample_exact = (0..t.n_resources())
            .flat_map(|r| noisy.pairs_of(r).to_vec())
            .filter(|p| p.truth >= 500 && p.is_exact())
            .count();
        let out_of_sample_total = (0..t.n_resources())
            .flat_map(|r| noisy.pairs_of(r).to_vec())
            .filter(|p| p.truth >= 500)
            .count();
        assert!(out_of_sample_total > 100);
        assert!(
            (out_of_sample_exact as f64) < 0.2 * out_of_sample_total as f64,
            "rate-only predictions should rarely be exact"
        );
    }

    #[test]
    fn prefix_model_reproducible() {
        let t = truth();
        let a = PrefixFittedModel::new(0.3).apply(&t, &SimRng::new(4));
        let b = PrefixFittedModel::new(0.3).apply(&t, &SimRng::new(4));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "train fraction")]
    fn bad_train_fraction_rejected() {
        let _ = PrefixFittedModel::new(1.0);
    }

    #[test]
    fn pair_counts_bounded_by_truth() {
        let t = truth();
        let noisy = PoissonFittedModel.apply(&t, &SimRng::new(1));
        for r in 0..t.n_resources() {
            assert!(noisy.pairs_of(r).len() <= t.events_of(r).len());
        }
    }

    #[test]
    fn predicted_volume_tracks_fitted_rate() {
        let t = truth();
        let noisy = PoissonFittedModel.apply(&t, &SimRng::new(2));
        let truth_total = t.total_events() as f64;
        let pair_total: usize = (0..t.n_resources()).map(|r| noisy.pairs_of(r).len()).sum();
        // Pairing truncates to min(n_truth, n_predicted) per resource;
        // with matched rates that stays within ~25% of the truth volume.
        assert!(
            pair_total as f64 > truth_total * 0.6,
            "paired {pair_total} vs truth {truth_total}"
        );
    }

    #[test]
    fn predictions_rarely_exact() {
        let t = truth();
        let noisy = PoissonFittedModel.apply(&t, &SimRng::new(3));
        // A rate-only model almost never lands on the exact chronon.
        assert!(noisy.exact_fraction() < 0.2);
    }

    #[test]
    fn reproducible_from_seed() {
        let t = truth();
        let a = PoissonFittedModel.apply(&t, &SimRng::new(4));
        let b = PoissonFittedModel.apply(&t, &SimRng::new(4));
        assert_eq!(a, b);
    }

    #[test]
    fn pairs_sorted_consistently() {
        let t = truth();
        let noisy = PoissonFittedModel.apply(&t, &SimRng::new(5));
        for r in 0..t.n_resources() {
            let ps = noisy.pairs_of(r);
            assert!(ps.windows(2).all(|w| w[0].truth <= w[1].truth));
            assert!(ps.windows(2).all(|w| w[0].predicted <= w[1].predicted));
        }
    }
}
