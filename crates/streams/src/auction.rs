//! Synthetic eBay-style auction trace — substitute for the paper's
//! real-world trace of 732 three-day auctions with 11,150 bids.
//!
//! The real RSS trace is unavailable; we synthesize a trace with the same
//! volume and the documented shape of eBay bidding: a modest early stream of
//! bids with intensity rising toward the auction close, plus a *sniping*
//! burst in the final moments. The scheduler only ever consumes
//! `(resource, chronon)` pairs, so any trace with realistic volume and
//! burstiness exercises the identical code path (DESIGN.md §1.3).

use crate::poisson::poisson_count;
use crate::rng::SimRng;
use crate::trace::{Chronon, UpdateTrace};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic auction trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuctionTraceConfig {
    /// Number of auctions (each is one monitored resource). Paper: 732.
    pub n_auctions: u32,
    /// Target total bid count across all auctions. Paper: 11,150.
    pub total_bids: u64,
    /// Epoch length in chronons.
    pub horizon: Chronon,
    /// Auction duration in chronons (the paper's auctions all run 3 days;
    /// scaled into the epoch).
    pub duration: Chronon,
    /// Fraction of bids arriving in the sniping window at the auction close.
    pub sniping_fraction: f64,
    /// Length of the sniping window, as a fraction of the duration.
    pub sniping_window: f64,
}

impl AuctionTraceConfig {
    /// The paper's trace dimensions mapped onto a 1000-chronon epoch.
    pub fn paper(horizon: Chronon) -> Self {
        AuctionTraceConfig {
            n_auctions: 732,
            total_bids: 11_150,
            horizon,
            duration: (horizon / 3).max(10),
            sniping_fraction: 0.35,
            sniping_window: 0.1,
        }
    }

    /// A smaller trace for quick experiments: `n` auctions with the paper's
    /// mean bids-per-auction ratio.
    pub fn scaled(n_auctions: u32, horizon: Chronon) -> Self {
        let mean_bids = 11_150.0 / 732.0;
        AuctionTraceConfig {
            n_auctions,
            total_bids: (f64::from(n_auctions) * mean_bids).round() as u64,
            horizon,
            duration: (horizon / 3).max(10),
            sniping_fraction: 0.35,
            sniping_window: 0.1,
        }
    }
}

/// The lifetime of one auction within the epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuctionSpan {
    /// First chronon of the auction.
    pub start: Chronon,
    /// Last chronon (the close — where sniping concentrates).
    pub end: Chronon,
}

/// A synthesized auction trace: the update-event trace (one resource per
/// auction, one event per bid) plus per-auction lifetimes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuctionTrace {
    /// Bid events, one resource per auction.
    pub trace: UpdateTrace,
    /// Auction lifetimes, parallel to the resources.
    pub spans: Vec<AuctionSpan>,
}

impl AuctionTrace {
    /// Synthesizes an auction trace.
    ///
    /// # Panics
    /// Panics if the duration exceeds the horizon or fractions are out of
    /// `[0, 1]`.
    pub fn generate(config: &AuctionTraceConfig, rng: &SimRng) -> Self {
        assert!(
            config.duration <= config.horizon,
            "auction duration {} exceeds horizon {}",
            config.duration,
            config.horizon
        );
        assert!(config.duration >= 2, "auction needs at least 2 chronons");
        assert!(
            (0.0..=1.0).contains(&config.sniping_fraction)
                && (0.0..=1.0).contains(&config.sniping_window),
            "sniping parameters must lie in [0, 1]"
        );

        let mean_bids = config.total_bids as f64 / f64::from(config.n_auctions.max(1));
        let mut events: Vec<Vec<Chronon>> = Vec::with_capacity(config.n_auctions as usize);
        let mut spans = Vec::with_capacity(config.n_auctions as usize);

        for a in 0..config.n_auctions {
            let mut sub = rng.fork_indexed("auction", u64::from(a));
            let latest_start = config.horizon - config.duration;
            let start = if latest_start == 0 {
                0
            } else {
                sub.below(u64::from(latest_start) + 1) as Chronon
            };
            let end = start + config.duration - 1;
            spans.push(AuctionSpan { start, end });

            let n_bids = poisson_count(mean_bids, &mut sub);
            let snipe_len =
                ((f64::from(config.duration) * config.sniping_window).ceil() as Chronon).max(1);
            let mut bids: Vec<Chronon> = Vec::with_capacity(n_bids as usize);
            for _ in 0..n_bids {
                let t = if sub.chance(config.sniping_fraction) {
                    // Sniping: exponential back-off from the close.
                    let back = (sub.exponential(3.0) * f64::from(snipe_len)) as Chronon;
                    end.saturating_sub(back.min(snipe_len - 1))
                } else {
                    // Body of the auction: density rising linearly toward
                    // the close (t = start + D·√u has CDF (x/D)², i.e.
                    // linearly increasing density).
                    let u = sub.f64();
                    start + (u.sqrt() * f64::from(config.duration - 1)) as Chronon
                };
                bids.push(t.clamp(start, end));
            }
            events.push(bids);
        }

        AuctionTrace {
            trace: UpdateTrace::from_events(config.horizon, events),
            spans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> AuctionTrace {
        AuctionTrace::generate(&AuctionTraceConfig::scaled(100, 1000), &SimRng::new(42))
    }

    #[test]
    fn paper_scale_volume_is_close() {
        let t = AuctionTrace::generate(&AuctionTraceConfig::paper(1000), &SimRng::new(42));
        let total = t.trace.total_events() as f64;
        // Chronon-granularity dedup loses a few percent of 11,150.
        assert!(
            (9_500.0..=11_800.0).contains(&total),
            "total bids {total} far from 11,150"
        );
        assert_eq!(t.trace.n_resources(), 732);
        assert_eq!(t.spans.len(), 732);
    }

    #[test]
    fn bids_fall_within_auction_span() {
        let t = small();
        for (r, span) in t.spans.iter().enumerate() {
            for &b in t.trace.events_of(r as u32) {
                assert!(
                    b >= span.start && b <= span.end,
                    "bid {b} outside span [{}, {}]",
                    span.start,
                    span.end
                );
            }
        }
    }

    #[test]
    fn sniping_concentrates_bids_near_close() {
        let t = AuctionTrace::generate(&AuctionTraceConfig::paper(1000), &SimRng::new(7));
        let mut last_decile = 0u64;
        let mut total = 0u64;
        for (r, span) in t.spans.iter().enumerate() {
            let dur = span.end - span.start + 1;
            let cutoff = span.end - dur / 10;
            for &b in t.trace.events_of(r as u32) {
                total += 1;
                if b >= cutoff {
                    last_decile += 1;
                }
            }
        }
        let frac = last_decile as f64 / total as f64;
        // Uniform bidding would put ~10% there; sniping should push well
        // above 25%.
        assert!(frac > 0.25, "last-decile fraction {frac} too low");
    }

    #[test]
    fn generation_is_reproducible() {
        let a = small();
        let b = small();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = AuctionTrace::generate(&AuctionTraceConfig::scaled(50, 500), &SimRng::new(1));
        let b = AuctionTrace::generate(&AuctionTraceConfig::scaled(50, 500), &SimRng::new(2));
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "exceeds horizon")]
    fn oversized_duration_rejected() {
        let mut cfg = AuctionTraceConfig::paper(100);
        cfg.duration = 200;
        let _ = AuctionTrace::generate(&cfg, &SimRng::new(1));
    }
}
