//! The FPN(Z) noisy update model of \[3\], used in the Figure 15 noise
//! sensitivity experiments.
//!
//! A proxy that must *predict* update events (rather than being pushed
//! notifications) schedules its EIs from an update model. FPN(Z)
//! parameterizes model quality: with probability `Z` the model predicts an
//! event exactly; with probability `1 − Z` the prediction *deviates* from
//! the real event. `Z = 1` is a perfect model; `Z = 0` deviates on every
//! event. Scheduling runs against the predictions, but completeness is
//! validated against the real event trace — a deviated prediction steers
//! probes to windows where nothing (capturable) happens.

use crate::rng::SimRng;
use crate::trace::{Chronon, UpdateTrace};
use serde::{Deserialize, Serialize};

/// One true event paired with the model's prediction of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventPair {
    /// When the update actually happens.
    pub truth: Chronon,
    /// When the model predicts it (equal to `truth` with probability `Z`).
    pub predicted: Chronon,
}

impl EventPair {
    /// `true` if the model predicted this event exactly.
    pub fn is_exact(self) -> bool {
        self.truth == self.predicted
    }
}

/// The FPN(Z) model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FpnModel {
    /// Probability that a prediction is exact. `1.0` = perfect model.
    pub z: f64,
    /// Maximum absolute deviation (in chronons) of a noisy prediction.
    pub max_deviation: Chronon,
}

impl FpnModel {
    /// An FPN model with noise level `1 − z` and the given deviation bound.
    ///
    /// # Panics
    /// Panics if `z` is outside `[0, 1]` or `max_deviation == 0`.
    pub fn new(z: f64, max_deviation: Chronon) -> Self {
        assert!((0.0..=1.0).contains(&z), "Z must lie in [0, 1] (got {z})");
        assert!(
            max_deviation > 0,
            "max deviation must be positive (a zero deviation is a perfect model)"
        );
        FpnModel { z, max_deviation }
    }

    /// Applies the model to a ground-truth trace, pairing every true event
    /// with a prediction.
    pub fn apply(&self, truth: &UpdateTrace, rng: &SimRng) -> NoisyTrace {
        let horizon = truth.horizon();
        let pairs: Vec<Vec<EventPair>> = (0..truth.n_resources())
            .map(|r| {
                let mut sub = rng.fork_indexed("fpn-resource", u64::from(r));
                truth
                    .events_of(r)
                    .iter()
                    .map(|&t| {
                        let predicted = if sub.chance(self.z) {
                            t
                        } else {
                            self.deviate(t, horizon, &mut sub)
                        };
                        EventPair {
                            truth: t,
                            predicted,
                        }
                    })
                    .collect()
            })
            .collect();
        NoisyTrace { horizon, pairs }
    }

    /// A deviated prediction: `t ± U[1, max_deviation]`, clamped into the
    /// epoch, guaranteed different from `t` when the epoch permits.
    fn deviate(&self, t: Chronon, horizon: Chronon, rng: &mut SimRng) -> Chronon {
        let delta = rng.range_inclusive(1, u64::from(self.max_deviation)) as Chronon;
        let forward = rng.chance(0.5);
        let candidate = if forward {
            t.saturating_add(delta).min(horizon - 1)
        } else {
            t.saturating_sub(delta)
        };
        if candidate != t {
            return candidate;
        }
        // Clamping collapsed the deviation (event at an epoch edge): push
        // the other way if possible.
        if t + 1 < horizon {
            t + 1
        } else if t > 0 {
            t - 1
        } else {
            t // single-chronon epoch: nowhere to deviate
        }
    }
}

/// A ground-truth trace with per-event predictions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoisyTrace {
    horizon: Chronon,
    /// `pairs[r]` = event pairs of resource `r`, sorted by true chronon.
    pairs: Vec<Vec<EventPair>>,
}

impl NoisyTrace {
    /// Builds a noisy trace from explicit event pairs (used by alternative
    /// update models such as the Poisson-fitted model of Section V-H).
    ///
    /// # Panics
    /// Panics if any chronon lies at or beyond the horizon.
    pub fn from_pairs(horizon: Chronon, pairs: Vec<Vec<EventPair>>) -> Self {
        for (r, ps) in pairs.iter().enumerate() {
            for p in ps {
                assert!(
                    p.truth < horizon && p.predicted < horizon,
                    "resource {r}: pair ({}, {}) beyond horizon {horizon}",
                    p.truth,
                    p.predicted
                );
            }
        }
        NoisyTrace { horizon, pairs }
    }

    /// Wraps a trace as its own perfect prediction (`Z = 1`). Lets
    /// noise-free and noisy workloads share one generation path.
    pub fn exact(truth: &UpdateTrace) -> Self {
        NoisyTrace {
            horizon: truth.horizon(),
            pairs: (0..truth.n_resources())
                .map(|r| {
                    truth
                        .events_of(r)
                        .iter()
                        .map(|&t| EventPair {
                            truth: t,
                            predicted: t,
                        })
                        .collect()
                })
                .collect(),
        }
    }

    /// Epoch length in chronons.
    pub fn horizon(&self) -> Chronon {
        self.horizon
    }

    /// Number of resources.
    pub fn n_resources(&self) -> u32 {
        self.pairs.len() as u32
    }

    /// The event pairs of resource `r`.
    pub fn pairs_of(&self, r: u32) -> &[EventPair] {
        &self.pairs[r as usize]
    }

    /// The trace the scheduler sees (predicted events).
    pub fn predicted_trace(&self) -> UpdateTrace {
        UpdateTrace::from_events(
            self.horizon,
            self.pairs
                .iter()
                .map(|ps| ps.iter().map(|p| p.predicted).collect())
                .collect(),
        )
    }

    /// The trace completeness is validated against (true events).
    pub fn truth_trace(&self) -> UpdateTrace {
        UpdateTrace::from_events(
            self.horizon,
            self.pairs
                .iter()
                .map(|ps| ps.iter().map(|p| p.truth).collect())
                .collect(),
        )
    }

    /// Fraction of exactly-predicted events (the empirical `Z`).
    pub fn exact_fraction(&self) -> f64 {
        let total: usize = self.pairs.iter().map(Vec::len).sum();
        if total == 0 {
            return 1.0;
        }
        let exact: usize = self
            .pairs
            .iter()
            .flat_map(|ps| ps.iter())
            .filter(|p| p.is_exact())
            .count();
        exact as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poisson::PoissonProcess;

    fn truth() -> UpdateTrace {
        PoissonProcess::new(30.0).sample_trace(20, 1000, &SimRng::new(42))
    }

    #[test]
    fn exact_wrapper_equals_perfect_model() {
        let t = truth();
        let exact = NoisyTrace::exact(&t);
        assert!((exact.exact_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(exact.predicted_trace(), t);
        assert_eq!(exact.truth_trace(), t);
    }

    #[test]
    fn perfect_model_predicts_exactly() {
        let noisy = FpnModel::new(1.0, 5).apply(&truth(), &SimRng::new(1));
        assert!((noisy.exact_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(noisy.predicted_trace(), noisy.truth_trace());
    }

    #[test]
    fn fully_noisy_model_always_deviates() {
        let noisy = FpnModel::new(0.0, 5).apply(&truth(), &SimRng::new(1));
        assert_eq!(noisy.exact_fraction(), 0.0);
    }

    #[test]
    fn intermediate_z_matches_empirically() {
        let noisy = FpnModel::new(0.6, 5).apply(&truth(), &SimRng::new(1));
        let f = noisy.exact_fraction();
        assert!((f - 0.6).abs() < 0.05, "exact fraction {f} far from 0.6");
    }

    #[test]
    fn deviations_are_bounded_and_in_epoch() {
        let t = truth();
        let noisy = FpnModel::new(0.0, 7).apply(&t, &SimRng::new(3));
        for r in 0..noisy.n_resources() {
            for p in noisy.pairs_of(r) {
                let d = p.predicted.abs_diff(p.truth);
                assert!((1..=7).contains(&d), "deviation {d} out of [1, 7]");
                assert!(p.predicted < t.horizon());
            }
        }
    }

    #[test]
    fn pair_counts_match_truth() {
        let t = truth();
        let noisy = FpnModel::new(0.5, 5).apply(&t, &SimRng::new(9));
        for r in 0..t.n_resources() {
            assert_eq!(noisy.pairs_of(r).len(), t.events_of(r).len());
        }
        assert_eq!(noisy.truth_trace(), t);
    }

    #[test]
    fn reproducible_from_seed() {
        let t = truth();
        let a = FpnModel::new(0.4, 5).apply(&t, &SimRng::new(8));
        let b = FpnModel::new(0.4, 5).apply(&t, &SimRng::new(8));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn bad_z_rejected() {
        let _ = FpnModel::new(1.5, 5);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_deviation_rejected() {
        let _ = FpnModel::new(0.5, 0);
    }
}
