//! Synthetic RSS news-feed trace — substitute for the paper's real trace of
//! 130 feeds with ~68,000 events gathered over two months (Aug–Oct 2007).
//!
//! Per-feed publication rates follow a Zipf law with exponent `α ≈ 1.37`,
//! the skew the paper itself cites for Web feeds \[5\], and intensity is
//! modulated by a diurnal cycle (feeds publish more during the day). Events
//! are drawn by thinning a homogeneous Poisson process.

use crate::rng::SimRng;
use crate::trace::{Chronon, UpdateTrace};
use crate::zipf::Zipf;
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic news trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NewsTraceConfig {
    /// Number of feeds (resources). Paper: 130.
    pub n_feeds: u32,
    /// Target total event count. Paper: ~68,000.
    pub total_events: u64,
    /// Epoch length in chronons.
    pub horizon: Chronon,
    /// Zipf exponent of per-feed popularity (rate skew). Paper cites 1.37.
    pub zipf_alpha: f64,
    /// Number of day/night cycles across the epoch (two months ≈ 61 days).
    pub n_days: u32,
    /// Relative amplitude of the diurnal modulation, in `[0, 1)`.
    pub diurnal_amplitude: f64,
}

impl NewsTraceConfig {
    /// The paper's trace dimensions mapped onto an epoch of `horizon`
    /// chronons.
    pub fn paper(horizon: Chronon) -> Self {
        NewsTraceConfig {
            n_feeds: 130,
            total_events: 68_000,
            horizon,
            zipf_alpha: 1.37,
            n_days: 61,
            diurnal_amplitude: 0.6,
        }
    }

    /// A smaller trace preserving the paper's events-per-feed ratio.
    pub fn scaled(n_feeds: u32, horizon: Chronon) -> Self {
        let per_feed = 68_000.0 / 130.0;
        NewsTraceConfig {
            n_feeds,
            total_events: (f64::from(n_feeds) * per_feed).round() as u64,
            horizon,
            zipf_alpha: 1.37,
            n_days: 61,
            diurnal_amplitude: 0.6,
        }
    }

    /// Synthesizes the trace.
    ///
    /// # Panics
    /// Panics if the diurnal amplitude is outside `[0, 1)` or `n_feeds == 0`.
    pub fn generate(&self, rng: &SimRng) -> UpdateTrace {
        assert!(
            (0.0..1.0).contains(&self.diurnal_amplitude),
            "diurnal amplitude must lie in [0, 1)"
        );
        assert!(self.n_feeds > 0, "need at least one feed");

        // Per-feed expected event counts: Zipf weights scaled to the target.
        let zipf = Zipf::new(self.zipf_alpha, self.n_feeds);
        let day_len = f64::from(self.horizon) / f64::from(self.n_days.max(1));

        let events: Vec<Vec<Chronon>> = (0..self.n_feeds)
            .map(|f| {
                let mut sub = rng.fork_indexed("news-feed", u64::from(f));
                let expected = self.total_events as f64 * zipf.pmf(f + 1);
                // Thinning: homogeneous at the peak rate, accept with
                // λ(t)/λ_max where λ(t) carries the diurnal factor.
                let peak_rate = expected * (1.0 + self.diurnal_amplitude) / f64::from(self.horizon);
                if peak_rate <= 0.0 {
                    return Vec::new();
                }
                let mut evs = Vec::new();
                let mut t = 0.0f64;
                loop {
                    t += sub.exponential(peak_rate);
                    if t >= f64::from(self.horizon) {
                        break;
                    }
                    let phase = 2.0 * std::f64::consts::PI * t / day_len;
                    let intensity = 1.0 + self.diurnal_amplitude * phase.sin();
                    let accept = intensity / (1.0 + self.diurnal_amplitude);
                    if sub.chance(accept) {
                        evs.push(t as Chronon);
                    }
                }
                evs.dedup();
                evs
            })
            .collect();

        UpdateTrace::from_events(self.horizon, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_is_near_target() {
        // Scaled down so chronon-dedup losses stay small relative to the
        // horizon (68k events in 1000 chronons would alias heavily).
        let cfg = NewsTraceConfig {
            total_events: 5_000,
            ..NewsTraceConfig::paper(10_000)
        };
        let t = cfg.generate(&SimRng::new(42));
        let total = t.total_events() as f64;
        assert!(
            (4_000.0..=6_000.0).contains(&total),
            "total {total} far from 5,000"
        );
        assert_eq!(t.n_resources(), 130);
    }

    #[test]
    fn rates_are_zipf_skewed() {
        let cfg = NewsTraceConfig {
            total_events: 20_000,
            ..NewsTraceConfig::paper(50_000)
        };
        let t = cfg.generate(&SimRng::new(42));
        let first = t.events_of(0).len();
        let mid = t.events_of(30).len();
        let last = t.events_of(129).len();
        assert!(first > mid, "feed 0 ({first}) should beat feed 30 ({mid})");
        assert!(mid > last, "feed 30 ({mid}) should beat feed 129 ({last})");
    }

    #[test]
    fn diurnal_cycle_modulates_intensity() {
        // One day across the whole epoch, strong amplitude: the first half
        // (sin > 0) must carry visibly more events than the second.
        let cfg = NewsTraceConfig {
            n_feeds: 5,
            total_events: 20_000,
            horizon: 10_000,
            zipf_alpha: 0.0,
            n_days: 1,
            diurnal_amplitude: 0.9,
        };
        let t = cfg.generate(&SimRng::new(11));
        let mut first_half = 0u64;
        let mut second_half = 0u64;
        for (_, e) in t.iter() {
            if e < 5_000 {
                first_half += 1;
            } else {
                second_half += 1;
            }
        }
        assert!(
            first_half as f64 > second_half as f64 * 1.3,
            "first {first_half} vs second {second_half}"
        );
    }

    #[test]
    fn reproducible_from_seed() {
        let cfg = NewsTraceConfig::scaled(20, 2_000);
        assert_eq!(cfg.generate(&SimRng::new(5)), cfg.generate(&SimRng::new(5)));
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn bad_amplitude_rejected() {
        let cfg = NewsTraceConfig {
            diurnal_amplitude: 1.0,
            ..NewsTraceConfig::paper(1000)
        };
        let _ = cfg.generate(&SimRng::new(1));
    }
}
