//! Plain-text trace interchange: load real update-event dumps (an RSS crawl
//! log, an auction bid log) into an [`UpdateTrace`], or save synthetic ones.
//!
//! The format is a minimal CSV: a header line `resource,chronon`, then one
//! event per line. Lines starting with `#` are comments. Resources must be
//! dense ids `0..n`; the horizon is `max chronon + 1` unless given
//! explicitly. This is the adoption path for the paper's *real* traces: map
//! timestamps to chronons offline (e.g. one chronon = one minute), dump to
//! CSV, and every experiment in this workspace runs on it unchanged.

use crate::trace::{Chronon, UpdateTrace};
use std::fmt;
use std::io::{BufRead, Write};

/// A malformed trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceIoError {
    /// The header line was missing or wrong.
    BadHeader(String),
    /// A data line failed to parse.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// An event chronon at or beyond the declared horizon.
    EventBeyondHorizon {
        /// 1-based line number.
        line: usize,
        /// The event chronon.
        chronon: Chronon,
        /// The declared horizon.
        horizon: Chronon,
    },
    /// Underlying I/O failure (message only, so the error stays `Eq`).
    Io(String),
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::BadHeader(h) => {
                write!(f, "expected header 'resource,chronon', got '{h}'")
            }
            TraceIoError::BadLine { line, content } => {
                write!(f, "line {line}: cannot parse '{content}'")
            }
            TraceIoError::EventBeyondHorizon {
                line,
                chronon,
                horizon,
            } => write!(
                f,
                "line {line}: event at chronon {chronon} beyond horizon {horizon}"
            ),
            TraceIoError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e.to_string())
    }
}

/// Writes a trace as CSV.
pub fn write_csv<W: Write>(trace: &UpdateTrace, mut w: W) -> Result<(), TraceIoError> {
    writeln!(
        w,
        "# webmon update trace: {} resources, {} chronons",
        trace.n_resources(),
        trace.horizon()
    )?;
    writeln!(w, "resource,chronon")?;
    for (r, t) in trace.iter() {
        writeln!(w, "{r},{t}")?;
    }
    Ok(())
}

/// Reads a trace from CSV. `horizon` fixes the epoch length; `None` infers
/// `max chronon + 1`. `n_resources` fixes the resource count; `None` infers
/// `max resource + 1`.
pub fn read_csv<R: BufRead>(
    r: R,
    horizon: Option<Chronon>,
    n_resources: Option<u32>,
) -> Result<UpdateTrace, TraceIoError> {
    // Each event remembers its real 1-based file line, so validation
    // failures below point at the file, not at an index into the (comment-
    // and blank-stripped) event list.
    let mut events: Vec<(usize, u32, Chronon)> = Vec::new();
    let mut header_seen = false;
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if !header_seen {
            if trimmed != "resource,chronon" {
                return Err(TraceIoError::BadHeader(trimmed.to_string()));
            }
            header_seen = true;
            continue;
        }
        let parts: Vec<&str> = trimmed.split(',').collect();
        let parsed = (|| -> Option<(u32, Chronon)> {
            if parts.len() != 2 {
                return None;
            }
            Some((parts[0].trim().parse().ok()?, parts[1].trim().parse().ok()?))
        })();
        match parsed {
            Some((res, t)) => events.push((i + 1, res, t)),
            None => {
                return Err(TraceIoError::BadLine {
                    line: i + 1,
                    content: trimmed.to_string(),
                })
            }
        }
    }

    // Inference adds 1 to the maxima; `u32::MAX` would wrap (silently in
    // release builds), so checked arithmetic turns it into a line-tagged
    // parse error instead.
    let h = match horizon {
        Some(h) => h,
        None => {
            let mut h: Chronon = 1;
            for &(line, _, t) in &events {
                let bound = t.checked_add(1).ok_or_else(|| TraceIoError::BadLine {
                    line,
                    content: format!("chronon {t} overflows the inferred horizon"),
                })?;
                h = h.max(bound);
            }
            h
        }
    };
    let n = match n_resources {
        Some(n) => n,
        None => {
            let mut n: u32 = 0;
            for &(line, r, _) in &events {
                let bound = r.checked_add(1).ok_or_else(|| TraceIoError::BadLine {
                    line,
                    content: format!("resource id {r} overflows the inferred resource count"),
                })?;
                n = n.max(bound);
            }
            n
        }
    };

    let mut per_resource: Vec<Vec<Chronon>> = vec![Vec::new(); n as usize];
    for &(line, r, t) in &events {
        if t >= h {
            return Err(TraceIoError::EventBeyondHorizon {
                line,
                chronon: t,
                horizon: h,
            });
        }
        if (r as usize) < per_resource.len() {
            per_resource[r as usize].push(t);
        } else {
            return Err(TraceIoError::BadLine {
                line,
                content: format!("resource {r} >= declared count {n}"),
            });
        }
    }
    Ok(UpdateTrace::from_events(h, per_resource))
}

/// Reads a trace from a CSV file on disk — the `webmon serve` replay feed's
/// loader. Unreadable files surface as [`TraceIoError::Io`]; malformed
/// content (including a file truncated mid-line) keeps its structured,
/// line-numbered [`read_csv`] error.
pub fn read_csv_file(
    path: &std::path::Path,
    horizon: Option<Chronon>,
    n_resources: Option<u32>,
) -> Result<UpdateTrace, TraceIoError> {
    let file = std::fs::File::open(path)
        .map_err(|e| TraceIoError::Io(format!("{}: {e}", path.display())))?;
    read_csv(std::io::BufReader::new(file), horizon, n_resources)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poisson::PoissonProcess;
    use crate::rng::SimRng;

    #[test]
    fn roundtrip_preserves_trace() {
        let trace = PoissonProcess::new(12.0).sample_trace(8, 300, &SimRng::new(7));
        let mut buf = Vec::new();
        write_csv(&trace, &mut buf).unwrap();
        let back = read_csv(buf.as_slice(), Some(300), Some(8)).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn dimensions_are_inferred() {
        let csv = "resource,chronon\n0,5\n2,9\n";
        let t = read_csv(csv.as_bytes(), None, None).unwrap();
        assert_eq!(t.n_resources(), 3);
        assert_eq!(t.horizon(), 10);
        assert_eq!(t.events_of(2), &[9]);
        assert!(t.events_of(1).is_empty());
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let csv = "# a comment\n\nresource,chronon\n# another\n1,3\n";
        let t = read_csv(csv.as_bytes(), None, None).unwrap();
        assert_eq!(t.total_events(), 1);
    }

    #[test]
    fn missing_header_rejected() {
        let csv = "0,5\n";
        assert!(matches!(
            read_csv(csv.as_bytes(), None, None),
            Err(TraceIoError::BadHeader(_))
        ));
    }

    #[test]
    fn garbage_line_reported_with_number() {
        let csv = "resource,chronon\n0,5\nnot-a-line\n";
        let err = read_csv(csv.as_bytes(), None, None).unwrap_err();
        assert_eq!(
            err,
            TraceIoError::BadLine {
                line: 3,
                content: "not-a-line".into()
            }
        );
    }

    #[test]
    fn event_beyond_declared_horizon_rejected() {
        let csv = "resource,chronon\n0,50\n";
        assert!(matches!(
            read_csv(csv.as_bytes(), Some(10), None),
            Err(TraceIoError::EventBeyondHorizon { .. })
        ));
    }

    #[test]
    fn validation_errors_report_real_file_lines() {
        // Comments and blank lines shift the event index away from the file
        // line; the reported number must be the file's.
        let csv = "# preamble\nresource,chronon\n0,1\n# interlude\n\n0,50\n";
        assert_eq!(
            read_csv(csv.as_bytes(), Some(10), None).unwrap_err(),
            TraceIoError::EventBeyondHorizon {
                line: 6,
                chronon: 50,
                horizon: 10
            }
        );
        let csv = "# preamble\nresource,chronon\n0,1\n\n7,2\n";
        assert_eq!(
            read_csv(csv.as_bytes(), None, Some(2)).unwrap_err(),
            TraceIoError::BadLine {
                line: 5,
                content: "resource 7 >= declared count 2".into()
            }
        );
    }

    #[test]
    fn resource_beyond_declared_count_rejected() {
        let csv = "resource,chronon\n5,1\n";
        assert!(matches!(
            read_csv(csv.as_bytes(), None, Some(2)),
            Err(TraceIoError::BadLine { .. })
        ));
    }

    #[test]
    fn u32_max_values_do_not_overflow_inference() {
        // Regression: inferring dimensions as `max + 1` used unchecked
        // arithmetic, so a chronon or resource id of 4294967295 wrapped to
        // zero in release builds (and panicked in debug builds).
        let csv = "resource,chronon\n0,4294967295\n";
        assert_eq!(
            read_csv(csv.as_bytes(), None, None).unwrap_err(),
            TraceIoError::BadLine {
                line: 2,
                content: "chronon 4294967295 overflows the inferred horizon".into()
            }
        );
        let csv = "resource,chronon\n4294967295,1\n";
        assert_eq!(
            read_csv(csv.as_bytes(), Some(10), None).unwrap_err(),
            TraceIoError::BadLine {
                line: 2,
                content: "resource id 4294967295 overflows the inferred resource count".into()
            }
        );
        // With both dimensions declared the same line is caught by the
        // existing bounds validation rather than inference.
        let csv = "resource,chronon\n0,4294967295\n";
        assert!(matches!(
            read_csv(csv.as_bytes(), Some(10), Some(1)),
            Err(TraceIoError::EventBeyondHorizon { line: 2, .. })
        ));
    }

    #[test]
    fn empty_file_yields_empty_trace() {
        let csv = "resource,chronon\n";
        let t = read_csv(csv.as_bytes(), Some(10), Some(2)).unwrap();
        assert_eq!(t.total_events(), 0);
        assert_eq!(t.n_resources(), 2);
    }

    #[test]
    fn truncated_mid_line_eof_is_a_structured_line_error() {
        // A dump cut off mid-write ends with a partial record and no final
        // newline; the reader must report the exact file line, not panic.
        let csv = "resource,chronon\n0,5\n1,";
        assert_eq!(
            read_csv(csv.as_bytes(), None, None).unwrap_err(),
            TraceIoError::BadLine {
                line: 3,
                content: "1,".into()
            }
        );
    }

    #[test]
    fn read_csv_file_maps_missing_file_to_io_error() {
        let err = read_csv_file(
            std::path::Path::new("/nonexistent/webmon-feed.csv"),
            None,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, TraceIoError::Io(_)), "{err}");
    }
}
