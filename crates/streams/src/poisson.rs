//! Poisson update-event processes — the paper's synthetic stream model.
//!
//! "We also used a synthetic data stream that was generated using a Poisson
//! based update model; the parameter λ controls the update intensity of each
//! resource" (Section V-A.1). We interpret λ as the expected number of
//! updates per resource over the epoch, matching Table I's range `[10, 50]`
//! against the 1000-chronon epoch.

use crate::rng::SimRng;
use crate::trace::{Chronon, UpdateTrace};

/// A homogeneous Poisson process: events arrive with exponential gaps at a
/// constant rate.
#[derive(Debug, Clone, Copy)]
pub struct PoissonProcess {
    /// Expected number of events over the whole epoch.
    pub rate_per_epoch: f64,
}

impl PoissonProcess {
    /// A process expecting `rate_per_epoch` events per epoch.
    ///
    /// # Panics
    /// Panics if the rate is negative or non-finite.
    pub fn new(rate_per_epoch: f64) -> Self {
        assert!(
            rate_per_epoch.is_finite() && rate_per_epoch >= 0.0,
            "Poisson rate must be finite and non-negative (got {rate_per_epoch})"
        );
        PoissonProcess { rate_per_epoch }
    }

    /// Samples event chronons over `0..horizon` (sorted, deduplicated at
    /// chronon granularity).
    pub fn sample(&self, horizon: Chronon, rng: &mut SimRng) -> Vec<Chronon> {
        if self.rate_per_epoch == 0.0 {
            return Vec::new();
        }
        let rate_per_chronon = self.rate_per_epoch / f64::from(horizon);
        let mut events = Vec::new();
        let mut t = 0.0;
        loop {
            t += rng.exponential(rate_per_chronon);
            if t >= f64::from(horizon) {
                break;
            }
            events.push(t as Chronon);
        }
        events.dedup();
        events
    }

    /// Samples a full trace: one independent process per resource.
    pub fn sample_trace(&self, n_resources: u32, horizon: Chronon, rng: &SimRng) -> UpdateTrace {
        let events = (0..n_resources)
            .map(|r| {
                let mut sub = rng.fork_indexed("poisson-resource", u64::from(r));
                self.sample(horizon, &mut sub)
            })
            .collect();
        UpdateTrace::from_events(horizon, events)
    }
}

/// Samples a Poisson-distributed count with mean `lambda` (Knuth's method
/// for small λ, normal approximation above 30 — we only need workload-scale
/// counts).
pub fn poisson_count(lambda: f64, rng: &mut SimRng) -> u64 {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "Poisson mean must be finite and non-negative"
    );
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        // Knuth: multiply uniforms until below e^(-λ).
        let limit = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.f64();
            if p <= limit {
                return k;
            }
            k += 1;
        }
    }
    // Normal approximation N(λ, λ) via Box–Muller, clamped at zero.
    let u1 = 1.0 - rng.f64();
    let u2 = rng.f64();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let v = lambda + lambda.sqrt() * z;
    if v < 0.0 {
        0
    } else {
        v.round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_count_close_to_rate() {
        let p = PoissonProcess::new(20.0);
        let mut rng = SimRng::new(42);
        let reps = 500;
        let total: usize = (0..reps).map(|_| p.sample(1000, &mut rng).len()).sum();
        let mean = total as f64 / reps as f64;
        assert!((mean - 20.0).abs() < 1.0, "mean {mean} far from 20");
    }

    #[test]
    fn events_sorted_within_horizon() {
        let p = PoissonProcess::new(50.0);
        let mut rng = SimRng::new(7);
        let evs = p.sample(1000, &mut rng);
        assert!(evs.windows(2).all(|w| w[0] < w[1]));
        assert!(evs.iter().all(|&t| t < 1000));
    }

    #[test]
    fn zero_rate_yields_no_events() {
        let p = PoissonProcess::new(0.0);
        let mut rng = SimRng::new(1);
        assert!(p.sample(100, &mut rng).is_empty());
    }

    #[test]
    fn trace_is_reproducible_and_per_resource_independent() {
        let p = PoissonProcess::new(10.0);
        let t1 = p.sample_trace(5, 500, &SimRng::new(3));
        let t2 = p.sample_trace(5, 500, &SimRng::new(3));
        assert_eq!(t1, t2);
        // Different resources should not share a stream.
        assert_ne!(t1.events_of(0), t1.events_of(1));
    }

    #[test]
    fn poisson_count_small_lambda_mean() {
        let mut rng = SimRng::new(42);
        let n = 50_000;
        let total: u64 = (0..n).map(|_| poisson_count(3.0, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_count_large_lambda_mean() {
        let mut rng = SimRng::new(42);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| poisson_count(100.0, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn poisson_count_zero() {
        let mut rng = SimRng::new(1);
        assert_eq!(poisson_count(0.0, &mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_rate_rejected() {
        let _ = PoissonProcess::new(-1.0);
    }
}
