//! A Zipf distribution sampler, implemented from scratch.
//!
//! The paper's profile generator (Section V-A.2) uses two Zipf
//! distributions: `Zipf(α, n)` to pick resources (α > 0 skews toward
//! "popular" resources; the paper cites α ≈ 1.37 for Web feeds) and
//! `Zipf(β, k)` to pick profile ranks (β > 0 produces more low-rank
//! profiles). `θ = 0` degenerates to the uniform distribution, exactly as
//! the paper specifies.

use crate::rng::SimRng;

/// Zipf distribution over ranks `1..=n`: `P(i) ∝ 1 / i^θ`.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities, `cdf[i]` = P(rank ≤ i+1).
    cdf: Vec<f64>,
}

impl Zipf {
    /// A Zipf distribution over `1..=n` with exponent `theta >= 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(theta: f64, n: u32) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "Zipf exponent must be finite and non-negative (got {theta})"
        );
        let mut cdf: Vec<f64> = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / f64::from(i).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against accumulated floating error at the tail.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> u32 {
        self.cdf.len() as u32
    }

    /// Probability of rank `i` (1-based).
    pub fn pmf(&self, i: u32) -> f64 {
        assert!((1..=self.n()).contains(&i), "rank {i} out of range");
        let idx = (i - 1) as usize;
        if idx == 0 {
            self.cdf[0]
        } else {
            self.cdf[idx] - self.cdf[idx - 1]
        }
    }

    /// Samples a rank in `1..=n` (rank 1 is the most likely for θ > 0).
    pub fn sample(&self, rng: &mut SimRng) -> u32 {
        let u = rng.f64();
        // First index with cdf >= u.
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx.min(self.cdf.len() - 1) + 1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_zero_is_uniform() {
        let z = Zipf::new(0.0, 4);
        for i in 1..=4 {
            assert!((z.pmf(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        for theta in [0.0, 0.3, 1.0, 1.37, 2.0] {
            let z = Zipf::new(theta, 50);
            let total: f64 = (1..=50).map(|i| z.pmf(i)).sum();
            assert!((total - 1.0).abs() < 1e-9, "theta={theta} total={total}");
        }
    }

    #[test]
    fn positive_theta_skews_to_low_ranks() {
        let z = Zipf::new(1.37, 100);
        assert!(z.pmf(1) > z.pmf(2));
        assert!(z.pmf(2) > z.pmf(10));
        assert!(z.pmf(10) > z.pmf(100));
    }

    #[test]
    fn samples_match_pmf() {
        let z = Zipf::new(1.0, 5);
        let mut rng = SimRng::new(42);
        let n = 100_000;
        let mut counts = [0u32; 5];
        for _ in 0..n {
            counts[(z.sample(&mut rng) - 1) as usize] += 1;
        }
        for i in 1..=5u32 {
            let observed = f64::from(counts[(i - 1) as usize]) / n as f64;
            let expected = z.pmf(i);
            assert!(
                (observed - expected).abs() < 0.01,
                "rank {i}: observed {observed} vs expected {expected}"
            );
        }
    }

    #[test]
    fn sample_is_always_in_range() {
        let z = Zipf::new(2.0, 3);
        let mut rng = SimRng::new(1);
        for _ in 0..10_000 {
            let s = z.sample(&mut rng);
            assert!((1..=3).contains(&s));
        }
    }

    #[test]
    fn single_rank_always_sampled() {
        let z = Zipf::new(1.0, 1);
        let mut rng = SimRng::new(9);
        assert_eq!(z.sample(&mut rng), 1);
        assert!((z.pmf(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Zipf::new(1.0, 0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_theta_rejected() {
        let _ = Zipf::new(-0.5, 10);
    }
}
