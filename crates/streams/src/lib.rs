#![warn(missing_docs)]

//! # webmon-streams
//!
//! Update-event stream substrates for the *Web Monitoring 2.0* reproduction.
//!
//! The paper's evaluation (Section V-A.1) drives the scheduler with three
//! kinds of update streams; all of them are built here, from scratch:
//!
//! * a **synthetic Poisson stream** — [`poisson`] — where the parameter `λ`
//!   controls per-resource update intensity;
//! * a **real eBay auction trace** (732 three-day auctions, 11,150 bids) —
//!   unavailable, so [`auction`] synthesizes an equivalent trace with the
//!   documented shape of eBay bidding (late-auction intensity ramp);
//! * a **real RSS news trace** (130 feeds, ~68k events over two months) —
//!   unavailable, so [`news`] synthesizes Zipf-skewed per-feed rates
//!   (the paper itself cites `α ≈ 1.37` for Web feeds) with a diurnal cycle.
//!
//! [`fpn`] implements the FPN(Z) *noisy update model* of \[3\] used in the
//! Figure 15 experiments: with probability `Z` the model predicts an update
//! event exactly; otherwise the prediction deviates from the real event.
//! [`fitted`] implements the homogeneous Poisson-fitted model of the
//! Section V-H news experiment (predict from the rate, not the timestamps).
//!
//! [`bursty`] goes beyond the paper's homogeneous streams with diurnal
//! on/off rate modulation and Pareto-burst interarrivals (plus the
//! [`bursty::UpdateModel`] sum type the declarative workload spec names).
//!
//! [`zipf`] provides the Zipf sampler the workload generator needs (kept
//! here with the other stochastic substrates), and [`rng`] a seeded,
//! forkable RNG wrapper so every trace is reproducible.

pub mod auction;
pub mod bursty;
pub mod fitted;
pub mod fpn;
pub mod io;
pub mod news;
pub mod poisson;
pub mod record;
pub mod rng;
pub mod trace;
pub mod zipf;

pub use auction::{AuctionTrace, AuctionTraceConfig};
pub use bursty::{BurstyError, DiurnalConfig, ParetoBurstConfig, UpdateModel};
pub use fitted::{PoissonFittedModel, PrefixFittedModel};
pub use fpn::{EventPair, FpnModel, NoisyTrace};
pub use io::{read_csv, read_csv_file, write_csv, TraceIoError};
pub use news::NewsTraceConfig;
pub use poisson::{poisson_count, PoissonProcess};
pub use record::{crc32, parse_record, write_all_tagged, write_record, Record, RecordError};
pub use rng::SimRng;
pub use trace::UpdateTrace;
pub use zipf::Zipf;
