//! `webmon` — the command-line front end of the Web Monitoring 2.0
//! reproduction. Run `webmon help` for usage.

mod args;
mod commands;

fn main() {
    let parsed = match args::Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    match commands::dispatch(&parsed) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
