//! `webmon` — the command-line front end of the Web Monitoring 2.0
//! reproduction. Run `webmon help` for usage.

fn main() {
    let parsed = match webmon_cli::args::Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", webmon_cli::commands::USAGE);
            std::process::exit(2);
        }
    };
    match webmon_cli::commands::dispatch(&parsed) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
