//! A small hand-rolled argument parser (`--key value` / `--flag` pairs), so
//! the CLI stays inside the workspace's approved dependency set.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line: a subcommand plus `--key value` options and bare
/// `--flag`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The first positional argument (the subcommand).
    pub command: Option<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// A malformed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// `--key` given twice.
    Duplicate(String),
    /// A positional argument appeared after options began.
    UnexpectedPositional(String),
    /// An option value failed to parse.
    BadValue {
        /// The option name.
        key: String,
        /// The raw value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::Duplicate(k) => write!(f, "option --{k} given more than once"),
            ArgError::UnexpectedPositional(p) => {
                write!(f, "unexpected positional argument '{p}'")
            }
            ArgError::BadValue {
                key,
                value,
                expected,
            } => write!(f, "--{key} {value}: expected {expected}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses an iterator of arguments (excluding the program name).
    ///
    /// `--key value` and `--key=value` become options; `--key` followed by
    /// another `--…` or nothing becomes a flag; the first bare token is the
    /// subcommand.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Args, ArgError> {
        let mut it = args.into_iter().peekable();
        let mut command = None;
        let mut options = BTreeMap::new();
        let mut flags = Vec::new();

        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                // `--key=value` carries its value inline. Without this arm
                // the whole token used to parse as a *flag* named
                // `key=value`, silently dropping the value (so e.g.
                // `--churn-alpha=-2` was accepted and ignored).
                if let Some((key, value)) = key.split_once('=') {
                    if options.insert(key.to_string(), value.to_string()).is_some()
                        || flags.contains(&key.to_string())
                    {
                        return Err(ArgError::Duplicate(key.to_string()));
                    }
                    continue;
                }
                // `next_if` both tests and consumes the value token, so there
                // is no peek-then-unwrap window to go wrong.
                if let Some(value) = it.next_if(|next| !next.starts_with("--")) {
                    if options.insert(key.to_string(), value).is_some() {
                        return Err(ArgError::Duplicate(key.to_string()));
                    }
                } else if flags.contains(&key.to_string()) {
                    return Err(ArgError::Duplicate(key.to_string()));
                } else {
                    flags.push(key.to_string());
                }
            } else if command.is_none() && options.is_empty() && flags.is_empty() {
                command = Some(tok);
            } else {
                return Err(ArgError::UnexpectedPositional(tok));
            }
        }
        Ok(Args {
            command,
            options,
            flags,
        })
    }

    /// The raw string value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// `true` if `--key` was given as a bare flag.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// A parsed numeric/typed option with a default.
    pub fn get_parsed<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                key: key.to_string(),
                value: raw.to_string(),
                expected,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(toks: &[&str]) -> Result<Args, ArgError> {
        Args::parse(toks.iter().map(|s| s.to_string()))
    }

    #[test]
    fn subcommand_options_and_flags() {
        let a = parse(&["run", "--lambda", "20", "--quick", "--policy", "mrsf"]).unwrap();
        assert_eq!(a.command.as_deref(), Some("run"));
        assert_eq!(a.get("lambda"), Some("20"));
        assert_eq!(a.get("policy"), Some("mrsf"));
        assert!(a.flag("quick"));
        assert!(!a.flag("verbose"));
    }

    #[test]
    fn empty_line_is_ok() {
        let a = parse(&[]).unwrap();
        assert!(a.command.is_none());
    }

    #[test]
    fn duplicate_option_rejected() {
        assert_eq!(
            parse(&["run", "--x", "1", "--x", "2"]),
            Err(ArgError::Duplicate("x".into()))
        );
    }

    #[test]
    fn late_positional_rejected() {
        assert!(matches!(
            parse(&["run", "--x", "1", "stray"]),
            Err(ArgError::UnexpectedPositional(_))
        ));
    }

    #[test]
    fn typed_access_with_default() {
        let a = parse(&["run", "--budget", "3"]).unwrap();
        assert_eq!(a.get_parsed("budget", 1u32, "an integer").unwrap(), 3);
        assert_eq!(a.get_parsed("missing", 7u32, "an integer").unwrap(), 7);
        let bad = parse(&["run", "--budget", "x"]).unwrap();
        assert!(bad.get_parsed("budget", 1u32, "an integer").is_err());
    }

    #[test]
    fn equals_form_carries_the_value() {
        let a = parse(&["run", "--churn-alpha=-2", "--lambda=20"]).unwrap();
        assert_eq!(a.get("churn-alpha"), Some("-2"));
        assert_eq!(a.get("lambda"), Some("20"));
        assert!(!a.flag("churn-alpha=-2"));
        // An empty value is still a value, not a flag.
        let a = parse(&["run", "--out="]).unwrap();
        assert_eq!(a.get("out"), Some(""));
        // Duplicates across both forms are rejected.
        assert_eq!(
            parse(&["run", "--x=1", "--x", "2"]),
            Err(ArgError::Duplicate("x".into()))
        );
        assert_eq!(
            parse(&["run", "--x", "--x=2"]),
            Err(ArgError::Duplicate("x".into()))
        );
    }

    #[test]
    fn dangling_key_at_end_of_line_is_a_flag() {
        // Regression: a trailing `--key` with no value used to go through a
        // peek-then-`expect` pair; it must parse as a flag, never panic.
        let a = parse(&["run", "--lambda"]).unwrap();
        assert!(a.flag("lambda"));
        assert_eq!(a.get("lambda"), None);
    }

    #[test]
    fn flag_then_option_order_is_fine() {
        let a = parse(&["sweep", "--quick", "--param", "budget"]).unwrap();
        assert!(a.flag("quick"));
        assert_eq!(a.get("param"), Some("budget"));
    }
}
