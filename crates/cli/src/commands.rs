//! CLI subcommand implementations.

use crate::args::{ArgError, Args};
use serde::Serialize;
use webmon_core::obs::RunMetrics;
use webmon_sim::{
    Experiment, ExperimentConfig, NoiseSpec, PolicyAggregate, PolicyKind, PolicySpec, Report,
    Table, TraceSpec,
};
use webmon_streams::auction::AuctionTraceConfig;
use webmon_streams::fpn::FpnModel;
use webmon_streams::news::NewsTraceConfig;
use webmon_streams::rng::SimRng;
use webmon_workload::{EiLength, RankSpec, WorkloadConfig};

/// Top-level usage text.
pub const USAGE: &str = "\
webmon — Web Monitoring 2.0 (ICDE 2009) reproduction

USAGE:
    webmon <COMMAND> [OPTIONS]

COMMANDS:
    run          Run one monitoring experiment and print the policy table
    sweep        Sweep one parameter (budget | lambda | alpha | rank)
    trace        Generate a trace and print its statistics
    experiments  Run the full paper experiment suite (all figures/tables)
    help         Show this message

COMMON OPTIONS (run / sweep):
    --trace poisson|auction|news   update-event source        [poisson]
    --lambda <f64>                 Poisson intensity/epoch    [20]
    --resources <u32>              number of resources n      [200]
    --horizon <u32>                epoch length K             [1000]
    --budget <u32>                 probes per chronon C       [1]
    --profiles <u32>               number of profiles m       [50]
    --rank <u16>                   max profile rank k         [5]
    --fixed-rank                   all CEIs exactly rank k (default: up to k)
    --alpha <f64>                  resource-popularity skew   [0.3]
    --beta <f64>                   rank-variance skew         [0]
    --window <u32>                 window(w) EIs instead of overwrite(ω=10)
    --noise-z <f64>                FPN(Z) noise level (1 = none)
    --reps <u32>                   repetitions                [5]
    --seed <u64>                   master seed                [1234]

SWEEP OPTIONS:
    --param budget|lambda|alpha|rank   the swept parameter    [budget]

TRACE OPTIONS:
    --trace poisson|auction|news, --resources, --horizon, --lambda, --seed

EXPERIMENTS OPTIONS:
    --quick                        smoke-test sizes

PARALLELISM (run / sweep / experiments):
    --jobs <N>                     worker threads (also: WEBMON_JOBS env var;
                                   default: all cores; results are identical
                                   for every N — timed experiments always
                                   run single-worker)

OUTPUT:
    --json                         machine-readable JSON (run / sweep)

OBSERVABILITY (run):
    --metrics <path>               write per-policy RunMetrics (merged over
                                   repetitions) + RunStats consistency checks
                                   as JSON
    --trace-out <path>             write the JSONL engine event trace of
                                   repetition 0 for every roster policy,
                                   concatenated in roster order (a new stream
                                   starts at each ChrononStart with t = 0)
";

/// Runs the parsed command line; returns the process exit code.
pub fn dispatch(args: &Args) -> Result<i32, ArgError> {
    let jobs: usize = args.get_parsed("jobs", 0, "a worker count")?;
    webmon_sim::parallel::set_jobs(jobs);
    match args.command.as_deref() {
        Some("run") => cmd_run(args),
        Some("sweep") => cmd_sweep(args),
        Some("trace") => cmd_trace(args),
        Some("experiments") => cmd_experiments(args),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(0)
        }
        Some(other) => {
            eprintln!("unknown command '{other}'\n\n{USAGE}");
            Ok(2)
        }
    }
}

/// Builds an `ExperimentConfig` from common options.
fn config_from(args: &Args) -> Result<ExperimentConfig, ArgError> {
    let n_resources: u32 = args.get_parsed("resources", 200, "an integer")?;
    let horizon: u32 = args.get_parsed("horizon", 1000, "an integer")?;
    let lambda: f64 = args.get_parsed("lambda", 20.0, "a number")?;
    let rank: u16 = args.get_parsed("rank", 5, "an integer")?;
    let beta: f64 = args.get_parsed("beta", 0.0, "a number")?;

    let trace = match args.get("trace").unwrap_or("poisson") {
        "auction" => TraceSpec::Auction(AuctionTraceConfig::scaled(n_resources, horizon)),
        "news" => TraceSpec::News(NewsTraceConfig::scaled(n_resources, horizon)),
        _ => TraceSpec::Poisson { lambda },
    };
    let length = match args.get("window") {
        Some(_) => EiLength::Window(args.get_parsed("window", 10, "an integer")?),
        None => EiLength::Overwrite { max_len: Some(10) },
    };
    let noise = match args.get("noise-z") {
        Some(_) => {
            let z: f64 = args.get_parsed("noise-z", 1.0, "a number in [0,1]")?;
            Some(NoiseSpec::Fpn(FpnModel::new(z, 10)))
        }
        None => None,
    };

    Ok(ExperimentConfig {
        n_resources,
        horizon,
        budget: args.get_parsed("budget", 1, "an integer")?,
        workload: WorkloadConfig {
            n_profiles: args.get_parsed("profiles", 50, "an integer")?,
            rank: if args.flag("fixed-rank") {
                RankSpec::Fixed(rank)
            } else {
                RankSpec::UpTo { k: rank, beta }
            },
            resource_alpha: args.get_parsed("alpha", 0.3, "a number")?,
            length,
            distinct_resources: true,
            max_ceis: None,
            no_intra_resource_overlap: false,
        },
        trace,
        noise,
        repetitions: args.get_parsed("reps", 5, "an integer")?,
        seed: args.get_parsed("seed", 1234, "an integer")?,
    })
}

fn roster_table(title: &str, aggregates: &[PolicyAggregate]) -> Table {
    let mut t = Table::with_headers(
        title,
        &[
            "policy",
            "completeness",
            "EI completeness",
            "µs/EI",
            "budget util.",
        ],
    );
    for agg in aggregates {
        t.push_numeric_row(
            agg.label.clone(),
            &[
                agg.completeness.mean,
                agg.ei_completeness.mean,
                agg.micros_per_ei.mean,
                agg.budget_utilization.mean,
            ],
            4,
        );
    }
    t
}

/// One policy column of the `--metrics` artifact.
#[derive(Debug, Serialize)]
struct PolicyMetricsDoc {
    /// Roster label, e.g. `"MRSF(P)"`.
    label: String,
    /// Per-repetition mismatches between in-run metrics and post-hoc
    /// `RunStats` (always empty on a healthy build; skipped under noise,
    /// where stats are truth-validated and *should* disagree).
    consistency_errors: Vec<String>,
    /// Metrics merged over all repetitions, in repetition order.
    metrics: RunMetrics,
}

/// The `webmon run --metrics` artifact.
#[derive(Debug, Serialize)]
struct MetricsDoc {
    /// Master seed of the experiment.
    seed: u64,
    /// Repetitions merged into each policy's metrics.
    repetitions: u32,
    /// One entry per roster policy, in roster order.
    policies: Vec<PolicyMetricsDoc>,
}

fn metrics_doc(exp: &Experiment, aggregates: &[PolicyAggregate]) -> MetricsDoc {
    let noisy = exp.config().noise.is_some();
    let policies = aggregates
        .iter()
        .map(|agg| {
            let mut consistency_errors = Vec::new();
            if !noisy {
                for (i, rep) in agg.repetitions.iter().enumerate() {
                    for e in rep.metrics.consistency_errors(&rep.stats) {
                        consistency_errors.push(format!("rep {i}: {e}"));
                    }
                }
            }
            PolicyMetricsDoc {
                label: agg.label.clone(),
                consistency_errors,
                metrics: agg.metrics.clone(),
            }
        })
        .collect();
    MetricsDoc {
        seed: exp.config().seed,
        repetitions: exp.config().repetitions,
        policies,
    }
}

fn write_metrics(path: &str, doc: &MetricsDoc) -> std::io::Result<()> {
    let json =
        serde_json::to_string_pretty(doc).map_err(|e| std::io::Error::other(e.to_string()))?;
    std::fs::write(path, json)
}

fn write_trace(path: &str, exp: &Experiment, roster: &[PolicySpec]) -> std::io::Result<u64> {
    let mut writer = std::io::BufWriter::new(std::fs::File::create(path)?);
    let mut total = 0;
    for &spec in roster {
        let (w, events) = exp.trace_spec(spec, 0, writer)?;
        writer = w;
        total += events;
    }
    Ok(total)
}

fn cmd_run(args: &Args) -> Result<i32, ArgError> {
    let cfg = config_from(args)?;
    let exp = Experiment::materialize(cfg);
    let roster = PolicySpec::paper_roster();
    let aggregates = exp.run_roster(&roster);

    if let Some(path) = args.get("metrics") {
        let doc = metrics_doc(&exp, &aggregates);
        for err in doc.policies.iter().flat_map(|p| &p.consistency_errors) {
            eprintln!("metrics inconsistency: {err}");
        }
        if let Err(e) = write_metrics(path, &doc) {
            eprintln!("cannot write metrics to {path}: {e}");
            return Ok(1);
        }
        eprintln!("metrics: wrote {} policies to {path}", doc.policies.len());
    }
    if let Some(path) = args.get("trace-out") {
        match write_trace(path, &exp, &roster) {
            Ok(events) => eprintln!("trace: wrote {events} events to {path}"),
            Err(e) => {
                eprintln!("cannot write trace to {path}: {e}");
                return Ok(1);
            }
        }
    }

    if args.flag("json") {
        let report = Report::from_tables(vec![roster_table("webmon run", &aggregates)])
            .with_aggregates(aggregates);
        println!("{}", report.to_json());
        return Ok(0);
    }
    let (ceis, eis) = exp.mean_sizes();
    println!(
        "workload: ~{ceis:.0} CEIs / ~{eis:.0} EIs per repetition ({} reps)\n",
        exp.config().repetitions
    );
    println!("{}", roster_table("webmon run", &aggregates));
    Ok(0)
}

fn cmd_sweep(args: &Args) -> Result<i32, ArgError> {
    let param = args.get("param").unwrap_or("budget").to_string();
    let base = config_from(args)?;
    let specs = [
        PolicySpec::np(PolicyKind::SEdf),
        PolicySpec::p(PolicyKind::Mrsf),
        PolicySpec::p(PolicyKind::MEdf),
    ];
    let mut t = Table::with_headers(
        format!("webmon sweep — {param}"),
        &[param.as_str(), "S-EDF(NP)", "MRSF(P)", "M-EDF(P)"],
    );
    let points: Vec<(String, ExperimentConfig)> = match param.as_str() {
        "lambda" => [10.0, 20.0, 30.0, 40.0, 50.0]
            .iter()
            .map(|&l| {
                let mut c = base.clone();
                c.trace = TraceSpec::Poisson { lambda: l };
                (format!("{l}"), c)
            })
            .collect(),
        "alpha" => [0.0, 0.25, 0.5, 0.75, 1.0]
            .iter()
            .map(|&a| {
                let mut c = base.clone();
                c.workload.resource_alpha = a;
                (format!("{a}"), c)
            })
            .collect(),
        "rank" => (1..=5u16)
            .map(|k| {
                let mut c = base.clone();
                c.workload.rank = RankSpec::Fixed(k);
                (format!("{k}"), c)
            })
            .collect(),
        _ => (1..=5u32)
            .map(|b| {
                let mut c = base.clone();
                c.budget = b;
                (format!("{b}"), c)
            })
            .collect(),
    };
    // Sweep points run in parallel; rows are pushed in sweep order.
    let rows = webmon_sim::parallel::par_map(points, |_, (label, cfg)| {
        let exp = Experiment::materialize(cfg);
        let vals: Vec<f64> = specs
            .iter()
            .map(|&s| exp.run_spec(s).completeness.mean)
            .collect();
        (label, vals)
    });
    for (label, vals) in rows {
        t.push_numeric_row(label, &vals, 4);
    }
    if args.flag("json") {
        println!("{}", Report::from_tables(vec![t]).to_json());
    } else {
        println!("{t}");
    }
    Ok(0)
}

fn cmd_trace(args: &Args) -> Result<i32, ArgError> {
    let n_resources: u32 = args.get_parsed("resources", 100, "an integer")?;
    let horizon: u32 = args.get_parsed("horizon", 1000, "an integer")?;
    let lambda: f64 = args.get_parsed("lambda", 20.0, "a number")?;
    let seed: u64 = args.get_parsed("seed", 1234, "an integer")?;
    let spec = match args.get("trace").unwrap_or("poisson") {
        "auction" => TraceSpec::Auction(AuctionTraceConfig::scaled(n_resources, horizon)),
        "news" => TraceSpec::News(NewsTraceConfig::scaled(n_resources, horizon)),
        _ => TraceSpec::Poisson { lambda },
    };
    let trace = spec.generate(n_resources, horizon, &SimRng::new(seed));
    let mut counts: Vec<usize> = (0..trace.n_resources())
        .map(|r| trace.events_of(r).len())
        .collect();
    counts.sort_unstable();
    let total = trace.total_events();
    println!("resources: {}", trace.n_resources());
    println!("horizon:   {} chronons", trace.horizon());
    println!(
        "events:    {total} total, {:.1} mean/resource",
        trace.mean_intensity()
    );
    println!(
        "per-resource events: min {} / median {} / max {}",
        counts.first().unwrap_or(&0),
        counts.get(counts.len() / 2).unwrap_or(&0),
        counts.last().unwrap_or(&0),
    );
    Ok(0)
}

fn cmd_experiments(args: &Args) -> Result<i32, ArgError> {
    let scale = if args.flag("quick") {
        webmon_bench::Scale::Quick
    } else {
        webmon_bench::Scale::Paper
    };
    for (name, runner) in suite() {
        eprintln!(">> {name}");
        webmon_bench::print_tables(&runner(scale));
    }
    Ok(0)
}

type Runner = fn(webmon_bench::Scale) -> Vec<Table>;

fn suite() -> Vec<(&'static str, Runner)> {
    vec![
        ("Table I", webmon_bench::table1::run),
        ("Figure 9", webmon_bench::fig09::run),
        ("Figure 10", webmon_bench::fig10::run),
        ("§V-D runtime", webmon_bench::runtime_offline::run),
        ("Figure 11", webmon_bench::fig11::run),
        ("Figure 12", webmon_bench::fig12::run),
        ("Figure 13", webmon_bench::fig13::run),
        ("Figure 14", webmon_bench::fig14::run),
        ("Figure 15", webmon_bench::fig15::run),
        ("Ablations", webmon_bench::ablations::run),
        ("Extensions", webmon_bench::extensions::run),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(toks: &[&str]) -> Args {
        Args::parse(toks.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn config_defaults_are_sane() {
        let cfg = config_from(&parse(&["run"])).unwrap();
        assert_eq!(cfg.budget, 1);
        assert_eq!(cfg.n_resources, 200);
        assert!(matches!(cfg.trace, TraceSpec::Poisson { .. }));
        assert!(cfg.noise.is_none());
    }

    #[test]
    fn config_honors_options() {
        let cfg = config_from(&parse(&[
            "run",
            "--budget",
            "3",
            "--trace",
            "auction",
            "--resources",
            "80",
            "--fixed-rank",
            "--rank",
            "2",
            "--window",
            "5",
            "--noise-z",
            "0.4",
        ]))
        .unwrap();
        assert_eq!(cfg.budget, 3);
        assert!(matches!(cfg.trace, TraceSpec::Auction(_)));
        assert_eq!(cfg.workload.rank, RankSpec::Fixed(2));
        assert_eq!(cfg.workload.length, EiLength::Window(5));
        assert!(cfg.noise.is_some());
    }

    #[test]
    fn bad_value_is_reported() {
        let err = config_from(&parse(&["run", "--budget", "lots"])).unwrap_err();
        assert!(matches!(err, ArgError::BadValue { .. }));
    }

    #[test]
    fn dispatch_help_and_unknown() {
        assert_eq!(dispatch(&parse(&["help"])).unwrap(), 0);
        assert_eq!(dispatch(&parse(&["frobnicate"])).unwrap(), 2);
    }

    #[test]
    fn suite_covers_all_artifacts() {
        assert_eq!(suite().len(), 11);
    }

    fn tiny_experiment() -> Experiment {
        Experiment::materialize(ExperimentConfig {
            n_resources: 30,
            horizon: 120,
            budget: 1,
            workload: WorkloadConfig {
                n_profiles: 8,
                rank: RankSpec::UpTo { k: 3, beta: 0.0 },
                resource_alpha: 0.0,
                length: EiLength::Window(3),
                distinct_resources: true,
                max_ceis: Some(200),
                no_intra_resource_overlap: false,
            },
            trace: TraceSpec::Poisson { lambda: 6.0 },
            noise: None,
            repetitions: 2,
            seed: 7,
        })
    }

    #[test]
    fn metrics_doc_is_consistent_and_serializable() {
        let exp = tiny_experiment();
        let roster = [
            PolicySpec::p(PolicyKind::MEdf),
            PolicySpec::np(PolicyKind::SEdf),
        ];
        let aggregates = exp.run_roster(&roster);
        let doc = metrics_doc(&exp, &aggregates);
        assert_eq!(doc.repetitions, 2);
        assert_eq!(doc.policies.len(), 2);
        for p in &doc.policies {
            assert!(
                p.consistency_errors.is_empty(),
                "metrics drifted from stats: {:?}",
                p.consistency_errors
            );
            assert_eq!(p.metrics.runs, 2);
        }
        let json = serde_json::to_string_pretty(&doc).unwrap();
        assert!(json.contains("\"probes_issued\""));
    }

    #[test]
    fn trace_streams_valid_jsonl_per_roster_policy() {
        let exp = tiny_experiment();
        let roster = [
            PolicySpec::p(PolicyKind::MEdf),
            PolicySpec::p(PolicyKind::Mrsf),
        ];
        let mut buf = Vec::new();
        let mut total = 0;
        for &spec in &roster {
            let (b, events) = exp.trace_spec(spec, 0, buf).unwrap();
            buf = b;
            total += events;
        }
        let out = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len() as u64, total);
        for line in &lines {
            let _: serde_json::Value = serde_json::from_str(line).unwrap();
        }
        // One stream restart per roster policy: t = 0 opens each stream.
        let restarts = lines
            .iter()
            .filter(|l| l.starts_with("{\"ChrononStart\":{\"t\":0,"))
            .count();
        assert_eq!(restarts, 2);
    }
}
