//! CLI subcommand implementations.

use crate::args::{ArgError, Args};
use crate::serve::{Daemon, ServeOptions, ServeSession};
use serde::Serialize;
use webmon_core::engine::{MutationQueue, ScriptedMutations};
use webmon_core::fault::{Backoff, FaultConfig};
use webmon_core::obs::RunMetrics;
use webmon_core::serve::{
    Clock, FreeClock, ProbeExecutor, ReplayExecutor, TcpProbeExecutor, WallClock,
};
use webmon_sim::{
    ChurnSpec, Experiment, ExperimentConfig, FaultKind, FaultSpec, NoiseSpec, PolicyAggregate,
    PolicyKind, PolicySpec, Report, Table, TraceSpec,
};
use webmon_streams::auction::AuctionTraceConfig;
use webmon_streams::fpn::FpnModel;
use webmon_streams::news::NewsTraceConfig;
use webmon_streams::rng::SimRng;
use webmon_workload::{EiLength, RankSpec, WorkloadConfig, WorkloadSpec};

/// Top-level usage text.
pub const USAGE: &str = "\
webmon — Web Monitoring 2.0 (ICDE 2009) reproduction

USAGE:
    webmon <COMMAND> [OPTIONS]

COMMANDS:
    run          Run one monitoring experiment and print the policy table
    sweep        Sweep one parameter (budget | lambda | alpha | skew-alpha | rank)
    trace        Generate a trace and print its statistics
    serve        Run the engine as a monitoring daemon on a local socket
    experiments  Run the full paper experiment suite (all figures/tables)
    bench        Run the engine scaling benchmark (the BENCH_engine.json grid)
    help         Show this message

COMMON OPTIONS (run / sweep):
    --trace poisson|auction|news   update-event source        [poisson]
    --lambda <f64>                 Poisson intensity/epoch    [20]
    --resources <u32>              number of resources n      [200]
    --horizon <u32>                epoch length K             [1000]
    --budget <u32>                 probes per chronon C       [1]
    --profiles <u32>               number of profiles m       [50]
    --rank <u16>                   max profile rank k         [5]
    --fixed-rank                   all CEIs exactly rank k (default: up to k)
    --alpha <f64>                  resource-popularity skew   [0.3]
    --beta <f64>                   rank-variance skew         [0]
    --window <u32>                 window(w) EIs instead of overwrite(ω=10)
    --noise-z <f64>                FPN(Z) noise level (1 = none)
    --reps <u32>                   repetitions                [5]
    --seed <u64>                   master seed                [1234]

RUN OPTIONS:
    --workload-spec <path>         build the experiment from a declarative
                                   WorkloadSpec JSON file (skewed placement,
                                   hot-key classes, bursty updates) instead
                                   of the flags above
    --offline-lr                   also run the offline Local-Ratio baseline;
                                   infeasible instances (threshold CEIs,
                                   expansion over the cap) exit 2 with a
                                   diagnostic

SWEEP OPTIONS:
    --param budget|lambda|alpha|skew-alpha|rank|fault-rate
                                   swept parameter [budget]

FAULT INJECTION (run; sweep --param fault-rate):
    --fault-rate <f64>             enable faults: per-probe failure (iid)
                                   or per-chronon outage (burst) probability
    --fault-model iid|burst        fault model                [iid]
    --fault-recover <f64>          burst recovery probability [0.5]
    --fault-seed <u64>             fault master seed          [64023]
    --fault-free                   failed probes do not consume budget
    --retry immediate|backoff      retry discipline           [immediate]
    --retry-quota <u32>            max retried probes per chronon

PROFILE CHURN (run):
    --churn-arrivals <f64>         fraction of CEIs arriving mid-run via
                                   dynamic registration (enables churn)
    --churn-cancels <f64>          fraction of CEIs cancelled mid-run
                                   (enables churn)
    --churn-alpha <f64>            skew churn toward popular resources [0]
    --churn-delay <u32>            max registration delay, chronons    [4]
    --churn-budget-changes <u32>   mid-run budget reconfigurations     [0]
    --churn-seed <u64>             churn master seed               [49374]

TRACE OPTIONS:
    --trace poisson|auction|news, --resources, --horizon, --lambda, --seed

EXPERIMENTS OPTIONS:
    --quick                        smoke-test sizes

BENCH OPTIONS:
    --quick                        the CI smoke grid (default: the full grid)
    --bench-profiles <a,b,..>      override the |P| ladder       e.g. 150,600
    --bench-ranks <a,b,..>         override the EIs/CEI ladder
    --bench-horizons <a,b,..>      override the horizon ladder
    --bench-budgets <a,b,..>       override the budget ladder
                                   (any override replaces the default grid
                                   with the cross product of the ladders)
    --out <path>                   write BENCH_engine.json-format report
    --check <path>                 gate against a committed baseline; exits 1
                                   on counter drift or >20% speedup regression

PARALLELISM (run / sweep / experiments):
    --jobs <N>                     worker threads (also: WEBMON_JOBS env var;
                                   default: all cores; results are identical
                                   for every N — timed experiments always
                                   run single-worker)
    --shards <N>                   engine shards per run (also: WEBMON_SHARDS
                                   env var; default 1 = serial; clamped to
                                   the resource count; schedules, metrics,
                                   and traces are bit-identical for every N)

OUTPUT:
    --json                         machine-readable JSON (run / sweep)

OBSERVABILITY (run):
    --metrics <path>               write per-policy RunMetrics (merged over
                                   repetitions) + RunStats consistency checks
                                   as JSON
    --trace-out <path>             write the JSONL engine event trace of
                                   repetition 0 for every roster policy,
                                   concatenated in roster order (a new stream
                                   starts at each ChrononStart with t = 0)

SERVE OPTIONS (plus the common/fault/churn options above, which shape
the monitored instance exactly like `run` repetition 0):
    --listen <addr>                control socket          [127.0.0.1:7077]
                                   (:0 picks a free port, printed to stderr)
    --chronon-ms <u64>             wall-clock ms per chronon; 0 = free-run
                                   as fast as the engine computes     [0]
    --policy s-edf|mrsf|m-edf|w-ic|random|round-robin     policy     [m-edf]
    --np                           non-preemptive variant (default: P)
    --executor replay|live         probe executor          [replay]
                                   replay: deterministic, probes answered
                                   from the scripted fault model (none ->
                                   always up) — byte-identical to the
                                   simulator; live: real TCP probes
    --targets <a:p,b:p,..>         probe targets, required with live
    --probe-timeout-ms <u64>       per-probe TCP timeout with live   [200]
    --replay-feed <path>           build the instance from a CSV update
                                   trace instead of the generated one
    --trace-out <path>             write the daemon's JSONL event trace
    --sim-trace-out <path>         also run the simulator on the same case
                                   and write its JSONL trace (for diffing;
                                   not valid with --replay-feed)
    --journal-dir <dir>            append a durable run journal (frames,
                                   snapshots, live mutations) to
                                   <dir>/run.journal
    --fsync every-chronon|every-<n>|os
                                   journal durability policy [every-chronon]
    --snapshot-every <n>           journal an engine snapshot every n
                                   chronons; 0 = never (recovery then
                                   replays from chronon 0)          [64]
    --recover <dir>                recover a crashed run from the journal
                                   in <dir>: restore the latest snapshot,
                                   replay the journaled chronons to the
                                   crash point, then continue live (all
                                   other flags must match the crashed run)

    The line protocol on the socket: ping | attach | register <cei-id> |
    cancel <cei-id> | set-budget <n> | shutdown. One JSON reply per line;
    attach switches the connection to the JSONL event stream.
";

/// Runs the parsed command line; returns the process exit code.
pub fn dispatch(args: &Args) -> Result<i32, ArgError> {
    let jobs: usize = args.get_parsed("jobs", 0, "a worker count")?;
    webmon_sim::parallel::set_jobs(jobs);
    let shards: usize = args.get_parsed("shards", 0, "a shard count")?;
    webmon_sim::parallel::set_shards(shards);
    match args.command.as_deref() {
        Some("run") => cmd_run(args),
        Some("sweep") => cmd_sweep(args),
        Some("trace") => cmd_trace(args),
        Some("serve") => cmd_serve(args),
        Some("experiments") => cmd_experiments(args),
        Some("bench") => cmd_bench(args),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(0)
        }
        Some(other) => {
            eprintln!("unknown command '{other}'\n\n{USAGE}");
            Ok(2)
        }
    }
}

/// Rejects a zero where the engine needs at least one (resources, horizon,
/// budget, profiles, repetitions): a structured error beats a panic deep in
/// instance materialization.
fn require_positive(key: &'static str, value: u32) -> Result<u32, ArgError> {
    if value == 0 {
        return Err(ArgError::BadValue {
            key: key.to_string(),
            value: "0".to_string(),
            expected: "a positive integer",
        });
    }
    Ok(value)
}

/// Parses a Zipf-style skew exponent, rejecting non-finite or negative
/// values with a structured error instead of letting them reach
/// `Zipf::new`'s panic deep in workload generation.
fn skew_exponent(args: &Args, key: &'static str, default: f64) -> Result<f64, ArgError> {
    let v: f64 = args.get_parsed(key, default, "a number")?;
    if !(v.is_finite() && v >= 0.0) {
        return Err(ArgError::BadValue {
            key: key.to_string(),
            value: args.get(key).unwrap_or_default().to_string(),
            expected: "a finite non-negative exponent",
        });
    }
    Ok(v)
}

/// Builds an `ExperimentConfig` from common options.
fn config_from(args: &Args) -> Result<ExperimentConfig, ArgError> {
    let n_resources = require_positive(
        "resources",
        args.get_parsed("resources", 200, "an integer")?,
    )?;
    let horizon = require_positive("horizon", args.get_parsed("horizon", 1000, "an integer")?)?;
    let lambda: f64 = args.get_parsed("lambda", 20.0, "a number")?;
    let rank: u16 = args.get_parsed("rank", 5, "an integer")?;
    let beta = skew_exponent(args, "beta", 0.0)?;

    let trace = match args.get("trace").unwrap_or("poisson") {
        "auction" => TraceSpec::Auction(AuctionTraceConfig::scaled(n_resources, horizon)),
        "news" => TraceSpec::News(NewsTraceConfig::scaled(n_resources, horizon)),
        _ => TraceSpec::Poisson { lambda },
    };
    let length = match args.get("window") {
        Some(_) => EiLength::Window(args.get_parsed("window", 10, "an integer")?),
        None => EiLength::Overwrite { max_len: Some(10) },
    };
    let noise = match args.get("noise-z") {
        Some(_) => {
            let z: f64 = args.get_parsed("noise-z", 1.0, "a number in [0,1]")?;
            Some(NoiseSpec::Fpn(FpnModel::new(z, 10)))
        }
        None => None,
    };

    Ok(ExperimentConfig {
        n_resources,
        horizon,
        budget: require_positive("budget", args.get_parsed("budget", 1, "an integer")?)?,
        workload: WorkloadConfig {
            n_profiles: require_positive(
                "profiles",
                args.get_parsed("profiles", 50, "an integer")?,
            )?,
            rank: if args.flag("fixed-rank") {
                RankSpec::Fixed(rank)
            } else {
                RankSpec::UpTo { k: rank, beta }
            },
            resource_alpha: skew_exponent(args, "alpha", 0.3)?,
            length,
            distinct_resources: true,
            max_ceis: None,
            no_intra_resource_overlap: false,
        },
        trace,
        noise,
        repetitions: require_positive("reps", args.get_parsed("reps", 5, "an integer")?)?,
        seed: args.get_parsed("seed", 1234, "an integer")?,
    })
}

/// Default master seed of CLI fault injection (`0xFA17`).
const DEFAULT_FAULT_SEED: u64 = 0xFA17;

/// Parses the retry discipline and failure-charging options shared by every
/// fault model.
fn fault_config_from(args: &Args) -> Result<FaultConfig, ArgError> {
    let mut config = FaultConfig::charged();
    if args.flag("fault-free") {
        config = config.free_failures();
    }
    match args.get("retry").unwrap_or("immediate") {
        "immediate" => {}
        "backoff" => config = config.with_backoff(Backoff::new(1, 8)),
        other => {
            return Err(ArgError::BadValue {
                key: "retry".to_string(),
                value: other.to_string(),
                expected: "immediate|backoff",
            })
        }
    }
    if args.get("retry-quota").is_some() {
        config = config.with_retry_quota(args.get_parsed("retry-quota", 0, "an integer")?);
    }
    Ok(config)
}

/// Builds the optional fault scenario of `webmon run`. Faults are enabled
/// by `--fault-rate`; without it every fault/retry flag is ignored and the
/// run is the fault-free fast path.
fn fault_from(args: &Args) -> Result<Option<FaultSpec>, ArgError> {
    let Some(raw) = args.get("fault-rate") else {
        return Ok(None);
    };
    let rate: f64 = args.get_parsed("fault-rate", 0.0, "a probability in [0,1]")?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(ArgError::BadValue {
            key: "fault-rate".to_string(),
            value: raw.to_string(),
            expected: "a probability in [0,1]",
        });
    }
    let seed: u64 = args.get_parsed("fault-seed", DEFAULT_FAULT_SEED, "an integer")?;
    let kind = match args.get("fault-model").unwrap_or("iid") {
        "iid" => FaultKind::Iid { rate },
        "burst" => {
            let p_recover: f64 = args.get_parsed("fault-recover", 0.5, "a probability in (0,1]")?;
            FaultKind::Burst {
                p_fail: rate,
                p_recover,
            }
        }
        other => {
            return Err(ArgError::BadValue {
                key: "fault-model".to_string(),
                value: other.to_string(),
                expected: "iid|burst",
            })
        }
    };
    Ok(Some(FaultSpec {
        kind,
        seed,
        config: fault_config_from(args)?,
    }))
}

/// Default master seed of CLI churn overlays (`0xC0DE` = 49374).
const DEFAULT_CHURN_SEED: u64 = 0xC0DE;

/// Builds the optional churn scenario of `webmon run`. Churn is enabled by
/// `--churn-arrivals` and/or `--churn-cancels`; without either, the other
/// churn flags are ignored and the run is the static-profile fast path.
fn churn_from(args: &Args) -> Result<Option<ChurnSpec>, ArgError> {
    // Validate the skew exponent even when churn stays off: a malformed
    // `--churn-alpha` must be a structured error, never silently ignored.
    let churn_alpha = skew_exponent(args, "churn-alpha", 0.0)?;
    if args.get("churn-arrivals").is_none() && args.get("churn-cancels").is_none() {
        return Ok(None);
    }
    let mut rates = [0.0f64; 2];
    for (slot, key) in rates.iter_mut().zip(["churn-arrivals", "churn-cancels"]) {
        let rate: f64 = args.get_parsed(key, 0.0, "a probability in [0,1]")?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(ArgError::BadValue {
                key: key.to_string(),
                value: args.get(key).unwrap_or_default().to_string(),
                expected: "a probability in [0,1]",
            });
        }
        *slot = rate;
    }
    let config = webmon_workload::ChurnConfig::new(rates[0], rates[1])
        .with_alpha(churn_alpha)
        .with_max_delay(args.get_parsed("churn-delay", 4, "an integer")?)
        .with_reconfigurations(args.get_parsed("churn-budget-changes", 0, "an integer")?);
    Ok(Some(ChurnSpec {
        config,
        seed: args.get_parsed("churn-seed", DEFAULT_CHURN_SEED, "an integer")?,
    }))
}

fn roster_table(title: &str, aggregates: &[PolicyAggregate]) -> Table {
    let mut t = Table::with_headers(
        title,
        &[
            "policy",
            "completeness",
            "EI completeness",
            "µs/EI",
            "budget util.",
        ],
    );
    for agg in aggregates {
        t.push_numeric_row(
            agg.label.clone(),
            &[
                agg.completeness.mean,
                agg.ei_completeness.mean,
                agg.micros_per_ei.mean,
                agg.budget_utilization.mean,
            ],
            4,
        );
    }
    t
}

/// One policy column of the `--metrics` artifact.
#[derive(Debug, Serialize)]
struct PolicyMetricsDoc {
    /// Roster label, e.g. `"MRSF(P)"`.
    label: String,
    /// Per-repetition mismatches between in-run metrics and post-hoc
    /// `RunStats` (always empty on a healthy build; skipped under noise,
    /// where stats are truth-validated and *should* disagree).
    consistency_errors: Vec<String>,
    /// Metrics merged over all repetitions, in repetition order.
    metrics: RunMetrics,
}

/// The `webmon run --metrics` artifact.
#[derive(Debug, Serialize)]
struct MetricsDoc {
    /// Master seed of the experiment.
    seed: u64,
    /// Repetitions merged into each policy's metrics.
    repetitions: u32,
    /// One entry per roster policy, in roster order.
    policies: Vec<PolicyMetricsDoc>,
}

fn metrics_doc(exp: &Experiment, aggregates: &[PolicyAggregate]) -> MetricsDoc {
    let noisy = exp.config().noise.is_some();
    let policies = aggregates
        .iter()
        .map(|agg| {
            let mut consistency_errors = Vec::new();
            if !noisy {
                for (i, rep) in agg.repetitions.iter().enumerate() {
                    for e in rep.metrics.consistency_errors(&rep.stats) {
                        consistency_errors.push(format!("rep {i}: {e}"));
                    }
                }
            }
            PolicyMetricsDoc {
                label: agg.label.clone(),
                consistency_errors,
                metrics: agg.metrics.clone(),
            }
        })
        .collect();
    MetricsDoc {
        seed: exp.config().seed,
        repetitions: exp.config().repetitions,
        policies,
    }
}

fn write_metrics(path: &str, doc: &MetricsDoc) -> std::io::Result<()> {
    let json =
        serde_json::to_string_pretty(doc).map_err(|e| std::io::Error::other(e.to_string()))?;
    std::fs::write(path, json)
}

fn write_trace(
    path: &str,
    exp: &Experiment,
    roster: &[PolicySpec],
    churn: Option<ChurnSpec>,
    fault: Option<FaultSpec>,
) -> std::io::Result<u64> {
    let mut writer = std::io::BufWriter::new(std::fs::File::create(path)?);
    let mut total = 0;
    for &spec in roster {
        let (w, events) = match (churn, fault) {
            (Some(c), f) => exp.trace_spec_churned(spec, c, f, 0, writer)?,
            (None, Some(f)) => exp.trace_spec_faulted(spec, f, 0, writer)?,
            (None, None) => exp.trace_spec(spec, 0, writer)?,
        };
        writer = w;
        total += events;
    }
    Ok(total)
}

/// Materializes the experiment of a `--workload-spec <file>` run: read the
/// file, parse the declarative [`WorkloadSpec`], materialize. Every failure
/// is a diagnostic string for exit code 2 — never a panic.
fn experiment_from_spec_file(path: &str) -> Result<Experiment, String> {
    let raw = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read workload spec {path}: {e}"))?;
    let spec = WorkloadSpec::from_json(&raw).map_err(|e| e.to_string())?;
    Experiment::materialize_spec(&spec).map_err(|e| e.to_string())
}

fn cmd_run(args: &Args) -> Result<i32, ArgError> {
    let fault = fault_from(args)?;
    let churn = churn_from(args)?;
    let exp = match args.get("workload-spec") {
        Some(path) => match experiment_from_spec_file(path) {
            Ok(exp) => exp,
            Err(msg) => {
                eprintln!("error: {msg}");
                return Ok(2);
            }
        },
        None => Experiment::materialize(config_from(args)?),
    };
    let roster = PolicySpec::paper_roster();
    let mut aggregates = match (churn, fault) {
        (Some(c), f) => exp.run_roster_churned(&roster, c, f),
        (None, Some(f)) => exp.run_roster_faulted(&roster, f),
        (None, None) => exp.run_roster(&roster),
    };
    if args.flag("offline-lr") {
        use webmon_core::offline::LocalRatioConfig;
        match exp.try_run_local_ratio(LocalRatioConfig::default()) {
            Ok(agg) => aggregates.push(agg),
            Err(e) => {
                eprintln!("error: offline Local-Ratio baseline is infeasible: {e}");
                return Ok(2);
            }
        }
    }

    if let Some(path) = args.get("metrics") {
        let doc = metrics_doc(&exp, &aggregates);
        for err in doc.policies.iter().flat_map(|p| &p.consistency_errors) {
            eprintln!("metrics inconsistency: {err}");
        }
        if let Err(e) = write_metrics(path, &doc) {
            eprintln!("cannot write metrics to {path}: {e}");
            return Ok(1);
        }
        eprintln!("metrics: wrote {} policies to {path}", doc.policies.len());
    }
    if let Some(path) = args.get("trace-out") {
        match write_trace(path, &exp, &roster, churn, fault) {
            Ok(events) => eprintln!("trace: wrote {events} events to {path}"),
            Err(e) => {
                eprintln!("cannot write trace to {path}: {e}");
                return Ok(1);
            }
        }
    }

    if args.flag("json") {
        let report = Report::from_tables(vec![roster_table("webmon run", &aggregates)])
            .with_aggregates(aggregates);
        println!("{}", report.to_json());
        return Ok(0);
    }
    let (ceis, eis) = exp.mean_sizes();
    println!(
        "workload: ~{ceis:.0} CEIs / ~{eis:.0} EIs per repetition ({} reps)",
        exp.config().repetitions
    );
    if let Some(c) = churn {
        println!(
            "churn:    {} seed {} (alpha {}, delay {}, {} budget change(s))",
            c.label(),
            c.seed,
            c.config.resource_alpha,
            c.config.max_delay,
            c.config.reconfigurations,
        );
    }
    if let Some(f) = fault {
        println!(
            "faults:   {} seed {} ({}charged{}{})",
            f.kind.label(),
            f.seed,
            if f.config.failures_cost { "" } else { "un" },
            if f.config.backoff.is_some() {
                ", backoff"
            } else {
                ", immediate retry"
            },
            match f.config.retry_quota {
                Some(q) => format!(", quota {q}"),
                None => String::new(),
            },
        );
    }
    println!("\n{}", roster_table("webmon run", &aggregates));
    Ok(0)
}

fn cmd_sweep(args: &Args) -> Result<i32, ArgError> {
    let param = args.get("param").unwrap_or("budget").to_string();
    let base = config_from(args)?;
    let specs = [
        PolicySpec::np(PolicyKind::SEdf),
        PolicySpec::p(PolicyKind::Mrsf),
        PolicySpec::p(PolicyKind::MEdf),
    ];
    let mut t = Table::with_headers(
        format!("webmon sweep — {param}"),
        &[param.as_str(), "S-EDF(NP)", "MRSF(P)", "M-EDF(P)"],
    );
    // Fault-rate sweeps rerun the *same* materialized instances under
    // increasing i.i.d. probe loss (the CLI face of `exp_faults`).
    if param == "fault-rate" {
        let fault_seed: u64 = args.get_parsed("fault-seed", DEFAULT_FAULT_SEED, "an integer")?;
        let fault_config = fault_config_from(args)?;
        let exp = Experiment::materialize(base);
        let rates = [0.0, 0.1, 0.3, 0.5, 0.7];
        for (rate, roster) in exp.robustness_sweep(&specs, &rates, fault_seed, fault_config) {
            let vals: Vec<f64> = roster.iter().map(|a| a.completeness.mean).collect();
            t.push_numeric_row(format!("{rate:.2}"), &vals, 4);
        }
        if args.flag("json") {
            println!("{}", Report::from_tables(vec![t]).to_json());
        } else {
            println!("{t}");
        }
        return Ok(0);
    }
    let points: Vec<(String, ExperimentConfig)> = match param.as_str() {
        "lambda" => [10.0, 20.0, 30.0, 40.0, 50.0]
            .iter()
            .map(|&l| {
                let mut c = base.clone();
                c.trace = TraceSpec::Poisson { lambda: l };
                (format!("{l}"), c)
            })
            .collect(),
        "alpha" => [0.0, 0.25, 0.5, 0.75, 1.0]
            .iter()
            .map(|&a| {
                let mut c = base.clone();
                c.workload.resource_alpha = a;
                (format!("{a}"), c)
            })
            .collect(),
        // The skewed-workload ladder: uniform through the Table-I baseline
        // to the paper's α = 1.37 Web-feed estimate.
        "skew-alpha" => webmon_sim::alpha_ladder()
            .into_iter()
            .map(|a| {
                let mut c = base.clone();
                c.workload.resource_alpha = a;
                (format!("{a}"), c)
            })
            .collect(),
        "rank" => (1..=5u16)
            .map(|k| {
                let mut c = base.clone();
                c.workload.rank = RankSpec::Fixed(k);
                (format!("{k}"), c)
            })
            .collect(),
        _ => (1..=5u32)
            .map(|b| {
                let mut c = base.clone();
                c.budget = b;
                (format!("{b}"), c)
            })
            .collect(),
    };
    // Sweep points run in parallel; rows are pushed in sweep order.
    let rows = webmon_sim::parallel::par_map(points, |_, (label, cfg)| {
        let exp = Experiment::materialize(cfg);
        let vals: Vec<f64> = specs
            .iter()
            .map(|&s| exp.run_spec(s).completeness.mean)
            .collect();
        (label, vals)
    });
    for (label, vals) in rows {
        t.push_numeric_row(label, &vals, 4);
    }
    if args.flag("json") {
        println!("{}", Report::from_tables(vec![t]).to_json());
    } else {
        println!("{t}");
    }
    Ok(0)
}

fn cmd_trace(args: &Args) -> Result<i32, ArgError> {
    let n_resources = require_positive(
        "resources",
        args.get_parsed("resources", 100, "an integer")?,
    )?;
    let horizon = require_positive("horizon", args.get_parsed("horizon", 1000, "an integer")?)?;
    let lambda: f64 = args.get_parsed("lambda", 20.0, "a number")?;
    let seed: u64 = args.get_parsed("seed", 1234, "an integer")?;
    let spec = match args.get("trace").unwrap_or("poisson") {
        "auction" => TraceSpec::Auction(AuctionTraceConfig::scaled(n_resources, horizon)),
        "news" => TraceSpec::News(NewsTraceConfig::scaled(n_resources, horizon)),
        _ => TraceSpec::Poisson { lambda },
    };
    let trace = spec.generate(n_resources, horizon, &SimRng::new(seed));
    let mut counts: Vec<usize> = (0..trace.n_resources())
        .map(|r| trace.events_of(r).len())
        .collect();
    counts.sort_unstable();
    let total = trace.total_events();
    println!("resources: {}", trace.n_resources());
    println!("horizon:   {} chronons", trace.horizon());
    println!(
        "events:    {total} total, {:.1} mean/resource",
        trace.mean_intensity()
    );
    println!(
        "per-resource events: min {} / median {} / max {}",
        counts.first().unwrap_or(&0),
        counts.get(counts.len() / 2).unwrap_or(&0),
        counts.last().unwrap_or(&0),
    );
    Ok(0)
}

/// Parses the single-policy selection of `webmon serve` (`run` and `sweep`
/// always score a roster; the daemon monitors with exactly one policy).
fn policy_spec_from(args: &Args) -> Result<PolicySpec, ArgError> {
    let kind = match args.get("policy").unwrap_or("m-edf") {
        "s-edf" => PolicyKind::SEdf,
        "mrsf" => PolicyKind::Mrsf,
        "m-edf" => PolicyKind::MEdf,
        "w-ic" => PolicyKind::Wic,
        "random" => PolicyKind::Random,
        "round-robin" => PolicyKind::RoundRobin,
        other => {
            return Err(ArgError::BadValue {
                key: "policy".to_string(),
                value: other.to_string(),
                expected: "s-edf|mrsf|m-edf|w-ic|random|round-robin",
            })
        }
    };
    Ok(if args.flag("np") {
        PolicySpec::np(kind)
    } else {
        PolicySpec::p(kind)
    })
}

/// Parses the `--targets` list of the live executor.
fn targets_from(args: &Args) -> Result<Vec<std::net::SocketAddr>, ArgError> {
    let raw = args.get("targets").unwrap_or("");
    let bad = || ArgError::BadValue {
        key: "targets".to_string(),
        value: raw.to_string(),
        expected: "comma-separated host:port probe targets (required with --executor live)",
    };
    if raw.is_empty() {
        return Err(bad());
    }
    raw.split(',')
        .map(|tok| tok.trim().parse().map_err(|_| bad()))
        .collect()
}

/// The `webmon serve` summary line (one JSON object on stdout at exit).
#[derive(Debug, Serialize)]
struct ServeSummary {
    /// Policy label, e.g. `"M-EDF(P)"`.
    policy: String,
    /// Chronons driven (the epoch length).
    chronons: u32,
    /// CEIs in the monitored instance.
    ceis: usize,
    /// CEIs fully captured.
    captured: u64,
    /// Fraction of CEIs fully captured.
    completeness: f64,
    /// Probes issued over the run.
    probes: u64,
    /// Events serialized to the trace file / attached sockets.
    events_written: u64,
    /// Failed trace/socket writes (nonzero → exit code 1).
    write_errors: u64,
    /// Structured trace/journal IO failures with file paths (nonempty →
    /// exit code 1).
    io_errors: Vec<String>,
}

fn cmd_serve(args: &Args) -> Result<i32, ArgError> {
    let cfg = config_from(args)?;
    let fault = fault_from(args)?;
    let churn = churn_from(args)?;
    // Without a fault model the retry flags still shape how executor
    // failures (e.g. live probe timeouts) are charged and retried.
    let fault_config = match fault {
        Some(f) => f.config,
        None => fault_config_from(args)?,
    };
    let spec = policy_spec_from(args)?;
    let chronon_ms: u64 = args.get_parsed("chronon-ms", 0, "milliseconds per chronon")?;

    let fsync = match args.get("fsync") {
        Some(raw) => raw
            .parse::<webmon_core::serve::FsyncPolicy>()
            .map_err(|_| ArgError::BadValue {
                key: "fsync".to_string(),
                value: raw.to_string(),
                expected: "every-chronon|every-<n>|os",
            })?,
        None => webmon_core::serve::FsyncPolicy::EveryChronon,
    };
    let snapshot_every: u32 = args.get_parsed("snapshot-every", 64, "a chronon count")?;
    let recover_dir = args.get("recover").map(std::path::PathBuf::from);
    let journal_dir = args.get("journal-dir").map(std::path::PathBuf::from);
    if let (Some(r), Some(j)) = (&recover_dir, &journal_dir) {
        if r != j {
            return Err(ArgError::BadValue {
                key: "journal-dir".to_string(),
                value: j.display().to_string(),
                expected: "the same directory as --recover (recovery continues that journal)",
            });
        }
    }
    let journal =
        recover_dir
            .clone()
            .or(journal_dir)
            .map(|dir| webmon_core::serve::JournalConfig {
                dir,
                fsync,
                snapshot_every,
            });

    if args.get("replay-feed").is_some() && args.get("sim-trace-out").is_some() {
        return Err(ArgError::BadValue {
            key: "sim-trace-out".to_string(),
            value: args.get("sim-trace-out").unwrap_or_default().to_string(),
            expected: "no --replay-feed (the simulator reference replays the generated trace)",
        });
    }

    // The monitored instance: repetition 0 of the configured experiment, or
    // the same workload generator run over a CSV update feed from disk.
    let (instance, exp) = match args.get("replay-feed") {
        Some(path) => {
            let trace = match webmon_streams::read_csv_file(
                std::path::Path::new(path),
                Some(cfg.horizon),
                Some(cfg.n_resources),
            ) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot load replay feed {path}: {e}");
                    return Ok(2);
                }
            };
            let rep_rng = SimRng::new(cfg.seed).fork_indexed("repetition", 0);
            let w = webmon_workload::generate(
                &cfg.workload,
                &webmon_streams::NoisyTrace::exact(&trace),
                webmon_core::model::Budget::Uniform(cfg.budget),
                &rep_rng.fork("workload"),
            );
            (w.instance, None)
        }
        None => {
            let exp = Experiment::materialize(cfg.clone());
            let instance = exp.workloads()[0].instance.clone();
            (instance, Some(exp))
        }
    };

    // Seeds follow the simulator's repetition-0 conventions exactly, so the
    // daemon's event stream is byte-identical to `Experiment::trace_spec*`.
    let queue = match churn {
        Some(c) => c.build(0, &instance),
        None => MutationQueue::new(),
    };
    let script = ScriptedMutations::compile(&queue, instance.epoch.len(), instance.ceis.len());
    let session = ServeSession {
        policy: spec.kind.build(cfg.seed),
        config: spec.engine_config(),
        fault_config,
        script,
        instance,
    };

    let listen = args.get("listen").unwrap_or("127.0.0.1:7077");
    let mut daemon = match Daemon::bind(listen) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot bind {listen}: {e}");
            return Ok(2);
        }
    };
    if let Ok(addr) = daemon.local_addr() {
        eprintln!("serving on {addr}");
    }

    // Replay executors are deterministic, so recovery may step them through
    // the replayed prefix to keep stateful fault models exact; a live
    // executor must never probe during replay.
    let mut resync_executor = false;
    let executor: Box<dyn ProbeExecutor> = match args.get("executor").unwrap_or("replay") {
        "replay" => {
            resync_executor = true;
            match fault {
                Some(f) => Box::new(ReplayExecutor::scripted(
                    f.build(0, session.instance.n_resources as usize),
                )),
                None => Box::new(ReplayExecutor::faultless()),
            }
        }
        "live" => {
            let timeout_ms: u64 = args.get_parsed("probe-timeout-ms", 200, "milliseconds")?;
            let tcp = TcpProbeExecutor::new(
                targets_from(args)?,
                std::time::Duration::from_millis(timeout_ms),
            );
            // A `shutdown` mid-backoff must not wait out in-flight probes:
            // the flag makes every later probe fail instantly.
            let stop = tcp.stop_flag();
            daemon.on_shutdown(std::sync::Arc::new(move || {
                stop.store(true, std::sync::atomic::Ordering::SeqCst);
            }));
            Box::new(tcp)
        }
        other => {
            return Err(ArgError::BadValue {
                key: "executor".to_string(),
                value: other.to_string(),
                expected: "replay|live",
            })
        }
    };
    let label = spec.label();
    let n_ceis = session.instance.ceis.len();
    let horizon = session.instance.epoch.len();
    let opts = ServeOptions {
        trace_out: args.get("trace-out").map(std::path::PathBuf::from),
        journal,
        recover: recover_dir.is_some(),
        resync_executor,
    };
    // The clock anchors at the first live chronon, so a recovered wall
    // clock never paces the replayed prefix.
    let make_clock = |anchor| -> Box<dyn Clock> {
        if chronon_ms == 0 {
            Box::new(FreeClock)
        } else {
            Box::new(WallClock::anchored(chronon_ms, anchor))
        }
    };
    let outcome = match daemon.run_with(session, executor, make_clock, opts) {
        Ok(o) => o,
        Err(e) => {
            println!("{}", serve_error_json(&e.to_string()));
            return Ok(1);
        }
    };

    // The simulator reference for CI's byte-for-byte diff: the same case,
    // run by `Experiment::trace_spec*` with its own JSONL writer.
    if let Some(path) = args.get("sim-trace-out") {
        let exp = exp.expect("checked: --sim-trace-out excludes --replay-feed");
        let sim = std::fs::File::create(path)
            .map(std::io::BufWriter::new)
            .and_then(|w| match (churn, fault) {
                (Some(c), f) => exp.trace_spec_churned(spec, c, f, 0, w),
                (None, Some(f)) => exp.trace_spec_faulted(spec, f, 0, w),
                (None, None) => exp.trace_spec(spec, 0, w),
            });
        match sim {
            Ok((_, events)) => eprintln!("sim trace: wrote {events} events to {path}"),
            Err(e) => {
                eprintln!("cannot write sim trace to {path}: {e}");
                return Ok(1);
            }
        }
    }

    let captured = outcome.result.stats.ceis_captured;
    let summary = ServeSummary {
        policy: label,
        chronons: horizon,
        ceis: n_ceis,
        captured,
        completeness: captured as f64 / n_ceis.max(1) as f64,
        probes: outcome.metrics.probes_issued,
        events_written: outcome.events_written,
        write_errors: outcome.write_errors,
        io_errors: outcome.io_errors,
    };
    match serde_json::to_string(&summary) {
        Ok(line) => println!("{line}"),
        Err(e) => eprintln!("cannot serialize summary: {e}"),
    }
    Ok(i32::from(
        summary.write_errors != 0 || !summary.io_errors.is_empty(),
    ))
}

/// One structured `{"err":{"reason":...}}` line for a failed daemon start
/// (journal corruption, fingerprint mismatch, bind/trace failures).
fn serve_error_json(reason: &str) -> String {
    serde_json::to_string(&serde_json::Value::Object(vec![(
        "err".to_string(),
        serde_json::Value::Object(vec![(
            "reason".to_string(),
            serde_json::Value::String(reason.to_string()),
        )]),
    )]))
    .unwrap_or_else(|_| r#"{"err":{"reason":"unserializable"}}"#.to_string())
}

fn cmd_experiments(args: &Args) -> Result<i32, ArgError> {
    let scale = if args.flag("quick") {
        webmon_bench::Scale::Quick
    } else {
        webmon_bench::Scale::Paper
    };
    for (name, runner) in suite() {
        eprintln!(">> {name}");
        webmon_bench::print_tables(&runner(scale));
    }
    Ok(0)
}

/// Parses a `--bench-*` comma-separated ladder; absent → `[base]`. The bool
/// says whether the axis was explicitly overridden.
fn bench_ladder<T: std::str::FromStr + Copy>(
    args: &Args,
    key: &'static str,
    base: T,
    expected: &'static str,
) -> Result<(Vec<T>, bool), ArgError> {
    let Some(raw) = args.get(key) else {
        return Ok((vec![base], false));
    };
    let bad = || ArgError::BadValue {
        key: key.to_string(),
        value: raw.to_string(),
        expected,
    };
    let values: Vec<T> = raw
        .split(',')
        .map(|tok| tok.trim().parse().map_err(|_| bad()))
        .collect::<Result<_, _>>()?;
    if values.is_empty() {
        return Err(bad());
    }
    Ok((values, true))
}

fn cmd_bench(args: &Args) -> Result<i32, ArgError> {
    use webmon_bench::scale::{self, BenchReport, CellDims};

    let scale = if args.flag("quick") {
        webmon_bench::Scale::Quick
    } else {
        webmon_bench::Scale::Paper
    };
    let base = CellDims {
        profiles: 150,
        rank: 3,
        horizon: 300,
        budget: 2,
    };
    let (profiles, p) = bench_ladder(args, "bench-profiles", base.profiles, "a profile ladder")?;
    let (ranks, r) = bench_ladder(args, "bench-ranks", base.rank, "a rank ladder")?;
    let (horizons, h) = bench_ladder(args, "bench-horizons", base.horizon, "a horizon ladder")?;
    let (budgets, b) = bench_ladder(args, "bench-budgets", base.budget, "a budget ladder")?;
    for (key, ok) in [
        ("bench-profiles", profiles.iter().all(|&v| v > 0)),
        ("bench-horizons", horizons.iter().all(|&v| v > 0)),
    ] {
        if !ok {
            return Err(ArgError::BadValue {
                key: key.to_string(),
                value: "0".to_string(),
                expected: "positive values",
            });
        }
    }

    let cells: Vec<CellDims> = if p || r || h || b {
        let mut cells = Vec::new();
        for &profiles in &profiles {
            for &rank in &ranks {
                for &horizon in &horizons {
                    for &budget in &budgets {
                        cells.push(CellDims {
                            profiles,
                            rank,
                            horizon,
                            budget,
                        });
                    }
                }
            }
        }
        cells
    } else {
        scale::grid(scale)
    };

    // Axis overrides replace the whole grid, so the default churn and
    // sharded ladders would not match any baseline made from them — skip
    // both.
    let (churn_cells, shard_cells) = if p || r || h || b {
        (Vec::new(), Vec::new())
    } else {
        (scale::churn_grid(scale), scale::shard_grid(scale))
    };
    let report = scale::collect_grid(
        scale,
        &cells,
        &scale::roster(scale),
        &churn_cells,
        &shard_cells,
    );
    webmon_bench::print_tables(&report.tables());

    // Cross-shard-count identity is gated against the fresh report itself
    // (baseline-independent), so even --out-only runs cannot write an
    // artifact from a run where sharded execution broke bit-identity.
    let identity = report.violations_against(&report);
    if !identity.is_empty() {
        eprintln!("sharded-execution identity broken in this run:");
        for v in &identity {
            eprintln!("  - {v}");
        }
        return Ok(1);
    }

    if let Some(path) = args.get("out") {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("error: cannot write {path}: {e}");
            return Ok(1);
        }
        println!("wrote {path}");
    }

    if let Some(path) = args.get("check") {
        let raw = match std::fs::read_to_string(path) {
            Ok(raw) => raw,
            Err(e) => {
                eprintln!("error: cannot read baseline {path}: {e}");
                return Ok(1);
            }
        };
        let baseline = match BenchReport::from_json(&raw) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {path} is not a BenchReport: {e}");
                return Ok(1);
            }
        };
        let violations = report.violations_against(&baseline);
        if !violations.is_empty() {
            eprintln!("bench gate: {} violation(s) vs {path}:", violations.len());
            for v in &violations {
                eprintln!("  - {v}");
            }
            return Ok(1);
        }
        println!("bench gate: OK ({} cells vs {path})", report.cells.len());
    }
    Ok(0)
}

type Runner = fn(webmon_bench::Scale) -> Vec<Table>;

fn suite() -> Vec<(&'static str, Runner)> {
    vec![
        ("Table I", webmon_bench::table1::run),
        ("Figure 9", webmon_bench::fig09::run),
        ("Figure 10", webmon_bench::fig10::run),
        ("§V-D runtime", webmon_bench::runtime_offline::run),
        ("Figure 11", webmon_bench::fig11::run),
        ("Figure 12", webmon_bench::fig12::run),
        ("Figure 13", webmon_bench::fig13::run),
        ("Figure 14", webmon_bench::fig14::run),
        ("Figure 15", webmon_bench::fig15::run),
        ("Ablations", webmon_bench::ablations::run),
        ("Extensions", webmon_bench::extensions::run),
        ("Robustness", webmon_bench::faults::run),
        ("Skewed workloads", webmon_bench::skew::run),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(toks: &[&str]) -> Args {
        Args::parse(toks.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn config_defaults_are_sane() {
        let cfg = config_from(&parse(&["run"])).unwrap();
        assert_eq!(cfg.budget, 1);
        assert_eq!(cfg.n_resources, 200);
        assert!(matches!(cfg.trace, TraceSpec::Poisson { .. }));
        assert!(cfg.noise.is_none());
    }

    #[test]
    fn config_honors_options() {
        let cfg = config_from(&parse(&[
            "run",
            "--budget",
            "3",
            "--trace",
            "auction",
            "--resources",
            "80",
            "--fixed-rank",
            "--rank",
            "2",
            "--window",
            "5",
            "--noise-z",
            "0.4",
        ]))
        .unwrap();
        assert_eq!(cfg.budget, 3);
        assert!(matches!(cfg.trace, TraceSpec::Auction(_)));
        assert_eq!(cfg.workload.rank, RankSpec::Fixed(2));
        assert_eq!(cfg.workload.length, EiLength::Window(5));
        assert!(cfg.noise.is_some());
    }

    #[test]
    fn bad_value_is_reported() {
        let err = config_from(&parse(&["run", "--budget", "lots"])).unwrap_err();
        assert!(matches!(err, ArgError::BadValue { .. }));
    }

    #[test]
    fn dispatch_help_and_unknown() {
        assert_eq!(dispatch(&parse(&["help"])).unwrap(), 0);
        assert_eq!(dispatch(&parse(&["frobnicate"])).unwrap(), 2);
    }

    #[test]
    fn suite_covers_all_artifacts() {
        assert_eq!(suite().len(), 13);
    }

    #[test]
    fn degenerate_sizes_are_structured_errors() {
        for key in ["resources", "horizon", "budget", "profiles", "reps"] {
            let err = config_from(&parse(&["run", &format!("--{key}"), "0"])).unwrap_err();
            assert!(
                matches!(err, ArgError::BadValue { key: ref k, .. } if k == key),
                "--{key} 0 must be rejected, got {err:?}"
            );
        }
    }

    #[test]
    fn trace_rejects_degenerate_sizes() {
        // Regression: `webmon trace` skipped the positivity guards that
        // `run`/`sweep` apply, so a zero slipped into trace generation.
        for key in ["resources", "horizon"] {
            let err = cmd_trace(&parse(&["trace", &format!("--{key}"), "0"])).unwrap_err();
            assert!(
                matches!(err, ArgError::BadValue { key: ref k, .. } if k == key),
                "trace --{key} 0 must be rejected, got {err:?}"
            );
        }
    }

    #[test]
    fn faults_are_off_without_a_rate() {
        assert_eq!(fault_from(&parse(&["run"])).unwrap(), None);
        // Retry flags alone do not enable fault injection.
        assert_eq!(
            fault_from(&parse(&["run", "--retry", "backoff"])).unwrap(),
            None
        );
    }

    #[test]
    fn fault_flags_build_the_spec() {
        let f = fault_from(&parse(&["run", "--fault-rate", "0.3"]))
            .unwrap()
            .unwrap();
        assert_eq!(f.kind, FaultKind::Iid { rate: 0.3 });
        assert_eq!(f.seed, DEFAULT_FAULT_SEED);
        assert_eq!(f.config, FaultConfig::charged());

        let f = fault_from(&parse(&[
            "run",
            "--fault-rate",
            "0.2",
            "--fault-model",
            "burst",
            "--fault-recover",
            "0.6",
            "--fault-seed",
            "9",
            "--fault-free",
            "--retry",
            "backoff",
            "--retry-quota",
            "2",
        ]))
        .unwrap()
        .unwrap();
        assert_eq!(
            f.kind,
            FaultKind::Burst {
                p_fail: 0.2,
                p_recover: 0.6
            }
        );
        assert_eq!(f.seed, 9);
        assert!(!f.config.failures_cost);
        assert_eq!(f.config.backoff, Some(Backoff::new(1, 8)));
        assert_eq!(f.config.retry_quota, Some(2));
    }

    #[test]
    fn bad_fault_flags_are_structured_errors() {
        for toks in [
            vec!["run", "--fault-rate", "1.5"],
            vec!["run", "--fault-rate", "lots"],
            vec!["run", "--fault-rate", "0.1", "--fault-model", "chaos"],
            vec!["run", "--fault-rate", "0.1", "--retry", "never"],
        ] {
            let err = fault_from(&parse(&toks)).unwrap_err();
            assert!(
                matches!(err, ArgError::BadValue { .. }),
                "{toks:?}: {err:?}"
            );
        }
    }

    #[test]
    fn churn_is_off_without_a_rate() {
        assert_eq!(churn_from(&parse(&["run"])).unwrap(), None);
        // Secondary churn knobs alone do not enable churn.
        assert_eq!(
            churn_from(&parse(&["run", "--churn-alpha", "1.0"])).unwrap(),
            None
        );
    }

    #[test]
    fn churn_flags_build_the_spec() {
        let c = churn_from(&parse(&["run", "--churn-arrivals", "0.3"]))
            .unwrap()
            .unwrap();
        assert_eq!(c.config.arrival_rate, 0.3);
        assert_eq!(c.config.cancel_rate, 0.0);
        assert_eq!(c.seed, DEFAULT_CHURN_SEED);

        let c = churn_from(&parse(&[
            "run",
            "--churn-arrivals",
            "0.2",
            "--churn-cancels",
            "0.1",
            "--churn-alpha",
            "1.37",
            "--churn-delay",
            "9",
            "--churn-budget-changes",
            "3",
            "--churn-seed",
            "17",
        ]))
        .unwrap()
        .unwrap();
        assert_eq!(c.config.arrival_rate, 0.2);
        assert_eq!(c.config.cancel_rate, 0.1);
        assert_eq!(c.config.resource_alpha, 1.37);
        assert_eq!(c.config.max_delay, 9);
        assert_eq!(c.config.reconfigurations, 3);
        assert_eq!(c.seed, 17);
    }

    #[test]
    fn bad_churn_flags_are_structured_errors() {
        for toks in [
            vec!["run", "--churn-arrivals", "1.5"],
            vec!["run", "--churn-cancels", "-0.1"],
            vec!["run", "--churn-arrivals", "lots"],
        ] {
            let err = churn_from(&parse(&toks)).unwrap_err();
            assert!(
                matches!(err, ArgError::BadValue { .. }),
                "{toks:?}: {err:?}"
            );
        }
    }

    #[test]
    fn negative_or_nonfinite_skew_exponents_are_rejected() {
        // Regression: these used to slip through `get_parsed` and panic in
        // `Zipf::new` deep inside workload generation (or, with churn off,
        // be silently accepted).
        for (build, toks, key) in [
            (
                config_from as fn(&Args) -> Result<ExperimentConfig, ArgError>,
                vec!["run", "--alpha", "-2"],
                "alpha",
            ),
            (config_from, vec!["run", "--alpha", "inf"], "alpha"),
            (config_from, vec!["run", "--alpha", "NaN"], "alpha"),
            (config_from, vec!["run", "--beta", "-0.5"], "beta"),
        ] {
            let err = build(&parse(&toks)).unwrap_err();
            assert!(
                matches!(err, ArgError::BadValue { key: ref k, .. } if k == key),
                "{toks:?}: {err:?}"
            );
        }
        // --churn-alpha is validated even when churn itself stays off.
        for toks in [
            vec!["run", "--churn-alpha", "-2"],
            vec!["run", "--churn-alpha=-2"],
            vec!["run", "--churn-arrivals", "0.1", "--churn-alpha", "-2"],
        ] {
            let err = churn_from(&parse(&toks)).unwrap_err();
            assert!(
                matches!(err, ArgError::BadValue { key: ref k, .. } if k == "churn-alpha"),
                "{toks:?}: {err:?}"
            );
        }
        // A valid exponent still builds the spec.
        let c = churn_from(&parse(&[
            "run",
            "--churn-arrivals",
            "0.1",
            "--churn-alpha",
            "1.37",
        ]))
        .unwrap()
        .unwrap();
        assert_eq!(c.config.resource_alpha, 1.37);
    }

    #[test]
    fn workload_spec_runs_and_rejects_structurally() {
        // A missing file is a diagnostic + exit 2, not a panic.
        assert_eq!(
            cmd_run(&parse(&[
                "run",
                "--workload-spec",
                "/nonexistent/spec.json"
            ]))
            .unwrap(),
            2
        );
        // Malformed JSON likewise.
        let dir = std::env::temp_dir();
        let bad = dir.join("webmon_cli_bad_spec.json");
        std::fs::write(&bad, "{ not json").unwrap();
        assert_eq!(
            cmd_run(&parse(&["run", "--workload-spec", bad.to_str().unwrap()])).unwrap(),
            2
        );
        std::fs::remove_file(&bad).ok();
        // A valid spec runs end to end.
        let mut spec = WorkloadSpec::paper_baseline();
        spec.resources = 30;
        spec.horizon = 100;
        spec.profiles = 6;
        spec.repetitions = 1;
        let good = dir.join("webmon_cli_good_spec.json");
        std::fs::write(&good, spec.to_json()).unwrap();
        assert_eq!(
            cmd_run(&parse(&["run", "--workload-spec", good.to_str().unwrap()])).unwrap(),
            0
        );
        std::fs::remove_file(&good).ok();
    }

    #[test]
    fn offline_lr_on_a_threshold_instance_is_exit_2() {
        // The acceptance check: a threshold-semantics CEI through the
        // offline baseline is a structured diagnostic, not a panic.
        let mut spec = WorkloadSpec::paper_baseline();
        spec.resources = 30;
        spec.horizon = 100;
        spec.profiles = 8;
        spec.repetitions = 1;
        spec.length = EiLength::Window(0);
        let dir = std::env::temp_dir();

        let ok = dir.join("webmon_cli_lr_and_spec.json");
        std::fs::write(&ok, spec.to_json()).unwrap();
        assert_eq!(
            cmd_run(&parse(&[
                "run",
                "--offline-lr",
                "--workload-spec",
                ok.to_str().unwrap(),
            ]))
            .unwrap(),
            0
        );
        std::fs::remove_file(&ok).ok();

        let threshold = spec.with_required_fraction(0.5);
        let bad = dir.join("webmon_cli_lr_threshold_spec.json");
        std::fs::write(&bad, threshold.to_json()).unwrap();
        assert_eq!(
            cmd_run(&parse(&[
                "run",
                "--offline-lr",
                "--workload-spec",
                bad.to_str().unwrap(),
            ]))
            .unwrap(),
            2
        );
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn sweep_walks_the_skew_alpha_ladder() {
        let code = cmd_sweep(&parse(&[
            "sweep",
            "--param",
            "skew-alpha",
            "--resources",
            "20",
            "--horizon",
            "60",
            "--profiles",
            "4",
            "--rank",
            "2",
            "--reps",
            "1",
        ]))
        .unwrap();
        assert_eq!(code, 0);
    }

    #[test]
    fn bench_ladder_parses_overrides() {
        let a = parse(&["bench", "--bench-profiles", "10, 20,30"]);
        assert_eq!(
            bench_ladder(&a, "bench-profiles", 150u32, "a profile ladder").unwrap(),
            (vec![10, 20, 30], true)
        );
        assert_eq!(
            bench_ladder(&a, "bench-budgets", 2u32, "a budget ladder").unwrap(),
            (vec![2], false)
        );
        let bad = parse(&["bench", "--bench-ranks", "3,x"]);
        let err = bench_ladder(&bad, "bench-ranks", 3u16, "a rank ladder").unwrap_err();
        assert!(matches!(err, ArgError::BadValue { ref key, .. } if key == "bench-ranks"));
    }

    #[test]
    fn bench_rejects_zero_dimensions() {
        let err = cmd_bench(&parse(&["bench", "--bench-profiles", "0"])).unwrap_err();
        assert!(matches!(err, ArgError::BadValue { ref key, .. } if key == "bench-profiles"));
    }

    #[test]
    fn bench_check_fails_on_shape_drift() {
        // A syntactically valid baseline with the wrong grid shape must make
        // the gate exit nonzero (deterministic — no wall-clock comparison).
        let baseline = std::env::temp_dir().join("webmon_bench_empty_baseline.json");
        std::fs::write(
            &baseline,
            r#"{"schema":"webmon-bench-engine/v1","scale":"Quick","repetitions":1,"cells":[]}"#,
        )
        .unwrap();
        let code = cmd_bench(&parse(&[
            "bench",
            "--quick",
            "--bench-profiles",
            "10",
            "--bench-horizons",
            "40",
            "--check",
            baseline.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(code, 1);
        std::fs::remove_file(&baseline).ok();
    }

    #[test]
    fn serve_policy_defaults_to_preemptive_medf() {
        let spec = policy_spec_from(&parse(&["serve"])).unwrap();
        assert_eq!(spec, PolicySpec::p(PolicyKind::MEdf));
        let spec = policy_spec_from(&parse(&["serve", "--policy", "mrsf", "--np"])).unwrap();
        assert_eq!(spec, PolicySpec::np(PolicyKind::Mrsf));
        let err = policy_spec_from(&parse(&["serve", "--policy", "oracle"])).unwrap_err();
        assert!(matches!(err, ArgError::BadValue { ref key, .. } if key == "policy"));
    }

    #[test]
    fn serve_targets_parse_and_reject() {
        let a = parse(&["serve", "--targets", "127.0.0.1:80, 127.0.0.1:8080"]);
        let targets = targets_from(&a).unwrap();
        assert_eq!(targets.len(), 2);
        assert_eq!(targets[1].port(), 8080);
        for toks in [vec!["serve"], vec!["serve", "--targets", "not-an-addr"]] {
            let err = targets_from(&parse(&toks)).unwrap_err();
            assert!(
                matches!(err, ArgError::BadValue { ref key, .. } if key == "targets"),
                "{toks:?}: {err:?}"
            );
        }
    }

    #[test]
    fn serve_rejects_sim_trace_with_replay_feed() {
        // The simulator reference replays the generated trace; with a CSV
        // feed there is no simulator case to diff against.
        let err = cmd_serve(&parse(&[
            "serve",
            "--replay-feed",
            "feed.csv",
            "--sim-trace-out",
            "sim.jsonl",
        ]))
        .unwrap_err();
        assert!(matches!(err, ArgError::BadValue { ref key, .. } if key == "sim-trace-out"));
    }

    #[test]
    fn serve_surfaces_structured_feed_errors() {
        // A missing feed file is exit code 2 with a TraceIoError message,
        // not a panic (and not a bound socket left behind).
        let code = cmd_serve(&parse(&[
            "serve",
            "--replay-feed",
            "/nonexistent/webmon-feed.csv",
            "--listen",
            "127.0.0.1:0",
        ]))
        .unwrap();
        assert_eq!(code, 2);
    }

    #[test]
    fn serve_rejects_bad_executor() {
        let err = cmd_serve(&parse(&[
            "serve",
            "--resources",
            "10",
            "--horizon",
            "20",
            "--profiles",
            "3",
            "--reps",
            "1",
            "--listen",
            "127.0.0.1:0",
            "--executor",
            "psychic",
        ]))
        .unwrap_err();
        assert!(matches!(err, ArgError::BadValue { ref key, .. } if key == "executor"));
    }

    fn tiny_experiment() -> Experiment {
        Experiment::materialize(ExperimentConfig {
            n_resources: 30,
            horizon: 120,
            budget: 1,
            workload: WorkloadConfig {
                n_profiles: 8,
                rank: RankSpec::UpTo { k: 3, beta: 0.0 },
                resource_alpha: 0.0,
                length: EiLength::Window(3),
                distinct_resources: true,
                max_ceis: Some(200),
                no_intra_resource_overlap: false,
            },
            trace: TraceSpec::Poisson { lambda: 6.0 },
            noise: None,
            repetitions: 2,
            seed: 7,
        })
    }

    #[test]
    fn metrics_doc_is_consistent_and_serializable() {
        let exp = tiny_experiment();
        let roster = [
            PolicySpec::p(PolicyKind::MEdf),
            PolicySpec::np(PolicyKind::SEdf),
        ];
        let aggregates = exp.run_roster(&roster);
        let doc = metrics_doc(&exp, &aggregates);
        assert_eq!(doc.repetitions, 2);
        assert_eq!(doc.policies.len(), 2);
        for p in &doc.policies {
            assert!(
                p.consistency_errors.is_empty(),
                "metrics drifted from stats: {:?}",
                p.consistency_errors
            );
            assert_eq!(p.metrics.runs, 2);
        }
        let json = serde_json::to_string_pretty(&doc).unwrap();
        assert!(json.contains("\"probes_issued\""));
    }

    #[test]
    fn faulted_run_metrics_stay_consistent() {
        let exp = tiny_experiment();
        let roster = [PolicySpec::p(PolicyKind::MEdf)];
        let aggregates = exp.run_roster_faulted(&roster, FaultSpec::iid(0.4, 99));
        let doc = metrics_doc(&exp, &aggregates);
        assert!(
            doc.policies[0].consistency_errors.is_empty(),
            "faulted metrics drifted from stats: {:?}",
            doc.policies[0].consistency_errors
        );
        assert!(doc.policies[0].metrics.probes_failed > 0);
    }

    #[test]
    fn trace_streams_valid_jsonl_per_roster_policy() {
        let exp = tiny_experiment();
        let roster = [
            PolicySpec::p(PolicyKind::MEdf),
            PolicySpec::p(PolicyKind::Mrsf),
        ];
        let mut buf = Vec::new();
        let mut total = 0;
        for &spec in &roster {
            let (b, events) = exp.trace_spec(spec, 0, buf).unwrap();
            buf = b;
            total += events;
        }
        let out = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len() as u64, total);
        for line in &lines {
            let _: serde_json::Value = serde_json::from_str(line).unwrap();
        }
        // One stream restart per roster policy: t = 0 opens each stream.
        let restarts = lines
            .iter()
            .filter(|l| l.starts_with("{\"ChrononStart\":{\"t\":0,"))
            .count();
        assert_eq!(restarts, 2);
    }
}
