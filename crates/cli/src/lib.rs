//! `webmon` — the command-line front end of the Web Monitoring 2.0
//! reproduction, as a library so the integration suite can drive the
//! daemon ([`serve`]) and the argument/config plumbing in-process.

pub mod args;
pub mod commands;
pub mod serve;
