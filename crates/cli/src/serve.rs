//! The `webmon serve` daemon: the simulator engine promoted to a
//! long-running monitor behind a local TCP socket.
//!
//! One engine run is one daemon lifetime. The engine executes on the
//! calling thread via [`webmon_core::serve::drive`]; a background accept
//! thread serves a line protocol on the listening socket:
//!
//! ```text
//! ping                  -> {"ok":"pong"}
//! attach                -> {"ok":"attached"}, then the JSONL event stream
//!                          from the next chronon start onward
//! register <cei-id>     -> {"ok":{"register":<id>}}   (drained next chronon)
//! cancel <cei-id>       -> {"ok":{"cancel":<id>}}
//! set-budget <n>        -> {"ok":{"set-budget":<n>}}
//! shutdown              -> {"ok":"shutting-down"}; the clock is released,
//!                          the engine free-runs to the horizon and exits
//! ```
//!
//! Every response is one JSON line. A malformed request gets a structured
//! `{"err":{"reason":...,"input":...}}` line and the connection stays
//! open. Registration commands feed the engine's live
//! [`LiveMutationQueue`], drained at each chronon start with exactly the
//! `run_mutated` semantics.
//!
//! **Byte identity.** The daemon's event hub writes every event as
//! `serde_json::to_string(&event)` plus `\n` — the same bytes
//! [`JsonlTraceObserver`](webmon_core::obs::JsonlTraceObserver) produces —
//! to the `--trace-out` file (from event zero) and to every attached
//! socket (from its first post-attach chronon start). The daemon's trace
//! file is therefore byte-identical to the simulator's for the same case,
//! which `tests/tests/serve.rs` and CI's `serve-smoke` job enforce.

use serde_json::Value;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;
use webmon_core::engine::{EngineConfig, Mutation, RunResult, ScriptedMutations};
use webmon_core::fault::FaultConfig;
use webmon_core::model::{CeiId, Chronon, Instance};
use webmon_core::obs::{replay_events, Event, MetricsObserver, Observer, RunMetrics, Tee};
use webmon_core::policy::Policy;
use webmon_core::serve::journal::{
    scan_journal, JournalObserver, JournalSink, JournalWriter, SharedJournal,
};
use webmon_core::serve::{
    drive_resumable, Clock, ClockRelease, DaemonSource, JournalConfig, JournalError,
    LiveMutationQueue, NoSnapshots, ProbeExecutor, Recovery, SnapshotSink,
};
use webmon_streams::{crc32, write_all_tagged};

/// How long a client read blocks before re-checking the stop flag, and how
/// long the accept loop naps when no connection is pending.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Everything the engine run needs, bundled so [`Daemon::run`] can build
/// the policy inside a spawned thread when tests run the daemon off-main.
pub struct ServeSession {
    /// The monitoring instance (profiles, epoch, budget).
    pub instance: Instance,
    /// The scheduling policy.
    pub policy: Box<dyn Policy>,
    /// Engine execution mode / selection / sharding.
    pub config: EngineConfig,
    /// Retry/backoff discipline for failed probes.
    pub fault_config: FaultConfig,
    /// Precompiled churn script (empty for static profiles).
    pub script: ScriptedMutations,
}

/// What a completed daemon run produced.
#[derive(Debug)]
pub struct DaemonOutcome {
    /// The engine's schedule, stats, and per-CEI outcomes.
    pub result: RunResult,
    /// In-run metrics from the daemon's own event stream.
    pub metrics: RunMetrics,
    /// Events serialized by the hub (trace file and sockets share them).
    pub events_written: u64,
    /// Failed writes (a full disk, a torn socket mid-line on the file sink).
    pub write_errors: u64,
    /// Structured descriptions of trace-file and journal write failures
    /// (partial writes, `ENOSPC`), each tagged with the file path. Nonempty
    /// makes `webmon serve` exit 1 with a JSON error summary.
    pub io_errors: Vec<String>,
}

/// Optional behaviors of a daemon run beyond the bare engine session.
#[derive(Debug, Default)]
pub struct ServeOptions {
    /// JSONL event trace destination (same bytes as the simulator's).
    pub trace_out: Option<PathBuf>,
    /// Journal destination and durability policy (`None`: no journal).
    pub journal: Option<JournalConfig>,
    /// Recover from the journal in [`journal`](Self::journal)'s directory:
    /// restore the latest snapshot, replay the journaled chronons, then go
    /// live. Requires `journal` to be set.
    pub recover: bool,
    /// During recovery replay, step the wrapped executor through every
    /// replayed chronon and probe so stateful deterministic fault models
    /// (Gilbert-Elliott chains, rate limiters) are exact at the handover.
    /// `false` for live network executors, which must not probe during
    /// replay.
    pub resync_executor: bool,
}

/// A daemon-level failure: socket/trace infrastructure, or the journal.
#[derive(Debug)]
pub enum ServeError {
    /// Socket or trace-file setup failure.
    Io(io::Error),
    /// Journal create/scan/recovery failure (structured, with path).
    Journal(JournalError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "{e}"),
            ServeError::Journal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<JournalError> for ServeError {
    fn from(e: JournalError) -> Self {
        ServeError::Journal(e)
    }
}

/// Shared state between the engine thread, the accept thread, and every
/// client connection.
struct Control {
    live: LiveMutationQueue,
    stop: Arc<AtomicBool>,
    pending: Arc<Mutex<Vec<TcpStream>>>,
    hooks: Vec<ClockRelease>,
    n_ceis: usize,
    /// When journaling, every accepted mutation is appended (and synced,
    /// per policy) here *before* its `ok` acknowledgement is written.
    journal: Option<SharedJournal>,
}

impl Control {
    /// Stops the accept loop and every client thread, and releases the
    /// clock (plus any registered executor stop flags) so the engine
    /// free-runs to the horizon. Idempotent.
    fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for hook in &self.hooks {
            hook();
        }
    }
}

fn json_line(value: Value) -> String {
    serde_json::to_string(&value).unwrap_or_else(|_| "{}".to_string())
}

fn ok_line(ok: Value) -> String {
    json_line(Value::Object(vec![("ok".to_string(), ok)]))
}

fn ok_str(ok: &str) -> String {
    ok_line(Value::String(ok.to_string()))
}

fn ok_applied(cmd: &str, value: u32) -> String {
    ok_line(Value::Object(vec![(
        cmd.to_string(),
        Value::UInt(u64::from(value)),
    )]))
}

fn err_line(reason: String, input: &str) -> String {
    json_line(Value::Object(vec![(
        "err".to_string(),
        Value::Object(vec![
            ("reason".to_string(), Value::String(reason)),
            ("input".to_string(), Value::String(input.to_string())),
        ]),
    )]))
}

/// What the client thread should do after one request line.
enum Action {
    /// Write the response and keep reading commands.
    Reply(String),
    /// Write the response, hand the socket to the event hub, stop reading.
    Attach(String),
    /// Write the response, trigger daemon shutdown, stop reading.
    Shutdown(String),
}

/// Journals (when configured) and enqueues one accepted mutation, then
/// acknowledges it — in exactly that order.
///
/// The sequence number is reserved first and the mutation is journaled
/// *before* it is enqueued: a mutation whose journal append fails is
/// rejected with a structured error and never reaches the engine, and a
/// mutation that is acknowledged is always on disk (per the fsync policy).
/// A `shutdown` already in flight rejects new mutations outright, so a
/// submission racing the shutdown reply is either fully applied (journaled
/// and drained by the free-running engine) or cleanly refused — never
/// half-applied.
fn accept_mutation(ctl: &Control, mutation: Mutation, ack: String, line: &str) -> Action {
    if ctl.stop.load(Ordering::SeqCst) {
        return Action::Reply(err_line(
            "daemon is shutting down; mutation rejected".to_string(),
            line,
        ));
    }
    match &ctl.journal {
        Some(journal) => {
            // The journal lock spans reserve + append so journal record
            // order matches sequence order (lock order: journal, then the
            // queue's internal lock — same everywhere, no deadlock).
            let mut journal = journal.lock().unwrap();
            let seq = ctl.live.reserve();
            if let Err(e) = journal.live_mutation(seq, mutation) {
                return Action::Reply(err_line(format!("not journaled: {e}"), line));
            }
            ctl.live.reinject(seq, mutation);
        }
        None => {
            ctl.live.submit(mutation);
        }
    }
    Action::Reply(ack)
}

/// Resolves one request line against the protocol. Pure except for
/// submissions into the live mutation queue (and their journal appends).
fn handle_line(line: &str, ctl: &Control) -> Action {
    let mut parts = line.split_whitespace();
    let cmd = parts.next().unwrap_or("");
    let arg = parts.next();
    if parts.next().is_some() {
        return Action::Reply(err_line("too many arguments".to_string(), line));
    }
    match (cmd, arg) {
        ("ping", None) => Action::Reply(ok_str("pong")),
        ("attach", None) => Action::Attach(ok_str("attached")),
        ("shutdown", None) => Action::Shutdown(ok_str("shutting-down")),
        ("register" | "cancel", Some(raw)) => match raw.parse::<u32>() {
            Ok(id) if (id as usize) < ctl.n_ceis => {
                let cei = CeiId(id);
                let mutation = if cmd == "register" {
                    Mutation::Register { cei }
                } else {
                    Mutation::Cancel { cei }
                };
                accept_mutation(ctl, mutation, ok_applied(cmd, id), line)
            }
            Ok(id) => Action::Reply(err_line(
                format!("cei {id} out of range: instance has {} ceis", ctl.n_ceis),
                line,
            )),
            Err(_) => Action::Reply(err_line(format!("{cmd} expects a cei id"), line)),
        },
        ("set-budget", Some(raw)) => match raw.parse::<u32>() {
            Ok(budget) => accept_mutation(
                ctl,
                Mutation::SetBudget { budget },
                ok_applied("set-budget", budget),
                line,
            ),
            Err(_) => Action::Reply(err_line("set-budget expects an integer".to_string(), line)),
        },
        _ => Action::Reply(err_line(
            "unknown command: ping | attach | register <id> | cancel <id> | \
             set-budget <n> | shutdown"
                .to_string(),
            line,
        )),
    }
}

/// Serves one client connection until it closes, attaches, or the daemon
/// stops. Reads use a short timeout so the thread notices shutdown
/// promptly; a timeout preserves any partially read line.
fn client_loop(stream: TcpStream, ctl: &Control) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        if ctl.stop.load(Ordering::SeqCst) {
            return;
        }
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {
                // A nonempty read without a trailing newline means the
                // client hung up mid-command. Never execute the fragment —
                // drop only this session; the daemon keeps serving.
                if !line.ends_with('\n') {
                    return;
                }
                let trimmed = line.trim().to_string();
                line.clear();
                if trimmed.is_empty() {
                    continue;
                }
                match handle_line(&trimmed, ctl) {
                    Action::Reply(resp) => {
                        if writeln!(writer, "{resp}").is_err() {
                            return;
                        }
                    }
                    Action::Attach(resp) => {
                        if writeln!(writer, "{resp}").is_ok() {
                            // From here the engine thread is the socket's
                            // only writer; this thread reads no further
                            // commands.
                            ctl.pending.lock().unwrap().push(writer);
                        }
                        return;
                    }
                    Action::Shutdown(resp) => {
                        let _ = writeln!(writer, "{resp}");
                        ctl.shutdown();
                        return;
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

/// Accepts connections until shutdown, one thread per client, and joins
/// every client thread before exiting so the daemon leaks nothing.
fn accept_loop(listener: TcpListener, ctl: Arc<Control>) {
    let mut clients = Vec::new();
    while !ctl.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let ctl = Arc::clone(&ctl);
                clients.push(thread::spawn(move || client_loop(stream, &ctl)));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
            Err(_) => break,
        }
    }
    for client in clients {
        client.join().ok();
    }
}

/// The engine-side event fan-out: serializes every event once (the exact
/// [`JsonlTraceObserver`](webmon_core::obs::JsonlTraceObserver) bytes) and
/// writes the line to the optional trace file plus every attached socket.
///
/// Sockets attach mid-run: a freshly attached stream waits in the shared
/// pending list and is promoted *before* the next `ChrononStart` line is
/// written, so every attached client's stream begins at a chronon
/// boundary. A socket whose write fails is dropped; file write failures
/// are counted, never propagated into the engine.
struct EventHub {
    file: Option<TraceSink>,
    active: Vec<TcpStream>,
    pending: Arc<Mutex<Vec<TcpStream>>>,
    events_written: u64,
    write_errors: u64,
    io_errors: Vec<String>,
}

/// The `--trace-out` file sink: every write goes through the checked
/// write-all helper, so a partial write or `ENOSPC` surfaces as a
/// structured, path-tagged error instead of a panic or a silent short
/// file. The sink disarms after the first failure (one structured error,
/// not one per event on a full disk).
struct TraceSink {
    writer: BufWriter<std::fs::File>,
    path: PathBuf,
}

impl TraceSink {
    fn create(path: &Path) -> io::Result<Self> {
        Ok(TraceSink {
            writer: BufWriter::new(std::fs::File::create(path)?),
            path: path.to_path_buf(),
        })
    }

    fn write_line(&mut self, line: &str) -> Result<(), String> {
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        self.write_raw(&buf)
    }

    fn write_raw(&mut self, bytes: &[u8]) -> Result<(), String> {
        write_all_tagged(&mut self.writer, bytes, &self.path).map_err(|e| e.to_string())
    }

    fn finish(mut self) -> Result<(), String> {
        self.writer
            .flush()
            .map_err(|e| format!("trace {}: flush failed: {e}", self.path.display()))
    }
}

impl EventHub {
    fn sink_line(&mut self, line: &str) {
        if let Some(file) = &mut self.file {
            if let Err(e) = file.write_line(line) {
                self.write_errors += 1;
                self.io_errors.push(e);
                self.file = None;
            }
        }
    }
}

impl Observer for EventHub {
    fn on_event(&mut self, event: Event) {
        if matches!(event, Event::ChrononStart { .. }) {
            let mut pending = self.pending.lock().unwrap();
            self.active.append(&mut pending);
        }
        let line = match serde_json::to_string(&event) {
            Ok(line) => line,
            Err(_) => {
                self.write_errors += 1;
                return;
            }
        };
        self.events_written += 1;
        self.sink_line(&line);
        self.active
            .retain_mut(|sock| writeln!(sock, "{line}").is_ok());
    }

    fn enabled(&self) -> bool {
        true
    }
}

/// An observer forwarding to a [`JournalObserver`] when journaling is on.
struct MaybeJournal(Option<JournalObserver>);

impl Observer for MaybeJournal {
    fn on_event(&mut self, event: Event) {
        if let Some(journal) = &mut self.0 {
            journal.on_event(event);
        }
    }

    fn enabled(&self) -> bool {
        true
    }
}

/// A bound `webmon serve` daemon, ready to run one engine session.
pub struct Daemon {
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    hooks: Vec<ClockRelease>,
}

impl Daemon {
    /// Binds the control socket. `127.0.0.1:0` picks a free port — read it
    /// back with [`local_addr`](Self::local_addr).
    pub fn bind(addr: &str) -> io::Result<Daemon> {
        Ok(Daemon {
            listener: TcpListener::bind(addr)?,
            stop: Arc::new(AtomicBool::new(false)),
            hooks: Vec::new(),
        })
    }

    /// The bound address of the control socket.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The daemon's stop flag (set when the `shutdown` command triggers
    /// the control shutdown); shared so tests can observe termination.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Registers an extra shutdown hook, run (after the stop flag is set)
    /// when the `shutdown` command arrives — e.g. a live executor's
    /// fail-fast flag, so a probe mid-backoff cannot delay exit.
    pub fn on_shutdown(&mut self, hook: ClockRelease) {
        self.hooks.push(hook);
    }

    /// Runs the engine to the horizon on the calling thread while the
    /// accept thread serves the protocol, then tears everything down —
    /// every spawned thread is joined before this returns.
    pub fn run<E, C>(
        self,
        session: ServeSession,
        executor: E,
        clock: C,
        trace_out: Option<&Path>,
    ) -> Result<DaemonOutcome, ServeError>
    where
        E: ProbeExecutor,
        C: Clock,
    {
        self.run_with(
            session,
            executor,
            |_| clock,
            ServeOptions {
                trace_out: trace_out.map(Path::to_path_buf),
                ..ServeOptions::default()
            },
        )
    }

    /// [`run`](Self::run) with the full option set: journaling, crash
    /// recovery, and an anchor-aware clock. `make_clock` receives the first
    /// chronon that executes live — 0 for a fresh run, one past the last
    /// journaled chronon when recovering — so a wall clock can anchor there
    /// and never pace the replayed prefix.
    pub fn run_with<E, C, F>(
        mut self,
        session: ServeSession,
        executor: E,
        make_clock: F,
        opts: ServeOptions,
    ) -> Result<DaemonOutcome, ServeError>
    where
        E: ProbeExecutor,
        C: Clock,
        F: FnOnce(Chronon) -> C,
    {
        let fp = fingerprint(&session, &executor.descriptor());

        // Recovery planning happens before anything spawns: scan the
        // journal, check its header against this invocation, distill the
        // replay plan. Scan failures (beyond a discardable torn tail) are
        // structured errors, never a silent partial replay.
        let recovery: Option<Recovery> = match (&opts.journal, opts.recover) {
            (Some(jc), true) => {
                let scan = scan_journal(&jc.path())?;
                scan.verify_fingerprint(&fp)?;
                Some(Recovery::plan(&scan)?)
            }
            (None, true) => {
                return Err(ServeError::Io(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "recovery requires a journal directory",
                )))
            }
            _ => None,
        };
        let first_live = recovery.as_ref().map_or(0, Recovery::first_live_chronon);
        let live = recovery
            .as_ref()
            .map_or_else(LiveMutationQueue::new, Recovery::live_queue);

        // The journal writer: fresh (header first), or appending after the
        // already-journaled prefix — truncated to the scan's valid length
        // first, so a discarded torn tail never has records appended after
        // it — with re-emitted frames suppressed.
        let journal: Option<SharedJournal> = match &opts.journal {
            Some(jc) => {
                let writer = match &recovery {
                    Some(rec) => JournalWriter::append_to(
                        &jc.path(),
                        jc.fsync,
                        rec.replay_until,
                        rec.valid_len,
                    )?,
                    None => JournalWriter::create(&jc.path(), jc.fsync, &fp)?,
                };
                Some(Arc::new(Mutex::new(writer)))
            }
            None => None,
        };

        let clock = make_clock(first_live);
        let pending: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let mut hooks = std::mem::take(&mut self.hooks);
        hooks.push(clock.release_handle());
        let ctl = Arc::new(Control {
            live: live.clone(),
            stop: Arc::clone(&self.stop),
            pending: Arc::clone(&pending),
            hooks,
            n_ceis: session.instance.ceis.len(),
            journal: journal.clone(),
        });
        self.listener.set_nonblocking(true)?;
        let accept = {
            let listener = self.listener.try_clone()?;
            let ctl = Arc::clone(&ctl);
            thread::spawn(move || accept_loop(listener, ctl))
        };

        let file = match &opts.trace_out {
            Some(path) => Some(TraceSink::create(path)?),
            None => None,
        };
        let mut hub = EventHub {
            file,
            active: Vec::new(),
            pending,
            events_written: recovery.as_ref().map_or(0, |r| r.prefix_events),
            write_errors: 0,
            io_errors: Vec::new(),
        };
        let mut metrics = MetricsObserver::new();

        // Recovery's trace prefix: chronons before the snapshot boundary are
        // not re-emitted by the resumed engine, so their journaled bytes go
        // to the trace file (and through the metrics observer) up front.
        if let Some(rec) = &recovery {
            if !rec.prefix_lines.is_empty() {
                if let Some(sink) = &mut hub.file {
                    if let Err(e) = sink.write_raw(rec.prefix_lines.as_bytes()) {
                        hub.write_errors += 1;
                        hub.io_errors.push(e);
                        hub.file = None;
                    }
                }
                let events =
                    replay_events(&rec.prefix_lines).map_err(|e| JournalError::Corrupt {
                        offset: 0,
                        detail: format!("journaled trace prefix line {}: {}", e.line, e.detail),
                    })?;
                for event in events {
                    metrics.on_event(event);
                }
            }
        }

        let mut jobs = MaybeJournal(
            journal
                .as_ref()
                .map(|core| JournalObserver::new(Arc::clone(core), live.clone())),
        );
        let mut sink: Box<dyn SnapshotSink> = match (&journal, &opts.journal) {
            (Some(core), Some(jc)) => Box::new(JournalSink::new(
                Arc::clone(core),
                jc.snapshot_every,
                recovery.as_ref().and_then(|r| r.replay_until),
            )),
            _ => Box::new(NoSnapshots),
        };

        let mut divergence = None;
        let result = match &recovery {
            Some(rec) => {
                let journal_exec =
                    rec.executor(executor, session.instance.n_resources, opts.resync_executor);
                divergence = Some(journal_exec.divergence());
                let mut source = rec.mutations(DaemonSource::new(session.script, live));
                drive_resumable(
                    &session.instance,
                    session.policy.as_ref(),
                    session.config,
                    journal_exec,
                    session.fault_config,
                    &mut source,
                    clock,
                    Tee(&mut metrics, Tee(&mut hub, &mut jobs)),
                    rec.resume.as_ref(),
                    sink.as_mut(),
                )
            }
            None => {
                let mut source = DaemonSource::new(session.script, live);
                drive_resumable(
                    &session.instance,
                    session.policy.as_ref(),
                    session.config,
                    executor,
                    session.fault_config,
                    &mut source,
                    clock,
                    Tee(&mut metrics, Tee(&mut hub, &mut jobs)),
                    None,
                    sink.as_mut(),
                )
            }
        };

        // Horizon reached (or shutdown already free-ran us here): stop the
        // protocol side and join every thread.
        ctl.shutdown();
        accept.join().ok();
        if let Some(mut journal_obs) = jobs.0.take() {
            journal_obs.finish();
        }
        if let Some(sink) = hub.file.take() {
            if let Err(e) = sink.finish() {
                hub.write_errors += 1;
                hub.io_errors.push(e);
            }
        }
        let mut io_errors = std::mem::take(&mut hub.io_errors);
        if let Some(core) = &journal {
            io_errors.extend(core.lock().unwrap().errors().iter().cloned());
        }
        // Replay consumed the journal differently than the recording (the
        // fingerprint is a hash, not the inputs themselves): the recovery
        // is invalid and its output must not be trusted — a structured
        // error, never a panic, and never a silent mis-replay.
        if let Some(cell) = divergence {
            if let Some(detail) = cell.lock().unwrap().take() {
                return Err(ServeError::Journal(JournalError::ReplayDivergence {
                    detail,
                }));
            }
        }
        Ok(DaemonOutcome {
            result,
            metrics: metrics.metrics().clone(),
            events_written: hub.events_written,
            write_errors: hub.write_errors,
            io_errors,
        })
    }
}

/// The configuration fingerprint pinned in the journal header. It covers
/// everything that determines a driven run: the instance **content** (CRC
/// of its serialized form, not just its dimensions), the policy's full
/// spec (name + parameters), engine mode, the fault/retry configuration,
/// the compiled churn script, and the executor's descriptor (fault model
/// kind, parameters, and seed for scripted executors). Recovery under any
/// same-shaped-but-different input would replay the journal against a run
/// it does not describe, so `--recover` refuses a mismatch with a
/// structured error up front instead of diverging mid-replay.
fn fingerprint(session: &ServeSession, executor_desc: &str) -> String {
    let hash = |json: Result<String, serde_json::Error>| match json {
        Ok(s) => format!("{:08x}", crc32(s.as_bytes())),
        Err(_) => "unserializable".to_string(),
    };
    format!(
        "v2;horizon={};resources={};ceis={};instance={};policy={};preemptive={};share={};\
         fault_config={};script={};executor={}",
        session.instance.epoch.len(),
        session.instance.n_resources,
        session.instance.ceis.len(),
        hash(serde_json::to_string(&session.instance)),
        session.policy.spec(),
        session.config.preemptive,
        session.config.share_probes,
        hash(serde_json::to_string(&session.fault_config)),
        hash(serde_json::to_string(&session.script)),
        executor_desc,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_control(n_ceis: usize) -> Control {
        Control {
            live: LiveMutationQueue::new(),
            stop: Arc::new(AtomicBool::new(false)),
            pending: Arc::new(Mutex::new(Vec::new())),
            hooks: Vec::new(),
            n_ceis,
            journal: None,
        }
    }

    fn reply(action: Action) -> String {
        match action {
            Action::Reply(s) | Action::Attach(s) | Action::Shutdown(s) => s,
        }
    }

    #[test]
    fn protocol_lines_are_json() {
        let ctl = test_control(4);
        for (line, expect) in [
            ("ping", r#"{"ok":"pong"}"#),
            ("attach", r#"{"ok":"attached"}"#),
            ("shutdown", r#"{"ok":"shutting-down"}"#),
            ("register 2", r#"{"ok":{"register":2}}"#),
            ("cancel 0", r#"{"ok":{"cancel":0}}"#),
            ("set-budget 7", r#"{"ok":{"set-budget":7}}"#),
        ] {
            assert_eq!(reply(handle_line(line, &ctl)), expect, "{line}");
        }
        assert_eq!(ctl.live.pending(), 3);
    }

    #[test]
    fn malformed_lines_are_structured_errors() {
        let ctl = test_control(2);
        for line in [
            "frobnicate",
            "register",
            "register x",
            "register 9",
            "set-budget many",
            "ping twice please",
        ] {
            let resp = reply(handle_line(line, &ctl));
            let v: Value = serde_json::from_str(&resp).unwrap();
            assert!(!v["err"].is_null(), "{line} -> {resp}");
            assert_eq!(v["err"]["input"], *line, "{resp}");
        }
        assert_eq!(ctl.live.pending(), 0, "rejected commands submit nothing");
    }

    #[test]
    fn shutdown_sets_stop_and_runs_hooks() {
        let fired = Arc::new(AtomicBool::new(false));
        let mut ctl = test_control(1);
        let observed = Arc::clone(&fired);
        ctl.hooks.push(Arc::new(move || {
            observed.store(true, Ordering::SeqCst);
        }));
        assert!(matches!(handle_line("shutdown", &ctl), Action::Shutdown(_)));
        ctl.shutdown();
        assert!(ctl.stop.load(Ordering::SeqCst));
        assert!(fired.load(Ordering::SeqCst));
    }
}
