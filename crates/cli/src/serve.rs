//! The `webmon serve` daemon: the simulator engine promoted to a
//! long-running monitor behind a local TCP socket.
//!
//! One engine run is one daemon lifetime. The engine executes on the
//! calling thread via [`webmon_core::serve::drive`]; a background accept
//! thread serves a line protocol on the listening socket:
//!
//! ```text
//! ping                  -> {"ok":"pong"}
//! attach                -> {"ok":"attached"}, then the JSONL event stream
//!                          from the next chronon start onward
//! register <cei-id>     -> {"ok":{"register":<id>}}   (drained next chronon)
//! cancel <cei-id>       -> {"ok":{"cancel":<id>}}
//! set-budget <n>        -> {"ok":{"set-budget":<n>}}
//! shutdown              -> {"ok":"shutting-down"}; the clock is released,
//!                          the engine free-runs to the horizon and exits
//! ```
//!
//! Every response is one JSON line. A malformed request gets a structured
//! `{"err":{"reason":...,"input":...}}` line and the connection stays
//! open. Registration commands feed the engine's live
//! [`LiveMutationQueue`], drained at each chronon start with exactly the
//! `run_mutated` semantics.
//!
//! **Byte identity.** The daemon's event hub writes every event as
//! `serde_json::to_string(&event)` plus `\n` — the same bytes
//! [`JsonlTraceObserver`](webmon_core::obs::JsonlTraceObserver) produces —
//! to the `--trace-out` file (from event zero) and to every attached
//! socket (from its first post-attach chronon start). The daemon's trace
//! file is therefore byte-identical to the simulator's for the same case,
//! which `tests/tests/serve.rs` and CI's `serve-smoke` job enforce.

use serde_json::Value;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;
use webmon_core::engine::{EngineConfig, Mutation, RunResult, ScriptedMutations};
use webmon_core::fault::FaultConfig;
use webmon_core::model::{CeiId, Instance};
use webmon_core::obs::{Event, MetricsObserver, Observer, RunMetrics, Tee};
use webmon_core::policy::Policy;
use webmon_core::serve::{
    drive, Clock, ClockRelease, DaemonSource, LiveMutationQueue, ProbeExecutor,
};

/// How long a client read blocks before re-checking the stop flag, and how
/// long the accept loop naps when no connection is pending.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Everything the engine run needs, bundled so [`Daemon::run`] can build
/// the policy inside a spawned thread when tests run the daemon off-main.
pub struct ServeSession {
    /// The monitoring instance (profiles, epoch, budget).
    pub instance: Instance,
    /// The scheduling policy.
    pub policy: Box<dyn Policy>,
    /// Engine execution mode / selection / sharding.
    pub config: EngineConfig,
    /// Retry/backoff discipline for failed probes.
    pub fault_config: FaultConfig,
    /// Precompiled churn script (empty for static profiles).
    pub script: ScriptedMutations,
}

/// What a completed daemon run produced.
#[derive(Debug)]
pub struct DaemonOutcome {
    /// The engine's schedule, stats, and per-CEI outcomes.
    pub result: RunResult,
    /// In-run metrics from the daemon's own event stream.
    pub metrics: RunMetrics,
    /// Events serialized by the hub (trace file and sockets share them).
    pub events_written: u64,
    /// Failed writes (a full disk, a torn socket mid-line on the file sink).
    pub write_errors: u64,
}

/// Shared state between the engine thread, the accept thread, and every
/// client connection.
struct Control {
    live: LiveMutationQueue,
    stop: Arc<AtomicBool>,
    pending: Arc<Mutex<Vec<TcpStream>>>,
    hooks: Vec<ClockRelease>,
    n_ceis: usize,
}

impl Control {
    /// Stops the accept loop and every client thread, and releases the
    /// clock (plus any registered executor stop flags) so the engine
    /// free-runs to the horizon. Idempotent.
    fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for hook in &self.hooks {
            hook();
        }
    }
}

fn json_line(value: Value) -> String {
    serde_json::to_string(&value).unwrap_or_else(|_| "{}".to_string())
}

fn ok_line(ok: Value) -> String {
    json_line(Value::Object(vec![("ok".to_string(), ok)]))
}

fn ok_str(ok: &str) -> String {
    ok_line(Value::String(ok.to_string()))
}

fn ok_applied(cmd: &str, value: u32) -> String {
    ok_line(Value::Object(vec![(
        cmd.to_string(),
        Value::UInt(u64::from(value)),
    )]))
}

fn err_line(reason: String, input: &str) -> String {
    json_line(Value::Object(vec![(
        "err".to_string(),
        Value::Object(vec![
            ("reason".to_string(), Value::String(reason)),
            ("input".to_string(), Value::String(input.to_string())),
        ]),
    )]))
}

/// What the client thread should do after one request line.
enum Action {
    /// Write the response and keep reading commands.
    Reply(String),
    /// Write the response, hand the socket to the event hub, stop reading.
    Attach(String),
    /// Write the response, trigger daemon shutdown, stop reading.
    Shutdown(String),
}

/// Resolves one request line against the protocol. Pure except for
/// submissions into the live mutation queue.
fn handle_line(line: &str, ctl: &Control) -> Action {
    let mut parts = line.split_whitespace();
    let cmd = parts.next().unwrap_or("");
    let arg = parts.next();
    if parts.next().is_some() {
        return Action::Reply(err_line("too many arguments".to_string(), line));
    }
    match (cmd, arg) {
        ("ping", None) => Action::Reply(ok_str("pong")),
        ("attach", None) => Action::Attach(ok_str("attached")),
        ("shutdown", None) => Action::Shutdown(ok_str("shutting-down")),
        ("register" | "cancel", Some(raw)) => match raw.parse::<u32>() {
            Ok(id) if (id as usize) < ctl.n_ceis => {
                let cei = CeiId(id);
                ctl.live.submit(if cmd == "register" {
                    Mutation::Register { cei }
                } else {
                    Mutation::Cancel { cei }
                });
                Action::Reply(ok_applied(cmd, id))
            }
            Ok(id) => Action::Reply(err_line(
                format!("cei {id} out of range: instance has {} ceis", ctl.n_ceis),
                line,
            )),
            Err(_) => Action::Reply(err_line(format!("{cmd} expects a cei id"), line)),
        },
        ("set-budget", Some(raw)) => match raw.parse::<u32>() {
            Ok(budget) => {
                ctl.live.submit(Mutation::SetBudget { budget });
                Action::Reply(ok_applied("set-budget", budget))
            }
            Err(_) => Action::Reply(err_line("set-budget expects an integer".to_string(), line)),
        },
        _ => Action::Reply(err_line(
            "unknown command: ping | attach | register <id> | cancel <id> | \
             set-budget <n> | shutdown"
                .to_string(),
            line,
        )),
    }
}

/// Serves one client connection until it closes, attaches, or the daemon
/// stops. Reads use a short timeout so the thread notices shutdown
/// promptly; a timeout preserves any partially read line.
fn client_loop(stream: TcpStream, ctl: &Control) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        if ctl.stop.load(Ordering::SeqCst) {
            return;
        }
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {
                let trimmed = line.trim().to_string();
                line.clear();
                if trimmed.is_empty() {
                    continue;
                }
                match handle_line(&trimmed, ctl) {
                    Action::Reply(resp) => {
                        if writeln!(writer, "{resp}").is_err() {
                            return;
                        }
                    }
                    Action::Attach(resp) => {
                        if writeln!(writer, "{resp}").is_ok() {
                            // From here the engine thread is the socket's
                            // only writer; this thread reads no further
                            // commands.
                            ctl.pending.lock().unwrap().push(writer);
                        }
                        return;
                    }
                    Action::Shutdown(resp) => {
                        let _ = writeln!(writer, "{resp}");
                        ctl.shutdown();
                        return;
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

/// Accepts connections until shutdown, one thread per client, and joins
/// every client thread before exiting so the daemon leaks nothing.
fn accept_loop(listener: TcpListener, ctl: Arc<Control>) {
    let mut clients = Vec::new();
    while !ctl.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let ctl = Arc::clone(&ctl);
                clients.push(thread::spawn(move || client_loop(stream, &ctl)));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
            Err(_) => break,
        }
    }
    for client in clients {
        client.join().ok();
    }
}

/// The engine-side event fan-out: serializes every event once (the exact
/// [`JsonlTraceObserver`](webmon_core::obs::JsonlTraceObserver) bytes) and
/// writes the line to the optional trace file plus every attached socket.
///
/// Sockets attach mid-run: a freshly attached stream waits in the shared
/// pending list and is promoted *before* the next `ChrononStart` line is
/// written, so every attached client's stream begins at a chronon
/// boundary. A socket whose write fails is dropped; file write failures
/// are counted, never propagated into the engine.
struct EventHub {
    file: Option<BufWriter<std::fs::File>>,
    active: Vec<TcpStream>,
    pending: Arc<Mutex<Vec<TcpStream>>>,
    events_written: u64,
    write_errors: u64,
}

impl Observer for EventHub {
    fn on_event(&mut self, event: Event) {
        if matches!(event, Event::ChrononStart { .. }) {
            let mut pending = self.pending.lock().unwrap();
            self.active.append(&mut pending);
        }
        let line = match serde_json::to_string(&event) {
            Ok(line) => line,
            Err(_) => {
                self.write_errors += 1;
                return;
            }
        };
        self.events_written += 1;
        if let Some(file) = &mut self.file {
            if writeln!(file, "{line}").is_err() {
                self.write_errors += 1;
            }
        }
        self.active
            .retain_mut(|sock| writeln!(sock, "{line}").is_ok());
    }

    fn enabled(&self) -> bool {
        true
    }
}

/// A bound `webmon serve` daemon, ready to run one engine session.
pub struct Daemon {
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    hooks: Vec<ClockRelease>,
}

impl Daemon {
    /// Binds the control socket. `127.0.0.1:0` picks a free port — read it
    /// back with [`local_addr`](Self::local_addr).
    pub fn bind(addr: &str) -> io::Result<Daemon> {
        Ok(Daemon {
            listener: TcpListener::bind(addr)?,
            stop: Arc::new(AtomicBool::new(false)),
            hooks: Vec::new(),
        })
    }

    /// The bound address of the control socket.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The daemon's stop flag (set when the `shutdown` command triggers
    /// the control shutdown); shared so tests can observe termination.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Registers an extra shutdown hook, run (after the stop flag is set)
    /// when the `shutdown` command arrives — e.g. a live executor's
    /// fail-fast flag, so a probe mid-backoff cannot delay exit.
    pub fn on_shutdown(&mut self, hook: ClockRelease) {
        self.hooks.push(hook);
    }

    /// Runs the engine to the horizon on the calling thread while the
    /// accept thread serves the protocol, then tears everything down —
    /// every spawned thread is joined before this returns.
    pub fn run<E, C>(
        mut self,
        session: ServeSession,
        executor: E,
        clock: C,
        trace_out: Option<&Path>,
    ) -> io::Result<DaemonOutcome>
    where
        E: ProbeExecutor,
        C: Clock,
    {
        let live = LiveMutationQueue::new();
        let pending: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let mut hooks = std::mem::take(&mut self.hooks);
        hooks.push(clock.release_handle());
        let ctl = Arc::new(Control {
            live: live.clone(),
            stop: Arc::clone(&self.stop),
            pending: Arc::clone(&pending),
            hooks,
            n_ceis: session.instance.ceis.len(),
        });
        self.listener.set_nonblocking(true)?;
        let accept = {
            let listener = self.listener.try_clone()?;
            let ctl = Arc::clone(&ctl);
            thread::spawn(move || accept_loop(listener, ctl))
        };

        let file = match trace_out {
            Some(path) => Some(BufWriter::new(std::fs::File::create(path)?)),
            None => None,
        };
        let mut hub = EventHub {
            file,
            active: Vec::new(),
            pending,
            events_written: 0,
            write_errors: 0,
        };
        let mut metrics = MetricsObserver::new();
        let mut source = DaemonSource::new(session.script, live);
        let result = drive(
            &session.instance,
            session.policy.as_ref(),
            session.config,
            executor,
            session.fault_config,
            &mut source,
            clock,
            Tee(&mut metrics, &mut hub),
        );

        // Horizon reached (or shutdown already free-ran us here): stop the
        // protocol side and join every thread.
        ctl.shutdown();
        accept.join().ok();
        if let Some(file) = &mut hub.file {
            if file.flush().is_err() {
                hub.write_errors += 1;
            }
        }
        Ok(DaemonOutcome {
            result,
            metrics: metrics.metrics().clone(),
            events_written: hub.events_written,
            write_errors: hub.write_errors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_control(n_ceis: usize) -> Control {
        Control {
            live: LiveMutationQueue::new(),
            stop: Arc::new(AtomicBool::new(false)),
            pending: Arc::new(Mutex::new(Vec::new())),
            hooks: Vec::new(),
            n_ceis,
        }
    }

    fn reply(action: Action) -> String {
        match action {
            Action::Reply(s) | Action::Attach(s) | Action::Shutdown(s) => s,
        }
    }

    #[test]
    fn protocol_lines_are_json() {
        let ctl = test_control(4);
        for (line, expect) in [
            ("ping", r#"{"ok":"pong"}"#),
            ("attach", r#"{"ok":"attached"}"#),
            ("shutdown", r#"{"ok":"shutting-down"}"#),
            ("register 2", r#"{"ok":{"register":2}}"#),
            ("cancel 0", r#"{"ok":{"cancel":0}}"#),
            ("set-budget 7", r#"{"ok":{"set-budget":7}}"#),
        ] {
            assert_eq!(reply(handle_line(line, &ctl)), expect, "{line}");
        }
        assert_eq!(ctl.live.pending(), 3);
    }

    #[test]
    fn malformed_lines_are_structured_errors() {
        let ctl = test_control(2);
        for line in [
            "frobnicate",
            "register",
            "register x",
            "register 9",
            "set-budget many",
            "ping twice please",
        ] {
            let resp = reply(handle_line(line, &ctl));
            let v: Value = serde_json::from_str(&resp).unwrap();
            assert!(!v["err"].is_null(), "{line} -> {resp}");
            assert_eq!(v["err"]["input"], *line, "{resp}");
        }
        assert_eq!(ctl.live.pending(), 0, "rejected commands submit nothing");
    }

    #[test]
    fn shutdown_sets_stop_and_runs_hooks() {
        let fired = Arc::new(AtomicBool::new(false));
        let mut ctl = test_control(1);
        let observed = Arc::clone(&fired);
        ctl.hooks.push(Arc::new(move || {
            observed.store(true, Ordering::SeqCst);
        }));
        assert!(matches!(handle_line("shutdown", &ctl), Action::Shutdown(_)));
        ctl.shutdown();
        assert!(ctl.stop.load(Ordering::SeqCst));
        assert!(fired.load(Ordering::SeqCst));
    }
}
