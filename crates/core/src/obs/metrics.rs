//! In-run metric aggregation: [`MetricsObserver`] folds the engine's event
//! stream into a serializable [`RunMetrics`] — counters plus fixed-bucket
//! [`Histogram`]s — with no locking (one observer per run) and no
//! allocation after construction.

use super::{Event, Observer};
use crate::stats::RunStats;
use serde::{Deserialize, Serialize};

/// A fixed-bucket histogram over `u64` samples.
///
/// Buckets are defined by a sorted list of **inclusive upper bounds**; a
/// final implicit overflow bucket catches everything above the last bound.
/// Bounds are fixed at construction, so merging per-repetition histograms
/// (across workers, in repetition order) is exact and deterministic —
/// unlike quantile sketches, which this deliberately is not.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Histogram {
    /// Sorted inclusive upper bounds; the overflow bucket is implicit.
    pub bounds: Vec<u64>,
    /// Sample counts per bucket; `counts.len() == bounds.len() + 1`.
    pub counts: Vec<u64>,
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples (for exact means).
    pub sum: u64,
    /// Largest sample seen; 0 when empty.
    pub max: u64,
}

impl Histogram {
    /// A histogram with the given sorted inclusive upper bounds.
    pub fn with_bounds(bounds: Vec<u64>) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        let counts = vec![0; bounds.len() + 1];
        Histogram {
            bounds,
            counts,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Power-of-two bounds up to `cap` (0, 1, 2, 4, …, cap), the default
    /// shape for open-ended size/latency distributions.
    pub fn pow2(cap: u64) -> Self {
        let mut bounds = vec![0u64, 1];
        let mut b = 2u64;
        while b <= cap {
            bounds.push(b);
            b *= 2;
        }
        Histogram::with_bounds(bounds)
    }

    /// Decile bounds over percentages (0, 10, …, 100) for per-chronon
    /// budget-utilization samples.
    pub fn percent() -> Self {
        Histogram::with_bounds((0..=10).map(|d| d * 10).collect())
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Mean of all samples; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Folds another histogram with **identical bounds** into this one.
    ///
    /// # Panics
    /// Panics if the bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// `(label, count)` rows for rendering, e.g. `("≤4", 17)`, with the
    /// overflow bucket labelled `">last"`.
    pub fn rows(&self) -> Vec<(String, u64)> {
        let mut rows: Vec<(String, u64)> = self
            .bounds
            .iter()
            .zip(&self.counts)
            .map(|(b, &c)| (format!("≤{b}"), c))
            .collect();
        rows.push((
            format!(">{}", self.bounds.last().copied().unwrap_or(0)),
            *self.counts.last().expect("overflow bucket"),
        ));
        rows
    }
}

/// Serializable aggregate metrics of one (or several merged) engine runs —
/// the machine-readable substrate for perf gates and dashboards.
///
/// Counter totals are exact mirrors of [`RunStats`] (see
/// [`consistency_errors`](Self::consistency_errors)); the histograms add
/// the *inside-the-run* distributions `RunStats` cannot express: candidate
/// pool growth, capture latency, probe-sharing fan-out, and per-chronon
/// budget utilization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Engine runs merged into this record.
    pub runs: u64,
    /// Chronons executed across all merged runs.
    pub chronons: u64,
    /// Probes issued (mirror of [`RunStats::probes_used`]).
    pub probes_issued: u64,
    /// Budget units spent (mirror of [`RunStats::budget_spent`]).
    pub budget_spent: u64,
    /// Budget units available (mirror of [`RunStats::probes_available`]).
    pub budget_available: u64,
    /// EIs captured (mirror of [`RunStats::eis_captured`]).
    pub eis_captured: u64,
    /// CEIs that crossed their threshold (mirror of
    /// [`RunStats::ceis_captured`]).
    pub ceis_completed: u64,
    /// CEIs doomed by an expiry (mirror of [`RunStats::ceis_failed`]).
    pub ceis_expired: u64,
    /// Chronons whose budget ran out with live candidates still waiting.
    pub exhausted_chronons: u64,
    /// Live candidates left waiting, summed over exhausted chronons.
    pub deferred_candidates: u64,
    /// Candidate-selection steps: lazy-heap pops or argmin pool scans.
    pub selection_steps: u64,
    /// Live candidate-pool size, sampled once per chronon.
    pub candidate_set: Histogram,
    /// Capture latency (chronons from window open to capture) per EI.
    pub capture_latency: Histogram,
    /// Intra-resource sharing fan-out (EIs captured) per probe.
    pub probe_fanout: Histogram,
    /// Per-chronon budget utilization percent (chronons with zero budget
    /// are not sampled — nothing could be probed).
    pub budget_utilization: Histogram,
    /// Probe attempts rejected by the fault model (mirror of
    /// [`RunStats::probes_failed`]).
    #[serde(default)]
    pub probes_failed: u64,
    /// Retry attempts: probes issued against a resource with at least one
    /// consecutive failure.
    #[serde(default)]
    pub probes_retried: u64,
    /// Budget units charged to failed probes (mirror of
    /// [`RunStats::budget_lost`]).
    #[serde(default)]
    pub budget_lost: u64,
    /// Resource outages started (one per `ResourceDown` transition; an
    /// outage still open at epoch end is counted here but not in
    /// [`outage_length`](Self::outage_length)).
    #[serde(default)]
    pub resource_outages: u64,
    /// CEIs shed by graceful degradation (mirror of
    /// [`RunStats::ceis_shed`]).
    #[serde(default)]
    pub ceis_shed: u64,
    /// CEIs registered mid-run through the mutation API.
    #[serde(default)]
    pub ceis_registered: u64,
    /// CEIs cancelled mid-run through the mutation API (mirror of
    /// [`RunStats::ceis_cancelled`]).
    #[serde(default)]
    pub ceis_cancelled: u64,
    /// Budget reconfigurations drained mid-run.
    #[serde(default)]
    pub budget_reconfigurations: u64,
    /// Consecutive-failure count per retry attempt.
    #[serde(default = "retry_attempts_histogram")]
    pub retry_attempts: Histogram,
    /// Completed outage lengths in chronons (outages still open at epoch
    /// end are not sampled).
    #[serde(default = "outage_length_histogram")]
    pub outage_length: Histogram,
}

/// Default bucket layout for [`RunMetrics::retry_attempts`].
fn retry_attempts_histogram() -> Histogram {
    Histogram::pow2(32)
}

/// Default bucket layout for [`RunMetrics::outage_length`].
fn outage_length_histogram() -> Histogram {
    Histogram::pow2(256)
}

impl Default for RunMetrics {
    fn default() -> Self {
        RunMetrics {
            runs: 0,
            chronons: 0,
            probes_issued: 0,
            budget_spent: 0,
            budget_available: 0,
            eis_captured: 0,
            ceis_completed: 0,
            ceis_expired: 0,
            exhausted_chronons: 0,
            deferred_candidates: 0,
            selection_steps: 0,
            candidate_set: Histogram::pow2(4096),
            capture_latency: Histogram::pow2(256),
            probe_fanout: Histogram::pow2(32),
            budget_utilization: Histogram::percent(),
            probes_failed: 0,
            probes_retried: 0,
            budget_lost: 0,
            resource_outages: 0,
            ceis_shed: 0,
            ceis_registered: 0,
            ceis_cancelled: 0,
            budget_reconfigurations: 0,
            retry_attempts: retry_attempts_histogram(),
            outage_length: outage_length_histogram(),
        }
    }
}

impl RunMetrics {
    /// Folds another `RunMetrics` into this one. Exact and associative, so
    /// aggregating per-repetition metrics in repetition order yields the
    /// same result for every worker count (the PR-1 determinism contract).
    pub fn merge(&mut self, other: &RunMetrics) {
        self.runs += other.runs;
        self.chronons += other.chronons;
        self.probes_issued += other.probes_issued;
        self.budget_spent += other.budget_spent;
        self.budget_available += other.budget_available;
        self.eis_captured += other.eis_captured;
        self.ceis_completed += other.ceis_completed;
        self.ceis_expired += other.ceis_expired;
        self.exhausted_chronons += other.exhausted_chronons;
        self.deferred_candidates += other.deferred_candidates;
        self.selection_steps += other.selection_steps;
        self.candidate_set.merge(&other.candidate_set);
        self.capture_latency.merge(&other.capture_latency);
        self.probe_fanout.merge(&other.probe_fanout);
        self.budget_utilization.merge(&other.budget_utilization);
        self.probes_failed += other.probes_failed;
        self.probes_retried += other.probes_retried;
        self.budget_lost += other.budget_lost;
        self.resource_outages += other.resource_outages;
        self.ceis_shed += other.ceis_shed;
        self.ceis_registered += other.ceis_registered;
        self.ceis_cancelled += other.ceis_cancelled;
        self.budget_reconfigurations += other.budget_reconfigurations;
        self.retry_attempts.merge(&other.retry_attempts);
        self.outage_length.merge(&other.outage_length);
    }

    /// Merges an ordered sequence of per-run metrics.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a RunMetrics>) -> RunMetrics {
        let mut total = RunMetrics::default();
        for p in parts {
            total.merge(p);
        }
        total
    }

    /// Mean budget utilization across sampled chronons, in `[0, 1]`.
    pub fn mean_budget_utilization(&self) -> Option<f64> {
        self.budget_utilization.mean().map(|pct| pct / 100.0)
    }

    /// Cross-checks this record's totals against the post-hoc [`RunStats`]
    /// of the same run(s); returns one message per mismatch (empty = fully
    /// consistent). This is the invariant the CI metrics gate enforces.
    pub fn consistency_errors(&self, stats: &RunStats) -> Vec<String> {
        let mut errs = Vec::new();
        let mut check = |name: &str, metric: u64, stat: u64| {
            if metric != stat {
                errs.push(format!("{name}: metrics {metric} != stats {stat}"));
            }
        };
        check("probes", self.probes_issued, stats.probes_used);
        check("budget spent", self.budget_spent, stats.budget_spent);
        check(
            "budget available",
            self.budget_available,
            stats.probes_available,
        );
        check("EIs captured", self.eis_captured, stats.eis_captured);
        check("CEIs completed", self.ceis_completed, stats.ceis_captured);
        check(
            "CEIs expired+shed",
            self.ceis_expired + self.ceis_shed,
            stats.ceis_failed,
        );
        check("probes failed", self.probes_failed, stats.probes_failed);
        check("budget lost", self.budget_lost, stats.budget_lost);
        check("CEIs shed", self.ceis_shed, stats.ceis_shed);
        check("CEIs cancelled", self.ceis_cancelled, stats.ceis_cancelled);
        check(
            "capture-latency histogram mass",
            self.capture_latency.count,
            stats.eis_captured,
        );
        check(
            "probe-fanout histogram mass",
            self.probe_fanout.count,
            stats.probes_used,
        );
        if self.retry_attempts.count != self.probes_retried {
            errs.push(format!(
                "retry-attempts histogram mass: {} != retries {}",
                self.retry_attempts.count, self.probes_retried
            ));
        }
        errs
    }
}

/// Aggregates the event stream of one engine run into a [`RunMetrics`].
///
/// Lock-free by construction: the engine drives one observer per run on the
/// running thread, so aggregation is plain counter arithmetic. Cross-run
/// aggregation happens after the fact via [`RunMetrics::merge`].
#[derive(Debug, Clone, Default)]
pub struct MetricsObserver {
    metrics: RunMetrics,
    /// Start chronon of each currently-open outage, keyed by resource.
    /// Working state only — outages still open at epoch end never reach
    /// [`RunMetrics::outage_length`].
    down_since: std::collections::BTreeMap<u32, u64>,
}

impl MetricsObserver {
    /// A fresh observer with the standard bucket layout.
    pub fn new() -> Self {
        MetricsObserver {
            metrics: RunMetrics {
                runs: 1,
                ..RunMetrics::default()
            },
            down_since: std::collections::BTreeMap::new(),
        }
    }

    /// Consumes the observer, yielding the aggregated metrics.
    pub fn finish(self) -> RunMetrics {
        self.metrics
    }

    /// The metrics aggregated so far.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }
}

impl Observer for MetricsObserver {
    #[inline]
    fn on_event(&mut self, event: Event) {
        let m = &mut self.metrics;
        match event {
            Event::ChrononStart { budget, .. } => {
                m.chronons += 1;
                m.budget_available += u64::from(budget);
            }
            Event::CandidateSet {
                size, heap_pops, ..
            } => {
                m.candidate_set.observe(u64::from(size));
                m.selection_steps += u64::from(heap_pops);
            }
            Event::ProbeIssued {
                cost, shared_eis, ..
            } => {
                m.probes_issued += 1;
                m.budget_spent += u64::from(cost);
                m.probe_fanout.observe(u64::from(shared_eis));
            }
            Event::EiCaptured { latency, .. } => {
                m.eis_captured += 1;
                m.capture_latency.observe(u64::from(latency));
            }
            Event::CeiCompleted { .. } => m.ceis_completed += 1,
            Event::CeiExpired { .. } => m.ceis_expired += 1,
            Event::BudgetExhausted { deferred, .. } => {
                m.exhausted_chronons += 1;
                m.deferred_candidates += u64::from(deferred);
            }
            Event::ChrononEnd { spent, budget, .. } => {
                if budget > 0 {
                    m.budget_utilization
                        .observe(u64::from(spent) * 100 / u64::from(budget));
                }
            }
            Event::ProbeFailed { cost, charged, .. } => {
                m.probes_failed += 1;
                if charged {
                    m.budget_lost += u64::from(cost);
                }
            }
            Event::ProbeRetried { attempt, .. } => {
                m.probes_retried += 1;
                m.retry_attempts.observe(u64::from(attempt));
            }
            Event::ResourceDown { t, resource, .. } => {
                // Repeated Downs extend an open outage's commitment; only
                // the opening transition counts as a new outage.
                self.down_since.entry(resource.0).or_insert_with(|| {
                    m.resource_outages += 1;
                    u64::from(t)
                });
            }
            Event::ResourceUp { t, resource } => {
                if let Some(start) = self.down_since.remove(&resource.0) {
                    m.outage_length.observe(u64::from(t).saturating_sub(start));
                }
            }
            Event::CeiShed { .. } => m.ceis_shed += 1,
            Event::CeiRegistered { .. } => m.ceis_registered += 1,
            Event::CeiCancelled { .. } => m.ceis_cancelled += 1,
            Event::BudgetReconfigured { .. } => m.budget_reconfigurations += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ResourceId;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::with_bounds(vec![0, 1, 4]);
        for v in [0, 1, 1, 3, 4, 100] {
            h.observe(v);
        }
        assert_eq!(h.counts, vec![1, 2, 2, 1]);
        assert_eq!(h.count, 6);
        assert_eq!(h.max, 100);
        assert_eq!(h.mean(), Some(109.0 / 6.0));
        let rows = h.rows();
        assert_eq!(rows[0], ("≤0".to_string(), 1));
        assert_eq!(rows[3], (">4".to_string(), 1));
    }

    #[test]
    fn histogram_merge_is_exact() {
        let mut a = Histogram::pow2(8);
        let mut b = Histogram::pow2(8);
        a.observe(3);
        b.observe(9);
        b.observe(0);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 12);
        assert_eq!(a.max, 9);
    }

    #[test]
    #[should_panic(expected = "bounds differ")]
    fn histogram_merge_rejects_mismatched_bounds() {
        Histogram::pow2(8).merge(&Histogram::pow2(16));
    }

    #[test]
    fn pow2_bounds_ascend_to_cap() {
        assert_eq!(Histogram::pow2(8).bounds, vec![0, 1, 2, 4, 8]);
        assert_eq!(Histogram::percent().bounds.len(), 11);
    }

    #[test]
    fn observer_aggregates_an_event_stream() {
        let mut o = MetricsObserver::new();
        o.on_event(Event::ChrononStart { t: 0, budget: 2 });
        o.on_event(Event::CandidateSet {
            t: 0,
            size: 3,
            heap_pops: 4,
        });
        o.on_event(Event::ProbeIssued {
            t: 0,
            resource: ResourceId(1),
            cost: 1,
            shared_eis: 2,
        });
        o.on_event(Event::EiCaptured {
            t: 0,
            cei: crate::model::CeiId(0),
            latency: 0,
        });
        o.on_event(Event::EiCaptured {
            t: 0,
            cei: crate::model::CeiId(1),
            latency: 3,
        });
        o.on_event(Event::CeiCompleted {
            cei: crate::model::CeiId(0),
            at: 0,
        });
        o.on_event(Event::BudgetExhausted { t: 0, deferred: 1 });
        o.on_event(Event::ChrononEnd {
            t: 0,
            spent: 1,
            budget: 2,
        });
        let m = o.finish();
        assert_eq!(m.runs, 1);
        assert_eq!(m.chronons, 1);
        assert_eq!(m.probes_issued, 1);
        assert_eq!(m.eis_captured, 2);
        assert_eq!(m.ceis_completed, 1);
        assert_eq!(m.exhausted_chronons, 1);
        assert_eq!(m.deferred_candidates, 1);
        assert_eq!(m.selection_steps, 4);
        assert_eq!(m.capture_latency.count, 2);
        assert_eq!(m.capture_latency.sum, 3);
        assert_eq!(m.probe_fanout.sum, 2);
        assert_eq!(m.budget_utilization.count, 1);
        // spent 1 of 2 → 50%.
        assert_eq!(m.budget_utilization.sum, 50);
    }

    #[test]
    fn zero_budget_chronons_are_not_sampled() {
        let mut o = MetricsObserver::new();
        o.on_event(Event::ChrononEnd {
            t: 0,
            spent: 0,
            budget: 0,
        });
        assert_eq!(o.finish().budget_utilization.count, 0);
    }

    #[test]
    fn merge_is_order_insensitive_on_totals() {
        let mut a = RunMetrics {
            runs: 1,
            probes_issued: 3,
            ..RunMetrics::default()
        };
        let b = RunMetrics {
            runs: 1,
            probes_issued: 5,
            ..RunMetrics::default()
        };
        a.merge(&b);
        assert_eq!(a.runs, 2);
        assert_eq!(a.probes_issued, 8);
        let total = RunMetrics::merged([&a, &b]);
        assert_eq!(total.probes_issued, 13);
        assert_eq!(total.runs, 3);
    }

    #[test]
    fn consistency_flags_mismatches() {
        let metrics = RunMetrics {
            probes_issued: 2,
            ..RunMetrics::default()
        };
        let stats = RunStats {
            probes_used: 3,
            ..RunStats::default()
        };
        let errs = metrics.consistency_errors(&stats);
        assert!(errs.iter().any(|e| e.contains("probes")));
        assert!(RunMetrics::default()
            .consistency_errors(&RunStats::default())
            .is_empty());
    }

    #[test]
    fn metrics_serialize_round_trip() {
        let mut o = MetricsObserver::new();
        o.on_event(Event::ChrononStart { t: 0, budget: 1 });
        o.on_event(Event::ChrononEnd {
            t: 0,
            spent: 1,
            budget: 1,
        });
        let m = o.finish();
        let json = serde_json::to_string(&m).unwrap();
        let back: RunMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
