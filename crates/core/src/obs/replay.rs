//! Pure re-derivation of [`RunMetrics`] from a persisted JSONL trace.
//!
//! A [`JsonlTraceObserver`](super::JsonlTraceObserver) trace is a lossless
//! transcript of a run's event stream, so every in-run aggregate must be
//! recomputable from the bytes alone. [`replay_metrics`] parses a trace and
//! folds it through a fresh [`MetricsObserver`] — by construction the result
//! is the *same code path* the live observer ran, so a live-vs-replay
//! comparison checks the trace layer (serialization, ordering, completeness)
//! rather than re-deriving the aggregation twice.
//!
//! The differential harness asserts byte-for-byte equality of the serialized
//! metrics: `serde_json::to_string(&live) == serde_json::to_string(&replayed)`.

use super::{Event, MetricsObserver, Observer, RunMetrics};
use std::fmt;

/// A trace line that could not be replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    /// 1-based line number in the trace.
    pub line: usize,
    /// The parse error, verbatim.
    pub detail: String,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.detail)
    }
}

impl std::error::Error for ReplayError {}

/// Parses a JSONL trace back into its typed [`Event`] sequence.
///
/// Blank lines are skipped (a flushed-but-unterminated final line is not);
/// any malformed line aborts the replay with its line number.
pub fn replay_events(trace: &str) -> Result<Vec<Event>, ReplayError> {
    let mut events = Vec::new();
    for (i, line) in trace.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let event: Event = serde_json::from_str(line).map_err(|e| ReplayError {
            line: i + 1,
            detail: e.to_string(),
        })?;
        events.push(event);
    }
    Ok(events)
}

/// Re-derives [`RunMetrics`] from a persisted JSONL trace by folding the
/// parsed events through a fresh [`MetricsObserver`] — for a faithful trace
/// the result equals the live observer's metrics exactly (including the
/// histogram buckets and `runs == 1`).
pub fn replay_metrics(trace: &str) -> Result<RunMetrics, ReplayError> {
    let mut observer = MetricsObserver::new();
    for event in replay_events(trace)? {
        observer.on_event(event);
    }
    Ok(observer.finish())
}

#[cfg(test)]
mod tests {
    use super::super::JsonlTraceObserver;
    use super::*;
    use crate::engine::{EngineConfig, OnlineEngine};
    use crate::model::{Budget, InstanceBuilder};
    use crate::obs::Tee;
    use crate::policy::Mrsf;

    fn traced_run() -> (String, RunMetrics) {
        let mut b = InstanceBuilder::new(3, 12, Budget::Uniform(1));
        let p = b.profile();
        b.cei(p, &[(0, 0, 3), (1, 2, 5)]);
        b.cei_threshold(p, 1, &[(1, 4, 8), (2, 4, 9)]);
        b.cei(p, &[(2, 10, 10)]);
        let instance = b.build();
        let mut tee = Tee(MetricsObserver::new(), JsonlTraceObserver::new(Vec::new()));
        OnlineEngine::run_observed(&instance, &Mrsf, EngineConfig::preemptive(), &mut tee);
        let Tee(metrics, trace) = tee;
        let bytes = trace.finish().expect("Vec<u8> sink cannot fail");
        (String::from_utf8(bytes).unwrap(), metrics.finish())
    }

    #[test]
    fn replay_reproduces_live_metrics_exactly() {
        let (trace, live) = traced_run();
        let replayed = replay_metrics(&trace).unwrap();
        assert_eq!(live, replayed);
        // Byte-for-byte: the serialized forms are identical too.
        assert_eq!(
            serde_json::to_string(&live).unwrap(),
            serde_json::to_string(&replayed).unwrap()
        );
    }

    #[test]
    fn replay_round_trips_every_event_kind() {
        let (trace, _) = traced_run();
        let events = replay_events(&trace).unwrap();
        assert_eq!(
            events.len(),
            trace.lines().filter(|l| !l.is_empty()).count()
        );
        // Re-serializing the parsed events reproduces the trace bytes.
        let mut out = String::new();
        for e in &events {
            out.push_str(&serde_json::to_string(e).unwrap());
            out.push('\n');
        }
        assert_eq!(out, trace);
    }

    #[test]
    fn malformed_line_reports_its_position() {
        let (trace, _) = traced_run();
        let mut lines: Vec<&str> = trace.lines().collect();
        lines.insert(2, "{\"NotAnEvent\":{}}");
        let bad = lines.join("\n");
        let err = replay_metrics(&bad).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("trace line 3"), "{err}");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let (trace, live) = traced_run();
        let padded = format!("\n{trace}\n\n");
        assert_eq!(replay_metrics(&padded).unwrap(), live);
    }
}
