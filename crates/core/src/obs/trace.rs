//! Streaming event traces: one JSON object per line (JSONL), suitable for
//! offline analysis with any line-oriented tooling.

use super::{Event, Observer};
use std::io::Write;

/// Streams every event as one externally-tagged JSON line to a writer —
/// e.g. `{"ProbeIssued":{"t":4,"resource":17,"cost":1,"shared_eis":2}}`.
///
/// The observer buffers through whatever `W` provides (wrap files in a
/// [`std::io::BufWriter`]); call [`finish`](Self::finish) to flush and
/// recover the writer. Write errors are counted, not propagated — the
/// engine hot loop has no error channel, and a best-effort trace must
/// never abort a run.
#[derive(Debug)]
pub struct JsonlTraceObserver<W: Write> {
    writer: W,
    events_written: u64,
    write_errors: u64,
}

impl<W: Write> JsonlTraceObserver<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonlTraceObserver {
            writer,
            events_written: 0,
            write_errors: 0,
        }
    }

    /// Events successfully written so far.
    pub fn events_written(&self) -> u64 {
        self.events_written
    }

    /// Write attempts that failed (the trace is best-effort).
    pub fn write_errors(&self) -> u64 {
        self.write_errors
    }

    /// Flushes and returns the writer.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> Observer for JsonlTraceObserver<W> {
    fn on_event(&mut self, event: Event) {
        match serde_json::to_string(&event) {
            Ok(line) => match writeln!(self.writer, "{line}") {
                Ok(()) => self.events_written += 1,
                Err(_) => self.write_errors += 1,
            },
            Err(_) => self.write_errors += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CeiId, ResourceId};

    #[test]
    fn events_stream_as_one_json_line_each() {
        let mut obs = JsonlTraceObserver::new(Vec::new());
        obs.on_event(Event::ChrononStart { t: 0, budget: 2 });
        obs.on_event(Event::ProbeIssued {
            t: 0,
            resource: ResourceId(3),
            cost: 1,
            shared_eis: 2,
        });
        obs.on_event(Event::CeiCompleted {
            cei: CeiId(7),
            at: 0,
        });
        assert_eq!(obs.events_written(), 3);
        assert_eq!(obs.write_errors(), 0);
        let out = String::from_utf8(obs.finish().unwrap()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("ChrononStart"));
        assert!(lines[1].contains("ProbeIssued"));
        assert!(lines[1].contains("\"shared_eis\""));
        // Every line parses back as JSON.
        for line in lines {
            let _: serde_json::Value = serde_json::from_str(line).unwrap();
        }
    }

    #[test]
    fn write_errors_are_counted_not_fatal() {
        /// A writer that always fails.
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("broken"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut obs = JsonlTraceObserver::new(Broken);
        obs.on_event(Event::ChrononStart { t: 0, budget: 1 });
        assert_eq!(obs.events_written(), 0);
        assert_eq!(obs.write_errors(), 1);
    }
}
