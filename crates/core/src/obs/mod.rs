//! Structured engine observability: typed events emitted from inside the
//! online run loop, an [`Observer`] trait to receive them, and two shipped
//! observers — [`MetricsObserver`] (in-run aggregation into a serializable
//! [`RunMetrics`]) and [`JsonlTraceObserver`] (streaming JSONL for offline
//! analysis).
//!
//! ## Zero cost when disabled
//!
//! [`OnlineEngine::run_observed`](crate::engine::OnlineEngine::run_observed)
//! is generic over `O: Observer`, so the observer is monomorphized into the
//! hot loop. The default [`NoopObserver`] has an empty `on_event` and
//! reports `enabled() == false`; the compiler eliminates both the event
//! construction and the `enabled()`-guarded accounting, leaving the plain
//! engine loop byte-for-byte equivalent to the pre-observability code path.
//! Anything more expensive than assembling an event from already-computed
//! scalars (e.g. counting deferred candidates for
//! [`Event::BudgetExhausted`]) must sit behind an `if observer.enabled()`
//! guard inside the engine.
//!
//! ## Event vocabulary
//!
//! One run emits, per chronon `t` of the epoch, in this order:
//!
//! 1. [`Event::ChrononStart`] — the chronon opens with its probe budget;
//! 2. under mutation only: the chronon's drained
//!    [`MutationQueue`](crate::engine::MutationQueue) entries, in queue
//!    order — [`Event::CeiRegistered`] / [`Event::CeiCancelled`] /
//!    [`Event::BudgetReconfigured`]; a registration whose already-closed
//!    windows doom the CEI on arrival is followed immediately by its
//!    [`Event::CeiExpired`];
//! 3. under fault injection only: [`Event::ResourceDown`] /
//!    [`Event::ResourceUp`] transitions, in resource order — a `Down` is
//!    (re-)emitted whenever a resource's committed outage horizon starts
//!    or extends;
//! 4. per probe attempt: an optional [`Event::ProbeRetried`] (the attempt
//!    targets a resource with consecutive failures), then either one
//!    [`Event::ProbeIssued`] (with the probe's cost and its intra-resource
//!    sharing fan-out), followed by that probe's [`Event::EiCaptured`]s
//!    (one per captured EI, with its capture latency) and
//!    [`Event::CeiCompleted`]s (CEIs that crossed their threshold) — or
//!    one [`Event::ProbeFailed`] (the fault model rejected the probe;
//!    failed probes never capture);
//! 5. one [`Event::CandidateSet`] — the live candidate-EI pool the
//!    chronon's `probeEIs` competed over, plus how many selection steps
//!    (heap pops or full scans) it performed;
//! 6. at most one [`Event::BudgetExhausted`] — live candidates were left
//!    unserved when the budget ran out (or nothing affordable remained);
//! 7. zero or more [`Event::CeiExpired`] — CEIs doomed by this chronon's
//!    window expiries — then zero or more [`Event::CeiShed`] — CEIs the
//!    engine degraded gracefully because their remaining windows lie
//!    entirely within committed outages;
//! 8. [`Event::ChrononEnd`] — budget units actually spent (including
//!    budget charged to failed probes).
//!
//! The stream is **deterministic**: the engine is a pure function of
//! `(instance, policy, config, mutations)`, so the exact event sequence —
//! not just its aggregates — is reproducible, worker count and repetition
//! order notwithstanding.

mod metrics;
mod replay;
mod trace;

pub use metrics::{Histogram, MetricsObserver, RunMetrics};
pub use replay::{replay_events, replay_metrics, ReplayError};
pub use trace::JsonlTraceObserver;

use crate::model::{CeiId, Chronon, ResourceId};
use serde::{Deserialize, Serialize};

/// One typed event from inside [`OnlineEngine`](crate::engine::OnlineEngine).
///
/// Events are small `Copy` records of already-computed scalars; constructing
/// one costs a handful of register moves, and under [`NoopObserver`] the
/// construction is eliminated entirely. `Deserialize` makes a persisted
/// [`JsonlTraceObserver`] trace a lossless transcript: [`replay_metrics`]
/// re-derives [`RunMetrics`] from the bytes alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// A chronon opened with the given probe budget.
    ChrononStart {
        /// The chronon.
        t: Chronon,
        /// Budget units available this chronon (`C_j`).
        budget: u32,
    },
    /// The live candidate pool at selection time, after compaction.
    CandidateSet {
        /// The chronon.
        t: Chronon,
        /// Live candidate EIs competing for this chronon's budget.
        size: u32,
        /// Selection steps performed: lazy-heap pops under
        /// [`SelectionStrategy::LazyHeap`](crate::engine::SelectionStrategy),
        /// full-pool argmin scans under `Scan`.
        heap_pops: u32,
    },
    /// The engine probed a resource.
    ProbeIssued {
        /// The chronon.
        t: Chronon,
        /// The probed resource.
        resource: ResourceId,
        /// Budget units the probe cost.
        cost: u32,
        /// Intra-resource sharing fan-out: EIs this one probe captured
        /// (1 with sharing disabled; ≥ 1 with sharing on; 0 only when a
        /// duplicate unshared probe hit an already-captured resource).
        shared_eis: u32,
    },
    /// An EI was captured by a probe.
    EiCaptured {
        /// The chronon of the capturing probe.
        t: Chronon,
        /// The parent CEI.
        cei: CeiId,
        /// Chronons from the EI's window opening to its capture.
        latency: u32,
    },
    /// A CEI crossed its `required` threshold and completed.
    CeiCompleted {
        /// The completed CEI.
        cei: CeiId,
        /// The chronon of the completing probe.
        at: Chronon,
    },
    /// A CEI became doomed — fewer than `required` EIs remain capturable.
    CeiExpired {
        /// The failed CEI.
        cei: CeiId,
        /// The chronon of the dooming expiry.
        at: Chronon,
    },
    /// The chronon's budget ran out (or nothing affordable remained) while
    /// live candidates were still waiting.
    BudgetExhausted {
        /// The chronon.
        t: Chronon,
        /// Live candidate EIs left unserved on unprobed resources.
        deferred: u32,
    },
    /// The chronon closed.
    ChrononEnd {
        /// The chronon.
        t: Chronon,
        /// Budget units actually spent.
        spent: u32,
        /// Budget units that were available (`C_j`).
        budget: u32,
    },
    /// A probe attempt was rejected by the fault model. Failed probes never
    /// capture and are not recorded in the schedule.
    ProbeFailed {
        /// The chronon.
        t: Chronon,
        /// The resource whose probe failed.
        resource: ResourceId,
        /// Budget units the attempt would have cost.
        cost: u32,
        /// Consecutive failures on this resource before this attempt
        /// (0 for a fresh probe).
        attempt: u32,
        /// Whether the attempt's cost was charged against the chronon
        /// budget ([`FaultConfig::failures_cost`](crate::fault::FaultConfig)).
        charged: bool,
    },
    /// A probe attempt targets a resource with consecutive failures —
    /// emitted immediately before that attempt's [`Event::ProbeIssued`] or
    /// [`Event::ProbeFailed`].
    ProbeRetried {
        /// The chronon.
        t: Chronon,
        /// The retried resource.
        resource: ResourceId,
        /// Consecutive failures before this attempt (≥ 1).
        attempt: u32,
    },
    /// A resource became unavailable, or an ongoing outage extended its
    /// committed horizon.
    ResourceDown {
        /// The chronon.
        t: Chronon,
        /// The unavailable resource.
        resource: ResourceId,
        /// Inclusive horizon of the committed outage: no probe of this
        /// resource can succeed at any chronon in `t..=until`.
        until: Chronon,
    },
    /// A previously-down resource recovered.
    ResourceUp {
        /// The chronon.
        t: Chronon,
        /// The recovered resource.
        resource: ResourceId,
    },
    /// The engine shed a CEI: its remaining uncaptured windows lie entirely
    /// within committed outages, so AND/threshold semantics can no longer
    /// be satisfied and spending probes on it would be wasted.
    CeiShed {
        /// The shed CEI.
        cei: CeiId,
        /// The chronon of the shed decision.
        at: Chronon,
    },
    /// A CEI was registered mid-run: its release chronon is the drain
    /// chronon (`release = now`), and its still-open windows joined the
    /// candidate pool.
    CeiRegistered {
        /// The registered CEI.
        cei: CeiId,
        /// The chronon of the registration (the CEI's effective release).
        at: Chronon,
    },
    /// A live (or not-yet-released) CEI was cancelled mid-run: its windows
    /// left the candidate pool and it resolves as
    /// [`CeiOutcome::Cancelled`](crate::stats::CeiOutcome).
    CeiCancelled {
        /// The cancelled CEI.
        cei: CeiId,
        /// The chronon of the cancellation.
        at: Chronon,
    },
    /// The probe budget was reconfigured mid-run. The new per-chronon
    /// budget takes effect exactly at chronon `t + 1`; the current
    /// chronon's [`Event::ChrononStart`] / [`Event::ChrononEnd`] still
    /// carry the old budget.
    BudgetReconfigured {
        /// The chronon at which the reconfiguration was drained.
        t: Chronon,
        /// The new per-chronon budget, effective from `t + 1`.
        budget: u32,
    },
}

impl Event {
    /// The event's variant name as it appears in JSONL output — the
    /// externally-tagged key, e.g. `"ProbeIssued"`.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::ChrononStart { .. } => "ChrononStart",
            Event::CandidateSet { .. } => "CandidateSet",
            Event::ProbeIssued { .. } => "ProbeIssued",
            Event::EiCaptured { .. } => "EiCaptured",
            Event::CeiCompleted { .. } => "CeiCompleted",
            Event::CeiExpired { .. } => "CeiExpired",
            Event::BudgetExhausted { .. } => "BudgetExhausted",
            Event::ChrononEnd { .. } => "ChrononEnd",
            Event::ProbeFailed { .. } => "ProbeFailed",
            Event::ProbeRetried { .. } => "ProbeRetried",
            Event::ResourceDown { .. } => "ResourceDown",
            Event::ResourceUp { .. } => "ResourceUp",
            Event::CeiShed { .. } => "CeiShed",
            Event::CeiRegistered { .. } => "CeiRegistered",
            Event::CeiCancelled { .. } => "CeiCancelled",
            Event::BudgetReconfigured { .. } => "BudgetReconfigured",
        }
    }
}

/// Receives the engine's typed event stream.
///
/// Observers are driven synchronously from inside the run loop, in event
/// order, on the thread running the engine — one observer per run, so
/// implementations need no interior locking (the shipped
/// [`MetricsObserver`] aggregates into plain counters).
pub trait Observer {
    /// Handles one event.
    fn on_event(&mut self, event: Event);

    /// Whether this observer wants events at all. The engine skips
    /// *expensive* event preparation (anything beyond assembling already-
    /// computed scalars) when this returns `false`. The default is `true`;
    /// only [`NoopObserver`] returns `false`.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }
}

/// The default observer: ignores every event. Monomorphized away — an
/// engine run with `NoopObserver` compiles to the same hot loop as one with
/// no observability at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    #[inline(always)]
    fn on_event(&mut self, _event: Event) {}

    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}

/// Forwarding impl so call sites can pass `&mut observer` without giving up
/// ownership.
impl<O: Observer + ?Sized> Observer for &mut O {
    #[inline]
    fn on_event(&mut self, event: Event) {
        (**self).on_event(event);
    }

    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
}

/// Fans one event stream out to two observers — compose as
/// `Tee(a, Tee(b, c))` for more.
#[derive(Debug, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: Observer, B: Observer> Observer for Tee<A, B> {
    #[inline]
    fn on_event(&mut self, event: Event) {
        self.0.on_event(event);
        self.1.on_event(event);
    }

    #[inline]
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An observer that records every event, for assertions.
    #[derive(Default)]
    pub(crate) struct Recorder(pub Vec<Event>);

    impl Observer for Recorder {
        fn on_event(&mut self, event: Event) {
            self.0.push(event);
        }
    }

    #[test]
    fn noop_is_disabled_and_silent() {
        let mut o = NoopObserver;
        assert!(!o.enabled());
        o.on_event(Event::ChrononStart { t: 0, budget: 1 });
    }

    #[test]
    fn tee_forwards_to_both() {
        let mut tee = Tee(Recorder::default(), Recorder::default());
        assert!(tee.enabled());
        tee.on_event(Event::ChrononEnd {
            t: 3,
            spent: 1,
            budget: 2,
        });
        assert_eq!(tee.0 .0.len(), 1);
        assert_eq!(tee.1 .0.len(), 1);
    }

    #[test]
    fn tee_with_noop_stays_enabled() {
        let tee = Tee(NoopObserver, Recorder::default());
        assert!(tee.enabled());
        assert!(!Tee(NoopObserver, NoopObserver).enabled());
    }

    #[test]
    fn kind_names_match_variants() {
        assert_eq!(
            Event::ChrononStart { t: 0, budget: 0 }.kind(),
            "ChrononStart"
        );
        assert_eq!(
            Event::ProbeIssued {
                t: 0,
                resource: ResourceId(0),
                cost: 1,
                shared_eis: 1
            }
            .kind(),
            "ProbeIssued"
        );
        assert_eq!(
            Event::CeiExpired {
                cei: CeiId(0),
                at: 0
            }
            .kind(),
            "CeiExpired"
        );
    }
}
