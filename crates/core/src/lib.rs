#![warn(missing_docs)]

//! # webmon-core
//!
//! A from-scratch Rust implementation of the monitoring model, online
//! scheduling policies, and offline baselines of
//! *Web Monitoring 2.0: Crossing Streams to Satisfy Complex Data Needs*
//! (Roitman, Gal, Raschid — ICDE 2009).
//!
//! ## The problem
//!
//! A proxy monitors `n` pull-only Web resources over an epoch of `K`
//! *chronons* (indivisible time units) on behalf of many clients. Each client
//! registers a [`model::Profile`]: a set of *complex execution
//! intervals* ([`model::Cei`]). A CEI crosses several streams: it is a
//! bag of simple *execution intervals* ([`model::Ei`]), each a time
//! window on one resource during which that resource must be probed at least
//! once. A CEI is **captured** only when *all* of its EIs are captured (AND
//! semantics). At every chronon the proxy may probe at most `C_j` resources
//! (the [`model::Budget`]); the goal is to maximize *gained
//! completeness* — the fraction of CEIs captured (Problem 1, Eq. 1).
//!
//! ## What this crate provides
//!
//! * [`model`] — chronons, resources, EIs, CEIs, profiles, budgets,
//!   schedules, and the capture / completeness arithmetic of Section III.
//! * [`policy`] — the three heuristic levels of Section IV-A:
//!   individual-EI level ([`policy::SEdf`], [`policy::Wic`]), rank level
//!   ([`policy::Mrsf`]), and multi-EI level ([`policy::MEdf`]), plus
//!   [`policy::RandomPolicy`] / [`policy::RoundRobin`] controls.
//! * [`engine`] — Algorithm 1 (online complex monitoring) with preemptive
//!   and non-preemptive execution, intra-resource probe sharing, candidate
//!   expiry, and per-run statistics.
//! * [`offline`] — the offline baselines of Section IV-B: exact optimum by
//!   bounded enumeration (Prop. 4), the `P → P^[1]` transformation
//!   (Prop. 5), and the Local-Ratio t-interval approximation (\[11\]).
//! * [`diagnostics`] — post-hoc schedule analysis: probe load, capture
//!   latency, and textual timelines.
//! * [`obs`] — live engine observability: typed events emitted from inside
//!   the run loop, zero-cost when disabled, with shipped metrics and JSONL
//!   trace observers.
//! * [`check`] — the conformance harness's invariant checker: an observer
//!   that mirrors the engine from its event stream alone and reports any
//!   divergence from the model's invariants as structured violations.
//! * [`fault`] — seeded, deterministic fault injection: i.i.d. probe
//!   failures, Gilbert–Elliott bursty outages, and rate-limit windows,
//!   threaded through [`engine::OnlineEngine::run_faulted`] with retry /
//!   backoff handling and graceful shedding of provably-doomed CEIs.
//! * [`serve`] — serving-mode adapters: clocks mapping chronons onto wall
//!   (or test-controlled) time, pluggable probe executors (live TCP and
//!   deterministic replay), and the chronon driver binding both to the
//!   engine loop — the daemon runs the exact simulator engine.
//!
//! ## Quick start
//!
//! ```
//! use webmon_core::model::{Budget, InstanceBuilder};
//! use webmon_core::engine::{EngineConfig, OnlineEngine};
//! use webmon_core::policy::MEdf;
//!
//! // Two resources, a 10-chronon epoch, budget of one probe per chronon.
//! let mut b = InstanceBuilder::new(2, 10, Budget::Uniform(1));
//! let p = b.profile();
//! // A rank-2 CEI crossing both resources on overlapping windows.
//! b.cei(p, &[(0, 1, 4), (1, 2, 6)]);
//! let instance = b.build();
//!
//! let result = OnlineEngine::run(&instance, &MEdf, EngineConfig::preemptive());
//! assert_eq!(result.stats.ceis_captured, 1);
//! assert!((result.stats.completeness() - 1.0).abs() < 1e-9);
//! ```

pub mod check;
pub mod diagnostics;
pub mod engine;
pub mod fault;
pub mod model;
pub mod obs;
pub mod offline;
pub mod parallel;
pub mod policy;
pub mod serve;
pub mod stats;

pub use check::{InvariantObserver, InvariantReport, Violation};
pub use engine::{EngineConfig, OnlineEngine, RunResult, SelectionStrategy};
pub use fault::{Backoff, FaultConfig, FaultModel, GilbertElliott, IidFaults, NoFaults, RateLimit};
pub use model::{
    Budget, Cei, CeiId, Chronon, Ei, Instance, InstanceBuilder, Profile, ProfileId, ResourceId,
    Schedule,
};
pub use obs::{Event, JsonlTraceObserver, MetricsObserver, NoopObserver, Observer, RunMetrics};
pub use policy::{MEdf, Mrsf, Policy, SEdf, Wic};
pub use stats::RunStats;
