//! Schedule diagnostics: the observability a proxy operator needs to
//! understand *why* a run scored the way it did — per-resource probe load,
//! capture latency, and a textual timeline for small instances.

use crate::model::{Instance, ResourceId, Schedule};
use serde::Serialize;

/// Aggregated diagnostics of one schedule against its instance.
#[derive(Debug, Clone, Serialize)]
pub struct ScheduleDiagnostics {
    /// Probes issued per resource, indexed by resource id.
    pub probes_per_resource: Vec<u32>,
    /// Capture latency (chronons from window open to the first in-window
    /// probe) of every captured EI.
    pub capture_latencies: Vec<u32>,
    /// EIs whose window passed with no in-window probe.
    pub missed_eis: usize,
    /// Probes that captured no EI at all (possible when evaluating a
    /// schedule against a different instance, e.g. predictions vs truth).
    pub wasted_probes: usize,
}

impl ScheduleDiagnostics {
    /// Computes diagnostics for `schedule` against `instance`.
    pub fn compute(instance: &Instance, schedule: &Schedule) -> Self {
        let mut probes_per_resource = vec![0u32; instance.n_resources as usize];
        for (_, r) in schedule.iter() {
            probes_per_resource[r.index()] += 1;
        }

        let mut capture_latencies = Vec::new();
        let mut missed_eis = 0usize;
        // Mark which probes served at least one EI.
        let mut probe_used: std::collections::HashSet<(u32, ResourceId)> =
            std::collections::HashSet::new();

        for cei in &instance.ceis {
            for &ei in &cei.eis {
                let mut first_hit = None;
                for t in ei.start..=ei.end {
                    if schedule.is_probed(ei.resource, t) {
                        probe_used.insert((t, ei.resource));
                        if first_hit.is_none() {
                            first_hit = Some(t);
                        }
                    }
                }
                match first_hit {
                    Some(t) => capture_latencies.push(t - ei.start),
                    None => missed_eis += 1,
                }
            }
        }

        let wasted_probes = schedule
            .iter()
            .filter(|&(t, r)| !probe_used.contains(&(t, r)))
            .count();

        ScheduleDiagnostics {
            probes_per_resource,
            capture_latencies,
            missed_eis,
            wasted_probes,
        }
    }

    /// Mean capture latency in chronons; `None` when nothing was captured.
    pub fn mean_latency(&self) -> Option<f64> {
        if self.capture_latencies.is_empty() {
            None
        } else {
            Some(
                self.capture_latencies
                    .iter()
                    .map(|&l| f64::from(l))
                    .sum::<f64>()
                    / self.capture_latencies.len() as f64,
            )
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of capture latency; `None` when nothing
    /// was captured.
    pub fn latency_quantile(&self, q: f64) -> Option<u32> {
        assert!((0.0..=1.0).contains(&q), "quantile must lie in [0, 1]");
        if self.capture_latencies.is_empty() {
            return None;
        }
        let mut sorted = self.capture_latencies.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        Some(sorted[idx])
    }

    /// The most-probed resource and its probe count; `None` on an empty
    /// schedule.
    pub fn hottest_resource(&self) -> Option<(ResourceId, u32)> {
        self.probes_per_resource
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (ResourceId(i as u32), c))
    }
}

/// Renders a textual timeline of a small instance and its schedule: one row
/// per resource, one column per chronon; `─` marks an open window, `●` a
/// probe that captured, `○` a probe in dead air. Intended for debugging and
/// teaching; refuses epochs wider than 200 chronons.
pub fn render_timeline(instance: &Instance, schedule: &Schedule) -> String {
    assert!(
        instance.epoch.len() <= 200,
        "timeline rendering is for small instances (≤ 200 chronons)"
    );
    let mut out = String::new();
    for r in 0..instance.n_resources {
        let rid = ResourceId(r);
        let mut row = format!("{rid:>5} ");
        for t in instance.epoch.chronons() {
            let window_open = instance
                .ceis
                .iter()
                .flat_map(|c| &c.eis)
                .any(|ei| ei.resource == rid && ei.is_active(t));
            let probed = schedule.is_probed(rid, t);
            row.push(match (probed, window_open) {
                (true, true) => '●',
                (true, false) => '○',
                (false, true) => '─',
                (false, false) => '·',
            });
        }
        out.push_str(&row);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, OnlineEngine};
    use crate::model::{ei_captured, Budget, InstanceBuilder};
    use crate::policy::SEdf;

    fn instance() -> Instance {
        let mut b = InstanceBuilder::new(2, 10, Budget::Uniform(1));
        let p = b.profile();
        b.cei(p, &[(0, 1, 4)]);
        b.cei(p, &[(1, 2, 6)]);
        b.cei(p, &[(0, 8, 9), (1, 8, 9)]); // contended: one must miss
        b.build()
    }

    #[test]
    fn diagnostics_account_for_every_ei() {
        let inst = instance();
        let run = OnlineEngine::run(&inst, &SEdf, EngineConfig::preemptive());
        let d = ScheduleDiagnostics::compute(&inst, &run.schedule);
        assert_eq!(d.capture_latencies.len() + d.missed_eis, inst.total_eis());
        // Every probe the engine issues serves a window.
        assert_eq!(d.wasted_probes, 0);
        assert_eq!(
            d.probes_per_resource
                .iter()
                .map(|&c| u64::from(c))
                .sum::<u64>(),
            run.stats.probes_used
        );
    }

    #[test]
    fn latency_statistics() {
        let inst = instance();
        let run = OnlineEngine::run(&inst, &SEdf, EngineConfig::preemptive());
        let d = ScheduleDiagnostics::compute(&inst, &run.schedule);
        // S-EDF probes at window open, except the contended pair at
        // chronon 8 where C = 1 forces one EI to wait a chronon:
        // latencies = [0, 0, 0, 1].
        assert_eq!(d.mean_latency(), Some(0.25));
        assert_eq!(d.latency_quantile(0.5), Some(0));
        assert_eq!(d.latency_quantile(1.0), Some(1));
    }

    #[test]
    fn wasted_probes_show_up_against_a_different_instance() {
        // A schedule built for one instance, evaluated against an empty one.
        let inst = instance();
        let run = OnlineEngine::run(&inst, &SEdf, EngineConfig::preemptive());
        let empty = InstanceBuilder::new(2, 10, Budget::Uniform(1)).build();
        let d = ScheduleDiagnostics::compute(&empty, &run.schedule);
        assert_eq!(d.wasted_probes as u64, run.stats.probes_used);
        assert!(d.capture_latencies.is_empty());
        assert_eq!(d.mean_latency(), None);
    }

    #[test]
    fn hottest_resource_is_the_most_probed() {
        let inst = instance();
        let run = OnlineEngine::run(&inst, &SEdf, EngineConfig::preemptive());
        let d = ScheduleDiagnostics::compute(&inst, &run.schedule);
        let (r, c) = d.hottest_resource().unwrap();
        assert_eq!(c, *d.probes_per_resource.iter().max().unwrap());
        assert_eq!(d.probes_per_resource[r.index()], c);
    }

    #[test]
    fn timeline_renders_rows_and_glyphs() {
        let inst = instance();
        let run = OnlineEngine::run(&inst, &SEdf, EngineConfig::preemptive());
        let tl = render_timeline(&inst, &run.schedule);
        assert_eq!(tl.lines().count(), 2);
        assert!(tl.contains('●'));
        assert!(tl.contains('─') || tl.contains('·'));
        assert!(!tl.contains('○'), "engine probes never miss windows");
    }

    #[test]
    #[should_panic(expected = "small instances")]
    fn timeline_refuses_wide_epochs() {
        let b = InstanceBuilder::new(1, 500, Budget::Uniform(1));
        let inst = b.build();
        let s = Schedule::new(1, inst.epoch);
        let _ = render_timeline(&inst, &s);
    }

    #[test]
    fn capture_agrees_with_indicator() {
        let inst = instance();
        let run = OnlineEngine::run(&inst, &SEdf, EngineConfig::preemptive());
        let d = ScheduleDiagnostics::compute(&inst, &run.schedule);
        let captured_eis = inst
            .ceis
            .iter()
            .flat_map(|c| &c.eis)
            .filter(|&&ei| ei_captured(ei, &run.schedule))
            .count();
        assert_eq!(captured_eis, d.capture_latencies.len());
    }
}
