//! Schedule diagnostics: the observability a proxy operator needs to
//! understand *why* a run scored the way it did — per-resource probe load,
//! capture latency, and a textual timeline for small instances.

use crate::model::{Instance, ResourceId, Schedule};
use serde::Serialize;

/// Aggregated diagnostics of one schedule against its instance.
#[derive(Debug, Clone, Serialize)]
pub struct ScheduleDiagnostics {
    /// Probes issued per resource, indexed by resource id.
    pub probes_per_resource: Vec<u32>,
    /// Capture latency (chronons from window open to the first in-window
    /// probe) of every captured EI.
    pub capture_latencies: Vec<u32>,
    /// EIs whose window passed with no in-window probe.
    pub missed_eis: usize,
    /// Probes that captured no EI at all (possible when evaluating a
    /// schedule against a different instance, e.g. predictions vs truth).
    pub wasted_probes: usize,
}

impl ScheduleDiagnostics {
    /// Computes diagnostics for `schedule` against `instance`.
    ///
    /// Runs in `O(probes + EIs · log)` via a per-resource probe-time index,
    /// so it stays usable at bench scale (the naive per-chronon
    /// `is_probed` scan is `O(EIs × window × log probes)`).
    pub fn compute(instance: &Instance, schedule: &Schedule) -> Self {
        let n = instance.n_resources as usize;
        let mut probes_per_resource = vec![0u32; n];
        // `Schedule::iter` is chronological, so each per-resource list of
        // probe times comes out sorted.
        let mut probe_times: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (t, r) in schedule.iter() {
            probes_per_resource[r.index()] += 1;
            probe_times[r.index()].push(t);
        }

        // An EI is captured by its first in-window probe: the first probe
        // time ≥ start, if it is ≤ end. Latencies push in CEI/EI order.
        let mut capture_latencies = Vec::new();
        let mut missed_eis = 0usize;
        for cei in &instance.ceis {
            for &ei in &cei.eis {
                let times = &probe_times[ei.resource.index()];
                let i = times.partition_point(|&t| t < ei.start);
                match times.get(i) {
                    Some(&t) if t <= ei.end => capture_latencies.push(t - ei.start),
                    _ => missed_eis += 1,
                }
            }
        }

        // A probe is wasted iff it falls inside no EI window on its
        // resource. Merge each resource's windows into disjoint sorted
        // intervals, then membership is one binary search per probe.
        let mut windows: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        for cei in &instance.ceis {
            for &ei in &cei.eis {
                windows[ei.resource.index()].push((ei.start, ei.end));
            }
        }
        let mut wasted_probes = 0usize;
        for (w, times) in windows.iter_mut().zip(&probe_times) {
            w.sort_unstable();
            let mut merged: Vec<(u32, u32)> = Vec::with_capacity(w.len());
            for &(s, e) in w.iter() {
                match merged.last_mut() {
                    Some(last) if s <= last.1 => last.1 = last.1.max(e),
                    _ => merged.push((s, e)),
                }
            }
            wasted_probes += times
                .iter()
                .filter(|&&t| {
                    let i = merged.partition_point(|&(s, _)| s <= t);
                    i == 0 || merged[i - 1].1 < t
                })
                .count();
        }

        ScheduleDiagnostics {
            probes_per_resource,
            capture_latencies,
            missed_eis,
            wasted_probes,
        }
    }

    /// Mean capture latency in chronons; `None` when nothing was captured.
    pub fn mean_latency(&self) -> Option<f64> {
        if self.capture_latencies.is_empty() {
            None
        } else {
            Some(
                self.capture_latencies
                    .iter()
                    .map(|&l| f64::from(l))
                    .sum::<f64>()
                    / self.capture_latencies.len() as f64,
            )
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of capture latency; `None` when nothing
    /// was captured.
    pub fn latency_quantile(&self, q: f64) -> Option<u32> {
        assert!((0.0..=1.0).contains(&q), "quantile must lie in [0, 1]");
        if self.capture_latencies.is_empty() {
            return None;
        }
        let mut sorted = self.capture_latencies.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        Some(sorted[idx])
    }

    /// The most-probed resource and its probe count; `None` on an empty
    /// schedule.
    pub fn hottest_resource(&self) -> Option<(ResourceId, u32)> {
        self.probes_per_resource
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (ResourceId(i as u32), c))
    }
}

/// Renders a textual timeline of a small instance and its schedule: one row
/// per resource, one column per chronon; `─` marks an open window, `●` a
/// probe that captured, `○` a probe in dead air. Intended for debugging and
/// teaching; refuses epochs wider than 200 chronons.
pub fn render_timeline(instance: &Instance, schedule: &Schedule) -> String {
    assert!(
        instance.epoch.len() <= 200,
        "timeline rendering is for small instances (≤ 200 chronons)"
    );
    let mut out = String::new();
    for r in 0..instance.n_resources {
        let rid = ResourceId(r);
        let mut row = format!("{rid:>5} ");
        for t in instance.epoch.chronons() {
            let window_open = instance
                .ceis
                .iter()
                .flat_map(|c| &c.eis)
                .any(|ei| ei.resource == rid && ei.is_active(t));
            let probed = schedule.is_probed(rid, t);
            row.push(match (probed, window_open) {
                (true, true) => '●',
                (true, false) => '○',
                (false, true) => '─',
                (false, false) => '·',
            });
        }
        out.push_str(&row);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, OnlineEngine};
    use crate::model::{ei_captured, Budget, InstanceBuilder};
    use crate::policy::SEdf;

    fn instance() -> Instance {
        let mut b = InstanceBuilder::new(2, 10, Budget::Uniform(1));
        let p = b.profile();
        b.cei(p, &[(0, 1, 4)]);
        b.cei(p, &[(1, 2, 6)]);
        b.cei(p, &[(0, 8, 9), (1, 8, 9)]); // contended: one must miss
        b.build()
    }

    #[test]
    fn diagnostics_account_for_every_ei() {
        let inst = instance();
        let run = OnlineEngine::run(&inst, &SEdf, EngineConfig::preemptive());
        let d = ScheduleDiagnostics::compute(&inst, &run.schedule);
        assert_eq!(d.capture_latencies.len() + d.missed_eis, inst.total_eis());
        // Every probe the engine issues serves a window.
        assert_eq!(d.wasted_probes, 0);
        assert_eq!(
            d.probes_per_resource
                .iter()
                .map(|&c| u64::from(c))
                .sum::<u64>(),
            run.stats.probes_used
        );
    }

    #[test]
    fn latency_statistics() {
        let inst = instance();
        let run = OnlineEngine::run(&inst, &SEdf, EngineConfig::preemptive());
        let d = ScheduleDiagnostics::compute(&inst, &run.schedule);
        // S-EDF probes at window open, except the contended pair at
        // chronon 8 where C = 1 forces one EI to wait a chronon:
        // latencies = [0, 0, 0, 1].
        assert_eq!(d.mean_latency(), Some(0.25));
        assert_eq!(d.latency_quantile(0.5), Some(0));
        assert_eq!(d.latency_quantile(1.0), Some(1));
    }

    #[test]
    fn wasted_probes_show_up_against_a_different_instance() {
        // A schedule built for one instance, evaluated against an empty one.
        let inst = instance();
        let run = OnlineEngine::run(&inst, &SEdf, EngineConfig::preemptive());
        let empty = InstanceBuilder::new(2, 10, Budget::Uniform(1)).build();
        let d = ScheduleDiagnostics::compute(&empty, &run.schedule);
        assert_eq!(d.wasted_probes as u64, run.stats.probes_used);
        assert!(d.capture_latencies.is_empty());
        assert_eq!(d.mean_latency(), None);
    }

    #[test]
    fn hottest_resource_is_the_most_probed() {
        let inst = instance();
        let run = OnlineEngine::run(&inst, &SEdf, EngineConfig::preemptive());
        let d = ScheduleDiagnostics::compute(&inst, &run.schedule);
        let (r, c) = d.hottest_resource().unwrap();
        assert_eq!(c, *d.probes_per_resource.iter().max().unwrap());
        assert_eq!(d.probes_per_resource[r.index()], c);
    }

    #[test]
    fn timeline_renders_rows_and_glyphs() {
        let inst = instance();
        let run = OnlineEngine::run(&inst, &SEdf, EngineConfig::preemptive());
        let tl = render_timeline(&inst, &run.schedule);
        assert_eq!(tl.lines().count(), 2);
        assert!(tl.contains('●'));
        assert!(tl.contains('─') || tl.contains('·'));
        assert!(!tl.contains('○'), "engine probes never miss windows");
    }

    #[test]
    #[should_panic(expected = "small instances")]
    fn timeline_refuses_wide_epochs() {
        let b = InstanceBuilder::new(1, 500, Budget::Uniform(1));
        let inst = b.build();
        let s = Schedule::new(1, inst.epoch);
        let _ = render_timeline(&inst, &s);
    }

    /// The pre-index reference implementation: per-chronon `is_probed`
    /// scans. Kept as the semantic oracle for the fast path.
    fn naive(instance: &Instance, schedule: &Schedule) -> ScheduleDiagnostics {
        let mut probes_per_resource = vec![0u32; instance.n_resources as usize];
        for (_, r) in schedule.iter() {
            probes_per_resource[r.index()] += 1;
        }
        let mut capture_latencies = Vec::new();
        let mut missed_eis = 0usize;
        let mut probe_used = std::collections::HashSet::new();
        for cei in &instance.ceis {
            for &ei in &cei.eis {
                let mut first_hit = None;
                for t in ei.start..=ei.end {
                    if schedule.is_probed(ei.resource, t) {
                        probe_used.insert((t, ei.resource));
                        first_hit = first_hit.or(Some(t));
                    }
                }
                match first_hit {
                    Some(t) => capture_latencies.push(t - ei.start),
                    None => missed_eis += 1,
                }
            }
        }
        let wasted_probes = schedule
            .iter()
            .filter(|&(t, r)| !probe_used.contains(&(t, r)))
            .count();
        ScheduleDiagnostics {
            probes_per_resource,
            capture_latencies,
            missed_eis,
            wasted_probes,
        }
    }

    /// A contended instance with overlapping, nested, and disjoint windows
    /// across resources, plus a schedule with both serving and dead-air
    /// probes — every code path of the fast diagnostics.
    #[test]
    fn indexed_compute_matches_naive_reference() {
        let mut b = InstanceBuilder::new(5, 60, Budget::Uniform(2));
        let p = b.profile();
        for i in 0..40u32 {
            let r = i % 5;
            let start = (i * 7) % 50;
            let end = (start + 1 + (i % 9)).min(59);
            b.cei(p, &[(r, start, end)]);
        }
        // A nested-window pair on one resource (merge must handle it).
        b.cei(p, &[(0, 10, 40)]);
        b.cei(p, &[(0, 20, 25)]);
        let inst = b.build();

        let mut schedule = Schedule::new(5, inst.epoch);
        for t in 0..60u32 {
            schedule.probe(ResourceId(t % 5), t);
            if t % 3 == 0 {
                schedule.probe(ResourceId((t + 2) % 5), t);
            }
        }

        let fast = ScheduleDiagnostics::compute(&inst, &schedule);
        let slow = naive(&inst, &schedule);
        assert_eq!(fast.probes_per_resource, slow.probes_per_resource);
        assert_eq!(fast.capture_latencies, slow.capture_latencies);
        assert_eq!(fast.missed_eis, slow.missed_eis);
        assert_eq!(fast.wasted_probes, slow.wasted_probes);
    }

    /// Bench-scale smoke: long windows over a long epoch, where the old
    /// per-chronon scan (EIs × window `is_probed` calls) bogged down.
    #[test]
    fn diagnostics_stay_fast_on_large_instances() {
        let n: u32 = 300;
        let horizon: u32 = 5_000;
        let mut b = InstanceBuilder::new(n, horizon, Budget::Uniform(2));
        let p = b.profile();
        for i in 0..3_000u32 {
            let start = (i * 13) % (horizon - 500);
            b.cei(p, &[(i % n, start, start + 400)]);
        }
        let inst = b.build();
        let mut schedule = Schedule::new(n, inst.epoch);
        for t in 0..horizon {
            schedule.probe(ResourceId(t % n), t);
        }

        let d = ScheduleDiagnostics::compute(&inst, &schedule);
        assert_eq!(d.capture_latencies.len() + d.missed_eis, inst.total_eis());
        assert_eq!(
            d.probes_per_resource
                .iter()
                .map(|&c| u64::from(c))
                .sum::<u64>(),
            schedule.total_probes()
        );
        assert!(d.wasted_probes as u64 <= schedule.total_probes());
    }

    #[test]
    fn capture_agrees_with_indicator() {
        let inst = instance();
        let run = OnlineEngine::run(&inst, &SEdf, EngineConfig::preemptive());
        let d = ScheduleDiagnostics::compute(&inst, &run.schedule);
        let captured_eis = inst
            .ceis
            .iter()
            .flat_map(|c| &c.eis)
            .filter(|&&ei| ei_captured(ei, &run.schedule))
            .count();
        assert_eq!(captured_eis, d.capture_latencies.len());
    }
}
