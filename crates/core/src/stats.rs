//! Per-run statistics: completeness and probe accounting.

use crate::model::Chronon;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Outcome of one CEI at the end of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CeiOutcome {
    /// At least `required` EIs were captured (every EI, under the paper's
    /// AND semantics).
    Captured {
        /// Chronon of the probe that crossed the `required` threshold.
        at: Chronon,
    },
    /// Fewer than `required` EIs could still be captured — the CEI became
    /// doomed at the given chronon.
    Failed {
        /// Chronon of the expiry that made `required` captures unreachable.
        at: Chronon,
    },
    /// The epoch ended before the CEI resolved. The engine records this
    /// for CEIs that are never released to the proxy (their EIs never
    /// enter the probe pool, so no expiry ever dooms them) — e.g. a
    /// release at or beyond epoch end.
    Pending,
    /// The CEI was cancelled mid-run through the engine's mutation API
    /// before it resolved. Cancelled CEIs count in the size histogram's
    /// totals but in neither the captured nor the failed tallies.
    Cancelled {
        /// Chronon at which the cancellation was drained.
        at: Chronon,
    },
}

impl CeiOutcome {
    /// `true` for [`CeiOutcome::Captured`].
    pub fn is_captured(self) -> bool {
        matches!(self, CeiOutcome::Captured { .. })
    }
}

/// Aggregate statistics of one monitoring run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RunStats {
    /// Total CEIs in the instance (the denominator of Eq. 1).
    pub n_ceis: u64,
    /// CEIs fully captured.
    pub ceis_captured: u64,
    /// CEIs that failed (an EI expired uncaptured).
    pub ceis_failed: u64,
    /// Total EIs across all CEIs.
    pub n_eis: u64,
    /// EIs captured (including EIs of CEIs that eventually failed).
    pub eis_captured: u64,
    /// Probes issued.
    pub probes_used: u64,
    /// Budget units spent (equals `probes_used` under the paper's uniform
    /// probe costs; can exceed it under the §III varying-costs extension).
    pub budget_spent: u64,
    /// Budget units the budget allowed over the epoch.
    pub probes_available: u64,
    /// Captured / total CEI counts keyed by CEI size (`|η|`), for the
    /// per-rank breakdowns of Figures 10 and 15.
    pub by_size: BTreeMap<u16, SizeBucket>,
    /// Sum of CEI utility weights (the denominator of weighted gained
    /// completeness — the §VII profile-utility extension). Equals `n_ceis`
    /// on unit-weight instances.
    pub weight_total: f64,
    /// Sum of utility weights of captured CEIs.
    pub weight_captured: f64,
    /// Probe attempts rejected by the fault model (always 0 on the
    /// unfaulted `run` / `run_observed` paths).
    #[serde(default)]
    pub probes_failed: u64,
    /// Budget units charged to failed probes (counted in the per-chronon
    /// spend but not in [`budget_spent`](Self::budget_spent), which tracks
    /// successful probes only).
    #[serde(default)]
    pub budget_lost: u64,
    /// CEIs shed by graceful degradation: their remaining uncaptured
    /// windows fell entirely within committed resource outages. Shed CEIs
    /// are also counted in [`ceis_failed`](Self::ceis_failed).
    #[serde(default)]
    pub ceis_shed: u64,
    /// CEIs cancelled mid-run through the mutation API. Cancelled CEIs are
    /// counted in neither [`ceis_captured`](Self::ceis_captured) nor
    /// [`ceis_failed`](Self::ceis_failed) (always 0 on mutation-free runs).
    #[serde(default)]
    pub ceis_cancelled: u64,
}

/// Captured / total counts for CEIs of one size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SizeBucket {
    /// CEIs of this size that were captured.
    pub captured: u64,
    /// All CEIs of this size.
    pub total: u64,
}

impl RunStats {
    /// Gained completeness (Eq. 1): captured CEIs over all CEIs.
    /// `0.0` for an empty instance.
    pub fn completeness(&self) -> f64 {
        if self.n_ceis == 0 {
            0.0
        } else {
            self.ceis_captured as f64 / self.n_ceis as f64
        }
    }

    /// EI-level completeness: the "worst case upper bound" normalizer of
    /// Figure 10 measures completeness in captured single EIs (as if
    /// `rank(P) = 1`).
    pub fn ei_completeness(&self) -> f64 {
        if self.n_eis == 0 {
            0.0
        } else {
            self.eis_captured as f64 / self.n_eis as f64
        }
    }

    /// Fraction of the probing budget actually spent (in budget units).
    pub fn budget_utilization(&self) -> f64 {
        if self.probes_available == 0 {
            0.0
        } else {
            self.budget_spent as f64 / self.probes_available as f64
        }
    }

    /// Completeness restricted to CEIs of the given size; `None` if the run
    /// had none of that size.
    pub fn completeness_for_size(&self, size: u16) -> Option<f64> {
        self.by_size
            .get(&size)
            .filter(|b| b.total > 0)
            .map(|b| b.captured as f64 / b.total as f64)
    }

    /// Weighted gained completeness: utility of captured CEIs over total
    /// utility (the §VII extension). Equals [`completeness`](Self::completeness)
    /// on unit-weight instances. `0.0` for an empty instance.
    pub fn weighted_completeness(&self) -> f64 {
        if self.weight_total == 0.0 {
            0.0
        } else {
            self.weight_captured / self.weight_total
        }
    }

    /// Records a CEI outcome into the size histogram and counters, with the
    /// CEI's utility weight.
    pub fn record_outcome(&mut self, size: u16, weight: f64, outcome: CeiOutcome) {
        let bucket = self.by_size.entry(size).or_default();
        bucket.total += 1;
        self.weight_total += weight;
        match outcome {
            CeiOutcome::Captured { .. } => {
                self.ceis_captured += 1;
                self.weight_captured += weight;
                bucket.captured += 1;
            }
            CeiOutcome::Failed { .. } => self.ceis_failed += 1,
            CeiOutcome::Pending => {}
            CeiOutcome::Cancelled { .. } => self.ceis_cancelled += 1,
        }
    }

    /// Records a CEI's outcome (size and weight taken from the CEI).
    pub fn record_outcome_of(&mut self, cei: &crate::model::Cei, outcome: CeiOutcome) {
        self.record_outcome(cei.size() as u16, f64::from(cei.weight), outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completeness_ratios() {
        let stats = RunStats {
            n_ceis: 4,
            ceis_captured: 1,
            n_eis: 10,
            eis_captured: 6,
            probes_used: 5,
            budget_spent: 5,
            probes_available: 20,
            ..Default::default()
        };
        assert!((stats.completeness() - 0.25).abs() < 1e-12);
        assert!((stats.ei_completeness() - 0.6).abs() < 1e-12);
        assert!((stats.budget_utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_run_yields_zero_ratios() {
        let stats = RunStats::default();
        assert_eq!(stats.completeness(), 0.0);
        assert_eq!(stats.ei_completeness(), 0.0);
        assert_eq!(stats.budget_utilization(), 0.0);
    }

    #[test]
    fn record_outcome_builds_size_histogram() {
        let mut stats = RunStats::default();
        stats.record_outcome(2, 1.0, CeiOutcome::Captured { at: 5 });
        stats.record_outcome(2, 1.0, CeiOutcome::Failed { at: 3 });
        stats.record_outcome(3, 2.5, CeiOutcome::Captured { at: 9 });
        assert_eq!(stats.ceis_captured, 2);
        assert_eq!(stats.ceis_failed, 1);
        assert_eq!(stats.completeness_for_size(2), Some(0.5));
        assert_eq!(stats.completeness_for_size(3), Some(1.0));
        assert_eq!(stats.completeness_for_size(7), None);
        // Weighted: captured 1.0 + 2.5 of total 4.5.
        assert!((stats.weighted_completeness() - 3.5 / 4.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_completeness_of_empty_is_zero() {
        assert_eq!(RunStats::default().weighted_completeness(), 0.0);
    }

    #[test]
    fn outcome_predicates() {
        assert!(CeiOutcome::Captured { at: 0 }.is_captured());
        assert!(!CeiOutcome::Failed { at: 0 }.is_captured());
        assert!(!CeiOutcome::Pending.is_captured());
        assert!(!CeiOutcome::Cancelled { at: 0 }.is_captured());
    }

    #[test]
    fn cancelled_counts_in_totals_but_not_captured_or_failed() {
        let mut stats = RunStats::default();
        stats.record_outcome(2, 1.0, CeiOutcome::Cancelled { at: 4 });
        stats.record_outcome(2, 1.0, CeiOutcome::Captured { at: 5 });
        assert_eq!(stats.ceis_cancelled, 1);
        assert_eq!(stats.ceis_captured, 1);
        assert_eq!(stats.ceis_failed, 0);
        assert_eq!(stats.completeness_for_size(2), Some(0.5));
    }
}
