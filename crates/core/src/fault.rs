//! Seeded, deterministic fault injection for the online engine.
//!
//! The paper's engine assumes every probe succeeds instantly; real Web
//! sources time out, rate-limit, and go down in bursts. This module models
//! those failure modes as pure functions of a seed so that every faulted run
//! is exactly reproducible: the same `(model, seed, instance, policy)` tuple
//! always yields the same schedule, the same event stream, and the same
//! metrics, on any machine and under any `--jobs` parallelism.
//!
//! # Models
//!
//! * [`NoFaults`] — the zero-cost default. Its [`FaultModel::enabled`] hook
//!   returns `false`, so `run_faulted::<NoFaults, _>` monomorphizes to the
//!   exact instruction stream of `run_observed` (the same trick
//!   [`NoopObserver`](crate::obs::NoopObserver) plays for events).
//! * [`IidFaults`] — independent per-probe failure with probability `rate`.
//!   Each attempt draws a Bernoulli variable from a hash of
//!   `(seed, chronon, resource, attempt)`, so outcomes are independent of
//!   the order in which the engine issues probes.
//! * [`GilbertElliott`] — per-resource bursty outages from the classic
//!   two-state Gilbert–Elliott chain (up → down with `p_fail`, down → up
//!   with `p_recover`). Transitions draw from a hash of
//!   `(seed, resource, chronon)`, so the full outage trace regenerates
//!   exactly from `(seed, params)` — see [`GilbertElliott::outage_trace`].
//! * [`RateLimit`] — per-resource probe quotas over fixed windows: at most
//!   `max_per_window` successful probes per resource per `window` chronons.
//!   An exhausted resource is *committed down* until the window ends, which
//!   is what lets the engine shed provably-doomed CEIs early.
//!
//! # Determinism contract
//!
//! Every model here is a deterministic function of its construction
//! parameters: no global RNG, no system entropy, no call-order dependence
//! beyond what the trait requires. The mixing function is the splitmix64
//! finalizer over a three-operand key, the same generator family the
//! workload layer uses.

use crate::model::{Chronon, ResourceId};
use serde::{Deserialize, Serialize};

/// Golden-ratio increment used to key the first hash operand.
const K1: u64 = 0x9E37_79B9_7F4A_7C15;
/// First splitmix64 finalizer multiplier, keys the second operand.
const K2: u64 = 0xBF58_476D_1CE4_E5B9;
/// Second splitmix64 finalizer multiplier, keys the third operand.
const K3: u64 = 0x94D0_49BB_1331_11EB;

/// Mixes `(seed, a, b, c)` into a uniform 64-bit value via the splitmix64
/// finalizer. Pure and order-independent: each distinct key maps to an
/// independent draw regardless of how many other keys were hashed.
#[inline]
fn hash3(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(K1))
        .wrapping_add(b.wrapping_mul(K2))
        .wrapping_add(c.wrapping_mul(K3))
        .wrapping_add(K1);
    z = (z ^ (z >> 30)).wrapping_mul(K2);
    z = (z ^ (z >> 27)).wrapping_mul(K3);
    z ^ (z >> 31)
}

/// Maps a hash to the unit interval `[0, 1)` with 53 bits of precision.
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Bernoulli draw: `true` with probability `p`. `p <= 0.0` is never true
/// and `p >= 1.0` is always true, exactly.
#[inline]
fn bernoulli(h: u64, p: f64) -> bool {
    unit(h) < p
}

/// A deterministic source of probe failures and resource outages.
///
/// The engine calls [`begin_chronon`](Self::begin_chronon) once per chronon
/// (before any probing), reads [`down_until`](Self::down_until) for each
/// resource to learn committed outages, and consults
/// [`probe_succeeds`](Self::probe_succeeds) for every probe attempt.
///
/// # Contract
///
/// * `down_until(r)` returns `Some(u)` with `u >= t` (the current chronon)
///   iff the resource is unavailable, where `u` is an *inclusive* horizon
///   the model commits to: no probe on `r` can succeed at any chronon in
///   `t..=u`. Models that cannot commit beyond the present (e.g. a
///   memoryless chain) return `Some(t)`. A commitment may grow from one
///   chronon to the next but must never shrink.
/// * `probe_succeeds(t, r, attempt)` must return `false` whenever
///   `down_until(r)` is `Some(_)` at chronon `t`.
/// * All answers must be pure functions of the constructor parameters and
///   the sequence of `begin_chronon`/`probe_succeeds` calls.
pub trait FaultModel {
    /// Advances the model to chronon `t`. Called exactly once per chronon,
    /// in increasing order, before any probe of that chronon.
    fn begin_chronon(&mut self, t: Chronon);

    /// The committed inclusive unavailability horizon for `resource`, or
    /// `None` if the resource is currently up.
    fn down_until(&self, resource: ResourceId) -> Option<Chronon>;

    /// Whether a probe of `resource` at chronon `t` succeeds. `attempt` is
    /// the number of consecutive failures already observed on this resource
    /// (0 for a fresh probe, `k` for the k-th retry).
    fn probe_succeeds(&mut self, t: Chronon, resource: ResourceId, attempt: u32) -> bool;

    /// Whether the model can inject faults at all. When `false` the engine
    /// skips every fault branch, so [`NoFaults`] compiles down to the
    /// unfaulted loop.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// A stable description of the model's full parameterization (kind,
    /// rates, seed) — two models with equal descriptors must script
    /// identical outcomes. Feeds the serve journal's configuration
    /// fingerprint so `--recover` under a different fault script is
    /// refused up front instead of diverging mid-replay.
    fn descriptor(&self) -> String {
        format!("enabled={}", self.enabled())
    }
}

/// Forwarding impl so engine entry points can take `&mut F` by value.
impl<F: FaultModel + ?Sized> FaultModel for &mut F {
    #[inline]
    fn begin_chronon(&mut self, t: Chronon) {
        (**self).begin_chronon(t);
    }
    #[inline]
    fn down_until(&self, resource: ResourceId) -> Option<Chronon> {
        (**self).down_until(resource)
    }
    #[inline]
    fn probe_succeeds(&mut self, t: Chronon, resource: ResourceId, attempt: u32) -> bool {
        (**self).probe_succeeds(t, resource, attempt)
    }
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    fn descriptor(&self) -> String {
        (**self).descriptor()
    }
}

/// The absent fault model: every probe succeeds, no resource is ever down.
///
/// [`enabled`](FaultModel::enabled) is `false` and every method is
/// `#[inline(always)]`, so monomorphized fault branches fold away entirely —
/// `run_observed` routes through `run_faulted::<NoFaults, _>` at zero cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFaults;

impl FaultModel for NoFaults {
    #[inline(always)]
    fn begin_chronon(&mut self, _t: Chronon) {}
    #[inline(always)]
    fn down_until(&self, _resource: ResourceId) -> Option<Chronon> {
        None
    }
    #[inline(always)]
    fn probe_succeeds(&mut self, _t: Chronon, _resource: ResourceId, _attempt: u32) -> bool {
        true
    }
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
    fn descriptor(&self) -> String {
        "none".to_string()
    }
}

/// Independent per-probe failures with a fixed rate.
///
/// Each attempt fails with probability `rate`, drawn from a hash of
/// `(seed, t, resource, attempt)`. Because the draw is keyed rather than
/// sequential, outcomes do not depend on the order in which the engine
/// issues probes, and for a fixed seed the set of failing keys is *nested*
/// in the rate: every attempt that fails at rate `r` also fails at any
/// `r' >= r`. That coupling is what makes corpus-aggregate completeness
/// monotone in the failure rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IidFaults {
    rate: f64,
    seed: u64,
}

impl IidFaults {
    /// A model failing each probe independently with probability `rate`
    /// (clamped to `[0, 1]`). Rate `0.0` never fails; `1.0` always fails.
    pub fn new(rate: f64, seed: u64) -> Self {
        Self {
            rate: rate.clamp(0.0, 1.0),
            seed,
        }
    }

    /// The (clamped) per-probe failure probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl FaultModel for IidFaults {
    #[inline]
    fn begin_chronon(&mut self, _t: Chronon) {}

    #[inline]
    fn down_until(&self, _resource: ResourceId) -> Option<Chronon> {
        None
    }

    #[inline]
    fn probe_succeeds(&mut self, t: Chronon, resource: ResourceId, attempt: u32) -> bool {
        !bernoulli(
            hash3(
                self.seed,
                u64::from(t),
                u64::from(resource.0),
                u64::from(attempt),
            ),
            self.rate,
        )
    }

    fn descriptor(&self) -> String {
        format!("iid(rate={},seed={})", self.rate, self.seed)
    }
}

/// Per-resource bursty outages: the two-state Gilbert–Elliott chain.
///
/// Every resource runs an independent chain. At each chronon an *up*
/// resource goes down with probability `p_fail` and a *down* resource
/// recovers with probability `p_recover`; the transition draw is a pure
/// hash of `(seed, resource, chronon)`, so the complete outage trace is a
/// function of `(seed, params)` alone — [`outage_trace`] recomputes it
/// without stepping a live model. All resources start up.
///
/// The chain is memoryless, so its committed horizon is only ever the
/// current chronon (`down_until == Some(t)` while down): Gilbert–Elliott
/// outages reduce throughput but never justify shedding a CEI whose
/// windows extend past the present.
///
/// [`outage_trace`]: GilbertElliott::outage_trace
#[derive(Debug, Clone, PartialEq)]
pub struct GilbertElliott {
    p_fail: f64,
    p_recover: f64,
    seed: u64,
    now: Chronon,
    down: Vec<bool>,
}

impl GilbertElliott {
    /// A chain over `n_resources` resources with the given transition
    /// probabilities (each clamped to `[0, 1]`).
    pub fn new(p_fail: f64, p_recover: f64, seed: u64, n_resources: usize) -> Self {
        Self {
            p_fail: p_fail.clamp(0.0, 1.0),
            p_recover: p_recover.clamp(0.0, 1.0),
            seed,
            now: 0,
            down: vec![false; n_resources],
        }
    }

    /// Whether resource `r` is down at chronon `t`, assuming it was in
    /// state `down` at `t - 1` (or up at the start of the epoch).
    #[inline]
    fn step(&self, r: usize, t: Chronon, down: bool) -> bool {
        let draw = hash3(self.seed, u64::from(r as u32), u64::from(t), 0);
        if down {
            !bernoulli(draw, self.p_recover)
        } else {
            bernoulli(draw, self.p_fail)
        }
    }

    /// The exact down/up trace of `resource` over chronons `0..horizon`,
    /// recomputed from `(seed, params)` without mutating any state.
    /// `trace[t]` is `true` iff the resource is down at chronon `t`; a live
    /// model stepped through the same chronons reports identical states.
    pub fn outage_trace(&self, resource: ResourceId, horizon: Chronon) -> Vec<bool> {
        let r = resource.0 as usize;
        let mut down = false;
        (0..horizon)
            .map(|t| {
                down = self.step(r, t, down);
                down
            })
            .collect()
    }
}

impl FaultModel for GilbertElliott {
    fn begin_chronon(&mut self, t: Chronon) {
        self.now = t;
        for r in 0..self.down.len() {
            self.down[r] = self.step(r, t, self.down[r]);
        }
    }

    fn down_until(&self, resource: ResourceId) -> Option<Chronon> {
        if self.down.get(resource.0 as usize).copied().unwrap_or(false) {
            Some(self.now)
        } else {
            None
        }
    }

    fn probe_succeeds(&mut self, _t: Chronon, resource: ResourceId, _attempt: u32) -> bool {
        !self.down.get(resource.0 as usize).copied().unwrap_or(false)
    }

    fn descriptor(&self) -> String {
        format!(
            "gilbert-elliott(p_fail={},p_recover={},seed={},resources={})",
            self.p_fail,
            self.p_recover,
            self.seed,
            self.down.len(),
        )
    }
}

/// Per-resource rate-limit windows: at most `max_per_window` successful
/// probes per resource within each aligned window of `window` chronons.
///
/// A resource whose quota is exhausted is committed down through the end of
/// its current window (`down_until == Some(window_end)`), which gives the
/// engine a real horizon to shed doomed CEIs against. Counters reset at
/// every window boundary. The model is fully deterministic — no seed is
/// involved at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RateLimit {
    window: Chronon,
    max_per_window: u32,
    now: Chronon,
    used: Vec<u32>,
}

impl RateLimit {
    /// A limiter over `n_resources` resources allowing `max_per_window`
    /// probes per aligned `window`-chronon window (`window` clamped ≥ 1).
    pub fn new(window: Chronon, max_per_window: u32, n_resources: usize) -> Self {
        Self {
            window: window.max(1),
            max_per_window,
            now: 0,
            used: vec![0; n_resources],
        }
    }

    /// The last chronon (inclusive) of the window containing `t`.
    #[inline]
    fn window_end(&self, t: Chronon) -> Chronon {
        (t - t % self.window).saturating_add(self.window - 1)
    }
}

impl FaultModel for RateLimit {
    fn begin_chronon(&mut self, t: Chronon) {
        // `is_multiple_of` needs Rust 1.87; the workspace MSRV is 1.75.
        #[allow(clippy::manual_is_multiple_of)]
        if t % self.window == 0 {
            self.used.iter_mut().for_each(|u| *u = 0);
        }
        self.now = t;
    }

    fn down_until(&self, resource: ResourceId) -> Option<Chronon> {
        let used = self.used.get(resource.0 as usize).copied().unwrap_or(0);
        if used >= self.max_per_window {
            Some(self.window_end(self.now))
        } else {
            None
        }
    }

    fn probe_succeeds(&mut self, _t: Chronon, resource: ResourceId, _attempt: u32) -> bool {
        match self.used.get_mut(resource.0 as usize) {
            Some(used) if *used < self.max_per_window => {
                *used += 1;
                true
            }
            _ => false,
        }
    }

    fn descriptor(&self) -> String {
        format!(
            "rate-limit(window={},max={},resources={})",
            self.window,
            self.max_per_window,
            self.used.len(),
        )
    }
}

/// Exponential backoff in chronons: after the k-th consecutive failure on a
/// resource, the next attempt is allowed no earlier than
/// `min(base * 2^(k-1), cap)` chronons later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Backoff {
    /// Delay after the first failure, in chronons (clamped ≥ 1).
    pub base: Chronon,
    /// Upper bound on any single delay, in chronons (clamped ≥ `base`).
    pub cap: Chronon,
}

impl Backoff {
    /// A schedule doubling from `base` up to `cap` chronons.
    pub fn new(base: Chronon, cap: Chronon) -> Self {
        let base = base.max(1);
        Self {
            base,
            cap: cap.max(base),
        }
    }

    /// The delay imposed after `failures` consecutive failures
    /// (`failures >= 1`): `min(base * 2^(failures-1), cap)`.
    pub fn delay(&self, failures: u32) -> Chronon {
        let doubled = u64::from(self.base) << failures.saturating_sub(1).min(32);
        doubled.min(u64::from(self.cap)) as Chronon
    }
}

/// How the engine reacts to probe failures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Whether a failed probe consumes its budget cost anyway (a timed-out
    /// request still spends the request). Defaults to `true`; when `false`,
    /// a failed resource is excluded from further selection in the same
    /// chronon so that free failures cannot loop.
    pub failures_cost: bool,
    /// Exponential backoff schedule; `None` means failed resources are
    /// immediately re-candidates (subject to the retry quota).
    pub backoff: Option<Backoff>,
    /// Maximum number of retry attempts (probes on a resource with at least
    /// one consecutive failure) per chronon; `None` is unlimited.
    pub retry_quota: Option<u32>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            failures_cost: true,
            backoff: None,
            retry_quota: None,
        }
    }
}

impl FaultConfig {
    /// The default reaction: failures charged, immediate retry, no quota.
    pub fn charged() -> Self {
        Self::default()
    }

    /// Replaces the backoff schedule.
    pub fn with_backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = Some(backoff);
        self
    }

    /// Replaces the per-chronon retry quota.
    pub fn with_retry_quota(mut self, quota: u32) -> Self {
        self.retry_quota = Some(quota);
        self
    }

    /// Makes failed probes free (and non-retriable within the chronon).
    pub fn free_failures(mut self) -> Self {
        self.failures_cost = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash3_is_order_independent_and_keyed() {
        let a = hash3(7, 1, 2, 3);
        let b = hash3(7, 1, 2, 3);
        assert_eq!(a, b);
        assert_ne!(hash3(7, 1, 2, 3), hash3(7, 3, 2, 1));
        assert_ne!(hash3(7, 1, 2, 3), hash3(8, 1, 2, 3));
    }

    #[test]
    fn unit_maps_into_half_open_interval() {
        for h in [0, 1, u64::MAX / 2, u64::MAX] {
            let u = unit(h);
            assert!((0.0..1.0).contains(&u), "{u}");
        }
    }

    #[test]
    fn no_faults_is_disabled_and_always_succeeds() {
        let mut f = NoFaults;
        assert!(!f.enabled());
        f.begin_chronon(0);
        assert_eq!(f.down_until(ResourceId(0)), None);
        assert!(f.probe_succeeds(0, ResourceId(0), 0));
    }

    #[test]
    fn iid_rate_zero_never_fails_rate_one_always_fails() {
        let mut never = IidFaults::new(0.0, 42);
        let mut always = IidFaults::new(1.0, 42);
        for t in 0..50 {
            for r in 0..4 {
                assert!(never.probe_succeeds(t, ResourceId(r), 0));
                assert!(!always.probe_succeeds(t, ResourceId(r), 0));
            }
        }
    }

    #[test]
    fn iid_outcomes_are_call_order_independent() {
        let mut fwd = IidFaults::new(0.4, 9);
        let mut rev = IidFaults::new(0.4, 9);
        let keys: Vec<(Chronon, u32, u32)> = (0..20).map(|i| (i, i % 3, i % 2)).collect();
        let forward: Vec<bool> = keys
            .iter()
            .map(|&(t, r, a)| fwd.probe_succeeds(t, ResourceId(r), a))
            .collect();
        let mut backward: Vec<bool> = keys
            .iter()
            .rev()
            .map(|&(t, r, a)| rev.probe_succeeds(t, ResourceId(r), a))
            .collect();
        backward.reverse();
        assert_eq!(forward, backward);
    }

    #[test]
    fn iid_failures_are_nested_in_the_rate() {
        // Coupled draws: every key failing at a lower rate also fails at
        // every higher rate (same seed). This underpins the monotonicity
        // property test in the integration suite.
        let seed = 123;
        let mut low = IidFaults::new(0.2, seed);
        let mut high = IidFaults::new(0.7, seed);
        for t in 0..100 {
            for r in 0..3 {
                let low_fails = !low.probe_succeeds(t, ResourceId(r), 0);
                let high_fails = !high.probe_succeeds(t, ResourceId(r), 0);
                if low_fails {
                    assert!(high_fails, "failure at rate 0.2 missing at 0.7");
                }
            }
        }
    }

    #[test]
    fn gilbert_elliott_regenerates_from_seed_and_params() {
        let model = GilbertElliott::new(0.3, 0.5, 77, 4);
        let mut live = model.clone();
        let horizon = 64;
        let traces: Vec<Vec<bool>> = (0..4)
            .map(|r| model.outage_trace(ResourceId(r), horizon))
            .collect();
        for t in 0..horizon {
            live.begin_chronon(t);
            for r in 0..4u32 {
                let down = live.down_until(ResourceId(r)).is_some();
                assert_eq!(down, traces[r as usize][t as usize], "r={r} t={t}");
                assert_eq!(live.probe_succeeds(t, ResourceId(r), 0), !down);
            }
        }
    }

    #[test]
    fn gilbert_elliott_commits_only_to_the_present() {
        let mut model = GilbertElliott::new(1.0, 0.0, 1, 1);
        model.begin_chronon(5);
        assert_eq!(model.down_until(ResourceId(0)), Some(5));
        model.begin_chronon(6);
        assert_eq!(model.down_until(ResourceId(0)), Some(6));
    }

    #[test]
    fn gilbert_elliott_extremes_pin_the_chain() {
        // p_fail 0: never goes down. p_fail 1 & p_recover 0: down forever.
        let stable = GilbertElliott::new(0.0, 1.0, 3, 2);
        assert!(stable.outage_trace(ResourceId(0), 40).iter().all(|&d| !d));
        let dead = GilbertElliott::new(1.0, 0.0, 3, 2);
        assert!(dead.outage_trace(ResourceId(1), 40).iter().all(|&d| d));
    }

    #[test]
    fn rate_limit_exhausts_and_resets_per_window() {
        let mut rl = RateLimit::new(4, 2, 1);
        let r = ResourceId(0);
        rl.begin_chronon(0);
        assert_eq!(rl.down_until(r), None);
        assert!(rl.probe_succeeds(0, r, 0));
        assert!(rl.probe_succeeds(0, r, 0));
        // Quota exhausted mid-chronon: further probes fail...
        assert!(!rl.probe_succeeds(0, r, 0));
        // ...and from the next chronon the resource is committed down
        // through the window end (chronon 3).
        rl.begin_chronon(1);
        assert_eq!(rl.down_until(r), Some(3));
        assert!(!rl.probe_succeeds(1, r, 0));
        rl.begin_chronon(2);
        assert_eq!(rl.down_until(r), Some(3));
        // Window boundary resets the counter.
        rl.begin_chronon(4);
        assert_eq!(rl.down_until(r), None);
        assert!(rl.probe_succeeds(4, r, 0));
    }

    #[test]
    fn rate_limit_window_is_clamped_to_one() {
        let mut rl = RateLimit::new(0, 1, 1);
        rl.begin_chronon(0);
        assert!(rl.probe_succeeds(0, ResourceId(0), 0));
        rl.begin_chronon(1);
        // Window of 1 chronon: counter reset every chronon.
        assert_eq!(rl.down_until(ResourceId(0)), None);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let b = Backoff::new(2, 16);
        assert_eq!(b.delay(1), 2);
        assert_eq!(b.delay(2), 4);
        assert_eq!(b.delay(3), 8);
        assert_eq!(b.delay(4), 16);
        assert_eq!(b.delay(5), 16);
        assert_eq!(b.delay(40), 16);
        // Degenerate inputs are clamped rather than panicking.
        let unit = Backoff::new(0, 0);
        assert_eq!(unit.delay(1), 1);
        assert_eq!(unit.delay(10), 1);
    }

    #[test]
    fn fault_config_builders_compose() {
        let cfg = FaultConfig::charged()
            .with_backoff(Backoff::new(1, 8))
            .with_retry_quota(3);
        assert!(cfg.failures_cost);
        assert_eq!(cfg.backoff, Some(Backoff::new(1, 8)));
        assert_eq!(cfg.retry_quota, Some(3));
        assert!(!FaultConfig::default().free_failures().failures_cost);
    }

    #[test]
    fn fault_config_serde_round_trips() {
        let cfg = FaultConfig::charged().with_backoff(Backoff::new(2, 32));
        let json = serde_json::to_string(&cfg).unwrap();
        let back: FaultConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
