//! Dependency-free parallel execution for embarrassingly parallel work:
//! experiment stages (repetitions, grid points) and the engine's
//! intra-cell resource shards.
//!
//! The workspace forbids external crates, so this is a minimal scoped-thread
//! work queue built on [`std::thread::scope`]. The one primitive is
//! [`par_map`]: it fans a list of independent items out to a pool of
//! workers and collects the results **keyed by input index**, so the output
//! order — and therefore every downstream aggregate — is bit-identical to a
//! sequential run. Parallelism only changes wall-clock time (and any
//! wall-clock *measurements* taken inside the mapped closure, which is why
//! the timed experiments pin themselves to one worker with [`serial`]).
//!
//! Two independent knobs resolve here: **jobs** (experiment-level workers,
//! [`effective_jobs`]) and **shards** (engine-level resource partitions,
//! [`effective_shards`]). They compose: each experiment worker may run a
//! sharded engine, whose scoped shard threads are short-lived and bounded
//! by the shard count.
//!
//! Worker count resolution, highest priority first:
//! 1. a [`serial`] scope on the calling thread (timed runs),
//! 2. [`set_jobs`] (the CLI's `--jobs N`),
//! 3. the `WEBMON_JOBS` environment variable,
//! 4. [`std::thread::available_parallelism`].
//!
//! Nested `par_map` calls run inline on their worker thread, so the total
//! worker count never exceeds the configured `jobs`.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Explicit worker-count override; 0 means "not set, resolve automatically".
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Explicit engine shard-count override; 0 means "not set, resolve
/// automatically" (`WEBMON_SHARDS`, then 1 — intra-cell sharding is opt-in).
static SHARDS: AtomicUsize = AtomicUsize::new(0);

/// Cumulative busy time (nanoseconds) spent inside mapped closures, across
/// all workers. `busy / wall` is the achieved speedup of a run.
static BUSY_NANOS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Set inside a worker thread or a [`serial`] scope: run nested
    /// `par_map` calls inline instead of spawning more threads.
    static FORCE_INLINE: Cell<bool> = const { Cell::new(false) };
}

/// Sets the worker count for subsequent [`par_map`] calls. `0` restores the
/// automatic resolution (`WEBMON_JOBS`, then the machine's parallelism).
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::Relaxed);
}

/// The worker count [`par_map`] will use right now.
pub fn effective_jobs() -> usize {
    if FORCE_INLINE.with(Cell::get) {
        return 1;
    }
    let set = JOBS.load(Ordering::Relaxed);
    if set > 0 {
        return set;
    }
    if let Some(n) = std::env::var("WEBMON_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Sets the engine shard count for subsequent runs whose
/// [`EngineConfig::shards`](crate::engine::EngineConfig::shards) is `0`
/// (= "resolve automatically"). `0` restores the automatic resolution
/// (`WEBMON_SHARDS`, then 1).
pub fn set_shards(n: usize) {
    SHARDS.store(n, Ordering::Relaxed);
}

/// The shard count an engine run with `shards = 0` resolves to right now.
///
/// Resolution, highest priority first: [`set_shards`] (the CLI's
/// `--shards N`), the `WEBMON_SHARDS` environment variable, then `1`.
/// Unlike [`effective_jobs`], the default is *serial*: intra-cell sharding
/// is opt-in, and — unlike experiment-level `par_map` — a sharded engine
/// spawns its scoped workers even inside a [`serial`] scope (the sharded
/// bench ladder pins repetitions serial while measuring the engine's own
/// parallelism). Determinism does not depend on the choice: any shard
/// count is bit-identical to `shards = 1` on all engine output.
pub fn effective_shards() -> usize {
    let set = SHARDS.load(Ordering::Relaxed);
    if set > 0 {
        return set;
    }
    std::env::var("WEBMON_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Runs `f` with parallelism pinned to one worker on this thread — every
/// [`par_map`] under it executes inline, in input order. Used by the timed
/// experiments (Figure 11, §V-D runtime) so wall-clock measurements are
/// never distorted by sibling repetitions on other cores.
pub fn serial<R>(f: impl FnOnce() -> R) -> R {
    FORCE_INLINE.with(|flag| {
        let prev = flag.replace(true);
        let out = f();
        flag.set(prev);
        out
    })
}

/// Total busy time accumulated inside mapped closures since the last
/// [`reset_busy_time`], in seconds. Dividing by wall-clock time gives the
/// achieved speedup of a run.
pub fn busy_time_secs() -> f64 {
    BUSY_NANOS.load(Ordering::Relaxed) as f64 / 1e9
}

/// Zeroes the busy-time counter (call before the region to measure).
pub fn reset_busy_time() {
    BUSY_NANOS.store(0, Ordering::Relaxed);
}

/// Maps `f` over `items` on up to [`effective_jobs`] worker threads and
/// returns the results in input order.
///
/// Items are handed out through a shared queue, so uneven item costs
/// balance across workers. With one worker (or inside a [`serial`] scope or
/// a nested call) the map runs inline on the calling thread — no threads,
/// no synchronization — making `jobs = 1` runs byte-identical in behavior
/// *and* timing to the pre-parallelism code.
///
/// # Panics
/// If `f` panics on any item, the panic is resumed on the calling thread
/// (after the remaining workers stop claiming new items).
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    par_map_with(effective_jobs(), items, f)
}

/// [`par_map`] with an explicit worker count (ignoring the global setting,
/// but not a [`serial`] scope — workers still force nested calls inline).
pub fn par_map_with<T, U, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    let n = items.len();
    let jobs = jobs.clamp(1, n.max(1));
    if jobs <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| timed(|| f(i, item)))
            .collect();
    }

    let queue = Mutex::new(items.into_iter().enumerate());
    let results: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(n));
    let panicked = AtomicBool::new(false);
    let payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| {
                FORCE_INLINE.with(|flag| flag.set(true));
                loop {
                    if panicked.load(Ordering::Relaxed) {
                        break;
                    }
                    // Claim the next item; the lock covers only the pop.
                    let Some((i, item)) = queue.lock().unwrap().next() else {
                        break;
                    };
                    match catch_unwind(AssertUnwindSafe(|| timed(|| f(i, item)))) {
                        Ok(out) => results.lock().unwrap().push((i, out)),
                        Err(e) => {
                            // Keep the first payload; stop the other
                            // workers from claiming further items.
                            if !panicked.swap(true, Ordering::Relaxed) {
                                *payload.lock().unwrap() = Some(e);
                            }
                            break;
                        }
                    }
                }
            });
        }
    });

    if let Some(e) = payload.into_inner().unwrap() {
        resume_unwind(e);
    }
    let mut pairs = results.into_inner().unwrap();
    debug_assert_eq!(pairs.len(), n);
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, u)| u).collect()
}

/// Runs `g`, charging its duration to the busy-time counter.
fn timed<U>(g: impl FnOnce() -> U) -> U {
    let start = Instant::now();
    let out = g();
    BUSY_NANOS.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    out
}

#[cfg(test)]
mod tests {
    // `set_jobs` mutates process-global state, so these tests drive the
    // explicit-count `par_map_with` (and thread-local `serial`) instead —
    // they stay correct when the test harness runs them concurrently.
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let out = par_map_with(4, (0..100u64).collect(), |i, x| {
            // Stagger completion so late items finish first.
            std::thread::sleep(std::time::Duration::from_micros(100 - x));
            (i, x * x)
        });
        assert_eq!(out.len(), 100);
        for (i, (idx, sq)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*sq, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn par_map_matches_sequential_map() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x.wrapping_mul(2654435761)).collect();
        for jobs in [1, 2, 3, 8] {
            let got = par_map_with(jobs, items.clone(), |_, x| x.wrapping_mul(2654435761));
            assert_eq!(got, expect, "jobs = {jobs}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = par_map_with(4, Vec::new(), |_, x: u32| x);
        assert!(empty.is_empty());
        assert_eq!(par_map_with(4, vec![7u32], |i, x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn par_map_propagates_panics() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map_with(4, (0..32u32).collect(), |_, x| {
                if x == 13 {
                    panic!("unlucky item");
                }
                x
            })
        }));
        let e = result.expect_err("panic must propagate");
        let msg = e.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "unlucky item");
    }

    #[test]
    fn nested_par_map_runs_inline() {
        let out = par_map_with(4, (0..4u32).collect(), |_, x| {
            assert_eq!(effective_jobs(), 1, "workers must not nest");
            par_map((0..4u32).collect(), move |_, y| x * 10 + y)
        });
        assert_eq!(out[3], vec![30, 31, 32, 33]);
    }

    #[test]
    fn serial_scope_pins_one_worker() {
        serial(|| {
            assert_eq!(effective_jobs(), 1);
            let out = par_map((0..8u32).collect(), |i, x| {
                assert_eq!(effective_jobs(), 1);
                i as u32 + x
            });
            assert_eq!(out, (0..8).map(|x| 2 * x).collect::<Vec<_>>());
        });
    }

    #[test]
    fn shard_resolution_prefers_explicit_setting() {
        // No other test touches the global shard count, so the round-trip
        // is safe under the concurrent harness.
        set_shards(5);
        assert_eq!(effective_shards(), 5);
        set_shards(0);
        assert!(effective_shards() >= 1);
    }

    #[test]
    fn busy_time_accumulates() {
        reset_busy_time();
        par_map_with(2, vec![1u64, 2, 3], |_, _| {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        assert!(busy_time_secs() >= 0.006);
    }
}
