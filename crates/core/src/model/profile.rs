//! Client profiles and profile rank.

use super::{Cei, CeiId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a client profile, unique within an
/// [`Instance`](super::Instance). Dense: usable as an index.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct ProfileId(pub u32);

impl ProfileId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProfileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A client profile: the complex information need of one client, expressed
/// as a collection of CEIs (stored flat in the owning
/// [`Instance`](super::Instance); the profile keeps their ids).
///
/// The paper's hierarchy — profile → CEIs → EIs — makes two CEIs of one
/// profile *siblings*, and likewise two EIs of one CEI.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Profile {
    /// Instance-unique identifier.
    pub id: ProfileId,
    /// Ids of the CEIs belonging to this profile.
    pub ceis: Vec<CeiId>,
    /// `rank(p) = max_{η ∈ p} |η|`: the maximal number of EIs in any CEI of
    /// this profile — the paper's measure of profile complexity. Maintained
    /// by [`InstanceBuilder`](super::InstanceBuilder).
    pub rank: u16,
}

impl Profile {
    /// Creates an empty profile; CEIs are attached through the builder.
    pub fn new(id: ProfileId) -> Self {
        Profile {
            id,
            ceis: Vec::new(),
            rank: 0,
        }
    }

    /// Number of CEIs in this profile (the paper's `|p|`, the denominator
    /// contribution in Eq. 1).
    #[inline]
    pub fn len(&self) -> usize {
        self.ceis.len()
    }

    /// `true` if the profile has no CEIs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ceis.is_empty()
    }
}

/// `rank(P) = max_{p ∈ P} rank(p)` over a set of profiles.
pub fn rank_of_profiles(profiles: &[Profile]) -> u16 {
    profiles.iter().map(|p| p.rank).max().unwrap_or(0)
}

/// Recomputes a profile's rank from the CEIs it references. Useful when
/// assembling profiles by hand rather than through the builder.
pub fn compute_rank<'a>(ceis: impl IntoIterator<Item = &'a Cei>) -> u16 {
    ceis.into_iter()
        .map(|c| u16::try_from(c.size()).expect("CEI size fits in u16"))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Ei, ResourceId};

    fn mk_cei(id: u32, n_eis: usize) -> Cei {
        let eis = (0..n_eis)
            .map(|k| Ei::new(ResourceId(k as u32), 0, 1))
            .collect();
        Cei::new(CeiId(id), ProfileId(0), eis)
    }

    #[test]
    fn empty_profile_has_rank_zero() {
        let p = Profile::new(ProfileId(0));
        assert_eq!(p.rank, 0);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn compute_rank_takes_max_cei_size() {
        let ceis = [mk_cei(0, 2), mk_cei(1, 5), mk_cei(2, 1)];
        assert_eq!(compute_rank(ceis.iter()), 5);
    }

    #[test]
    fn rank_of_profiles_takes_max() {
        let mut a = Profile::new(ProfileId(0));
        a.rank = 3;
        let mut b = Profile::new(ProfileId(1));
        b.rank = 5;
        assert_eq!(rank_of_profiles(&[a, b]), 5);
        assert_eq!(rank_of_profiles(&[]), 0);
    }

    #[test]
    fn profile_id_displays_with_prefix() {
        assert_eq!(ProfileId(2).to_string(), "p2");
    }
}
