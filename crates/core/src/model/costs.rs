//! Per-resource probe costs — the extension Section III defers to future
//! work ("extracting a stock price may be cheaper than searching for a
//! keyword in a blog; bandwidth; monetary charges at the servers").
//!
//! With costs, the per-chronon constraint generalizes from "at most `C_j`
//! probes" to "total probe cost at most `C_j`".

use super::ResourceId;
use serde::{Deserialize, Serialize};

/// The cost of probing each resource, in budget units.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ProbeCosts {
    /// Every probe costs one budget unit — the paper's setting.
    #[default]
    Uniform,
    /// An explicit per-resource cost vector; resources past the end of the
    /// vector cost one unit.
    PerResource(Vec<u32>),
}

impl ProbeCosts {
    /// The cost of probing resource `r`.
    #[inline]
    pub fn of(&self, r: ResourceId) -> u32 {
        match self {
            ProbeCosts::Uniform => 1,
            ProbeCosts::PerResource(v) => v.get(r.index()).copied().unwrap_or(1),
        }
    }

    /// `true` if every probe costs one unit (the paper's setting).
    pub fn is_uniform(&self) -> bool {
        match self {
            ProbeCosts::Uniform => true,
            ProbeCosts::PerResource(v) => v.iter().all(|&c| c == 1),
        }
    }

    /// Builds a per-resource cost vector.
    ///
    /// # Panics
    /// Panics if any cost is zero (free probes make the budget meaningless).
    pub fn per_resource(costs: Vec<u32>) -> Self {
        assert!(costs.iter().all(|&c| c > 0), "probe costs must be positive");
        ProbeCosts::PerResource(costs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_costs_one_everywhere() {
        let c = ProbeCosts::Uniform;
        assert_eq!(c.of(ResourceId(0)), 1);
        assert_eq!(c.of(ResourceId(999)), 1);
        assert!(c.is_uniform());
    }

    #[test]
    fn per_resource_costs_index_and_default() {
        let c = ProbeCosts::per_resource(vec![2, 5]);
        assert_eq!(c.of(ResourceId(0)), 2);
        assert_eq!(c.of(ResourceId(1)), 5);
        assert_eq!(c.of(ResourceId(2)), 1); // past the vector
        assert!(!c.is_uniform());
    }

    #[test]
    fn all_ones_counts_as_uniform() {
        assert!(ProbeCosts::per_resource(vec![1, 1, 1]).is_uniform());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_cost_rejected() {
        let _ = ProbeCosts::per_resource(vec![1, 0]);
    }
}
