//! Resources: the pull-only streams a proxy can probe.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a monitored resource (a Web feed, an auction page, a stock
/// ticker, ...). Resource ids are dense: an instance with `n` resources uses
/// ids `0..n`, so a `ResourceId` doubles as an index into per-resource
/// arrays.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct ResourceId(pub u32);

impl ResourceId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for ResourceId {
    #[inline]
    fn from(v: u32) -> Self {
        ResourceId(v)
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_id_roundtrips_as_index() {
        let r = ResourceId(7);
        assert_eq!(r.index(), 7);
        assert_eq!(ResourceId::from(7u32), r);
    }

    #[test]
    fn resource_id_displays_with_prefix() {
        assert_eq!(ResourceId(3).to_string(), "r3");
    }

    #[test]
    fn resource_ids_order_by_value() {
        assert!(ResourceId(1) < ResourceId(2));
    }
}
