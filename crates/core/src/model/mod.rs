//! The data model of Section III: chronons, resources, execution intervals,
//! complex execution intervals, profiles, budgets, schedules, and the
//! capture / completeness arithmetic.

mod budget;
mod builder;
mod capture;
mod cei;
mod costs;
mod instance;
mod interval;
mod profile;
mod resource;
mod schedule;
mod time;

pub use budget::Budget;
pub use builder::InstanceBuilder;
pub use capture::{
    cei_captured, ei_capture_chronon, ei_captured, evaluate_outcomes, evaluate_schedule,
    gained_completeness, CaptureSet,
};
pub use cei::{Cei, CeiId};
pub use costs::ProbeCosts;
pub use instance::Instance;
pub use interval::Ei;
pub use profile::{compute_rank, rank_of_profiles, Profile, ProfileId};
pub use resource::ResourceId;
pub use schedule::Schedule;
pub use time::{Chronon, Epoch};
