//! Time: chronons and epochs.
//!
//! The paper models time as an epoch `T = (T_1, ..., T_K)` of `K` chronons,
//! where a *chronon* is an indivisible unit of time. We index chronons from
//! zero: an epoch of length `K` covers chronons `0..K`.

use serde::{Deserialize, Serialize};

/// An indivisible unit of time. Chronon `t` is the `t`-th tick of the epoch,
/// counted from zero.
///
/// A plain `u32` alias (rather than a newtype) keeps the hot scheduling loops
/// free of conversion noise; [`ResourceId`](super::ResourceId) and the other
/// identifiers are newtypes because they are never used in arithmetic.
pub type Chronon = u32;

/// A monitoring epoch: the closed-open chronon range `0..len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Epoch {
    len: Chronon,
}

impl Epoch {
    /// Creates an epoch of `len` chronons (`0..len`).
    ///
    /// # Panics
    /// Panics if `len == 0`; an empty epoch cannot schedule anything.
    pub fn new(len: Chronon) -> Self {
        assert!(len > 0, "epoch must contain at least one chronon");
        Epoch { len }
    }

    /// Number of chronons in the epoch (the paper's `K`).
    #[inline]
    pub fn len(self) -> Chronon {
        self.len
    }

    /// Epochs are never empty (enforced at construction).
    #[inline]
    pub fn is_empty(self) -> bool {
        false
    }

    /// `true` if chronon `t` falls inside the epoch.
    #[inline]
    pub fn contains(self, t: Chronon) -> bool {
        t < self.len
    }

    /// Iterates over every chronon of the epoch, in order.
    pub fn chronons(self) -> impl Iterator<Item = Chronon> {
        0..self.len
    }

    /// The last chronon of the epoch.
    #[inline]
    pub fn last(self) -> Chronon {
        self.len - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_contains_its_chronons() {
        let e = Epoch::new(5);
        assert_eq!(e.len(), 5);
        assert!(e.contains(0));
        assert!(e.contains(4));
        assert!(!e.contains(5));
        assert_eq!(e.last(), 4);
    }

    #[test]
    fn epoch_iterates_in_order() {
        let e = Epoch::new(3);
        let ts: Vec<Chronon> = e.chronons().collect();
        assert_eq!(ts, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one chronon")]
    fn zero_length_epoch_rejected() {
        let _ = Epoch::new(0);
    }

    #[test]
    fn epoch_is_never_empty() {
        assert!(!Epoch::new(1).is_empty());
    }
}
