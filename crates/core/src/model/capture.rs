//! Capture indicators and gained completeness (Section III-B/C, Eq. 1).

use super::{Cei, Chronon, Ei, Instance, Schedule};
use crate::stats::{CeiOutcome, RunStats};

/// The paper's indicator `X(I, S)`: `true` iff schedule `S` probes `r(I)`
/// at some chronon inside the window of `I`.
pub fn ei_captured(ei: Ei, schedule: &Schedule) -> bool {
    ei_capture_chronon(ei, schedule).is_some()
}

/// The chronon at which schedule `S` captures `I`: the earliest probe of
/// `r(I)` inside the window, or `None` if the window is never probed. This
/// is when the online engine marks the EI captured — the first probe that
/// lands in an open window.
pub fn ei_capture_chronon(ei: Ei, schedule: &Schedule) -> Option<Chronon> {
    (ei.start..=ei.end).find(|&t| schedule.is_probed(ei.resource, t))
}

/// The paper's indicator `X(η, S) = Π_{I ∈ η} X(I, S)` generalized to
/// threshold semantics: a CEI is captured iff at least `required` of its
/// EIs are. For plain AND CEIs (`required == |η|`, every Section III–V
/// construct) this is exactly the paper's conjunction.
pub fn cei_captured(cei: &Cei, schedule: &Schedule) -> bool {
    let mut captured = 0u16;
    for &ei in &cei.eis {
        if ei_captured(ei, schedule) {
            captured += 1;
            if captured >= cei.required {
                return true;
            }
        }
    }
    false
}

/// Gained completeness (Eq. 1): the fraction of CEIs over all profiles that
/// schedule `S` captures,
/// `GC(P, T, S) = Σ_p Σ_{η ∈ p} X(η, S) / Σ_p |p|`.
///
/// Returns `0.0` for an instance without CEIs.
pub fn gained_completeness(instance: &Instance, schedule: &Schedule) -> f64 {
    if instance.ceis.is_empty() {
        return 0.0;
    }
    let captured = instance
        .ceis
        .iter()
        .filter(|c| cei_captured(c, schedule))
        .count();
    captured as f64 / instance.ceis.len() as f64
}

/// Evaluates an arbitrary schedule against an instance, producing
/// [`RunStats`](crate::stats::RunStats) comparable to what the online engine
/// reports. Used to score offline schedules and to validate noisy
/// predictions against ground truth.
///
/// CEI-level counts agree exactly with the engine's. The EI-level count is
/// the raw indicator `Σ X(I, S)` and can exceed the engine's `eis_captured`,
/// because the engine stops crediting EIs of CEIs that already failed
/// (probes landing in such windows are coincidental under AND semantics).
///
/// Outcome chronons match the engine's bookkeeping on clean runs:
/// `Captured { at }` is the chronon of the probe that crossed the
/// `required` threshold (the `required`-th smallest per-EI capture
/// chronon), and `Failed { at }` is the doom chronon — the deadline whose
/// passing made `required` captures unreachable.
pub fn evaluate_schedule(instance: &Instance, schedule: &Schedule) -> RunStats {
    let mut stats = RunStats {
        n_ceis: instance.ceis.len() as u64,
        n_eis: instance.total_eis() as u64,
        probes_used: schedule.total_probes(),
        budget_spent: schedule
            .iter()
            .map(|(_, r)| u64::from(instance.costs.of(r)))
            .sum(),
        probes_available: instance.budget.total_over(instance.epoch.len()),
        ..Default::default()
    };
    for cei in &instance.ceis {
        let (outcome, captured_eis) = cei_outcome(cei, schedule);
        stats.eis_captured += captured_eis;
        stats.record_outcome_of(cei, outcome);
    }
    stats
}

/// Per-CEI outcomes of an arbitrary schedule, parallel to `instance.ceis`
/// — the same shape as [`RunResult::outcomes`](crate::engine::RunResult),
/// with the chronon semantics documented on [`evaluate_schedule`].
pub fn evaluate_outcomes(instance: &Instance, schedule: &Schedule) -> Vec<CeiOutcome> {
    instance
        .ceis
        .iter()
        .map(|cei| cei_outcome(cei, schedule).0)
        .collect()
}

/// One CEI's outcome under `schedule`, plus its raw captured-EI count.
fn cei_outcome(cei: &Cei, schedule: &Schedule) -> (CeiOutcome, u64) {
    let mut capture_times: Vec<Chronon> = Vec::new();
    let mut open_deadlines: Vec<Chronon> = Vec::new();
    for &ei in &cei.eis {
        match ei_capture_chronon(ei, schedule) {
            Some(t) => capture_times.push(t),
            None => open_deadlines.push(ei.end),
        }
    }
    let required = usize::from(cei.required);
    let captured_eis = capture_times.len() as u64;
    let outcome = if capture_times.len() >= required {
        // The threshold is crossed by the probe that lands the
        // `required`-th capture in chronon order.
        capture_times.sort_unstable();
        CeiOutcome::Captured {
            at: capture_times[required - 1],
        }
    } else {
        // Uncaptured windows close in deadline order; the CEI is doomed
        // once more than `size - required` of them have closed.
        // (`required ∈ [1, size]` and fewer than `required` captures
        // leave at least `size - required + 1` open deadlines, so the
        // index is in bounds.)
        open_deadlines.sort_unstable();
        CeiOutcome::Failed {
            at: open_deadlines[cei.size() - required],
        }
    };
    (outcome, captured_eis)
}

/// Incremental capture bookkeeping for one CEI: which of its EIs a schedule
/// has captured so far. Used by the online engine and the offline schedule
/// realizers, where re-scanning the schedule per EI (as the pure indicator
/// functions do) would be quadratic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaptureSet {
    captured: Vec<bool>,
    expired: Vec<bool>,
    n_captured: usize,
    n_expired: usize,
}

impl CaptureSet {
    /// A capture set for a CEI with `size` EIs, initially all uncaptured.
    pub fn new(size: usize) -> Self {
        CaptureSet {
            captured: vec![false; size],
            expired: vec![false; size],
            n_captured: 0,
            n_expired: 0,
        }
    }

    /// Marks EI `idx` captured. Idempotent; returns `true` if newly captured.
    ///
    /// # Panics
    /// Panics if the EI already expired uncaptured — a closed window cannot
    /// be captured.
    pub fn capture(&mut self, idx: usize) -> bool {
        assert!(!self.expired[idx], "EI {idx} already expired uncaptured");
        if self.captured[idx] {
            false
        } else {
            self.captured[idx] = true;
            self.n_captured += 1;
            true
        }
    }

    /// Rebuilds a capture set from per-EI `captured`/`expired` flags — the
    /// inverse of [`flags`](Self::flags) + [`expired_flags`](Self::expired_flags),
    /// used when restoring engine state from a serialized snapshot. Counts
    /// are recomputed from the flags.
    ///
    /// # Panics
    /// Panics if the two flag vectors disagree in length or any EI claims
    /// to be both captured and expired.
    pub fn from_flags(captured: Vec<bool>, expired: Vec<bool>) -> Self {
        assert_eq!(captured.len(), expired.len(), "flag vectors must align");
        let n_captured = captured.iter().filter(|&&c| c).count();
        let n_expired = expired.iter().filter(|&&e| e).count();
        assert!(
            captured.iter().zip(&expired).all(|(&c, &e)| !(c && e)),
            "an EI cannot be both captured and expired"
        );
        CaptureSet {
            captured,
            expired,
            n_captured,
            n_expired,
        }
    }

    /// Marks an uncaptured EI's window as closed. Idempotent; no effect on
    /// captured EIs. Returns `true` if newly expired.
    pub fn mark_expired(&mut self, idx: usize) -> bool {
        if self.captured[idx] || self.expired[idx] {
            false
        } else {
            self.expired[idx] = true;
            self.n_expired += 1;
            true
        }
    }

    /// `true` iff EI `idx` has been captured.
    #[inline]
    pub fn is_captured(&self, idx: usize) -> bool {
        self.captured[idx]
    }

    /// `true` iff EI `idx` expired uncaptured.
    #[inline]
    pub fn is_expired(&self, idx: usize) -> bool {
        self.expired[idx]
    }

    /// Number of EIs captured so far (`Σ_{I' ∈ η} X(I', S)`).
    #[inline]
    pub fn n_captured(&self) -> usize {
        self.n_captured
    }

    /// Number of EIs still to capture.
    #[inline]
    pub fn n_remaining(&self) -> usize {
        self.captured.len() - self.n_captured
    }

    /// Number of EIs that can still be captured (not yet expired), counting
    /// already-captured ones — the ceiling on the final capture count.
    #[inline]
    pub fn n_possible(&self) -> usize {
        self.captured.len() - self.n_expired
    }

    /// `true` iff at least `required` EIs are captured — the CEI is
    /// satisfied under threshold semantics (`required = |η|` is the paper's
    /// AND).
    #[inline]
    pub fn meets(&self, required: u16) -> bool {
        self.n_captured >= usize::from(required)
    }

    /// `true` iff fewer than `required` EIs can ever be captured — the CEI
    /// is doomed.
    #[inline]
    pub fn is_doomed(&self, required: u16) -> bool {
        self.n_possible() < usize::from(required)
    }

    /// `true` iff every EI is captured.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.n_captured == self.captured.len()
    }

    /// `true` iff at least one EI is captured — the CEI has been "probed at
    /// least once", the criterion the non-preemptive mode protects.
    #[inline]
    pub fn is_started(&self) -> bool {
        self.n_captured > 0
    }

    /// Per-EI capture flags, parallel to `cei.eis`.
    #[inline]
    pub fn flags(&self) -> &[bool] {
        &self.captured
    }

    /// Per-EI expired-uncaptured flags, parallel to `cei.eis`.
    #[inline]
    pub fn expired_flags(&self) -> &[bool] {
        &self.expired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Budget, CeiId, Epoch, InstanceBuilder, ProfileId, ResourceId};

    fn ei(r: u32, s: u32, e: u32) -> Ei {
        Ei::new(ResourceId(r), s, e)
    }

    #[test]
    fn ei_capture_requires_probe_inside_window() {
        let mut s = Schedule::new(2, Epoch::new(10));
        s.probe(ResourceId(0), 5);
        assert!(ei_captured(ei(0, 3, 5), &s));
        assert!(ei_captured(ei(0, 5, 9), &s));
        assert!(!ei_captured(ei(0, 6, 9), &s));
        assert!(!ei_captured(ei(1, 3, 7), &s));
    }

    #[test]
    fn cei_capture_is_conjunctive() {
        let cei = Cei::new(CeiId(0), ProfileId(0), vec![ei(0, 0, 2), ei(1, 1, 3)]);
        let mut s = Schedule::new(2, Epoch::new(5));
        s.probe(ResourceId(0), 1);
        assert!(!cei_captured(&cei, &s));
        s.probe(ResourceId(1), 3);
        assert!(cei_captured(&cei, &s));
    }

    #[test]
    fn completeness_counts_fraction_of_ceis() {
        let mut b = InstanceBuilder::new(2, 6, Budget::Uniform(1));
        let p = b.profile();
        b.cei(p, &[(0, 0, 1)]);
        b.cei(p, &[(1, 2, 3)]);
        b.cei(p, &[(0, 4, 5), (1, 4, 5)]);
        let inst = b.build();

        let mut s = Schedule::new(2, Epoch::new(6));
        s.probe(ResourceId(0), 0); // captures the first CEI
        s.probe(ResourceId(0), 4); // half of the third CEI
        assert!((gained_completeness(&inst, &s) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn completeness_of_empty_instance_is_zero() {
        let b = InstanceBuilder::new(1, 1, Budget::Uniform(1));
        let inst = b.build();
        let s = Schedule::new(1, Epoch::new(1));
        assert_eq!(gained_completeness(&inst, &s), 0.0);
    }

    #[test]
    fn evaluate_schedule_matches_indicator_functions() {
        let mut b = InstanceBuilder::new(2, 6, Budget::Uniform(2));
        let p = b.profile();
        b.cei(p, &[(0, 0, 1), (1, 0, 1)]);
        b.cei(p, &[(0, 3, 5)]);
        let inst = b.build();

        let mut s = Schedule::new(2, Epoch::new(6));
        s.probe(ResourceId(0), 0);
        s.probe(ResourceId(1), 1);
        let stats = evaluate_schedule(&inst, &s);
        assert_eq!(stats.ceis_captured, 1);
        assert_eq!(stats.eis_captured, 2);
        assert_eq!(stats.probes_used, 2);
        assert_eq!(stats.n_ceis, 2);
        assert!((stats.completeness() - 0.5).abs() < 1e-12);
        let total: u64 = stats.by_size.values().map(|b| b.total).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn capture_set_tracks_progress() {
        let mut cs = CaptureSet::new(3);
        assert!(!cs.is_started());
        assert!(cs.capture(1));
        assert!(!cs.capture(1)); // idempotent
        assert!(cs.is_started());
        assert!(!cs.is_complete());
        assert_eq!(cs.n_captured(), 1);
        assert_eq!(cs.n_remaining(), 2);
        cs.capture(0);
        cs.capture(2);
        assert!(cs.is_complete());
        assert_eq!(cs.flags(), &[true, true, true]);
    }

    #[test]
    fn capture_set_threshold_semantics() {
        let mut cs = CaptureSet::new(3);
        assert!(!cs.meets(2));
        cs.capture(0);
        cs.capture(2);
        assert!(cs.meets(2));
        assert!(!cs.meets(3));
        assert!(!cs.is_complete());
    }

    #[test]
    fn capture_set_expiry_and_doom() {
        let mut cs = CaptureSet::new(3);
        assert_eq!(cs.n_possible(), 3);
        assert!(cs.mark_expired(0));
        assert!(!cs.mark_expired(0)); // idempotent
        assert_eq!(cs.n_possible(), 2);
        assert!(cs.is_doomed(3)); // AND can never complete
        assert!(!cs.is_doomed(2)); // 2-of-3 still viable
        cs.capture(1);
        assert!(!cs.mark_expired(1)); // captured EIs never expire
        assert_eq!(cs.n_possible(), 2);
    }

    #[test]
    #[should_panic(expected = "already expired")]
    fn capturing_expired_ei_rejected() {
        let mut cs = CaptureSet::new(1);
        cs.mark_expired(0);
        cs.capture(0);
    }

    #[test]
    fn threshold_cei_captured_by_subset() {
        let cei = Cei::new(CeiId(0), ProfileId(0), vec![ei(0, 0, 2), ei(1, 1, 3)]).with_required(1);
        let mut s = Schedule::new(2, Epoch::new(5));
        s.probe(ResourceId(0), 1);
        assert!(cei_captured(&cei, &s));
    }

    #[test]
    fn capture_chronon_is_earliest_probe_in_window() {
        let mut s = Schedule::new(1, Epoch::new(10));
        s.probe(ResourceId(0), 2);
        s.probe(ResourceId(0), 5);
        assert_eq!(ei_capture_chronon(ei(0, 1, 6), &s), Some(2));
        assert_eq!(ei_capture_chronon(ei(0, 4, 6), &s), Some(5));
        assert_eq!(ei_capture_chronon(ei(0, 7, 9), &s), None);
    }

    #[test]
    fn captured_outcome_uses_threshold_crossing_probe() {
        // Both EIs end at 8, but the probes land at 2 and 5 — the AND
        // threshold is crossed by the *later* probe, not the window ends.
        let mut b = InstanceBuilder::new(2, 10, Budget::Uniform(2));
        let p = b.profile();
        b.cei(p, &[(0, 1, 8), (1, 1, 8)]);
        let inst = b.build();
        let mut s = Schedule::new(2, Epoch::new(10));
        s.probe(ResourceId(0), 2);
        s.probe(ResourceId(1), 5);
        let stats = evaluate_schedule(&inst, &s);
        assert_eq!(stats.ceis_captured, 1);
        assert_eq!(
            evaluate_outcomes(&inst, &s),
            vec![CeiOutcome::Captured { at: 5 }]
        );
    }

    #[test]
    fn failed_outcome_skips_captured_earliest_deadline() {
        // The earliest-deadline EI (end 2) *is* captured; the CEI is
        // doomed only when the second window closes uncaptured at 6.
        let mut b = InstanceBuilder::new(2, 10, Budget::Uniform(1));
        let p = b.profile();
        b.cei(p, &[(0, 0, 2), (1, 3, 6)]);
        let inst = b.build();
        let mut s = Schedule::new(2, Epoch::new(10));
        s.probe(ResourceId(0), 1);
        let stats = evaluate_schedule(&inst, &s);
        assert_eq!(stats.ceis_captured, 0);
        assert_eq!(
            evaluate_outcomes(&inst, &s),
            vec![CeiOutcome::Failed { at: 6 }]
        );
    }

    #[test]
    fn threshold_failure_dooms_at_unreachability_not_first_expiry() {
        // 2-of-3 with no probes at all: after the first deadline (2) one
        // can still capture 2 of the remaining windows; the threshold
        // becomes unreachable when the second window closes at 4.
        let mut b = InstanceBuilder::new(3, 10, Budget::Uniform(1));
        let p = b.profile();
        b.cei_threshold(p, 2, &[(0, 0, 2), (1, 0, 4), (2, 0, 6)]);
        let inst = b.build();
        let s = Schedule::new(3, Epoch::new(10));
        assert_eq!(
            evaluate_outcomes(&inst, &s),
            vec![CeiOutcome::Failed { at: 4 }]
        );
    }
}
