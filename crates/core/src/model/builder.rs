//! Ergonomic construction of problem instances.

use super::{Budget, Cei, CeiId, Chronon, Ei, Epoch, Instance, Profile, ProfileId, ResourceId};

/// Builds an [`Instance`] incrementally: declare profiles, attach CEIs,
/// build. Keeps ids dense and profile ranks up to date.
///
/// ```
/// use webmon_core::model::{Budget, InstanceBuilder};
///
/// let mut b = InstanceBuilder::new(2, 10, Budget::Uniform(1));
/// let p = b.profile();
/// let cei = b.cei(p, &[(0, 1, 4), (1, 2, 6)]);
/// let instance = b.build();
/// assert_eq!(instance.cei(cei).size(), 2);
/// assert_eq!(instance.profiles[p.index()].rank, 2);
/// ```
#[derive(Debug, Clone)]
pub struct InstanceBuilder {
    n_resources: u32,
    epoch: Epoch,
    budget: Budget,
    ceis: Vec<Cei>,
    profiles: Vec<Profile>,
}

impl InstanceBuilder {
    /// Starts an instance with `n_resources` resources, an epoch of
    /// `horizon` chronons, and the given probing budget.
    pub fn new(n_resources: u32, horizon: Chronon, budget: Budget) -> Self {
        InstanceBuilder {
            n_resources,
            epoch: Epoch::new(horizon),
            budget,
            ceis: Vec::new(),
            profiles: Vec::new(),
        }
    }

    /// Declares a new (empty) profile and returns its id.
    pub fn profile(&mut self) -> ProfileId {
        let id = ProfileId(self.profiles.len() as u32);
        self.profiles.push(Profile::new(id));
        id
    }

    /// Adds a CEI to profile `p`. Each `(resource, start, end)` triple is one
    /// EI. The CEI releases at the start of its earliest EI.
    ///
    /// # Panics
    /// Panics if `p` was not declared, `eis` is empty, or any triple is
    /// invalid.
    pub fn cei(&mut self, p: ProfileId, eis: &[(u32, Chronon, Chronon)]) -> CeiId {
        let eis: Vec<Ei> = eis
            .iter()
            .map(|&(r, s, e)| Ei::new(ResourceId(r), s, e))
            .collect();
        self.cei_from_eis(p, eis, None)
    }

    /// Adds a CEI with an explicit release chronon (the proxy learns of the
    /// CEI at `release`, possibly before any window opens).
    pub fn cei_released(
        &mut self,
        p: ProfileId,
        release: Chronon,
        eis: &[(u32, Chronon, Chronon)],
    ) -> CeiId {
        let eis: Vec<Ei> = eis
            .iter()
            .map(|&(r, s, e)| Ei::new(ResourceId(r), s, e))
            .collect();
        self.cei_from_eis(p, eis, Some(release))
    }

    /// Adds a CEI with a utility weight (§VII profile-utility extension).
    pub fn cei_weighted(
        &mut self,
        p: ProfileId,
        weight: f32,
        eis: &[(u32, Chronon, Chronon)],
    ) -> CeiId {
        let id = self.cei(p, eis);
        let cei = self.ceis.last_mut().expect("just pushed");
        *cei = cei.clone().with_weight(weight);
        id
    }

    /// Adds a threshold-semantics CEI: captured once `required` of its EIs
    /// are (§VII "alternatives" extension).
    pub fn cei_threshold(
        &mut self,
        p: ProfileId,
        required: u16,
        eis: &[(u32, Chronon, Chronon)],
    ) -> CeiId {
        let id = self.cei(p, eis);
        let cei = self.ceis.last_mut().expect("just pushed");
        *cei = cei.clone().with_required(required);
        id
    }

    /// Adds a CEI from already-built [`Ei`]s.
    pub fn cei_from_eis(&mut self, p: ProfileId, eis: Vec<Ei>, release: Option<Chronon>) -> CeiId {
        let id = CeiId(self.ceis.len() as u32);
        let cei = match release {
            Some(r) => Cei::with_release(id, p, r, eis),
            None => Cei::new(id, p, eis),
        };
        let profile = self
            .profiles
            .get_mut(p.index())
            .expect("profile must be declared before attaching CEIs");
        profile.ceis.push(id);
        profile.rank = profile
            .rank
            .max(u16::try_from(cei.size()).expect("CEI size fits in u16"));
        self.ceis.push(cei);
        id
    }

    /// Number of CEIs added so far.
    pub fn n_ceis(&self) -> usize {
        self.ceis.len()
    }

    /// Number of profiles declared so far.
    pub fn n_profiles(&self) -> usize {
        self.profiles.len()
    }

    /// Finalizes the instance, validating all invariants.
    pub fn build(self) -> Instance {
        Instance::from_parts(
            self.n_resources,
            self.epoch,
            self.budget,
            self.ceis,
            self.profiles,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = InstanceBuilder::new(2, 10, Budget::Uniform(1));
        let p0 = b.profile();
        let p1 = b.profile();
        assert_eq!(p0, ProfileId(0));
        assert_eq!(p1, ProfileId(1));
        let c0 = b.cei(p0, &[(0, 0, 1)]);
        let c1 = b.cei(p1, &[(1, 2, 3)]);
        assert_eq!(c0, CeiId(0));
        assert_eq!(c1, CeiId(1));
        assert_eq!(b.n_ceis(), 2);
        assert_eq!(b.n_profiles(), 2);
    }

    #[test]
    fn builder_maintains_profile_rank() {
        let mut b = InstanceBuilder::new(3, 10, Budget::Uniform(1));
        let p = b.profile();
        b.cei(p, &[(0, 0, 1)]);
        b.cei(p, &[(0, 2, 3), (1, 2, 3), (2, 2, 3)]);
        b.cei(p, &[(0, 5, 6), (1, 5, 6)]);
        let inst = b.build();
        assert_eq!(inst.profiles[0].rank, 3);
        assert_eq!(inst.profiles[0].len(), 3);
    }

    #[test]
    fn cei_released_sets_release() {
        let mut b = InstanceBuilder::new(1, 10, Budget::Uniform(1));
        let p = b.profile();
        b.cei_released(p, 0, &[(0, 4, 6)]);
        let inst = b.build();
        assert_eq!(inst.cei(CeiId(0)).release, 0);
        assert_eq!(inst.released_at(0), &[CeiId(0)]);
    }

    #[test]
    #[should_panic(expected = "declared before attaching")]
    fn cei_on_undeclared_profile_rejected() {
        let mut b = InstanceBuilder::new(1, 10, Budget::Uniform(1));
        b.cei(ProfileId(3), &[(0, 0, 1)]);
    }

    #[test]
    fn weighted_and_threshold_ceis() {
        let mut b = InstanceBuilder::new(3, 10, Budget::Uniform(1));
        let p = b.profile();
        let w = b.cei_weighted(p, 2.5, &[(0, 0, 1)]);
        let t = b.cei_threshold(p, 1, &[(0, 2, 3), (1, 2, 3), (2, 2, 3)]);
        let inst = b.build();
        assert_eq!(inst.cei(w).weight, 2.5);
        assert_eq!(inst.cei(t).required, 1);
        assert_eq!(inst.cei(t).size(), 3);
        // Rank still counts EIs, not the threshold.
        assert_eq!(inst.profiles[0].rank, 3);
    }

    #[test]
    fn empty_build_succeeds() {
        let inst = InstanceBuilder::new(1, 1, Budget::Uniform(1)).build();
        assert_eq!(inst.total_eis(), 0);
        assert_eq!(inst.rank(), 0);
    }
}
