//! Simple execution intervals (EIs).

use super::{Chronon, ResourceId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple *execution interval*: resource `r` must be probed at least once
/// during the closed chronon range `[start, end]` for the interval to be
/// captured (the paper's `I = [T_s, T_f]` with `T_s <= T_f`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ei {
    /// The resource this interval refers to (`r(I)`).
    pub resource: ResourceId,
    /// First chronon of the window (`I.T_s`), inclusive.
    pub start: Chronon,
    /// Last chronon of the window (`I.T_f`), inclusive.
    pub end: Chronon,
}

impl Ei {
    /// Creates an execution interval.
    ///
    /// # Panics
    /// Panics if `start > end` (the paper requires `T_s <= T_f`).
    pub fn new(resource: ResourceId, start: Chronon, end: Chronon) -> Self {
        assert!(
            start <= end,
            "execution interval must satisfy T_s <= T_f (got [{start}, {end}])"
        );
        Ei {
            resource,
            start,
            end,
        }
    }

    /// Number of chronons in the window (the paper's `|I|`).
    #[inline]
    pub fn len(self) -> u32 {
        self.end - self.start + 1
    }

    /// Execution intervals always contain at least one chronon.
    #[inline]
    pub fn is_empty(self) -> bool {
        false
    }

    /// `true` if the window contains chronon `t`.
    #[inline]
    pub fn contains(self, t: Chronon) -> bool {
        self.start <= t && t <= self.end
    }

    /// `true` if the window is *active* at chronon `t` — i.e. a probe at `t`
    /// would capture it. Synonym of [`contains`](Self::contains), named after
    /// the paper's usage.
    #[inline]
    pub fn is_active(self, t: Chronon) -> bool {
        self.contains(t)
    }

    /// `true` once the window has passed without possibility of capture at
    /// or after chronon `t`.
    #[inline]
    pub fn is_expired(self, t: Chronon) -> bool {
        t > self.end
    }

    /// `true` if the window has not opened yet at chronon `t`.
    #[inline]
    pub fn is_future(self, t: Chronon) -> bool {
        t < self.start
    }

    /// Remaining chronons including `t` itself — the paper's
    /// `S-EDF(I, T) = I.T_f - T + 1`. Meaningful while `t <= end`.
    #[inline]
    pub fn remaining(self, t: Chronon) -> u32 {
        debug_assert!(t <= self.end, "remaining() called after expiry");
        self.end - t + 1
    }

    /// `true` if the two intervals share at least one chronon.
    #[inline]
    pub fn overlaps_in_time(self, other: Ei) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// `true` if the intervals refer to the same resource *and* share a
    /// chronon — the paper's *intra-resource overlap*, which a single probe
    /// can exploit to capture both.
    #[inline]
    pub fn intra_resource_overlap(self, other: Ei) -> bool {
        self.resource == other.resource && self.overlaps_in_time(other)
    }
}

impl fmt::Display for Ei {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@[{}, {}]", self.resource, self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ei(r: u32, s: Chronon, e: Chronon) -> Ei {
        Ei::new(ResourceId(r), s, e)
    }

    #[test]
    fn length_counts_inclusive_chronons() {
        assert_eq!(ei(0, 3, 3).len(), 1);
        assert_eq!(ei(0, 3, 7).len(), 5);
    }

    #[test]
    #[should_panic(expected = "T_s <= T_f")]
    fn inverted_interval_rejected() {
        let _ = ei(0, 5, 4);
    }

    #[test]
    fn activity_lifecycle() {
        let i = ei(1, 2, 4);
        assert!(i.is_future(1));
        assert!(!i.is_active(1));
        assert!(i.is_active(2));
        assert!(i.is_active(4));
        assert!(!i.is_active(5));
        assert!(i.is_expired(5));
        assert!(!i.is_expired(4));
    }

    #[test]
    fn remaining_matches_s_edf_definition() {
        // Paper: S-EDF(I, T) = I.T_f - T + 1.
        let i = ei(0, 2, 6);
        assert_eq!(i.remaining(2), 5);
        assert_eq!(i.remaining(6), 1);
    }

    #[test]
    fn time_overlap_is_symmetric_and_inclusive() {
        let a = ei(0, 0, 3);
        let b = ei(1, 3, 5);
        let c = ei(0, 4, 5);
        assert!(a.overlaps_in_time(b));
        assert!(b.overlaps_in_time(a));
        assert!(!a.overlaps_in_time(c));
    }

    #[test]
    fn intra_resource_overlap_requires_same_resource() {
        let a = ei(0, 0, 3);
        let b = ei(1, 2, 5);
        let c = ei(0, 2, 5);
        assert!(!a.intra_resource_overlap(b));
        assert!(a.intra_resource_overlap(c));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(ei(2, 1, 4).to_string(), "r2@[1, 4]");
    }

    #[test]
    fn single_chronon_interval_is_never_empty() {
        assert!(!ei(0, 0, 0).is_empty());
    }
}
