//! Data-delivery schedules: which resources the proxy probes at each chronon.

use super::{Budget, Chronon, Epoch, ResourceId};
use serde::{Deserialize, Serialize};

/// A data-delivery schedule `S = {s_{i,j}}`: `s_{i,j} = 1` iff resource `r_i`
/// is probed at chronon `T_j`.
///
/// Stored sparsely: a sorted, deduplicated list of probed resources per
/// chronon. Real schedules probe a handful of resources per chronon out of
/// hundreds, so the dense `n × K` matrix of the paper's formalism would be
/// almost entirely zeros.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    n_resources: u32,
    /// `probes[t]` = sorted resource ids probed at chronon `t`.
    probes: Vec<Vec<ResourceId>>,
}

impl Schedule {
    /// Creates an empty schedule over `epoch` for `n_resources` resources.
    pub fn new(n_resources: u32, epoch: Epoch) -> Self {
        Schedule {
            n_resources,
            probes: vec![Vec::new(); epoch.len() as usize],
        }
    }

    /// Number of resources this schedule ranges over.
    #[inline]
    pub fn n_resources(&self) -> u32 {
        self.n_resources
    }

    /// The epoch length `K`.
    #[inline]
    pub fn horizon(&self) -> Chronon {
        self.probes.len() as Chronon
    }

    /// Sets `s_{r,t} = 1`. Idempotent. Returns `true` if the probe was new.
    ///
    /// # Panics
    /// Panics if `t` is outside the epoch or `r` outside the resource range.
    pub fn probe(&mut self, r: ResourceId, t: Chronon) -> bool {
        assert!(
            (t as usize) < self.probes.len(),
            "chronon {t} outside epoch of {} chronons",
            self.probes.len()
        );
        assert!(
            r.0 < self.n_resources,
            "resource {r} outside range of {} resources",
            self.n_resources
        );
        let row = &mut self.probes[t as usize];
        match row.binary_search(&r) {
            Ok(_) => false,
            Err(pos) => {
                row.insert(pos, r);
                true
            }
        }
    }

    /// `true` iff resource `r` is probed at chronon `t`.
    #[inline]
    pub fn is_probed(&self, r: ResourceId, t: Chronon) -> bool {
        self.probes
            .get(t as usize)
            .is_some_and(|row| row.binary_search(&r).is_ok())
    }

    /// The sorted resources probed at chronon `t`.
    #[inline]
    pub fn probes_at(&self, t: Chronon) -> &[ResourceId] {
        self.probes
            .get(t as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total number of probes in the schedule.
    pub fn total_probes(&self) -> u64 {
        self.probes.iter().map(|row| row.len() as u64).sum()
    }

    /// `true` iff the schedule satisfies the budget constraint of Problem 1
    /// at every chronon: `Σ_i s_{i,j} <= C_j`.
    pub fn is_feasible(&self, budget: &Budget) -> bool {
        self.probes
            .iter()
            .enumerate()
            .all(|(t, row)| row.len() as u32 <= budget.at(t as Chronon))
    }

    /// Iterates `(chronon, resource)` over all probes in chronological order.
    pub fn iter(&self) -> impl Iterator<Item = (Chronon, ResourceId)> + '_ {
        self.probes
            .iter()
            .enumerate()
            .flat_map(|(t, row)| row.iter().map(move |&r| (t as Chronon, r)))
    }

    /// Removes every probe at chronon `t`. Used by the offline
    /// branch-and-bound search to backtrack a chronon's decisions.
    pub(crate) fn clear_chronon(&mut self, t: Chronon) {
        if let Some(row) = self.probes.get_mut(t as usize) {
            row.clear();
        }
    }

    /// Merges another schedule into this one (union of probes).
    ///
    /// # Panics
    /// Panics if dimensions differ.
    pub fn union_with(&mut self, other: &Schedule) {
        assert_eq!(self.n_resources, other.n_resources);
        assert_eq!(self.probes.len(), other.probes.len());
        for (t, r) in other.iter() {
            self.probe(r, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule() -> Schedule {
        Schedule::new(4, Epoch::new(5))
    }

    #[test]
    fn probe_is_idempotent_and_sorted() {
        let mut s = schedule();
        assert!(s.probe(ResourceId(2), 1));
        assert!(s.probe(ResourceId(0), 1));
        assert!(!s.probe(ResourceId(2), 1));
        assert_eq!(s.probes_at(1), &[ResourceId(0), ResourceId(2)]);
        assert_eq!(s.total_probes(), 2);
    }

    #[test]
    fn is_probed_reports_membership() {
        let mut s = schedule();
        s.probe(ResourceId(3), 4);
        assert!(s.is_probed(ResourceId(3), 4));
        assert!(!s.is_probed(ResourceId(3), 3));
        assert!(!s.is_probed(ResourceId(2), 4));
    }

    #[test]
    #[should_panic(expected = "outside epoch")]
    fn probe_outside_epoch_rejected() {
        let mut s = schedule();
        s.probe(ResourceId(0), 5);
    }

    #[test]
    #[should_panic(expected = "outside range")]
    fn probe_unknown_resource_rejected() {
        let mut s = schedule();
        s.probe(ResourceId(4), 0);
    }

    #[test]
    fn feasibility_against_uniform_budget() {
        let mut s = schedule();
        s.probe(ResourceId(0), 0);
        s.probe(ResourceId(1), 0);
        assert!(s.is_feasible(&Budget::Uniform(2)));
        assert!(!s.is_feasible(&Budget::Uniform(1)));
    }

    #[test]
    fn feasibility_against_per_chronon_budget() {
        let mut s = schedule();
        s.probe(ResourceId(0), 0);
        s.probe(ResourceId(1), 2);
        s.probe(ResourceId(2), 2);
        let b = Budget::PerChronon(vec![1, 0, 2, 0, 0]);
        assert!(s.is_feasible(&b));
        s.probe(ResourceId(0), 1);
        assert!(!s.is_feasible(&b));
    }

    #[test]
    fn iter_is_chronological() {
        let mut s = schedule();
        s.probe(ResourceId(1), 3);
        s.probe(ResourceId(0), 1);
        let all: Vec<_> = s.iter().collect();
        assert_eq!(all, vec![(1, ResourceId(0)), (3, ResourceId(1))]);
    }

    #[test]
    fn union_merges_probes() {
        let mut a = schedule();
        a.probe(ResourceId(0), 0);
        let mut b = schedule();
        b.probe(ResourceId(0), 0);
        b.probe(ResourceId(1), 2);
        a.union_with(&b);
        assert_eq!(a.total_probes(), 2);
        assert!(a.is_probed(ResourceId(1), 2));
    }
}
