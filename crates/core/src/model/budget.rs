//! Probing budgets: the per-chronon constraint `Σ_i s_{i,j} <= C_j`.

use super::Chronon;
use serde::{Deserialize, Serialize};

/// The proxy's probing budget: at chronon `T_j` it may probe at most `C_j`
/// resources. The paper's budget vector `C = (C_1, ..., C_K)`; most
/// experiments use a uniform `C`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Budget {
    /// The same number of probes at every chronon.
    Uniform(u32),
    /// An explicit per-chronon vector; chronons past the end of the vector
    /// get zero budget.
    PerChronon(Vec<u32>),
}

impl Budget {
    /// The budget `C_j` available at chronon `t`.
    #[inline]
    pub fn at(&self, t: Chronon) -> u32 {
        match self {
            Budget::Uniform(c) => *c,
            Budget::PerChronon(v) => v.get(t as usize).copied().unwrap_or(0),
        }
    }

    /// `C_max = max_j C_j` over the first `horizon` chronons — the quantity
    /// driving the enumeration cost of Prop. 4 and the approximation ratio
    /// of the Local-Ratio baseline.
    pub fn max_over(&self, horizon: Chronon) -> u32 {
        match self {
            Budget::Uniform(c) => *c,
            Budget::PerChronon(v) => v.iter().take(horizon as usize).copied().max().unwrap_or(0),
        }
    }

    /// Total probes available over the first `horizon` chronons.
    pub fn total_over(&self, horizon: Chronon) -> u64 {
        match self {
            Budget::Uniform(c) => u64::from(*c) * u64::from(horizon),
            Budget::PerChronon(v) => v.iter().take(horizon as usize).map(|&c| u64::from(c)).sum(),
        }
    }
}

impl From<u32> for Budget {
    fn from(c: u32) -> Self {
        Budget::Uniform(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_budget_is_constant() {
        let b = Budget::Uniform(3);
        assert_eq!(b.at(0), 3);
        assert_eq!(b.at(999), 3);
        assert_eq!(b.max_over(1000), 3);
        assert_eq!(b.total_over(10), 30);
    }

    #[test]
    fn per_chronon_budget_indexes_and_defaults_to_zero() {
        let b = Budget::PerChronon(vec![1, 0, 4]);
        assert_eq!(b.at(0), 1);
        assert_eq!(b.at(1), 0);
        assert_eq!(b.at(2), 4);
        assert_eq!(b.at(3), 0);
    }

    #[test]
    fn per_chronon_max_respects_horizon() {
        let b = Budget::PerChronon(vec![1, 2, 9]);
        assert_eq!(b.max_over(2), 2);
        assert_eq!(b.max_over(3), 9);
        assert_eq!(b.max_over(0), 0);
    }

    #[test]
    fn per_chronon_total_respects_horizon() {
        let b = Budget::PerChronon(vec![1, 2, 9]);
        assert_eq!(b.total_over(2), 3);
        assert_eq!(b.total_over(10), 12);
    }

    #[test]
    fn from_u32_builds_uniform() {
        assert_eq!(Budget::from(5), Budget::Uniform(5));
    }
}
