//! Complex execution intervals (CEIs).

use super::{Chronon, Ei, ProfileId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a complex execution interval, unique within an
/// [`Instance`](super::Instance). Dense: usable as an index into per-CEI
/// arrays.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct CeiId(pub u32);

impl CeiId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CeiId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cei{}", self.0)
    }
}

/// A *complex execution interval*: a bag of [`Ei`]s, possibly over several
/// resources, under AND semantics — every EI must be captured (in any order)
/// for the CEI to be captured.
///
/// CEIs arrive online: the proxy learns of a CEI at its `release` chronon
/// (e.g. when a triggering update is detected), which is never later than the
/// start of its earliest EI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cei {
    /// Instance-unique identifier.
    pub id: CeiId,
    /// The profile this CEI belongs to.
    pub profile: ProfileId,
    /// Chronon at which the proxy learns of this CEI.
    pub release: Chronon,
    /// The execution intervals to capture. A *bag*: duplicates are legal
    /// (intra-resource overlap).
    pub eis: Vec<Ei>,
    /// Number of EIs that must be captured for the CEI to be satisfied.
    /// The paper's AND semantics is `required == eis.len()` (the default);
    /// smaller values realize the "alternatives" extension of Section VII
    /// (capture of a subset of EIs). Always `1 ≤ required ≤ eis.len()`.
    pub required: u16,
    /// Client-assigned utility of capturing this CEI — the profile-utility
    /// extension of Section VII. Plain gained completeness (Eq. 1) weights
    /// every CEI `1.0` (the default).
    pub weight: f32,
}

/// AND-semantics default for `required`: the EI count, with an explicit
/// guard instead of a silent `as u16` truncation (a 65536-EI CEI would
/// otherwise wrap to `required = 0` and break capture accounting).
fn checked_required(eis: &[Ei]) -> u16 {
    u16::try_from(eis.len())
        .unwrap_or_else(|_| panic!("a CEI holds at most {} EIs (got {})", u16::MAX, eis.len()))
}

impl Cei {
    /// Creates an AND-semantics, unit-weight CEI releasing at the start of
    /// its earliest EI.
    ///
    /// # Panics
    /// Panics if `eis` is empty — a CEI must contain at least one EI — or
    /// holds more than `u16::MAX` EIs (the `required` counter is a `u16`;
    /// silently truncating would corrupt the AND semantics).
    pub fn new(id: CeiId, profile: ProfileId, eis: Vec<Ei>) -> Self {
        assert!(!eis.is_empty(), "a CEI must contain at least one EI");
        let release = eis.iter().map(|i| i.start).min().expect("non-empty");
        let required = checked_required(&eis);
        Cei {
            id,
            profile,
            release,
            eis,
            required,
            weight: 1.0,
        }
    }

    /// Creates a CEI with an explicit release chronon.
    ///
    /// # Panics
    /// Panics if `eis` is empty or holds more than `u16::MAX` EIs, or if
    /// `release` is later than the earliest EI start (a CEI the proxy
    /// learns about only after one of its windows has opened could never be
    /// captured reliably; clamp upstream instead).
    pub fn with_release(id: CeiId, profile: ProfileId, release: Chronon, eis: Vec<Ei>) -> Self {
        assert!(!eis.is_empty(), "a CEI must contain at least one EI");
        let earliest = eis.iter().map(|i| i.start).min().expect("non-empty");
        assert!(
            release <= earliest,
            "release chronon {release} is after the earliest EI start {earliest}"
        );
        let required = checked_required(&eis);
        Cei {
            id,
            profile,
            release,
            eis,
            required,
            weight: 1.0,
        }
    }

    /// Sets the satisfaction threshold: the CEI is captured once `required`
    /// of its EIs are (threshold / "alternatives" semantics, §VII).
    ///
    /// # Panics
    /// Panics unless `1 ≤ required ≤ |η|`.
    pub fn with_required(mut self, required: u16) -> Self {
        assert!(
            required >= 1 && usize::from(required) <= self.eis.len(),
            "required must lie in [1, {}] (got {required})",
            self.eis.len()
        );
        self.required = required;
        self
    }

    /// Sets the client utility weight of this CEI.
    ///
    /// # Panics
    /// Panics unless the weight is finite and positive.
    pub fn with_weight(mut self, weight: f32) -> Self {
        assert!(
            weight.is_finite() && weight > 0.0,
            "weight must be finite and positive (got {weight})"
        );
        self.weight = weight;
        self
    }

    /// `true` if this CEI uses the paper's plain AND semantics at unit
    /// weight (every Section III–V construct does).
    pub fn is_plain(&self) -> bool {
        usize::from(self.required) == self.eis.len() && self.weight == 1.0
    }

    /// Number of execution intervals — the paper's `|η|`, the basis of
    /// profile rank.
    #[inline]
    pub fn size(&self) -> usize {
        self.eis.len()
    }

    /// Sum of all EI lengths, `Σ_{I ∈ η} |I|` — the quantity bounding the
    /// MRSF competitive ratio (Prop. 2) and the M-EDF weight at release.
    pub fn total_chronons(&self) -> u64 {
        self.eis.iter().map(|i| u64::from(i.len())).sum()
    }

    /// Last chronon at which any EI of this CEI is still active; after this
    /// the CEI is either captured or failed.
    pub fn horizon(&self) -> Chronon {
        self.eis.iter().map(|i| i.end).max().expect("non-empty")
    }

    /// First chronon at which the earliest EI opens.
    pub fn earliest_start(&self) -> Chronon {
        self.eis.iter().map(|i| i.start).min().expect("non-empty")
    }

    /// Deadline of the tightest EI: if no probe lands in any window by its
    /// own end, the CEI fails at the earliest such end.
    pub fn earliest_deadline(&self) -> Chronon {
        self.eis.iter().map(|i| i.end).min().expect("non-empty")
    }

    /// `true` if every EI has a width of exactly one chronon — the paper's
    /// `P^[1]` class (Prop. 3 / Section IV-B.2).
    pub fn is_unit_width(&self) -> bool {
        self.eis.iter().all(|i| i.len() == 1)
    }

    /// `true` if at least two EIs of this CEI refer to the same resource and
    /// overlap in time (*intra-resource overlap*), meaning one probe could
    /// capture both.
    pub fn has_intra_resource_overlap(&self) -> bool {
        for (a, ei_a) in self.eis.iter().enumerate() {
            for ei_b in &self.eis[a + 1..] {
                if ei_a.intra_resource_overlap(*ei_b) {
                    return true;
                }
            }
        }
        false
    }
}

impl fmt::Display for Cei {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.id)?;
        for (k, ei) in self.eis.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{ei}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ResourceId;

    fn ei(r: u32, s: Chronon, e: Chronon) -> Ei {
        Ei::new(ResourceId(r), s, e)
    }

    fn cei(eis: Vec<Ei>) -> Cei {
        Cei::new(CeiId(0), ProfileId(0), eis)
    }

    #[test]
    fn release_defaults_to_earliest_start() {
        let c = cei(vec![ei(0, 5, 9), ei(1, 3, 4)]);
        assert_eq!(c.release, 3);
        assert_eq!(c.earliest_start(), 3);
    }

    #[test]
    fn explicit_release_must_precede_earliest_start() {
        let c = Cei::with_release(CeiId(1), ProfileId(0), 1, vec![ei(0, 5, 9)]);
        assert_eq!(c.release, 1);
    }

    #[test]
    #[should_panic(expected = "after the earliest EI start")]
    fn late_release_rejected() {
        let _ = Cei::with_release(CeiId(1), ProfileId(0), 6, vec![ei(0, 5, 9)]);
    }

    #[test]
    #[should_panic(expected = "at least one EI")]
    fn empty_cei_rejected() {
        let _ = cei(vec![]);
    }

    #[test]
    fn required_counts_up_to_u16_max_eis() {
        let eis: Vec<Ei> = (0..u32::from(u16::MAX)).map(|_| ei(0, 0, 1)).collect();
        let c = cei(eis);
        assert_eq!(c.required, u16::MAX);
    }

    #[test]
    #[should_panic(expected = "a CEI holds at most 65535 EIs")]
    fn oversized_cei_rejected_not_truncated() {
        // 65536 EIs would silently wrap `required` to 0 under `as u16`.
        let eis: Vec<Ei> = (0..=u32::from(u16::MAX)).map(|_| ei(0, 0, 1)).collect();
        let _ = cei(eis);
    }

    #[test]
    fn size_and_total_chronons() {
        let c = cei(vec![ei(0, 0, 4), ei(1, 2, 3)]);
        assert_eq!(c.size(), 2);
        assert_eq!(c.total_chronons(), 5 + 2);
    }

    #[test]
    fn horizon_and_deadline() {
        let c = cei(vec![ei(0, 0, 4), ei(1, 2, 9), ei(2, 1, 2)]);
        assert_eq!(c.horizon(), 9);
        assert_eq!(c.earliest_deadline(), 2);
    }

    #[test]
    fn unit_width_detection() {
        assert!(cei(vec![ei(0, 3, 3), ei(1, 7, 7)]).is_unit_width());
        assert!(!cei(vec![ei(0, 3, 4)]).is_unit_width());
    }

    #[test]
    fn intra_resource_overlap_detection() {
        // Same resource, overlapping windows.
        assert!(cei(vec![ei(0, 0, 4), ei(0, 3, 6)]).has_intra_resource_overlap());
        // Same resource, disjoint windows.
        assert!(!cei(vec![ei(0, 0, 2), ei(0, 3, 6)]).has_intra_resource_overlap());
        // Different resources, overlapping windows.
        assert!(!cei(vec![ei(0, 0, 4), ei(1, 3, 6)]).has_intra_resource_overlap());
    }

    #[test]
    fn defaults_are_plain_and_semantics() {
        let c = cei(vec![ei(0, 0, 1), ei(1, 0, 1)]);
        assert_eq!(c.required, 2);
        assert_eq!(c.weight, 1.0);
        assert!(c.is_plain());
    }

    #[test]
    fn threshold_and_weight_builders() {
        let c = cei(vec![ei(0, 0, 1), ei(1, 0, 1), ei(2, 0, 1)])
            .with_required(2)
            .with_weight(3.5);
        assert_eq!(c.required, 2);
        assert_eq!(c.weight, 3.5);
        assert!(!c.is_plain());
    }

    #[test]
    #[should_panic(expected = "required must lie in")]
    fn zero_threshold_rejected() {
        let _ = cei(vec![ei(0, 0, 1)]).with_required(0);
    }

    #[test]
    #[should_panic(expected = "required must lie in")]
    fn oversized_threshold_rejected() {
        let _ = cei(vec![ei(0, 0, 1)]).with_required(2);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn non_positive_weight_rejected() {
        let _ = cei(vec![ei(0, 0, 1)]).with_weight(0.0);
    }

    #[test]
    fn duplicate_eis_are_legal_bag_semantics() {
        let c = cei(vec![ei(0, 1, 2), ei(0, 1, 2)]);
        assert_eq!(c.size(), 2);
        assert!(c.has_intra_resource_overlap());
    }

    #[test]
    fn display_lists_eis() {
        let c = cei(vec![ei(0, 1, 2), ei(1, 3, 4)]);
        assert_eq!(c.to_string(), "cei0(r0@[1, 2], r1@[3, 4])");
    }
}
