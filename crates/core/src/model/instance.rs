//! A complete problem instance of Problem 1 (Complex Monitoring).

use super::{rank_of_profiles, Budget, Cei, CeiId, Chronon, Epoch, ProbeCosts, Profile};
use serde::{Deserialize, Serialize};

/// One instance of the Complex Monitoring problem (Problem 1): `n` resources,
/// an epoch of `K` chronons, a probing budget, and a set of client profiles
/// whose CEIs must be captured.
///
/// CEIs are stored flat (indexed by [`CeiId`]); profiles reference them by
/// id. Construct instances through [`InstanceBuilder`](super::InstanceBuilder).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Number of resources `n`; resource ids are `0..n`.
    pub n_resources: u32,
    /// The monitoring epoch (the paper's `K` chronons).
    pub epoch: Epoch,
    /// The probing budget `C`.
    pub budget: Budget,
    /// Per-resource probe costs (the paper's setting is uniform; varying
    /// costs are the §III extension).
    pub costs: ProbeCosts,
    /// All CEIs, indexed by `CeiId`.
    pub ceis: Vec<Cei>,
    /// All profiles, indexed by `ProfileId`.
    pub profiles: Vec<Profile>,
    /// CEI ids grouped by release chronon: `released[t]` lists the CEIs the
    /// proxy learns about at chronon `t`. Precomputed for the online engine.
    released: Vec<Vec<CeiId>>,
}

impl Instance {
    /// Assembles an instance from parts, indexing CEIs by release chronon.
    ///
    /// # Panics
    /// Panics if any CEI references a chronon outside the epoch, a resource
    /// outside `0..n_resources`, or ids are not dense and in order.
    pub fn from_parts(
        n_resources: u32,
        epoch: Epoch,
        budget: Budget,
        ceis: Vec<Cei>,
        profiles: Vec<Profile>,
    ) -> Self {
        let mut released = vec![Vec::new(); epoch.len() as usize];
        for (idx, cei) in ceis.iter().enumerate() {
            assert_eq!(
                cei.id.index(),
                idx,
                "CEI ids must be dense and in storage order"
            );
            assert!(
                epoch.contains(cei.horizon()),
                "{}: horizon {} outside epoch of {} chronons",
                cei.id,
                cei.horizon(),
                epoch.len()
            );
            for ei in &cei.eis {
                assert!(
                    ei.resource.0 < n_resources,
                    "{}: resource {} outside range of {n_resources} resources",
                    cei.id,
                    ei.resource
                );
            }
            released[cei.release as usize].push(cei.id);
        }
        for (idx, p) in profiles.iter().enumerate() {
            assert_eq!(
                p.id.index(),
                idx,
                "profile ids must be dense and in storage order"
            );
        }
        Instance {
            n_resources,
            epoch,
            budget,
            costs: ProbeCosts::Uniform,
            ceis,
            profiles,
            released,
        }
    }

    /// Replaces the probe-cost model (the §III varying-costs extension).
    pub fn with_costs(mut self, costs: ProbeCosts) -> Self {
        self.costs = costs;
        self
    }

    /// CEIs the proxy learns about at chronon `t` (the online arrival set
    /// `η(j)` of Algorithm 1).
    #[inline]
    pub fn released_at(&self, t: Chronon) -> &[CeiId] {
        self.released
            .get(t as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Looks up a CEI by id.
    #[inline]
    pub fn cei(&self, id: CeiId) -> &Cei {
        &self.ceis[id.index()]
    }

    /// `rank(P)`: the maximal profile rank in the instance.
    pub fn rank(&self) -> u16 {
        rank_of_profiles(&self.profiles)
    }

    /// Total number of EIs across all CEIs (the normalizer of the paper's
    /// runtime metric).
    pub fn total_eis(&self) -> usize {
        self.ceis.iter().map(Cei::size).sum()
    }

    /// `true` if every CEI has unit-width EIs — the `P^[1]` class.
    pub fn is_unit_width(&self) -> bool {
        self.ceis.iter().all(Cei::is_unit_width)
    }

    /// `true` if no two EIs anywhere in the instance overlap on the same
    /// resource — the "no intra-resource overlap" premise of Props. 1 and 2.
    /// Cost: `O(E log E)` over all EIs.
    pub fn has_no_intra_resource_overlap(&self) -> bool {
        let mut by_resource: Vec<Vec<(Chronon, Chronon)>> =
            vec![Vec::new(); self.n_resources as usize];
        for cei in &self.ceis {
            for ei in &cei.eis {
                by_resource[ei.resource.index()].push((ei.start, ei.end));
            }
        }
        for spans in &mut by_resource {
            spans.sort_unstable();
            for w in spans.windows(2) {
                // Sorted by start: overlap iff the next start falls at or
                // before the previous end.
                if w[1].0 <= w[0].1 {
                    return false;
                }
            }
        }
        true
    }

    /// The MRSF competitive-ratio bound of Prop. 2:
    /// `l = max_{η ∈ P} Σ_{I ∈ η} |I|`.
    pub fn mrsf_competitive_bound(&self) -> u64 {
        self.ceis.iter().map(Cei::total_chronons).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Ei, InstanceBuilder, ProfileId, ResourceId};

    fn ei(r: u32, s: Chronon, e: Chronon) -> Ei {
        Ei::new(ResourceId(r), s, e)
    }

    fn small_instance() -> Instance {
        let mut b = InstanceBuilder::new(3, 10, Budget::Uniform(1));
        let p0 = b.profile();
        b.cei(p0, &[(0, 1, 3), (1, 2, 5)]);
        b.cei(p0, &[(2, 5, 6)]);
        let p1 = b.profile();
        b.cei(p1, &[(0, 7, 9), (1, 7, 9), (2, 7, 9)]);
        b.build()
    }

    #[test]
    fn released_at_groups_by_release_chronon() {
        let inst = small_instance();
        assert_eq!(inst.released_at(1), &[CeiId(0)]);
        assert_eq!(inst.released_at(5), &[CeiId(1)]);
        assert_eq!(inst.released_at(7), &[CeiId(2)]);
        assert!(inst.released_at(0).is_empty());
        assert!(inst.released_at(99).is_empty());
    }

    #[test]
    fn rank_and_totals() {
        let inst = small_instance();
        assert_eq!(inst.rank(), 3);
        assert_eq!(inst.total_eis(), 6);
        assert_eq!(inst.profiles[0].rank, 2);
        assert_eq!(inst.profiles[1].rank, 3);
    }

    #[test]
    fn intra_resource_overlap_detection_spans_ceis() {
        let inst = small_instance();
        // Per resource: r0 spans [1,3] / [7,9]; r1 spans [2,5] / [7,9];
        // r2 spans [5,6] / [7,9] — all disjoint.
        assert!(inst.has_no_intra_resource_overlap());

        let mut b = InstanceBuilder::new(2, 10, Budget::Uniform(1));
        let p = b.profile();
        b.cei(p, &[(0, 1, 5)]);
        b.cei(p, &[(0, 4, 8)]);
        assert!(!b.build().has_no_intra_resource_overlap());
    }

    #[test]
    fn mrsf_bound_is_max_total_chronons() {
        let inst = small_instance();
        // CEI 0: 3 + 4 = 7; CEI 1: 2; CEI 2: 9.
        assert_eq!(inst.mrsf_competitive_bound(), 9);
    }

    #[test]
    #[should_panic(expected = "outside epoch")]
    fn cei_past_epoch_rejected() {
        let ceis = vec![Cei::new(CeiId(0), ProfileId(0), vec![ei(0, 0, 10)])];
        let profiles = vec![Profile::new(ProfileId(0))];
        let _ = Instance::from_parts(1, Epoch::new(10), Budget::Uniform(1), ceis, profiles);
    }

    #[test]
    #[should_panic(expected = "outside range")]
    fn cei_with_unknown_resource_rejected() {
        let ceis = vec![Cei::new(CeiId(0), ProfileId(0), vec![ei(5, 0, 1)])];
        let profiles = vec![Profile::new(ProfileId(0))];
        let _ = Instance::from_parts(2, Epoch::new(10), Budget::Uniform(1), ceis, profiles);
    }

    #[test]
    #[should_panic(expected = "dense and in storage order")]
    fn non_dense_cei_ids_rejected() {
        let ceis = vec![Cei::new(CeiId(3), ProfileId(0), vec![ei(0, 0, 1)])];
        let profiles = vec![Profile::new(ProfileId(0))];
        let _ = Instance::from_parts(1, Epoch::new(10), Budget::Uniform(1), ceis, profiles);
    }

    #[test]
    fn unit_width_class_detection() {
        let mut b = InstanceBuilder::new(2, 5, Budget::Uniform(1));
        let p = b.profile();
        b.cei(p, &[(0, 1, 1), (1, 2, 2)]);
        assert!(b.build().is_unit_width());
        assert!(!small_instance().is_unit_width());
    }
}
