//! Live engine invariant checking (the conformance harness's core).
//!
//! [`InvariantObserver`] is an [`Observer`] that *independently mirrors* the
//! engine's per-chronon state from the typed event stream alone — it never
//! reads engine internals — and cross-checks every event against the model's
//! declarative invariants:
//!
//! * **Budget**: the per-chronon cost of issued probes never exceeds the
//!   budget vector `C_j`, probe costs match the instance's cost model, and
//!   [`Event::ChrononEnd`]'s `spent` equals the observed spend.
//! * **Probe validity**: every probe lands inside the window of at least one
//!   live candidate EI, and the intra-resource sharing fan-out (`R_ids`)
//!   reported on [`Event::ProbeIssued`] matches the mirrored candidate pool
//!   — as do the [`Event::EiCaptured`] events that follow it.
//! * **Capture indicators**: [`Event::EiCaptured`] must correspond to an
//!   open, uncaptured window (`X(I, S)`), and [`Event::CeiCompleted`] must
//!   fire exactly when a CEI crosses its `required` threshold (`X(η, S)`).
//!   At the end of a run every completed CEI is re-verified against the
//!   pure indicator functions of [`crate::model`].
//! * **Candidate sets**: the size reported on [`Event::CandidateSet`] must
//!   equal the mirrored pool — in particular, no candidate set may contain
//!   an EI of an expired (failed) or completed CEI.
//! * **Expiry**: [`Event::CeiExpired`] fires exactly at the chronon where a
//!   CEI first becomes doomed (fewer than `required` EIs capturable), never
//!   twice, and never after completion.
//! * **Faults**: failed probes never capture and are charged exactly as
//!   the declared [`FaultConfig`] prescribes,
//!   no probe lands on a resource inside an announced outage or before its
//!   backoff deadline, retries announce themselves with
//!   [`Event::ProbeRetried`] and respect the per-chronon quota, and
//!   [`Event::CeiShed`] fires exactly when committed outage horizons (not
//!   natural window closings) first make a CEI's threshold unreachable.
//! * **Churn**: under a declared [`MutationQueue`], every announced
//!   registration, cancellation, and budget reconfiguration matches the
//!   script's next effective entry at its drain chronon (and every
//!   effective entry is announced), dynamically registered CEIs are
//!   candidates only from their registration chronon onward, no probe
//!   serves a cancelled CEI's windows, and a reconfigured budget takes
//!   effect exactly one chronon after draining.
//!
//! Divergence is reported as structured [`Violation`]s collected into an
//! [`InvariantReport`] instead of panicking, so a differential harness can
//! aggregate them. Checking costs `O(total EIs)` per chronon — fine for a
//! conformance suite, not for production hot loops (use
//! [`NoopObserver`](crate::obs::NoopObserver) there).
//!
//! ```
//! use webmon_core::check::InvariantObserver;
//! use webmon_core::engine::{EngineConfig, OnlineEngine};
//! use webmon_core::model::{Budget, InstanceBuilder};
//! use webmon_core::policy::Mrsf;
//!
//! let mut b = InstanceBuilder::new(2, 8, Budget::Uniform(1));
//! let p = b.profile();
//! b.cei(p, &[(0, 1, 3), (1, 2, 6)]);
//! let instance = b.build();
//!
//! let config = EngineConfig::preemptive();
//! let mut checker = InvariantObserver::new(&instance, config);
//! let run = OnlineEngine::run_observed(&instance, &Mrsf, config, &mut checker);
//! let report = checker.finish_with(&run);
//! assert!(report.is_clean(), "{report}");
//! ```

use crate::engine::{EngineConfig, Mutation, MutationQueue, RunResult};
use crate::fault::FaultConfig;
use crate::model::{ei_captured, Cei, CeiId, Chronon, Instance, ResourceId, Schedule};
use crate::obs::{Event, Observer};
use crate::stats::CeiOutcome;
use serde::Serialize;
use std::fmt;

/// Hard cap on collected violations; anything beyond is counted in
/// [`InvariantReport::suppressed`] so a pathological stream cannot balloon
/// memory.
const MAX_VIOLATIONS: usize = 64;

/// One structured invariant violation detected in the event stream.
///
/// Chronons and ids refer to the checked instance; `reported` fields quote
/// the event stream, `expected`/`observed` fields quote the mirror.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum Violation {
    /// The event stream itself is malformed (events outside an open
    /// chronon, chronons out of order, duplicate or missing per-chronon
    /// events, captures with no preceding probe).
    Protocol {
        /// Human-readable description of the stream-shape breach.
        detail: String,
    },
    /// A chronon's declared budget differs from the instance's `C_j`.
    BudgetMismatch {
        /// The chronon.
        t: Chronon,
        /// Budget the event stream declared.
        reported: u32,
        /// Budget the instance prescribes.
        expected: u32,
    },
    /// The summed cost of issued probes exceeded the chronon's budget.
    BudgetExceeded {
        /// The chronon.
        t: Chronon,
        /// Cost sum including the offending probe.
        spent: u32,
        /// The chronon's budget `C_j`.
        budget: u32,
    },
    /// `ChrononEnd` reported a different spend than the probes summed to.
    SpentMismatch {
        /// The chronon.
        t: Chronon,
        /// Spend reported by `ChrononEnd`.
        reported: u32,
        /// Cost sum of the chronon's `ProbeIssued` events.
        observed: u32,
    },
    /// A probe's reported cost differs from the instance's cost model.
    CostMismatch {
        /// The chronon.
        t: Chronon,
        /// The probed resource.
        resource: ResourceId,
        /// Cost the event reported.
        reported: u32,
        /// Cost the instance prescribes.
        expected: u32,
    },
    /// With sharing enabled the engine probed the same resource twice in
    /// one chronon — the second probe is pure waste.
    DuplicateSharedProbe {
        /// The chronon.
        t: Chronon,
        /// The twice-probed resource.
        resource: ResourceId,
    },
    /// A probe served no live candidate EI window at all.
    ProbeOutsideWindow {
        /// The chronon.
        t: Chronon,
        /// The probed resource.
        resource: ResourceId,
    },
    /// The sharing fan-out reported on `ProbeIssued` differs from the
    /// mirrored count of capturable EIs on that resource.
    FanoutMismatch {
        /// The chronon.
        t: Chronon,
        /// The probed resource.
        resource: ResourceId,
        /// Fan-out the event reported.
        reported: u32,
        /// Capturable EIs in the mirrored pool.
        expected: u32,
    },
    /// The number of `EiCaptured` events following a probe differs from the
    /// number of EIs the probe could capture.
    CaptureCountMismatch {
        /// The chronon.
        t: Chronon,
        /// The probed resource.
        resource: ResourceId,
        /// Captures the mirror expected.
        expected: u32,
        /// `EiCaptured` events observed.
        observed: u32,
    },
    /// An `EiCaptured` event matches no open, uncaptured EI of that CEI on
    /// the probed resource (the indicator `X(I, S)` cannot be satisfied).
    CaptureWithoutWindow {
        /// The chronon.
        t: Chronon,
        /// The CEI the capture was attributed to.
        cei: CeiId,
    },
    /// `CeiCompleted` fired although fewer than `required` EIs are captured.
    CompletionWithoutThreshold {
        /// The completed CEI.
        cei: CeiId,
        /// The completion chronon.
        at: Chronon,
        /// Captured EIs in the mirror.
        captured: u16,
        /// The CEI's threshold.
        required: u16,
    },
    /// `CeiCompleted` fired more than once for the same CEI.
    DuplicateCompletion {
        /// The CEI.
        cei: CeiId,
        /// The duplicate completion's chronon.
        at: Chronon,
    },
    /// A CEI crossed its threshold but no `CeiCompleted` followed before
    /// the next probe / end of chronon.
    MissingCompletion {
        /// The CEI.
        cei: CeiId,
        /// The chronon in which the threshold was crossed.
        t: Chronon,
    },
    /// `CeiExpired` fired for a CEI that had already completed.
    ExpiredAfterCompletion {
        /// The CEI.
        cei: CeiId,
        /// The expiry chronon.
        at: Chronon,
    },
    /// `CeiExpired` fired more than once for the same CEI.
    DuplicateExpiry {
        /// The CEI.
        cei: CeiId,
        /// The duplicate expiry's chronon.
        at: Chronon,
    },
    /// `CeiExpired` fired although the CEI is not doomed (enough EIs remain
    /// capturable), or at the wrong chronon.
    SpuriousExpiry {
        /// The CEI.
        cei: CeiId,
        /// The expiry chronon.
        at: Chronon,
    },
    /// A CEI became doomed this chronon but no `CeiExpired` fired.
    MissingExpiry {
        /// The CEI.
        cei: CeiId,
        /// The chronon whose window expiries doomed the CEI.
        t: Chronon,
    },
    /// A probe attempt (successful or failed) targeted a resource inside
    /// an announced outage.
    ProbeWhileDown {
        /// The chronon.
        t: Chronon,
        /// The probed resource.
        resource: ResourceId,
    },
    /// A probe attempt was issued before the resource's backoff deadline.
    BackoffViolated {
        /// The chronon.
        t: Chronon,
        /// The probed resource.
        resource: ResourceId,
        /// First chronon the backoff schedule permits.
        allowed_at: Chronon,
    },
    /// An attempt's failure streak disagrees with the mirror (wrong
    /// `attempt` on `ProbeFailed` or `ProbeRetried`, or a retry announced
    /// for a resource with no streak).
    RetryMismatch {
        /// The chronon.
        t: Chronon,
        /// The resource.
        resource: ResourceId,
        /// Attempt number the event reported.
        reported: u32,
        /// Consecutive failures in the mirror.
        expected: u32,
    },
    /// More retries were announced in one chronon than the configured
    /// per-chronon quota allows.
    RetryQuotaExceeded {
        /// The chronon.
        t: Chronon,
        /// Retries announced so far this chronon (including this one).
        used: u32,
        /// The configured quota.
        quota: u32,
    },
    /// `ProbeFailed` charged (or waived) the probe's cost contrary to the
    /// declared failure accounting.
    FailureAccounting {
        /// The chronon.
        t: Chronon,
        /// The resource.
        resource: ResourceId,
        /// The `charged` flag the event reported.
        reported: bool,
        /// The flag the fault configuration prescribes.
        expected: bool,
    },
    /// `CeiShed` fired although committed outages leave the CEI's
    /// threshold reachable — or a natural window close already doomed it,
    /// which must report `CeiExpired` instead.
    SpuriousShed {
        /// The CEI.
        cei: CeiId,
        /// The shed chronon.
        at: Chronon,
    },
    /// Committed outage horizons made a CEI's threshold unreachable this
    /// chronon but no `CeiShed` fired.
    MissingShed {
        /// The CEI.
        cei: CeiId,
        /// The chronon whose outage commitments doomed the CEI.
        t: Chronon,
    },
    /// `CandidateSet` reported a pool size that differs from the mirror —
    /// e.g. the pool still holds EIs of expired or completed CEIs.
    CandidateSetMismatch {
        /// The chronon.
        t: Chronon,
        /// Size the event reported.
        reported: u32,
        /// Size of the mirrored pool.
        expected: u32,
    },
    /// `BudgetExhausted`'s deferred-candidate count differs from the mirror
    /// (a `reported` of zero means the expected event never fired).
    DeferredMismatch {
        /// The chronon.
        t: Chronon,
        /// Deferred count the event reported (0 = event missing).
        reported: u32,
        /// Deferred candidates in the mirrored pool.
        expected: u32,
    },
    /// A churn event (`CeiRegistered`, `CeiCancelled`, or
    /// `BudgetReconfigured`) has no matching effective entry in the
    /// declared [`MutationQueue`] at its
    /// chronon — it is undeclared, out of queue order, or re-mutates a CEI
    /// the mirror already saw resolve.
    UnexpectedMutation {
        /// The chronon.
        t: Chronon,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A declared mutation that should have drained at `t` (it was
    /// effective against the mirrored state) was never announced by the
    /// stream.
    MissingMutation {
        /// The drain chronon.
        t: Chronon,
        /// Human-readable description of the dropped mutation.
        detail: String,
    },
    /// The run ended before covering the instance's epoch.
    EpochTruncated {
        /// Chronons fully processed.
        chronons_seen: Chronon,
        /// The instance's epoch length `K`.
        expected: Chronon,
    },
    /// A CEI was reported completed, but the pure indicator `X(η, S)` over
    /// the accumulated probe schedule says it is not captured.
    IndicatorMismatch {
        /// The CEI.
        cei: CeiId,
    },
    /// The engine's [`RunResult`] disagrees with the mirrored state (only
    /// produced by [`InvariantObserver::finish_with`]).
    ResultDivergence {
        /// Human-readable description of the divergence.
        detail: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Protocol { detail } => write!(f, "protocol: {detail}"),
            Violation::BudgetMismatch {
                t,
                reported,
                expected,
            } => write!(
                f,
                "t={t}: declared budget {reported} but the instance prescribes {expected}"
            ),
            Violation::BudgetExceeded { t, spent, budget } => {
                write!(f, "t={t}: probes cost {spent} > budget {budget}")
            }
            Violation::SpentMismatch {
                t,
                reported,
                observed,
            } => write!(
                f,
                "t={t}: ChrononEnd reported spent={reported} but probes summed to {observed}"
            ),
            Violation::CostMismatch {
                t,
                resource,
                reported,
                expected,
            } => write!(
                f,
                "t={t}: probe of {resource} reported cost {reported}, instance says {expected}"
            ),
            Violation::DuplicateSharedProbe { t, resource } => {
                write!(f, "t={t}: {resource} probed twice with sharing enabled")
            }
            Violation::ProbeOutsideWindow { t, resource } => {
                write!(f, "t={t}: probe of {resource} serves no live EI window")
            }
            Violation::FanoutMismatch {
                t,
                resource,
                reported,
                expected,
            } => write!(
                f,
                "t={t}: probe of {resource} reported fan-out {reported}, mirror says {expected}"
            ),
            Violation::CaptureCountMismatch {
                t,
                resource,
                expected,
                observed,
            } => write!(
                f,
                "t={t}: probe of {resource} produced {observed} captures, mirror expected {expected}"
            ),
            Violation::CaptureWithoutWindow { t, cei } => {
                write!(f, "t={t}: capture for {cei} matches no open window")
            }
            Violation::CompletionWithoutThreshold {
                cei,
                at,
                captured,
                required,
            } => write!(
                f,
                "{cei} completed at {at} with {captured}/{required} EIs captured"
            ),
            Violation::DuplicateCompletion { cei, at } => {
                write!(f, "{cei} completed twice (second at {at})")
            }
            Violation::MissingCompletion { cei, t } => {
                write!(f, "{cei} crossed its threshold at {t} without CeiCompleted")
            }
            Violation::ExpiredAfterCompletion { cei, at } => {
                write!(f, "{cei} expired at {at} after completing")
            }
            Violation::DuplicateExpiry { cei, at } => {
                write!(f, "{cei} expired twice (second at {at})")
            }
            Violation::SpuriousExpiry { cei, at } => {
                write!(f, "{cei} reported expired at {at} but is not doomed")
            }
            Violation::MissingExpiry { cei, t } => {
                write!(f, "{cei} became doomed at {t} without CeiExpired")
            }
            Violation::ProbeWhileDown { t, resource } => {
                write!(f, "t={t}: probe of {resource} inside an announced outage")
            }
            Violation::BackoffViolated {
                t,
                resource,
                allowed_at,
            } => write!(
                f,
                "t={t}: probe of {resource} before its backoff deadline {allowed_at}"
            ),
            Violation::RetryMismatch {
                t,
                resource,
                reported,
                expected,
            } => write!(
                f,
                "t={t}: attempt on {resource} reported streak {reported}, mirror says {expected}"
            ),
            Violation::RetryQuotaExceeded { t, used, quota } => {
                write!(f, "t={t}: {used} retries announced, quota allows {quota}")
            }
            Violation::FailureAccounting {
                t,
                resource,
                reported,
                expected,
            } => write!(
                f,
                "t={t}: failed probe of {resource} reported charged={reported}, config says {expected}"
            ),
            Violation::SpuriousShed { cei, at } => write!(
                f,
                "{cei} reported shed at {at} but its threshold is still reachable"
            ),
            Violation::MissingShed { cei, t } => write!(
                f,
                "{cei} became infeasible under committed outages at {t} without CeiShed"
            ),
            Violation::CandidateSetMismatch {
                t,
                reported,
                expected,
            } => write!(
                f,
                "t={t}: candidate set reported {reported} EIs, mirror says {expected}"
            ),
            Violation::DeferredMismatch {
                t,
                reported,
                expected,
            } => write!(
                f,
                "t={t}: BudgetExhausted reported {reported} deferred, mirror says {expected}"
            ),
            Violation::UnexpectedMutation { t, detail } => {
                write!(f, "t={t}: unexpected mutation event: {detail}")
            }
            Violation::MissingMutation { t, detail } => {
                write!(f, "t={t}: declared mutation never announced: {detail}")
            }
            Violation::EpochTruncated {
                chronons_seen,
                expected,
            } => write!(
                f,
                "run covered {chronons_seen} of {expected} epoch chronons"
            ),
            Violation::IndicatorMismatch { cei } => write!(
                f,
                "{cei} reported completed but X(η, S) over the probe schedule is 0"
            ),
            Violation::ResultDivergence { detail } => write!(f, "result divergence: {detail}"),
        }
    }
}

/// Outcome of a checked run: the violations found (empty for a conforming
/// run) plus summary counters.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct InvariantReport {
    /// Violations, in detection order, capped at an internal limit.
    pub violations: Vec<Violation>,
    /// Violations beyond the cap that were counted but not stored.
    pub suppressed: u64,
    /// Chronons fully processed (`ChrononStart` … `ChrononEnd` pairs).
    pub chronons: Chronon,
    /// Probes observed.
    pub probes: u64,
    /// EI captures observed.
    pub captures: u64,
}

impl InvariantReport {
    /// `true` iff no invariant violation was detected.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.suppressed == 0
    }

    /// Panics with the full violation list unless the report is clean.
    /// Convenience for tests and CI gates.
    ///
    /// # Panics
    /// Panics if any violation was recorded, listing them all.
    pub fn assert_clean(&self) {
        assert!(self.is_clean(), "invariant violations detected:\n{self}");
    }
}

impl fmt::Display for InvariantReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(
                f,
                "clean: {} chronons, {} probes, {} captures",
                self.chronons, self.probes, self.captures
            );
        }
        writeln!(
            f,
            "{} violation(s) ({} suppressed) over {} chronons:",
            self.violations.len(),
            self.suppressed,
            self.chronons
        )?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

/// Per-CEI mirrored lifecycle state.
#[derive(Debug, Clone)]
struct MirrorCei {
    captured: Vec<bool>,
    /// Chronon at which each EI was shed (marked unreachable inside a
    /// committed outage) while its natural window was still open, `None`
    /// while reachable. Shed EIs leave the candidate pool from the next
    /// chronon on, like naturally closed ones.
    early: Vec<Option<Chronon>>,
    n_captured: u16,
    completed_at: Option<Chronon>,
    failed_at: Option<Chronon>,
    /// Chronon from which the engine considers the CEI registered:
    /// `Some(0)` for statically released CEIs, `None` for CEIs declared
    /// dynamic by the mutation script until their `CeiRegistered` arrives.
    registered_at: Option<Chronon>,
    /// Chronon of the CEI's `CeiCancelled` event, if any.
    cancelled_at: Option<Chronon>,
}

impl MirrorCei {
    fn live(&self) -> bool {
        self.completed_at.is_none() && self.failed_at.is_none() && self.cancelled_at.is_none()
    }
}

/// An [`Observer`] that validates the engine's event stream against the
/// instance's declarative invariants. See the [module docs](crate::check)
/// for the full invariant list and an example.
///
/// Construct one per run, drive it through
/// [`OnlineEngine::run_observed`](crate::engine::OnlineEngine::run_observed)
/// (alone or inside a [`Tee`](crate::obs::Tee)), then call
/// [`finish`](Self::finish) — or [`finish_with`](Self::finish_with) to also
/// cross-check the engine's [`RunResult`] against the mirrored state.
#[derive(Debug)]
pub struct InvariantObserver<'a> {
    instance: &'a Instance,
    share_probes: bool,
    fault_config: FaultConfig,

    // Chronon-scoped state.
    t_open: Option<Chronon>,
    next_t: Chronon,
    budget_now: u32,
    spent_now: u32,
    probed_now: Vec<bool>,
    expected_pool: u32,
    candidate_set_seen: bool,
    expected_deferred: Option<u32>,
    deferred_reported: bool,
    last_probe: Option<(ResourceId, u32)>,
    captures_since_probe: u32,
    pending_completion: Vec<CeiId>,
    expired_this_chronon: Vec<CeiId>,
    shed_this_chronon: Vec<CeiId>,
    retries_used: u32,
    pending_retry: Option<(ResourceId, u32)>,

    // Run-scoped mirror.
    ceis: Vec<MirrorCei>,
    schedule: Schedule,
    probes_seen: u64,
    captures_seen: u64,
    // Fault mirror: announced outage horizons, failure streaks, and the
    // earliest chronon each resource may be re-attempted under backoff.
    down_until: Vec<Option<Chronon>>,
    consec_failures: Vec<u32>,
    next_attempt_at: Vec<Chronon>,
    probes_failed_seen: u64,
    budget_lost_seen: u64,
    sheds_seen: u64,
    // Churn mirror: the declared mutation script bucketed by drain
    // chronon, a cursor into the open chronon's bucket, and the mirrored
    // budget trajectory (a drained `SetBudget` becomes effective exactly
    // at the next `ChrononStart`).
    mutation_buckets: Vec<Vec<Mutation>>,
    mutation_cursor: usize,
    budget_override: Option<u32>,
    pending_budget: Option<u32>,

    violations: Vec<Violation>,
    suppressed: u64,
}

impl<'a> InvariantObserver<'a> {
    /// A fresh checker for one run of `instance` under `config` (only
    /// `config.share_probes` affects the invariants; selection strategy and
    /// preemption do not).
    pub fn new(instance: &'a Instance, config: EngineConfig) -> Self {
        let n_res = instance.n_resources as usize;
        InvariantObserver {
            instance,
            share_probes: config.share_probes,
            fault_config: FaultConfig::default(),
            t_open: None,
            next_t: 0,
            budget_now: 0,
            spent_now: 0,
            probed_now: vec![false; n_res],
            expected_pool: 0,
            candidate_set_seen: false,
            expected_deferred: None,
            deferred_reported: false,
            last_probe: None,
            captures_since_probe: 0,
            pending_completion: Vec::new(),
            expired_this_chronon: Vec::new(),
            shed_this_chronon: Vec::new(),
            retries_used: 0,
            pending_retry: None,
            ceis: instance
                .ceis
                .iter()
                .map(|c| MirrorCei {
                    captured: vec![false; c.size()],
                    early: vec![None; c.size()],
                    n_captured: 0,
                    completed_at: None,
                    failed_at: None,
                    registered_at: Some(0),
                    cancelled_at: None,
                })
                .collect(),
            schedule: Schedule::new(instance.n_resources, instance.epoch),
            probes_seen: 0,
            captures_seen: 0,
            down_until: vec![None; n_res],
            consec_failures: vec![0; n_res],
            next_attempt_at: vec![0; n_res],
            probes_failed_seen: 0,
            budget_lost_seen: 0,
            sheds_seen: 0,
            mutation_buckets: Vec::new(),
            mutation_cursor: 0,
            budget_override: None,
            pending_budget: None,
            violations: Vec::new(),
            suppressed: 0,
        }
    }

    /// Declares the fault configuration the checked run used, so failure
    /// charging, backoff deadlines, and the retry quota can be enforced.
    /// Runs driven without faults need no declaration: the default
    /// configuration is consistent with fault-free streams.
    pub fn with_faults(mut self, fault_config: FaultConfig) -> Self {
        self.fault_config = fault_config;
        self
    }

    /// Declares the [`MutationQueue`] the checked run drains, enabling the
    /// churn invariants: every announced registration, cancellation, and
    /// reconfiguration must match the script's next effective entry at its
    /// drain chronon, every effective entry must be announced, CEIs the
    /// script registers enter the candidate pool only from their
    /// registration chronon, and budget reconfigurations take effect
    /// exactly one chronon after draining. Runs driven without mutations
    /// need no declaration.
    pub fn with_mutations(mut self, mutations: &MutationQueue) -> Self {
        self.mutation_buckets = mutations.bucketed(self.instance.epoch.len());
        for (i, dynamic) in mutations
            .dynamic_flags(self.ceis.len())
            .into_iter()
            .enumerate()
        {
            if dynamic {
                self.ceis[i].registered_at = None;
            }
        }
        self
    }

    /// Violations detected so far (the run can still be in flight).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// The probe schedule accumulated from `ProbeIssued` events.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    fn report(&mut self, v: Violation) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(v);
        } else {
            self.suppressed += 1;
        }
    }

    fn protocol(&mut self, detail: String) {
        self.report(Violation::Protocol { detail });
    }

    /// `true` iff EI `k` of CEI `i` is a live candidate at `t` in the
    /// mirror: parent registered and unresolved (not cancelled), window
    /// open, not yet captured, not shed into a committed outage. For CEIs
    /// resolved in earlier chronons this coincides with membership in the
    /// engine's compacted pool.
    fn is_live_candidate(&self, i: usize, k: usize, t: Chronon) -> bool {
        let m = &self.ceis[i];
        let ei = self.instance.ceis[i].eis[k];
        m.live()
            && m.registered_at.is_some()
            && !m.captured[k]
            && m.early[k].is_none()
            && ei.start <= t
            && t <= ei.end
    }

    /// Mirrored candidate-pool size at `t` (over all resources).
    fn pool_size(&self, t: Chronon) -> u32 {
        let mut n = 0u32;
        for i in 0..self.ceis.len() {
            for k in 0..self.ceis[i].captured.len() {
                if self.is_live_candidate(i, k, t) {
                    n += 1;
                }
            }
        }
        n
    }

    /// Mirrored count of EIs a shared probe of `resource` at `t` captures.
    fn capturable_on(&self, resource: ResourceId, t: Chronon) -> u32 {
        let mut n = 0u32;
        for i in 0..self.ceis.len() {
            for k in 0..self.ceis[i].captured.len() {
                if self.instance.ceis[i].eis[k].resource == resource
                    && self.is_live_candidate(i, k, t)
                {
                    n += 1;
                }
            }
        }
        n
    }

    /// Mirrored count of live candidates left unserved this chronon (the
    /// `deferred` field of [`Event::BudgetExhausted`]).
    fn deferred_now(&self, t: Chronon) -> u32 {
        let mut n = 0u32;
        for i in 0..self.ceis.len() {
            for k in 0..self.ceis[i].captured.len() {
                let r = self.instance.ceis[i].eis[k].resource;
                let served = self.share_probes && self.probed_now[r.index()];
                if !served && self.is_live_candidate(i, k, t) {
                    n += 1;
                }
            }
        }
        n
    }

    /// Mirrored count of live candidates on `resource` whose windows
    /// opened strictly before `t` — the engine's index contents during the
    /// mutation drain, before the chronon's `starts[t]` insertions.
    fn live_on_before_starts(&self, resource: ResourceId, t: Chronon) -> u32 {
        let mut n = 0u32;
        for i in 0..self.ceis.len() {
            for (k, ei) in self.instance.ceis[i].eis.iter().enumerate() {
                if ei.resource == resource && ei.start < t && self.is_live_candidate(i, k, t) {
                    n += 1;
                }
            }
        }
        n
    }

    /// Whether a declared mutation would drain as a no-op against the
    /// mirrored state (and therefore announces no event).
    fn mutation_is_noop(&self, m: Mutation) -> bool {
        match m {
            Mutation::Register { cei } => match self.ceis.get(cei.index()) {
                Some(mc) => mc.registered_at.is_some() || !mc.live(),
                None => true,
            },
            Mutation::Cancel { cei } => match self.ceis.get(cei.index()) {
                Some(mc) => !mc.live(),
                None => true,
            },
            Mutation::SetBudget { .. } => false,
        }
    }

    /// Consumes the next effective entry of the open chronon's declared
    /// mutation script; it must equal the announced mutation. Reports an
    /// [`Violation::UnexpectedMutation`] on any mismatch.
    fn expect_mutation(&mut self, t: Chronon, announced: Mutation, kind: &'static str) {
        loop {
            let m = match self
                .mutation_buckets
                .get(t as usize)
                .and_then(|b| b.get(self.mutation_cursor))
            {
                Some(&m) => m,
                None => {
                    self.report(Violation::UnexpectedMutation {
                        t,
                        detail: format!("{kind} is not declared by the script for this chronon"),
                    });
                    return;
                }
            };
            self.mutation_cursor += 1;
            if self.mutation_is_noop(m) {
                continue;
            }
            if m == announced {
                return;
            }
            self.report(Violation::UnexpectedMutation {
                t,
                detail: format!("{kind} announced, but the script's next effective entry is {m:?}"),
            });
            return;
        }
    }

    /// Drains the remainder of the closing chronon's declared script:
    /// every entry still effective against the mirrored state was never
    /// announced by the stream. The mirror does not apply the dropped
    /// effect — it stays aligned with the engine state the stream
    /// describes, so one dropped mutation yields one violation rather than
    /// a cascade.
    fn flush_mutation_script(&mut self, t: Chronon) {
        loop {
            let m = match self
                .mutation_buckets
                .get(t as usize)
                .and_then(|b| b.get(self.mutation_cursor))
            {
                Some(&m) => m,
                None => return,
            };
            self.mutation_cursor += 1;
            if self.mutation_is_noop(m) {
                continue;
            }
            self.report(Violation::MissingMutation {
                t,
                detail: format!("{m:?} drained without an announcing event"),
            });
        }
    }

    fn on_cei_registered(&mut self, cei: CeiId, at: Chronon) {
        if self.open_chronon(at, "CeiRegistered").is_none() {
            return;
        }
        let i = cei.index();
        if i >= self.ceis.len() {
            self.protocol(format!("CeiRegistered references unknown {cei}"));
            return;
        }
        self.expect_mutation(at, Mutation::Register { cei }, "CeiRegistered");
        if self.ceis[i].registered_at.is_none() {
            self.ceis[i].registered_at = Some(at);
        }
        // Registration reshapes the pool the engine freezes for this
        // chronon's `CandidateSet`: re-snapshot it.
        if !self.candidate_set_seen {
            self.expected_pool = self.pool_size(at);
        }
    }

    fn on_cei_cancelled(&mut self, cei: CeiId, at: Chronon) {
        if self.open_chronon(at, "CeiCancelled").is_none() {
            return;
        }
        let i = cei.index();
        if i >= self.ceis.len() {
            self.protocol(format!("CeiCancelled references unknown {cei}"));
            return;
        }
        self.expect_mutation(at, Mutation::Cancel { cei }, "CeiCancelled");
        if !self.ceis[i].live() {
            self.report(Violation::UnexpectedMutation {
                t: at,
                detail: format!("{cei} cancelled after resolving"),
            });
            return;
        }
        self.ceis[i].cancelled_at = Some(at);
        if !self.candidate_set_seen {
            self.expected_pool = self.pool_size(at);
        }
        // Cancellation clears retry state on every resource it emptied:
        // the engine checks its index during the drain, before the
        // chronon's `starts[t]` insertions, so only windows opened
        // strictly before `at` count as still-live occupancy.
        for k in 0..self.instance.ceis[i].eis.len() {
            let r = self.instance.ceis[i].eis[k].resource;
            if self.consec_failures[r.index()] > 0 && self.live_on_before_starts(r, at) == 0 {
                self.consec_failures[r.index()] = 0;
                self.next_attempt_at[r.index()] = 0;
            }
        }
    }

    fn on_budget_reconfigured(&mut self, t: Chronon, budget: u32) {
        if self.open_chronon(t, "BudgetReconfigured").is_none() {
            return;
        }
        self.expect_mutation(t, Mutation::SetBudget { budget }, "BudgetReconfigured");
        // Effective exactly at the next chronon: the mirror folds it into
        // `budget_override` at the next `ChrononStart`, so an engine that
        // applies it earlier or later diverges as a BudgetMismatch there.
        self.pending_budget = Some(budget);
    }

    /// Closes out the previous probe: its capture fan-out must match the
    /// mirror, and every threshold crossing must have produced a
    /// `CeiCompleted` by now.
    fn flush_probe(&mut self, t: Chronon) {
        if let Some((resource, expected)) = self.last_probe.take() {
            if self.captures_since_probe != expected {
                let observed = self.captures_since_probe;
                self.report(Violation::CaptureCountMismatch {
                    t,
                    resource,
                    expected,
                    observed,
                });
            }
        }
        self.captures_since_probe = 0;
        let pending = std::mem::take(&mut self.pending_completion);
        for cei in pending {
            self.report(Violation::MissingCompletion { cei, t });
        }
    }

    fn on_chronon_start(&mut self, t: Chronon, budget: u32) {
        if let Some(prev) = self.t_open {
            self.protocol(format!("chronon {prev} never closed before {t} opened"));
        }
        if t != self.next_t {
            let expected = self.next_t;
            self.protocol(format!("chronon {t} opened, expected {expected}"));
        }
        // A reconfiguration drained in the previous chronon becomes the
        // effective budget exactly now; a stream applying it any earlier
        // or later surfaces here as a BudgetMismatch.
        if let Some(b) = self.pending_budget.take() {
            self.budget_override = Some(b);
        }
        let prescribed = self
            .budget_override
            .unwrap_or_else(|| self.instance.budget.at(t));
        if budget != prescribed {
            self.report(Violation::BudgetMismatch {
                t,
                reported: budget,
                expected: prescribed,
            });
        }
        self.t_open = Some(t);
        self.budget_now = budget;
        self.spent_now = 0;
        self.probed_now.fill(false);
        self.candidate_set_seen = false;
        self.expected_deferred = None;
        self.deferred_reported = false;
        self.last_probe = None;
        self.captures_since_probe = 0;
        self.expired_this_chronon.clear();
        self.shed_this_chronon.clear();
        self.retries_used = 0;
        self.pending_retry = None;
        self.mutation_cursor = 0;
        // Snapshot the pool the engine's compaction produces at the top of
        // this chronon; `CandidateSet` (emitted after probing, from the
        // untouched pool vector) must report exactly this.
        self.expected_pool = self.pool_size(t);
    }

    /// Checks an event's chronon tag against the open chronon; reports and
    /// returns `None` when the stream is out of order.
    fn open_chronon(&mut self, t: Chronon, kind: &'static str) -> Option<Chronon> {
        match self.t_open {
            Some(open) if open == t => Some(open),
            Some(open) => {
                self.protocol(format!("{kind} tagged t={t} inside chronon {open}"));
                None
            }
            None => {
                self.protocol(format!("{kind} at t={t} outside any open chronon"));
                None
            }
        }
    }

    fn on_probe(&mut self, t: Chronon, resource: ResourceId, cost: u32, shared_eis: u32) {
        if self.open_chronon(t, "ProbeIssued").is_none() {
            return;
        }
        self.flush_probe(t);
        // A corrupt stream may reference chronons or resources outside the
        // instance; report instead of indexing out of bounds.
        if resource.index() >= self.probed_now.len() || !self.instance.epoch.contains(t) {
            self.protocol(format!("probe of {resource} at t={t} outside the instance"));
            return;
        }
        self.check_attempt_admissible(t, resource);
        let streak = self.consec_failures[resource.index()];
        self.check_retry_pairing(t, resource, streak, "probe");
        self.consec_failures[resource.index()] = 0;
        let prescribed = self.instance.costs.of(resource);
        if cost != prescribed {
            self.report(Violation::CostMismatch {
                t,
                resource,
                reported: cost,
                expected: prescribed,
            });
        }
        if self.spent_now + cost > self.budget_now {
            self.report(Violation::BudgetExceeded {
                t,
                spent: self.spent_now + cost,
                budget: self.budget_now,
            });
        }
        if self.share_probes && self.probed_now[resource.index()] {
            self.report(Violation::DuplicateSharedProbe { t, resource });
        }
        let capturable = self.capturable_on(resource, t);
        if capturable == 0 {
            self.report(Violation::ProbeOutsideWindow { t, resource });
        }
        // With sharing, the reported fan-out and the following captures
        // both equal the capturable count; without it, a probe serves
        // exactly the one EI it was issued for.
        let expected_captures = if self.share_probes {
            if shared_eis != capturable {
                self.report(Violation::FanoutMismatch {
                    t,
                    resource,
                    reported: shared_eis,
                    expected: capturable,
                });
            }
            capturable
        } else {
            if shared_eis != 1 {
                self.report(Violation::FanoutMismatch {
                    t,
                    resource,
                    reported: shared_eis,
                    expected: 1,
                });
            }
            capturable.min(1)
        };
        self.spent_now += cost;
        self.probed_now[resource.index()] = true;
        self.probes_seen += 1;
        self.schedule.probe(resource, t);
        self.last_probe = Some((resource, expected_captures));
    }

    fn on_ei_captured(&mut self, t: Chronon, cei: CeiId, latency: u32) {
        if self.open_chronon(t, "EiCaptured").is_none() {
            return;
        }
        let Some((resource, _)) = self.last_probe else {
            self.protocol(format!("EiCaptured for {cei} at t={t} with no probe"));
            return;
        };
        self.captures_since_probe += 1;
        let i = cei.index();
        if i >= self.ceis.len() {
            self.protocol(format!("EiCaptured references unknown {cei}"));
            return;
        }
        // Attribute the event to the first uncaptured EI of this CEI on the
        // probed resource whose open window matches the reported latency.
        let matched = (0..self.ceis[i].captured.len()).find(|&k| {
            let ei = self.instance.ceis[i].eis[k];
            ei.resource == resource && self.is_live_candidate(i, k, t) && t - ei.start == latency
        });
        let Some(k) = matched else {
            self.report(Violation::CaptureWithoutWindow { t, cei });
            return;
        };
        let m = &mut self.ceis[i];
        m.captured[k] = true;
        m.n_captured += 1;
        self.captures_seen += 1;
        if m.n_captured == self.instance.ceis[i].required {
            self.pending_completion.push(cei);
        }
    }

    fn on_cei_completed(&mut self, cei: CeiId, at: Chronon) {
        if self.open_chronon(at, "CeiCompleted").is_none() {
            return;
        }
        let i = cei.index();
        if i >= self.ceis.len() {
            self.protocol(format!("CeiCompleted references unknown {cei}"));
            return;
        }
        if self.ceis[i].completed_at.is_some() {
            self.report(Violation::DuplicateCompletion { cei, at });
            return;
        }
        let required = self.instance.ceis[i].required;
        if self.ceis[i].n_captured < required || self.ceis[i].failed_at.is_some() {
            let captured = self.ceis[i].n_captured;
            self.report(Violation::CompletionWithoutThreshold {
                cei,
                at,
                captured,
                required,
            });
        }
        self.pending_completion.retain(|&c| c != cei);
        self.ceis[i].completed_at = Some(at);
    }

    fn on_cei_expired(&mut self, cei: CeiId, at: Chronon) {
        if self.open_chronon(at, "CeiExpired").is_none() {
            return;
        }
        self.flush_probe(at);
        let i = cei.index();
        if i >= self.ceis.len() {
            self.protocol(format!("CeiExpired references unknown {cei}"));
            return;
        }
        if self.ceis[i].completed_at.is_some() {
            self.report(Violation::ExpiredAfterCompletion { cei, at });
            return;
        }
        if self.ceis[i].failed_at.is_some() {
            self.report(Violation::DuplicateExpiry { cei, at });
            return;
        }
        self.ceis[i].failed_at = Some(at);
        self.expired_this_chronon.push(cei);
        // A registration whose already-closed windows doom the CEI expires
        // during the mutation drain, before the chronon's `CandidateSet`
        // freezes — re-snapshot the pool the engine will report.
        if !self.candidate_set_seen {
            self.expected_pool = self.pool_size(at);
        }
    }

    /// A probe attempt (successful or failed) must not target a resource
    /// inside an announced outage or before its backoff deadline.
    fn check_attempt_admissible(&mut self, t: Chronon, resource: ResourceId) {
        if self.down_until[resource.index()].is_some() {
            self.report(Violation::ProbeWhileDown { t, resource });
        }
        let allowed_at = self.next_attempt_at[resource.index()];
        if t < allowed_at {
            self.report(Violation::BackoffViolated {
                t,
                resource,
                allowed_at,
            });
        }
    }

    /// Consumes the pending [`Event::ProbeRetried`] announcement: an
    /// attempt with a failure streak must follow one naming the same
    /// resource and streak; a fresh attempt must not follow one at all.
    fn check_retry_pairing(&mut self, t: Chronon, resource: ResourceId, attempt: u32, kind: &str) {
        match self.pending_retry.take() {
            Some((r, a)) if r == resource && a == attempt && attempt > 0 => {}
            Some((r, a)) => self.protocol(format!(
                "{kind} of {resource} (attempt {attempt}) at t={t} follows a ProbeRetried for {r} (attempt {a})"
            )),
            None if attempt > 0 => self.protocol(format!(
                "{kind} of {resource} at t={t} retries (attempt {attempt}) without ProbeRetried"
            )),
            None => {}
        }
    }

    fn on_probe_failed(
        &mut self,
        t: Chronon,
        resource: ResourceId,
        cost: u32,
        attempt: u32,
        charged: bool,
    ) {
        if self.open_chronon(t, "ProbeFailed").is_none() {
            return;
        }
        self.flush_probe(t);
        if resource.index() >= self.probed_now.len() || !self.instance.epoch.contains(t) {
            self.protocol(format!(
                "failed probe of {resource} at t={t} outside the instance"
            ));
            return;
        }
        let prescribed = self.instance.costs.of(resource);
        if cost != prescribed {
            self.report(Violation::CostMismatch {
                t,
                resource,
                reported: cost,
                expected: prescribed,
            });
        }
        let expected_charge = self.fault_config.failures_cost;
        if charged != expected_charge {
            self.report(Violation::FailureAccounting {
                t,
                resource,
                reported: charged,
                expected: expected_charge,
            });
        }
        self.check_attempt_admissible(t, resource);
        // A failed probe still spends a selection slot: it must have been
        // aimed at a live candidate, like a successful one.
        if self.capturable_on(resource, t) == 0 {
            self.report(Violation::ProbeOutsideWindow { t, resource });
        }
        let streak = self.consec_failures[resource.index()];
        if attempt != streak {
            self.report(Violation::RetryMismatch {
                t,
                resource,
                reported: attempt,
                expected: streak,
            });
        }
        self.check_retry_pairing(t, resource, attempt, "failed probe");
        if charged {
            if self.spent_now + cost > self.budget_now {
                self.report(Violation::BudgetExceeded {
                    t,
                    spent: self.spent_now + cost,
                    budget: self.budget_now,
                });
            }
            self.spent_now += cost;
            self.budget_lost_seen += u64::from(cost);
        }
        self.consec_failures[resource.index()] = streak + 1;
        if let Some(backoff) = self.fault_config.backoff {
            self.next_attempt_at[resource.index()] = t.saturating_add(backoff.delay(streak + 1));
        }
        self.probes_failed_seen += 1;
    }

    fn on_probe_retried(&mut self, t: Chronon, resource: ResourceId, attempt: u32) {
        if self.open_chronon(t, "ProbeRetried").is_none() {
            return;
        }
        if resource.index() >= self.probed_now.len() {
            self.protocol(format!(
                "ProbeRetried for {resource} at t={t} outside the instance"
            ));
            return;
        }
        let expected = self.consec_failures[resource.index()];
        if attempt == 0 || attempt != expected {
            self.report(Violation::RetryMismatch {
                t,
                resource,
                reported: attempt,
                expected,
            });
        }
        if let Some((r, a)) = self.pending_retry.replace((resource, attempt)) {
            self.protocol(format!(
                "ProbeRetried for {resource} at t={t} while {r} (attempt {a}) is still pending"
            ));
        }
        self.retries_used += 1;
        if let Some(quota) = self.fault_config.retry_quota {
            if self.retries_used > quota {
                let used = self.retries_used;
                self.report(Violation::RetryQuotaExceeded { t, used, quota });
            }
        }
    }

    fn on_resource_down(&mut self, t: Chronon, resource: ResourceId, until: Chronon) {
        if self.open_chronon(t, "ResourceDown").is_none() {
            return;
        }
        if resource.index() >= self.probed_now.len() {
            self.protocol(format!(
                "ResourceDown for {resource} at t={t} outside the instance"
            ));
            return;
        }
        if until < t {
            self.protocol(format!(
                "ResourceDown for {resource} at t={t} commits to the past (until={until})"
            ));
            return;
        }
        // Re-announcements must extend the committed horizon: a fault
        // model's commitment never shrinks, and an unchanged one stays
        // silent.
        if let Some(prev) = self.down_until[resource.index()] {
            if until <= prev {
                self.protocol(format!(
                    "ResourceDown for {resource} at t={t} re-announced horizon {until} (was {prev})"
                ));
            }
        }
        self.down_until[resource.index()] = Some(until);
    }

    fn on_resource_up(&mut self, t: Chronon, resource: ResourceId) {
        if self.open_chronon(t, "ResourceUp").is_none() {
            return;
        }
        if resource.index() >= self.probed_now.len() {
            self.protocol(format!(
                "ResourceUp for {resource} at t={t} outside the instance"
            ));
            return;
        }
        match self.down_until[resource.index()].take() {
            None => self.protocol(format!("ResourceUp for {resource} at t={t} while not down")),
            Some(u) if u >= t => self.protocol(format!(
                "{resource} came up at t={t} inside its committed outage (until={u})"
            )),
            Some(_) => {}
        }
    }

    fn on_cei_shed(&mut self, cei: CeiId, at: Chronon) {
        if self.open_chronon(at, "CeiShed").is_none() {
            return;
        }
        self.flush_probe(at);
        let i = cei.index();
        if i >= self.ceis.len() {
            self.protocol(format!("CeiShed references unknown {cei}"));
            return;
        }
        if self.ceis[i].completed_at.is_some() {
            self.report(Violation::ExpiredAfterCompletion { cei, at });
            return;
        }
        if self.ceis[i].failed_at.is_some() {
            self.report(Violation::DuplicateExpiry { cei, at });
            return;
        }
        self.ceis[i].failed_at = Some(at);
        self.shed_this_chronon.push(cei);
        self.sheds_seen += 1;
    }

    fn on_candidate_set(&mut self, t: Chronon, size: u32) {
        if self.open_chronon(t, "CandidateSet").is_none() {
            return;
        }
        self.flush_probe(t);
        if self.candidate_set_seen {
            self.protocol(format!("duplicate CandidateSet in chronon {t}"));
            return;
        }
        self.candidate_set_seen = true;
        if size != self.expected_pool {
            let expected = self.expected_pool;
            self.report(Violation::CandidateSetMismatch {
                t,
                reported: size,
                expected,
            });
        }
        // The deferred count is evaluated here — after all probing, before
        // expiry — exactly where the engine computes it.
        self.expected_deferred = Some(self.deferred_now(t));
    }

    fn on_budget_exhausted(&mut self, t: Chronon, deferred: u32) {
        if self.open_chronon(t, "BudgetExhausted").is_none() {
            return;
        }
        let Some(expected) = self.expected_deferred else {
            self.protocol(format!("BudgetExhausted before CandidateSet at t={t}"));
            return;
        };
        self.deferred_reported = true;
        if deferred != expected || expected == 0 {
            self.report(Violation::DeferredMismatch {
                t,
                reported: deferred,
                expected,
            });
        }
    }

    fn on_chronon_end(&mut self, t: Chronon, spent: u32, budget: u32) {
        if self.open_chronon(t, "ChrononEnd").is_none() {
            return;
        }
        self.flush_probe(t);
        if !self.candidate_set_seen {
            self.protocol(format!("chronon {t} closed without a CandidateSet"));
        }
        if let Some(expected) = self.expected_deferred {
            if expected > 0 && !self.deferred_reported {
                self.report(Violation::DeferredMismatch {
                    t,
                    reported: 0,
                    expected,
                });
            }
        }
        if spent != self.spent_now {
            let observed = self.spent_now;
            self.report(Violation::SpentMismatch {
                t,
                reported: spent,
                observed,
            });
        }
        if budget != self.budget_now {
            let expected = self.budget_now;
            self.report(Violation::BudgetMismatch {
                t,
                reported: budget,
                expected,
            });
        }
        if let Some((r, a)) = self.pending_retry.take() {
            self.protocol(format!(
                "ProbeRetried for {r} (attempt {a}) with no following attempt in chronon {t}"
            ));
        }
        self.flush_mutation_script(t);
        self.check_expiries(t);
        self.t_open = None;
        self.next_t = t.wrapping_add(1);
    }

    /// Mirrors the engine's expiry and shed phases: a CEI must fail via
    /// `CeiExpired` exactly at the chronon where uncaptured window
    /// closings (including earlier shed marks) first make `required`
    /// captures unreachable, and via `CeiShed` exactly when this chronon's
    /// committed outage horizons — not natural closings — first do so.
    fn check_expiries(&mut self, t: Chronon) {
        let mut missing_expiry: Vec<CeiId> = Vec::new();
        let mut spurious_expiry: Vec<CeiId> = Vec::new();
        let mut missing_shed: Vec<CeiId> = Vec::new();
        let mut spurious_shed: Vec<CeiId> = Vec::new();
        let mut shed_marks: Vec<(usize, usize)> = Vec::new();
        for (i, cei) in self.instance.ceis.iter().enumerate() {
            let m = &self.ceis[i];
            if m.completed_at.is_some() {
                continue;
            }
            // Cancelled or never-registered CEIs are outside the engine's
            // lifecycle: no expiry or shed is ever announced for them.
            if m.cancelled_at.is_some() || m.registered_at.is_none() {
                continue;
            }
            let failed_now = m.failed_at == Some(t);
            if m.failed_at.is_some() && !failed_now {
                continue; // resolved in an earlier chronon
            }
            // Classify each uncaptured EI: closed before this chronon
            // (naturally or by an earlier shed mark), closing now, or
            // newly unreachable because its whole remaining window sits
            // inside a committed outage. EIs closing before `t` cannot
            // have been captured at `t`, so current capture flags are
            // valid for all counts.
            let mut closed_prev = 0usize;
            let mut closed_now = 0usize;
            let mut shed_now = 0usize;
            for (k, ei) in cei.eis.iter().enumerate() {
                if m.captured[k] {
                    continue;
                }
                if m.early[k].is_some() || ei.end < t {
                    closed_prev += 1;
                    closed_now += 1;
                } else if ei.end == t {
                    closed_now += 1;
                } else if ei.start <= t
                    && self.down_until[ei.resource.index()].is_some_and(|u| u >= ei.end)
                {
                    shed_now += 1;
                    shed_marks.push((i, k));
                }
            }
            let required = usize::from(cei.required);
            if cei.size() - closed_prev < required {
                continue; // already reported as missing at the earlier chronon
            }
            let doomed_nat = cei.size() - closed_now < required;
            let doomed_all = cei.size() - closed_now - shed_now < required;
            let was_expired = failed_now && self.expired_this_chronon.contains(&cei.id);
            let was_shed = failed_now && self.shed_this_chronon.contains(&cei.id);
            if doomed_nat {
                // Natural window closings own this failure: CeiExpired.
                if !was_expired {
                    missing_expiry.push(cei.id);
                }
                if was_shed {
                    spurious_shed.push(cei.id);
                }
            } else if doomed_all {
                // Only the outage commitments doom it: CeiShed.
                if !was_shed {
                    missing_shed.push(cei.id);
                }
                if was_expired {
                    spurious_expiry.push(cei.id);
                }
            } else {
                if was_expired {
                    spurious_expiry.push(cei.id);
                }
                if was_shed {
                    spurious_shed.push(cei.id);
                }
            }
        }
        // Persist the shed marks: the engine expires outage-doomed EIs
        // even when the CEI itself survives (threshold semantics),
        // removing them from every later candidate pool.
        for (i, k) in shed_marks {
            self.ceis[i].early[k] = Some(t);
        }
        for cei in missing_expiry {
            self.report(Violation::MissingExpiry { cei, t });
        }
        for cei in spurious_expiry {
            self.report(Violation::SpuriousExpiry { cei, at: t });
        }
        for cei in missing_shed {
            self.report(Violation::MissingShed { cei, t });
        }
        for cei in spurious_shed {
            self.report(Violation::SpuriousShed { cei, at: t });
        }
    }

    /// Finishes the stream-level checks and returns the report: the epoch
    /// must be fully covered, and every completed CEI must satisfy the pure
    /// capture indicator `X(η, S)` over the accumulated probe schedule.
    pub fn finish(mut self) -> InvariantReport {
        self.end_of_run_checks();
        InvariantReport {
            violations: self.violations,
            suppressed: self.suppressed,
            chronons: self.next_t,
            probes: self.probes_seen,
            captures: self.captures_seen,
        }
    }

    /// Like [`finish`](Self::finish), additionally cross-checking the
    /// engine's own [`RunResult`] — schedule, per-CEI outcomes, and
    /// aggregate statistics — against the mirrored state.
    pub fn finish_with(mut self, result: &RunResult) -> InvariantReport {
        self.end_of_run_checks();
        if result.schedule != self.schedule {
            self.report(Violation::ResultDivergence {
                detail: "engine schedule differs from the probes the stream announced".into(),
            });
        }
        if result.outcomes.len() != self.ceis.len() {
            let n = result.outcomes.len();
            self.report(Violation::ResultDivergence {
                detail: format!("{n} outcomes for {} CEIs", self.ceis.len()),
            });
        } else {
            for (i, outcome) in result.outcomes.iter().enumerate() {
                let m = &self.ceis[i];
                let mirrored = if let Some(at) = m.completed_at {
                    CeiOutcome::Captured { at }
                } else if let Some(at) = m.failed_at {
                    CeiOutcome::Failed { at }
                } else if let Some(at) = m.cancelled_at {
                    CeiOutcome::Cancelled { at }
                } else {
                    CeiOutcome::Pending
                };
                if *outcome != mirrored {
                    let id = self.instance.ceis[i].id;
                    self.report(Violation::ResultDivergence {
                        detail: format!("{id}: engine outcome {outcome:?}, mirror {mirrored:?}"),
                    });
                }
            }
        }
        let completed = self
            .ceis
            .iter()
            .filter(|m| m.completed_at.is_some())
            .count() as u64;
        let failed = self.ceis.iter().filter(|m| m.failed_at.is_some()).count() as u64;
        let cancelled = self
            .ceis
            .iter()
            .filter(|m| m.cancelled_at.is_some())
            .count() as u64;
        let checks = [
            ("probes_used", result.stats.probes_used, self.probes_seen),
            (
                "eis_captured",
                result.stats.eis_captured,
                self.captures_seen,
            ),
            ("ceis_captured", result.stats.ceis_captured, completed),
            ("ceis_failed", result.stats.ceis_failed, failed),
            (
                "probes_failed",
                result.stats.probes_failed,
                self.probes_failed_seen,
            ),
            (
                "budget_lost",
                result.stats.budget_lost,
                self.budget_lost_seen,
            ),
            ("ceis_shed", result.stats.ceis_shed, self.sheds_seen),
            ("ceis_cancelled", result.stats.ceis_cancelled, cancelled),
        ];
        for (name, engine, mirror) in checks {
            if engine != mirror {
                self.report(Violation::ResultDivergence {
                    detail: format!("stats.{name}: engine {engine}, mirror {mirror}"),
                });
            }
        }
        InvariantReport {
            violations: self.violations,
            suppressed: self.suppressed,
            chronons: self.next_t,
            probes: self.probes_seen,
            captures: self.captures_seen,
        }
    }

    fn end_of_run_checks(&mut self) {
        if let Some(t) = self.t_open {
            self.protocol(format!("chronon {t} still open at end of run"));
        }
        let horizon = self.instance.epoch.len();
        if self.next_t != horizon {
            self.report(Violation::EpochTruncated {
                chronons_seen: self.next_t,
                expected: horizon,
            });
        }
        for i in 0..self.ceis.len() {
            if self.ceis[i].completed_at.is_some()
                && !mirror_indicator(&self.instance.ceis[i], self)
            {
                let cei = self.instance.ceis[i].id;
                self.report(Violation::IndicatorMismatch { cei });
            }
        }
    }
}

/// `X(η, S)` restricted to the EIs the mirror saw captured — every mirrored
/// capture must be justified by a probe in that EI's window.
fn mirror_indicator(cei: &Cei, obs: &InvariantObserver<'_>) -> bool {
    let m = &obs.ceis[cei.id.index()];
    let mut justified = 0u16;
    for (k, &ei) in cei.eis.iter().enumerate() {
        if m.captured[k] && ei_captured(ei, &obs.schedule) {
            justified += 1;
        }
    }
    justified >= cei.required
}

impl Observer for InvariantObserver<'_> {
    fn on_event(&mut self, event: Event) {
        match event {
            Event::ChrononStart { t, budget } => self.on_chronon_start(t, budget),
            Event::CandidateSet { t, size, .. } => self.on_candidate_set(t, size),
            Event::ProbeIssued {
                t,
                resource,
                cost,
                shared_eis,
            } => self.on_probe(t, resource, cost, shared_eis),
            Event::EiCaptured { t, cei, latency } => self.on_ei_captured(t, cei, latency),
            Event::CeiCompleted { cei, at } => self.on_cei_completed(cei, at),
            Event::CeiExpired { cei, at } => self.on_cei_expired(cei, at),
            Event::BudgetExhausted { t, deferred } => self.on_budget_exhausted(t, deferred),
            Event::ChrononEnd { t, spent, budget } => self.on_chronon_end(t, spent, budget),
            Event::ProbeFailed {
                t,
                resource,
                cost,
                attempt,
                charged,
            } => self.on_probe_failed(t, resource, cost, attempt, charged),
            Event::ProbeRetried {
                t,
                resource,
                attempt,
            } => self.on_probe_retried(t, resource, attempt),
            Event::ResourceDown { t, resource, until } => self.on_resource_down(t, resource, until),
            Event::ResourceUp { t, resource } => self.on_resource_up(t, resource),
            Event::CeiShed { cei, at } => self.on_cei_shed(cei, at),
            Event::CeiRegistered { cei, at } => self.on_cei_registered(cei, at),
            Event::CeiCancelled { cei, at } => self.on_cei_cancelled(cei, at),
            Event::BudgetReconfigured { t, budget } => self.on_budget_reconfigured(t, budget),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::OnlineEngine;
    use crate::fault::{Backoff, GilbertElliott, IidFaults, NoFaults, RateLimit};
    use crate::model::{Budget, InstanceBuilder, ProbeCosts};
    use crate::policy::{MEdf, Mrsf, Policy, SEdf, Wic};

    /// A contended mixed instance: staggered AND CEIs, a threshold CEI, an
    /// explicit release, and intra-resource overlap.
    fn mixed_instance(budget: u32) -> Instance {
        let mut b = InstanceBuilder::new(4, 24, Budget::Uniform(budget));
        let p = b.profile();
        b.cei(p, &[(0, 0, 4)]);
        b.cei(p, &[(1, 0, 2), (2, 10, 12)]);
        b.cei(p, &[(0, 6, 9), (1, 6, 9), (3, 7, 9)]);
        b.cei_threshold(p, 2, &[(0, 12, 15), (1, 12, 15), (2, 14, 17)]);
        b.cei(p, &[(3, 18, 18), (2, 18, 20)]);
        b.cei_released(p, 1, &[(0, 3, 3), (1, 3, 3)]);
        b.cei(p, &[(0, 14, 14), (0, 14, 14)]);
        b.build()
    }

    fn checked_run(instance: &Instance, policy: &dyn Policy, config: EngineConfig) {
        let mut obs = InvariantObserver::new(instance, config);
        let run = OnlineEngine::run_observed(instance, policy, config, &mut obs);
        let report = obs.finish_with(&run);
        report.assert_clean();
        assert_eq!(report.chronons, instance.epoch.len());
        assert_eq!(report.probes, run.stats.probes_used);
    }

    #[test]
    fn clean_runs_produce_clean_reports() {
        for budget in [0, 1, 2] {
            let instance = mixed_instance(budget);
            for policy in [&SEdf as &dyn Policy, &Mrsf, &MEdf, &Wic::paper()] {
                for config in [
                    EngineConfig::preemptive(),
                    EngineConfig::non_preemptive(),
                    EngineConfig::preemptive().with_lazy_heap(),
                    EngineConfig::preemptive().without_probe_sharing(),
                    EngineConfig::non_preemptive().without_probe_sharing(),
                ] {
                    checked_run(&instance, policy, config);
                }
            }
        }
    }

    #[test]
    fn clean_under_varying_costs_and_per_chronon_budgets() {
        let mut b = InstanceBuilder::new(
            3,
            10,
            Budget::PerChronon(vec![0, 2, 1, 1, 3, 0, 1, 1, 2, 1]),
        );
        let p = b.profile();
        b.cei(p, &[(0, 1, 3)]);
        b.cei(p, &[(1, 2, 5), (2, 4, 8)]);
        b.cei_threshold(p, 1, &[(0, 6, 9), (1, 6, 9)]);
        let instance = b
            .build()
            .with_costs(ProbeCosts::per_resource(vec![1, 2, 1]));
        for config in [EngineConfig::preemptive(), EngineConfig::non_preemptive()] {
            checked_run(&instance, &Mrsf, config);
        }
    }

    /// Replays a run's true event stream with one event swapped/dropped by
    /// `mutate`, and returns the resulting report.
    fn mutated_report(
        instance: &Instance,
        config: EngineConfig,
        mutate: impl Fn(Vec<Event>) -> Vec<Event>,
    ) -> InvariantReport {
        mutated_faulted_report(instance, config, FaultConfig::default(), mutate)
    }

    /// Like [`mutated_report`], with the checker declaring `fault_config`.
    fn mutated_faulted_report(
        instance: &Instance,
        config: EngineConfig,
        fault_config: FaultConfig,
        mutate: impl Fn(Vec<Event>) -> Vec<Event>,
    ) -> InvariantReport {
        struct Rec(Vec<Event>);
        impl Observer for Rec {
            fn on_event(&mut self, event: Event) {
                self.0.push(event);
            }
        }
        let mut rec = Rec(Vec::new());
        OnlineEngine::run_observed(instance, &Mrsf, config, &mut rec);
        let events = mutate(rec.0);
        let mut checker = InvariantObserver::new(instance, config).with_faults(fault_config);
        for e in events {
            checker.on_event(e);
        }
        checker.finish()
    }

    /// Position, chronon, and resource of the stream's first probe.
    fn first_probe(ev: &[Event]) -> (usize, Chronon, ResourceId) {
        let at = ev
            .iter()
            .position(|e| matches!(e, Event::ProbeIssued { .. }))
            .unwrap();
        let Event::ProbeIssued { t, resource, .. } = ev[at] else {
            unreachable!()
        };
        (at, t, resource)
    }

    /// The true stream passes; this is the control for the mutation tests.
    #[test]
    fn unmutated_replay_is_clean() {
        let report = mutated_report(&mixed_instance(1), EngineConfig::preemptive(), |e| e);
        report.assert_clean();
    }

    #[test]
    fn probe_outside_any_window_is_flagged() {
        // Chronon 21 has no open windows on resource 3 in mixed_instance.
        let report = mutated_report(&mixed_instance(1), EngineConfig::preemptive(), |mut ev| {
            let at = ev
                .iter()
                .position(|e| matches!(e, Event::ChrononStart { t: 21, .. }))
                .unwrap();
            ev.insert(
                at + 1,
                Event::ProbeIssued {
                    t: 21,
                    resource: ResourceId(3),
                    cost: 1,
                    shared_eis: 0,
                },
            );
            ev
        });
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::ProbeOutsideWindow {
                    t: 21,
                    resource: ResourceId(3)
                }
            )),
            "{report}"
        );
    }

    #[test]
    fn over_budget_probing_is_flagged() {
        // Duplicate the first probe: same chronon, budget 1 → cost 2 > 1.
        let report = mutated_report(&mixed_instance(1), EngineConfig::preemptive(), |mut ev| {
            let at = ev
                .iter()
                .position(|e| matches!(e, Event::ProbeIssued { .. }))
                .unwrap();
            ev.insert(at, ev[at]);
            ev
        });
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::BudgetExceeded { .. })),
            "{report}"
        );
    }

    #[test]
    fn dropped_expiry_is_flagged_as_missing() {
        let report = mutated_report(&mixed_instance(1), EngineConfig::preemptive(), |ev| {
            let first = ev
                .iter()
                .position(|e| matches!(e, Event::CeiExpired { .. }))
                .unwrap();
            ev.into_iter()
                .enumerate()
                .filter(|&(i, _)| i != first)
                .map(|(_, e)| e)
                .collect()
        });
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::MissingExpiry { .. })),
            "{report}"
        );
    }

    #[test]
    fn dropped_completion_is_flagged_as_missing() {
        let report = mutated_report(&mixed_instance(1), EngineConfig::preemptive(), |ev| {
            let first = ev
                .iter()
                .position(|e| matches!(e, Event::CeiCompleted { .. }))
                .unwrap();
            ev.into_iter()
                .enumerate()
                .filter(|&(i, _)| i != first)
                .map(|(_, e)| e)
                .collect()
        });
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::MissingCompletion { .. })),
            "{report}"
        );
    }

    #[test]
    fn premature_completion_is_flagged() {
        // Announce CEI 2 (three EIs, AND) complete in chronon 0.
        let report = mutated_report(&mixed_instance(1), EngineConfig::preemptive(), |mut ev| {
            ev.insert(
                1,
                Event::CeiCompleted {
                    cei: CeiId(2),
                    at: 0,
                },
            );
            ev
        });
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::CompletionWithoutThreshold {
                    cei: CeiId(2),
                    at: 0,
                    captured: 0,
                    ..
                }
            )),
            "{report}"
        );
    }

    #[test]
    fn expiry_after_completion_is_flagged() {
        // Append an expiry for an already-completed CEI inside the final
        // chronon (before its ChrononEnd).
        let report = mutated_report(&mixed_instance(2), EngineConfig::preemptive(), |mut ev| {
            let done = ev
                .iter()
                .find_map(|e| match e {
                    Event::CeiCompleted { cei, .. } => Some(*cei),
                    _ => None,
                })
                .expect("some CEI completes under budget 2");
            let last_end = ev.len() - 1;
            assert!(matches!(ev[last_end], Event::ChrononEnd { t: 23, .. }));
            ev.insert(last_end, Event::CeiExpired { cei: done, at: 23 });
            ev
        });
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::ExpiredAfterCompletion { .. })),
            "{report}"
        );
    }

    #[test]
    fn fake_capture_is_flagged() {
        // An EiCaptured for a CEI with no window on the probed resource.
        let report = mutated_report(&mixed_instance(1), EngineConfig::preemptive(), |mut ev| {
            let at = ev
                .iter()
                .position(|e| matches!(e, Event::ProbeIssued { .. }))
                .unwrap();
            let Event::ProbeIssued { t, .. } = ev[at] else {
                unreachable!()
            };
            ev.insert(
                at + 1,
                Event::EiCaptured {
                    t,
                    cei: CeiId(4),
                    latency: 0,
                },
            );
            ev
        });
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::CaptureWithoutWindow { cei: CeiId(4), .. }
                    | Violation::CaptureCountMismatch { .. }
            )),
            "{report}"
        );
    }

    #[test]
    fn tampered_candidate_set_is_flagged() {
        let report = mutated_report(&mixed_instance(1), EngineConfig::preemptive(), |mut ev| {
            for e in &mut ev {
                if let Event::CandidateSet { size, .. } = e {
                    *size += 1;
                    break;
                }
            }
            ev
        });
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::CandidateSetMismatch { .. })),
            "{report}"
        );
    }

    #[test]
    fn tampered_spent_and_budget_are_flagged() {
        let report = mutated_report(&mixed_instance(1), EngineConfig::preemptive(), |mut ev| {
            for e in &mut ev {
                if let Event::ChrononEnd { spent, .. } = e {
                    *spent += 1;
                    break;
                }
            }
            for e in &mut ev {
                if let Event::ChrononStart { t: 5, budget } = e {
                    *budget = 9;
                }
            }
            ev
        });
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::SpentMismatch { .. })),
            "{report}"
        );
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::BudgetMismatch { t: 5, .. })),
            "{report}"
        );
    }

    #[test]
    fn truncated_epoch_is_flagged() {
        let report = mutated_report(&mixed_instance(1), EngineConfig::preemptive(), |ev| {
            let cut = ev
                .iter()
                .position(|e| matches!(e, Event::ChrononStart { t: 20, .. }))
                .unwrap();
            ev.into_iter().take(cut).collect()
        });
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::EpochTruncated {
                    chronons_seen: 20,
                    expected: 24
                }
            )),
            "{report}"
        );
    }

    #[test]
    fn violation_cap_suppresses_overflow() {
        // An entirely bogus stream: every chronon out of order.
        let instance = mixed_instance(1);
        let mut checker = InvariantObserver::new(&instance, EngineConfig::preemptive());
        for _ in 0..(MAX_VIOLATIONS as u32 + 40) {
            checker.on_event(Event::ChrononStart { t: 999, budget: 7 });
        }
        let report = checker.finish();
        assert_eq!(report.violations.len(), MAX_VIOLATIONS);
        assert!(report.suppressed > 0);
        assert!(!report.is_clean());
    }

    /// Genuinely faulted runs — i.i.d. failures under every retry
    /// configuration — must check clean end to end.
    #[test]
    fn clean_faulted_runs_produce_clean_reports() {
        let instance = mixed_instance(2);
        for rate in [0.0, 0.35, 0.8] {
            for config in [EngineConfig::preemptive(), EngineConfig::non_preemptive()] {
                for fc in [
                    FaultConfig::default(),
                    FaultConfig::default().with_backoff(Backoff::new(1, 8)),
                    FaultConfig::default().free_failures().with_retry_quota(1),
                ] {
                    let mut faults = IidFaults::new(rate, 0xF00D);
                    let mut obs = InvariantObserver::new(&instance, config).with_faults(fc);
                    let run = OnlineEngine::run_faulted(
                        &instance,
                        &Mrsf,
                        config,
                        &mut faults,
                        fc,
                        &mut obs,
                    );
                    let report = obs.finish_with(&run);
                    report.assert_clean();
                }
            }
        }
    }

    /// Bursty outages and rate-limit windows exercise the down/up
    /// announcements and the shed pass; both must check clean.
    #[test]
    fn clean_outage_runs_produce_clean_reports() {
        let instance = mixed_instance(1);
        let n_res = instance.n_resources as usize;
        let fc = FaultConfig::default();
        for config in [EngineConfig::preemptive(), EngineConfig::non_preemptive()] {
            let mut ge = GilbertElliott::new(0.3, 0.4, 0xBEEF, n_res);
            let mut obs = InvariantObserver::new(&instance, config).with_faults(fc);
            let run = OnlineEngine::run_faulted(&instance, &Mrsf, config, &mut ge, fc, &mut obs);
            obs.finish_with(&run).assert_clean();

            let mut rl = RateLimit::new(6, 1, n_res);
            let mut obs = InvariantObserver::new(&instance, config).with_faults(fc);
            let run = OnlineEngine::run_faulted(&instance, &Mrsf, config, &mut rl, fc, &mut obs);
            obs.finish_with(&run).assert_clean();
        }
    }

    #[test]
    fn probe_inside_announced_outage_is_flagged() {
        let report = mutated_report(&mixed_instance(1), EngineConfig::preemptive(), |mut ev| {
            let (at, t, resource) = first_probe(&ev);
            ev.insert(
                at,
                Event::ResourceDown {
                    t,
                    resource,
                    until: t,
                },
            );
            ev
        });
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::ProbeWhileDown { .. })),
            "{report}"
        );
    }

    #[test]
    fn probe_before_backoff_deadline_is_flagged() {
        // A failure with backoff configured forbids the very next probe of
        // the same resource; the unmutated stream issues one anyway.
        let fc = FaultConfig::default()
            .free_failures()
            .with_backoff(Backoff::new(4, 16));
        let report = mutated_faulted_report(
            &mixed_instance(1),
            EngineConfig::preemptive(),
            fc,
            |mut ev| {
                let (at, t, resource) = first_probe(&ev);
                ev.insert(
                    at,
                    Event::ProbeFailed {
                        t,
                        resource,
                        cost: 1,
                        attempt: 0,
                        charged: false,
                    },
                );
                ev
            },
        );
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::BackoffViolated { .. })),
            "{report}"
        );
    }

    #[test]
    fn retry_with_wrong_streak_is_flagged() {
        let report = mutated_report(&mixed_instance(1), EngineConfig::preemptive(), |mut ev| {
            let (at, t, resource) = first_probe(&ev);
            ev.insert(
                at,
                Event::ProbeRetried {
                    t,
                    resource,
                    attempt: 3,
                },
            );
            ev
        });
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::RetryMismatch {
                    reported: 3,
                    expected: 0,
                    ..
                }
            )),
            "{report}"
        );
    }

    #[test]
    fn retry_over_quota_is_flagged() {
        // Quota 0 forbids any retry; a failure followed by a correctly
        // numbered retry announcement must be flagged.
        let fc = FaultConfig::default().free_failures().with_retry_quota(0);
        let report = mutated_faulted_report(
            &mixed_instance(1),
            EngineConfig::preemptive(),
            fc,
            |mut ev| {
                let (at, t, resource) = first_probe(&ev);
                ev.insert(
                    at,
                    Event::ProbeRetried {
                        t,
                        resource,
                        attempt: 1,
                    },
                );
                ev.insert(
                    at,
                    Event::ProbeFailed {
                        t,
                        resource,
                        cost: 1,
                        attempt: 0,
                        charged: false,
                    },
                );
                ev
            },
        );
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::RetryQuotaExceeded {
                    used: 1,
                    quota: 0,
                    ..
                }
            )),
            "{report}"
        );
    }

    #[test]
    fn uncharged_failure_under_charged_config_is_flagged() {
        let report = mutated_report(&mixed_instance(1), EngineConfig::preemptive(), |mut ev| {
            let (at, t, resource) = first_probe(&ev);
            ev.insert(
                at,
                Event::ProbeFailed {
                    t,
                    resource,
                    cost: 1,
                    attempt: 0,
                    charged: false,
                },
            );
            ev
        });
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::FailureAccounting {
                    reported: false,
                    expected: true,
                    ..
                }
            )),
            "{report}"
        );
    }

    #[test]
    fn shed_of_feasible_cei_is_flagged() {
        // CEI 2 is alive and fully reachable at chronon 0.
        let report = mutated_report(&mixed_instance(1), EngineConfig::preemptive(), |mut ev| {
            ev.insert(
                1,
                Event::CeiShed {
                    cei: CeiId(2),
                    at: 0,
                },
            );
            ev
        });
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::SpuriousShed {
                    cei: CeiId(2),
                    at: 0
                }
            )),
            "{report}"
        );
    }

    #[test]
    fn unshed_infeasible_cei_is_flagged() {
        // Budget 0: nothing is ever captured. An outage on resource 0
        // committed through chronon 4 swallows the whole remaining window
        // of CEI 0's only EI (0, 0, 4) at t=2, yet no CeiShed follows.
        let report = mutated_report(&mixed_instance(0), EngineConfig::preemptive(), |mut ev| {
            let at = ev
                .iter()
                .position(|e| matches!(e, Event::ChrononStart { t: 2, .. }))
                .unwrap();
            ev.insert(
                at + 1,
                Event::ResourceDown {
                    t: 2,
                    resource: ResourceId(0),
                    until: 4,
                },
            );
            ev
        });
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::MissingShed {
                    cei: CeiId(0),
                    t: 2
                }
            )),
            "{report}"
        );
    }

    /// A churn script over [`mixed_instance`]: a dynamic registration with
    /// one pre-opened and one future window, effective and no-op
    /// cancellations, two budget reconfigurations, and a registration
    /// doomed on arrival by an already-closed window.
    fn churn_queue() -> MutationQueue {
        let mut q = MutationQueue::new();
        q.cancel(2, CeiId(0))
            .set_budget(5, 3)
            .cancel(7, CeiId(2))
            .register(13, CeiId(3))
            .set_budget(16, 1)
            .register(19, CeiId(4))
            .cancel(21, CeiId(4));
        q
    }

    #[test]
    fn clean_churned_runs_produce_clean_reports() {
        for budget in [0, 1, 2] {
            let instance = mixed_instance(budget);
            let q = churn_queue();
            for policy in [&SEdf as &dyn Policy, &Mrsf, &MEdf, &Wic::paper()] {
                for config in [
                    EngineConfig::preemptive(),
                    EngineConfig::non_preemptive(),
                    EngineConfig::preemptive().without_probe_sharing(),
                ] {
                    let mut obs = InvariantObserver::new(&instance, config).with_mutations(&q);
                    let run = OnlineEngine::run_mutated(
                        &instance,
                        policy,
                        config,
                        &mut NoFaults,
                        FaultConfig::default(),
                        &q,
                        &mut obs,
                    );
                    obs.finish_with(&run).assert_clean();
                }
            }
        }
    }

    #[test]
    fn clean_churned_faulted_runs_produce_clean_reports() {
        let instance = mixed_instance(2);
        let q = churn_queue();
        for config in [EngineConfig::preemptive(), EngineConfig::non_preemptive()] {
            for fc in [
                FaultConfig::default(),
                FaultConfig::default()
                    .free_failures()
                    .with_backoff(Backoff::new(1, 8))
                    .with_retry_quota(1),
            ] {
                let mut faults = IidFaults::new(0.35, 0xF00D);
                let mut obs = InvariantObserver::new(&instance, config)
                    .with_faults(fc)
                    .with_mutations(&q);
                let run = OnlineEngine::run_mutated(
                    &instance,
                    &Mrsf,
                    config,
                    &mut faults,
                    fc,
                    &q,
                    &mut obs,
                );
                obs.finish_with(&run).assert_clean();
            }
        }
    }

    /// Like [`mutated_report`], for a churned run: the true stream of
    /// `run_mutated` under `queue` is tampered with and re-checked.
    fn churned_mutated_report(
        instance: &Instance,
        queue: &MutationQueue,
        mutate: impl Fn(Vec<Event>) -> Vec<Event>,
    ) -> InvariantReport {
        struct Rec(Vec<Event>);
        impl Observer for Rec {
            fn on_event(&mut self, event: Event) {
                self.0.push(event);
            }
        }
        let config = EngineConfig::preemptive();
        let mut rec = Rec(Vec::new());
        OnlineEngine::run_mutated(
            instance,
            &Mrsf,
            config,
            &mut NoFaults,
            FaultConfig::default(),
            queue,
            &mut rec,
        );
        let events = mutate(rec.0);
        let mut checker = InvariantObserver::new(instance, config).with_mutations(queue);
        for e in events {
            checker.on_event(e);
        }
        checker.finish()
    }

    #[test]
    fn undeclared_registration_is_flagged() {
        // No MutationQueue was declared, so any churn event is unexpected.
        let report = mutated_report(&mixed_instance(1), EngineConfig::preemptive(), |mut ev| {
            ev.insert(
                1,
                Event::CeiRegistered {
                    cei: CeiId(3),
                    at: 0,
                },
            );
            ev
        });
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::UnexpectedMutation { t: 0, .. })),
            "{report}"
        );
    }

    #[test]
    fn duplicate_registration_is_flagged() {
        let mut q = MutationQueue::new();
        q.register(13, CeiId(3));
        let report = churned_mutated_report(&mixed_instance(1), &q, |mut ev| {
            let at = ev
                .iter()
                .position(|e| matches!(e, Event::CeiRegistered { .. }))
                .unwrap();
            ev.insert(at, ev[at]);
            ev
        });
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::UnexpectedMutation { t: 13, .. })),
            "{report}"
        );
    }

    #[test]
    fn dropped_cancellation_event_is_flagged() {
        let mut q = MutationQueue::new();
        q.cancel(7, CeiId(2));
        let report = churned_mutated_report(&mixed_instance(1), &q, |ev| {
            ev.into_iter()
                .filter(|e| !matches!(e, Event::CeiCancelled { .. }))
                .collect()
        });
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::MissingMutation { t: 7, .. })),
            "{report}"
        );
    }

    #[test]
    fn probe_for_cancelled_cei_is_flagged() {
        // CEI 2 owns the only window on resource 3 around chronon 8; after
        // its cancellation at 7 a probe there serves nobody.
        let mut q = MutationQueue::new();
        q.cancel(7, CeiId(2));
        let report = churned_mutated_report(&mixed_instance(1), &q, |mut ev| {
            let at = ev
                .iter()
                .position(|e| matches!(e, Event::ChrononStart { t: 8, .. }))
                .unwrap();
            ev.insert(
                at + 1,
                Event::ProbeIssued {
                    t: 8,
                    resource: ResourceId(3),
                    cost: 1,
                    shared_eis: 0,
                },
            );
            ev
        });
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::ProbeOutsideWindow {
                    t: 8,
                    resource: ResourceId(3)
                }
            )),
            "{report}"
        );
    }

    #[test]
    fn same_chronon_budget_application_is_flagged() {
        // A reconfiguration drained at 5 must not change chronon 5's own
        // budget; a stream claiming it did diverges from the mirror.
        let mut q = MutationQueue::new();
        q.set_budget(5, 3);
        let report = churned_mutated_report(&mixed_instance(1), &q, |mut ev| {
            for e in &mut ev {
                if let Event::ChrononStart { t: 5, budget } = e {
                    *budget = 3;
                }
            }
            ev
        });
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::BudgetMismatch {
                    t: 5,
                    reported: 3,
                    expected: 1
                }
            )),
            "{report}"
        );
    }

    #[test]
    fn report_display_lists_violations() {
        let report = mutated_report(&mixed_instance(1), EngineConfig::preemptive(), |mut ev| {
            for e in &mut ev {
                if let Event::CandidateSet { size, .. } = e {
                    *size += 3;
                    break;
                }
            }
            ev
        });
        let text = report.to_string();
        assert!(text.contains("violation"), "{text}");
        assert!(text.contains("candidate set"), "{text}");
    }
}
