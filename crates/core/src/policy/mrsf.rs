//! Minimal Residual Stub First (MRSF).

use super::{Candidate, Policy, PolicyContext};

/// **MRSF** — the rank-level representative: prefer EIs whose parent CEI has
/// the fewest EIs left to capture,
/// `MRSF(I) = rank(p) − Σ_{I' ∈ η} X(I', S)` (Section IV-A).
///
/// Intuition: a CEI with fewer remaining EIs has a higher probability of
/// being completed, so finishing near-complete CEIs first wastes fewer
/// probes. Prop. 2 shows MRSF is `l`-competitive with
/// `l = max_{η} Σ_{I ∈ η} |I|` (no intra-resource overlap).
///
/// Note the formula uses the *profile* rank, not the CEI's own size; the two
/// agree whenever every CEI of a profile has exactly `rank(p)` EIs, which
/// holds in all of the paper's experiments. [`MrsfExact`] is the variant
/// using the CEI's own size.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mrsf;

impl Policy for Mrsf {
    fn name(&self) -> &'static str {
        "MRSF"
    }

    #[inline]
    fn score(&self, _ctx: &PolicyContext<'_>, cand: &Candidate<'_>) -> i64 {
        i64::from(cand.cei.profile_rank) - i64::from(cand.cei.n_captured)
    }
}

/// Ablation variant of [`Mrsf`] scoring the *exact* residual
/// `required − Σ X(I', S)` — the "number of EIs left to be captured" of the
/// paper's prose — instead of the formula's `rank(p) − Σ X(I', S)`.
/// On the paper's AND-semantics constructs `required = |η|`, so the two
/// differ only when a profile mixes CEI sizes; under the §VII threshold
/// extension this is the natural residual.
#[derive(Debug, Clone, Copy, Default)]
pub struct MrsfExact;

impl Policy for MrsfExact {
    fn name(&self) -> &'static str {
        "MRSF-Exact"
    }

    #[inline]
    fn score(&self, _ctx: &PolicyContext<'_>, cand: &Candidate<'_>) -> i64 {
        i64::from(cand.cei.required) - i64::from(cand.cei.n_captured)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_util::*;

    #[test]
    fn score_is_rank_minus_captured() {
        let eis = vec![ei(0, 0, 5), ei(1, 0, 5), ei(2, 0, 5)];
        let data = CtxData::new(0, 3);
        let ctx = data.ctx();
        assert_eq!(score_of(&Mrsf, &ctx, &eis, &[false; 3], 0, 3), 3);
        assert_eq!(score_of(&Mrsf, &ctx, &eis, &[true, false, false], 1, 3), 2);
        assert_eq!(score_of(&Mrsf, &ctx, &eis, &[true, true, false], 2, 3), 1);
    }

    #[test]
    fn nearly_complete_cei_preferred() {
        let a = vec![ei(0, 0, 5), ei(1, 0, 5)];
        let b = vec![ei(2, 0, 5), ei(3, 0, 5)];
        let data = CtxData::new(0, 4);
        let ctx = data.ctx();
        let near = score_of(&Mrsf, &ctx, &a, &[true, false], 1, 2);
        let fresh = score_of(&Mrsf, &ctx, &b, &[false, false], 0, 2);
        assert!(near < fresh);
    }

    #[test]
    fn paper_formula_uses_profile_rank_not_cei_size() {
        // A rank-5 profile containing a 2-EI CEI: the paper formula scores
        // 5 - 0 = 5, the exact variant scores 2 - 0 = 2.
        let eis = vec![ei(0, 0, 5), ei(1, 0, 5)];
        let data = CtxData::new(0, 2);
        let ctx = data.ctx();
        assert_eq!(score_of(&Mrsf, &ctx, &eis, &[false, false], 0, 5), 5);
        assert_eq!(score_of(&MrsfExact, &ctx, &eis, &[false, false], 0, 5), 2);
    }

    #[test]
    fn variants_agree_on_uniform_rank() {
        let eis = vec![ei(0, 0, 5), ei(1, 0, 5), ei(2, 0, 5)];
        let cap = [true, false, false];
        let data = CtxData::new(0, 3);
        let ctx = data.ctx();
        assert_eq!(
            score_of(&Mrsf, &ctx, &eis, &cap, 1, 3),
            score_of(&MrsfExact, &ctx, &eis, &cap, 1, 3)
        );
    }

    #[test]
    fn score_is_time_invariant() {
        let eis = vec![ei(0, 0, 9), ei(1, 0, 9)];
        let cap = [false, false];
        let early = CtxData::new(0, 2);
        let late = CtxData::new(8, 2);
        assert_eq!(
            score_of(&Mrsf, &early.ctx(), &eis, &cap, 0, 2),
            score_of(&Mrsf, &late.ctx(), &eis, &cap, 0, 2)
        );
    }
}
