//! Utility-weighted policy wrapper — the profile-utility extension of
//! Section VII ("such utilities can further help to construct better
//! prioritized policies").

use super::{Candidate, Policy, PolicyContext};

/// Fixed-point scale applied before dividing by the weight, so fractional
/// priorities survive the integer score.
const SCALE: f64 = 64.0;

/// Wraps any min-score policy and divides its score by the candidate CEI's
/// utility weight: a CEI worth `2×` is served as if its base priority were
/// twice as urgent. With unit weights the wrapped policy's *ordering* is
/// unchanged (scores are scaled by a constant).
///
/// ```
/// use webmon_core::policy::{Mrsf, UtilityWeighted};
/// let policy = UtilityWeighted::new(Mrsf, "U-MRSF");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct UtilityWeighted<P> {
    inner: P,
    label: &'static str,
}

impl<P: Policy> UtilityWeighted<P> {
    /// Wraps `inner`, reporting `label` in experiment tables.
    pub fn new(inner: P, label: &'static str) -> Self {
        UtilityWeighted { inner, label }
    }
}

impl<P: Policy> Policy for UtilityWeighted<P> {
    fn name(&self) -> &'static str {
        self.label
    }

    fn score(&self, ctx: &PolicyContext<'_>, cand: &Candidate<'_>) -> i64 {
        let base = self.inner.score(ctx, cand) as f64;
        (base * SCALE / f64::from(cand.cei.weight)).round() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_util::*;
    use crate::policy::{CeiView, Mrsf, SEdf};

    fn weighted_score(policy: &dyn Policy, eis: &[crate::model::Ei], weight: f32, now: u32) -> i64 {
        let captured = vec![false; eis.len()];
        let data = CtxData::new(now, eis.len());
        let cand = Candidate {
            ei: eis[0],
            ei_index: 0,
            cei: CeiView {
                eis,
                captured: &captured,
                n_captured: 0,
                required: u16::try_from(eis.len()).expect("test CEIs stay u16-sized"),
                weight,
                profile_rank: u16::try_from(eis.len()).expect("test CEIs stay u16-sized"),
            },
        };
        policy.score(&data.ctx(), &cand)
    }

    #[test]
    fn heavier_cei_gets_lower_score() {
        let p = UtilityWeighted::new(SEdf, "U-S-EDF");
        let eis = vec![ei(0, 0, 9)];
        let light = weighted_score(&p, &eis, 1.0, 0);
        let heavy = weighted_score(&p, &eis, 4.0, 0);
        assert!(heavy < light, "heavy {heavy} should beat light {light}");
        assert_eq!(light, 10 * 64);
        assert_eq!(heavy, 10 * 16);
    }

    #[test]
    fn unit_weights_preserve_ordering() {
        let base = Mrsf;
        let wrapped = UtilityWeighted::new(Mrsf, "U-MRSF");
        let a = vec![ei(0, 0, 5), ei(1, 0, 5)];
        let b = vec![ei(2, 0, 5), ei(3, 0, 5), ei(4, 0, 5)];
        let sa = weighted_score(&wrapped, &a, 1.0, 0);
        let sb = weighted_score(&wrapped, &b, 1.0, 0);
        let ba = weighted_score(&base, &a, 1.0, 0);
        let bb = weighted_score(&base, &b, 1.0, 0);
        assert_eq!(sa < sb, ba < bb);
    }

    #[test]
    fn label_is_reported() {
        let p = UtilityWeighted::new(SEdf, "U-S-EDF");
        assert_eq!(p.name(), "U-S-EDF");
    }
}
