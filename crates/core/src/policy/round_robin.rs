//! A round-robin control policy.

use super::{Candidate, Policy, PolicyContext};

/// **Round-robin** — a control policy cycling deterministically through
/// resources: at chronon `T`, resource `(T mod n)` is most preferred, then
/// `(T+1 mod n)`, and so on. Oblivious to deadlines and CEI structure; like
/// [`RandomPolicy`](super::RandomPolicy) it anchors experiment tables and is
/// occasionally competitive when update load is uniform.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl Policy for RoundRobin {
    fn name(&self) -> &'static str {
        "RoundRobin"
    }

    #[inline]
    fn score(&self, ctx: &PolicyContext<'_>, cand: &Candidate<'_>) -> i64 {
        let n = ctx.resources.active_eis.len() as u32;
        if n == 0 {
            return 0;
        }
        let r = cand.ei.resource.0;
        i64::from((r + n - (ctx.now % n)) % n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_util::*;

    #[test]
    fn preference_rotates_with_time() {
        let eis = vec![ei(0, 0, 9), ei(1, 0, 9), ei(2, 0, 9)];
        let cap = vec![false; 3];
        // At T=1 with n=3: r1 scores 0, r2 scores 1, r0 scores 2.
        let data = CtxData::new(1, 3);
        let ctx = data.ctx();
        assert_eq!(score_of(&RoundRobin, &ctx, &eis, &cap, 1, 3), 0);
        assert_eq!(score_of(&RoundRobin, &ctx, &eis, &cap, 2, 3), 1);
        assert_eq!(score_of(&RoundRobin, &ctx, &eis, &cap, 0, 3), 2);
    }

    #[test]
    fn wraps_past_epoch_of_resources() {
        let eis = vec![ei(0, 0, 99), ei(1, 0, 99)];
        let cap = vec![false; 2];
        let data = CtxData::new(7, 2); // 7 mod 2 = 1 → r1 preferred
        let ctx = data.ctx();
        assert!(
            score_of(&RoundRobin, &ctx, &eis, &cap, 1, 2)
                < score_of(&RoundRobin, &ctx, &eis, &cap, 0, 2)
        );
    }
}
