//! Multi Interval EDF (M-EDF).

use super::{Candidate, Policy, PolicyContext};

/// **M-EDF** — the multi-EI-level representative: prefer EIs whose parent CEI
/// has the fewest *total remaining chronons* across all uncaptured EIs,
/// `M-EDF(I, T) = Σ_{I' ∈ η} S-EDF'(I', T) · (1 − X(I', S))` (Section IV-A).
///
/// For an uncaptured sibling `I'`:
/// * active (`T_s ≤ T ≤ T_f`): contributes its remaining chronons
///   `T_f − T + 1`;
/// * not yet active (`T < T_s`): contributes its full length `|I'|` — the
///   paper's "EDF value calculated with `T = 0`", i.e. relative time zero of
///   the interval. This matches Figures 6 and 7, which accumulate "the
///   number of chronons of all remaining EIs".
///
/// Intuition: a CEI with fewer total remaining chronons has fewer chances to
/// collide with competing CEIs, hence a higher completion probability.
/// Prop. 3: on `P^[1]` instances (all EIs one chronon wide) M-EDF degenerates
/// to [`Mrsf`](super::Mrsf).
#[derive(Debug, Clone, Copy, Default)]
pub struct MEdf;

impl Policy for MEdf {
    fn name(&self) -> &'static str {
        "M-EDF"
    }

    fn score(&self, ctx: &PolicyContext<'_>, cand: &Candidate<'_>) -> i64 {
        // Under the §VII threshold extension only `required − captured`
        // more EIs are needed; the cheapest such subset is the CEI's true
        // remaining work. With AND semantics (every paper construct) the
        // subset is "all of them" and no sorting happens.
        let needed =
            usize::from(cand.cei.required).saturating_sub(usize::from(cand.cei.n_captured));
        let mut contributions: Vec<i64> = Vec::new();
        let mut total: i64 = 0;
        let threshold_mode = usize::from(cand.cei.required) < cand.cei.eis.len();
        for (ei, &captured) in cand.cei.eis.iter().zip(cand.cei.captured) {
            if captured {
                continue;
            }
            let c = if ei.is_future(ctx.now) {
                i64::from(ei.len())
            } else if ei.is_expired(ctx.now) {
                // An expired uncaptured sibling contributes nothing (it can
                // never be captured); under AND semantics the engine has
                // already failed such CEIs.
                continue;
            } else {
                i64::from(ei.remaining(ctx.now))
            };
            if threshold_mode {
                contributions.push(c);
            } else {
                total += c;
            }
        }
        if threshold_mode {
            contributions.sort_unstable();
            contributions.into_iter().take(needed.max(1)).sum()
        } else {
            total
        }
    }
}

/// Ablation variant of [`MEdf`] reading "calculated with `T = 0`" literally
/// as *absolute* time zero: a not-yet-active sibling contributes its absolute
/// deadline `T_f + 1` instead of its length. Biases against CEIs whose later
/// EIs sit deep in the epoch; kept to quantify the interpretation gap
/// (DESIGN.md §5).
#[derive(Debug, Clone, Copy, Default)]
pub struct MEdfAbsoluteDeadline;

impl Policy for MEdfAbsoluteDeadline {
    fn name(&self) -> &'static str {
        "M-EDF-Abs"
    }

    fn score(&self, ctx: &PolicyContext<'_>, cand: &Candidate<'_>) -> i64 {
        let mut total: i64 = 0;
        for (ei, &captured) in cand.cei.eis.iter().zip(cand.cei.captured) {
            if captured {
                continue;
            }
            total += if ei.is_future(ctx.now) {
                i64::from(ei.end) + 1
            } else if ei.is_expired(ctx.now) {
                0
            } else {
                i64::from(ei.remaining(ctx.now))
            };
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_util::*;

    #[test]
    fn active_siblings_contribute_remaining_chronons() {
        // Both EIs active at T=2: remaining 4 and 7.
        let eis = vec![ei(0, 0, 5), ei(1, 1, 8)];
        let data = CtxData::new(2, 2);
        assert_eq!(
            score_of(&MEdf, &data.ctx(), &eis, &[false, false], 0, 2),
            4 + 7
        );
    }

    #[test]
    fn future_siblings_contribute_full_length() {
        // EI 0 active (remaining 4), EI 1 future (length 3).
        let eis = vec![ei(0, 0, 5), ei(1, 6, 8)];
        let data = CtxData::new(2, 2);
        assert_eq!(
            score_of(&MEdf, &data.ctx(), &eis, &[false, false], 0, 2),
            4 + 3
        );
    }

    #[test]
    fn captured_siblings_are_excluded() {
        let eis = vec![ei(0, 0, 5), ei(1, 0, 9)];
        let data = CtxData::new(2, 2);
        assert_eq!(score_of(&MEdf, &data.ctx(), &eis, &[false, true], 0, 2), 4);
    }

    /// Prop. 3: on unit-width EIs, M-EDF equals MRSF.
    #[test]
    fn unit_width_degenerates_to_mrsf() {
        use crate::policy::Mrsf;
        // Every EI one chronon wide; candidate active at its only chronon.
        let eis = vec![ei(0, 3, 3), ei(1, 5, 5), ei(2, 7, 7)];
        for captured in [
            [false, false, false],
            [true, false, false],
            [true, true, false],
        ] {
            let data = CtxData::new(3, 3);
            let ctx = data.ctx();
            let medf = score_of(&MEdf, &ctx, &eis, &captured, 0, 3);
            let mrsf = score_of(&Mrsf, &ctx, &eis, &captured, 0, 3);
            assert_eq!(medf, mrsf, "captured = {captured:?}");
        }
    }

    #[test]
    fn threshold_cei_counts_cheapest_subset() {
        use crate::policy::{Candidate, CeiView};
        // 2-of-3 CEI: remaining contributions are 4 (active), 3 and 7
        // (future); the cheapest 2 are 3 + 4 = 7.
        let eis = vec![ei(0, 0, 5), ei(1, 6, 8), ei(2, 10, 16)];
        let captured = vec![false, false, false];
        let data = CtxData::new(2, 3);
        let cand = Candidate {
            ei: eis[0],
            ei_index: 0,
            cei: CeiView {
                eis: &eis,
                captured: &captured,
                n_captured: 0,
                required: 2,
                weight: 1.0,
                profile_rank: 3,
            },
        };
        assert_eq!(MEdf.score(&data.ctx(), &cand), 7);
    }

    #[test]
    fn absolute_variant_weights_future_by_deadline() {
        // EI 0 active (remaining 4); EI 1 future ending at 8 → contributes 9.
        let eis = vec![ei(0, 0, 5), ei(1, 6, 8)];
        let data = CtxData::new(2, 2);
        assert_eq!(
            score_of(
                &MEdfAbsoluteDeadline,
                &data.ctx(),
                &eis,
                &[false, false],
                0,
                2
            ),
            4 + 9
        );
    }
}
