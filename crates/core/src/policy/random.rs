//! A uniformly random control policy.

use super::{Candidate, Policy, PolicyContext};
use std::sync::atomic::{AtomicU64, Ordering};

/// **Random** — a control policy assigning every candidate an independent
/// pseudo-random score. Any serious policy should beat it; it anchors the
/// low end of experiment tables and exercises the engine's tie handling.
///
/// Uses a deterministic SplitMix64 stream (atomic counter + mix) so runs are
/// reproducible from the seed without external dependencies, and `Sync` as
/// the [`Policy`] trait requires.
#[derive(Debug)]
pub struct RandomPolicy {
    seed: u64,
    state: AtomicU64,
}

impl RandomPolicy {
    /// A random policy with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            seed,
            state: AtomicU64::new(seed),
        }
    }

    fn next(&self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014) — tiny, fast, well mixed.
        // fetch_add returns the pre-increment value; add the increment to
        // mix the post-increment state.
        let mut z = self
            .state
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Default for RandomPolicy {
    fn default() -> Self {
        RandomPolicy::new(0xC0FFEE)
    }
}

impl Policy for RandomPolicy {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn spec(&self) -> String {
        format!("Random(seed={})", self.seed)
    }

    fn score(&self, _ctx: &PolicyContext<'_>, _cand: &Candidate<'_>) -> i64 {
        (self.next() >> 1) as i64
    }

    /// Every `score` call advances the RNG, so re-scoring the same candidate
    /// yields a new value — the heap selectors' stale-entry check would
    /// re-push forever. Declaring the scores unstable makes the engine pin
    /// this policy to the `Scan` selector.
    fn stable_scores(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_stream_is_deterministic() {
        let a = RandomPolicy::new(42);
        let b = RandomPolicy::new(42);
        let xs: Vec<u64> = (0..5).map(|_| a.next()).collect();
        let ys: Vec<u64> = (0..5).map(|_| b.next()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = RandomPolicy::new(1);
        let b = RandomPolicy::new(2);
        assert_ne!(a.next(), b.next());
    }

    #[test]
    fn scores_are_non_negative() {
        use crate::policy::test_util::*;
        let p = RandomPolicy::new(7);
        let eis = vec![ei(0, 0, 5)];
        let cap = vec![false];
        let data = CtxData::new(0, 1);
        for _ in 0..100 {
            assert!(score_of(&p, &data.ctx(), &eis, &cap, 0, 1) >= 0);
        }
    }
}
