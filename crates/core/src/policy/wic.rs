//! WIC: the single-resource Web-monitoring baseline of \[3\], re-implemented
//! the way Section V-A.3 of the paper does.

use super::{Candidate, Policy, PolicyContext};

/// **WIC** — the individual-EI-level baseline from prior Web-monitoring work
/// \[3\], implemented per the paper's experimental setup: urgency is uniform
/// (`urgency_j(T) = 1`), life is the EI window, and `p_ij = 1` iff resource
/// `r_i` has an update at chronon `T_j` (in the EI encoding: a candidate EI
/// on `r_i` opens at `T_j`), else `p_ij = 0`.
///
/// Each chronon WIC probes the resources with the maximum *accumulated
/// utility* `Σ_{live EIs on r} urgency · p`. Expressed as a min-score policy:
/// `score(I, T) = −(accumulated utility of r(I))`, scaled to an integer.
///
/// `stale_utility` generalizes the strict paper setting: an active EI whose
/// window opened before `T_j` contributes `stale_utility` instead of 0.
/// The paper's setting is `stale_utility = 0.0` ([`Wic::paper`], the
/// `Default`); with `w = 0` every EI is fresh exactly once so the knob is
/// irrelevant there.
#[derive(Debug, Clone, Copy)]
pub struct Wic {
    /// Utility contributed by an active-but-not-fresh EI (paper: `0.0`).
    pub stale_utility: f64,
}

/// Fixed-point scale for converting accumulated utilities to integer scores.
const UTILITY_SCALE: f64 = 1024.0;

impl Wic {
    /// The strict configuration used in the paper's experiments.
    pub fn paper() -> Self {
        Wic { stale_utility: 0.0 }
    }

    /// A softened variant where stale active EIs still carry weight.
    pub fn with_stale_utility(stale_utility: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&stale_utility),
            "stale utility must lie in [0, 1]"
        );
        Wic { stale_utility }
    }
}

impl Default for Wic {
    fn default() -> Self {
        Wic::paper()
    }
}

impl Policy for Wic {
    fn name(&self) -> &'static str {
        "WIC"
    }

    fn spec(&self) -> String {
        format!("WIC(stale_utility={})", self.stale_utility)
    }

    fn score(&self, ctx: &PolicyContext<'_>, cand: &Candidate<'_>) -> i64 {
        let r = cand.ei.resource.index();
        let live = f64::from(ctx.resources.active_eis[r]);
        // Fresh EIs (window opens now) carry utility 1; the rest carry
        // `stale_utility`. With `has_update`, at least the opening EIs are
        // fresh; we approximate the fresh count by 1 when an update fires
        // (the engine aggregates per resource, and multiple simultaneous
        // openings on one resource are rare at chronon granularity).
        let fresh = if ctx.resources.has_update[r] {
            1.0
        } else {
            0.0
        };
        let stale = (live - fresh).max(0.0);
        let utility = fresh + stale * self.stale_utility;
        -((utility * UTILITY_SCALE) as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_util::*;

    #[test]
    fn fresh_update_beats_no_update() {
        let eis = vec![ei(0, 5, 5), ei(1, 2, 9)];
        let cap = vec![false, false];
        let mut data = CtxData::new(5, 2);
        data.active = vec![1, 1];
        data.updates = vec![true, false]; // r0 updates now, r1 opened earlier
        let ctx = data.ctx();
        let fresh = score_of(&Wic::paper(), &ctx, &eis, &cap, 0, 2);
        let stale = score_of(&Wic::paper(), &ctx, &eis, &cap, 1, 2);
        assert!(fresh < stale, "fresh {fresh} should beat stale {stale}");
        assert_eq!(stale, 0); // strict paper setting: stale EIs carry nothing
    }

    #[test]
    fn stale_utility_gives_weight_to_open_windows() {
        let eis = vec![ei(0, 2, 9)];
        let cap = vec![false];
        let mut data = CtxData::new(5, 1);
        data.active = vec![3];
        data.updates = vec![false];
        let ctx = data.ctx();
        let soft = Wic::with_stale_utility(0.5);
        let score = score_of(&soft, &ctx, &eis, &cap, 0, 1);
        // 3 stale EIs × 0.5 = 1.5 utility → −1536 at scale 1024.
        assert_eq!(score, -1536);
    }

    #[test]
    fn more_live_eis_accumulate_more_utility() {
        let eis = vec![ei(0, 5, 5), ei(1, 5, 5)];
        let cap = vec![false, false];
        let mut data = CtxData::new(5, 2);
        data.active = vec![4, 1];
        data.updates = vec![true, true];
        let ctx = data.ctx();
        let soft = Wic::with_stale_utility(1.0);
        let heavy = score_of(&soft, &ctx, &eis, &cap, 0, 2);
        let light = score_of(&soft, &ctx, &eis, &cap, 1, 2);
        assert!(heavy < light);
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn out_of_range_stale_utility_rejected() {
        let _ = Wic::with_stale_utility(1.5);
    }
}
