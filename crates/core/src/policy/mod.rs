//! Online probing policies (Section IV-A).
//!
//! At every chronon, a policy `Φ` looks at the candidate execution intervals
//! `cands(I)` and returns up to `C_j` EIs to probe. The paper classifies
//! policies by how much of the CEI hierarchy they consult:
//!
//! * **Individual-EI level** — only the EI itself: [`SEdf`], [`Wic`].
//! * **Rank level** — the parent CEI's residual complexity: [`Mrsf`].
//! * **Multi-EI level** — all sibling EIs of the parent CEI: [`MEdf`].
//!
//! Policies are *scoring functions*: the engine repeatedly selects the
//! candidate with the minimum score (ties broken deterministically by CEI id
//! then EI index, standing in for the paper's "chooses arbitrarily"). A probe
//! of the selected EI's resource captures every active candidate on that
//! resource, implementing the intra-resource probe sharing of Algorithm 1.

mod m_edf;
mod mrsf;
mod random;
mod round_robin;
mod s_edf;
mod utility;
mod wic;

pub use m_edf::{MEdf, MEdfAbsoluteDeadline};
pub use mrsf::{Mrsf, MrsfExact};
pub use random::RandomPolicy;
pub use round_robin::RoundRobin;
pub use s_edf::SEdf;
pub use utility::UtilityWeighted;
pub use wic::Wic;

use crate::model::{Chronon, Ei};

/// A candidate EI's view of its parent CEI, provided by the engine.
#[derive(Debug, Clone, Copy)]
pub struct CeiView<'a> {
    /// All EIs of the parent CEI (siblings of — and including — the
    /// candidate).
    pub eis: &'a [Ei],
    /// Capture flag per EI, parallel to `eis`.
    pub captured: &'a [bool],
    /// Number of captured EIs (`Σ X(I', S)`), precomputed by the engine so
    /// rank-level policies stay `Θ(1)` per candidate (Appendix B).
    pub n_captured: u16,
    /// Number of EIs required to satisfy the CEI (`|η|` under the paper's
    /// AND semantics; smaller under the §VII threshold extension).
    pub required: u16,
    /// Client utility weight of the CEI (the §VII utility extension;
    /// `1.0` in every paper construct).
    pub weight: f32,
    /// `rank(p)` of the owning profile.
    pub profile_rank: u16,
}

/// A candidate EI offered to the policy for scoring.
#[derive(Debug, Clone, Copy)]
pub struct Candidate<'a> {
    /// The execution interval itself; guaranteed active at `ctx.now`.
    pub ei: Ei,
    /// Index of `ei` within `cei.eis`.
    pub ei_index: usize,
    /// View of the parent CEI.
    pub cei: CeiView<'a>,
}

/// Per-resource aggregates the engine computes once per chronon.
#[derive(Debug, Clone, Copy)]
pub struct ResourceStats<'a> {
    /// Count of active candidate EIs per resource.
    pub active_eis: &'a [u32],
    /// `true` if the resource has an update event at the current chronon.
    /// In the EI encoding, update events coincide with EI window openings,
    /// so this is "some candidate EI on `r` starts now" (WIC's `p_ij`).
    pub has_update: &'a [bool],
}

/// Everything a policy may consult when scoring a candidate.
#[derive(Debug, Clone, Copy)]
pub struct PolicyContext<'a> {
    /// The current chronon `T_j`.
    pub now: Chronon,
    /// Per-resource aggregates.
    pub resources: ResourceStats<'a>,
}

/// An online probing policy. Implementations must be cheap: `score` runs for
/// every candidate at every selection step (the paper's `τ(Φ)`).
pub trait Policy: Sync {
    /// Short, stable name used in experiment tables (e.g. `"M-EDF"`).
    fn name(&self) -> &'static str;

    /// The full parameterization of this policy instance — equal specs must
    /// score identically. Parameterless policies keep the default (the
    /// name); parameterized ones ([`Wic`]'s stale
    /// utility, [`RandomPolicy`]'s seed)
    /// append their parameters. Feeds the serve journal's configuration
    /// fingerprint, which must refuse recovery under a same-named but
    /// differently-tuned policy.
    fn spec(&self) -> String {
        self.name().to_string()
    }

    /// The priority of probing `cand` at `ctx.now`; the engine picks the
    /// candidate with the **minimum** score. Max-style policies (WIC) negate
    /// their utility.
    fn score(&self, ctx: &PolicyContext<'_>, cand: &Candidate<'_>) -> i64;

    /// Whether `score` is a pure function of `(ctx, cand)` — `true` for
    /// every paper policy. The heap-based selection strategies detect stale
    /// heap entries by re-scoring on pop and re-pushing on mismatch, which
    /// only terminates if an unchanged candidate re-scores to the same
    /// value; a policy drawing from hidden mutable state (e.g. the `Random`
    /// baseline) breaks that contract, so the engine falls back to the
    /// always-correct `Scan` selector when this returns `false`.
    fn stable_scores(&self) -> bool {
        true
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    //! Shared scaffolding for policy unit tests.

    use super::*;
    use crate::model::ResourceId;

    /// Owns the arrays a `PolicyContext` borrows.
    pub struct CtxData {
        pub now: Chronon,
        pub active: Vec<u32>,
        pub updates: Vec<bool>,
    }

    impl CtxData {
        pub fn new(now: Chronon, n_resources: usize) -> Self {
            CtxData {
                now,
                active: vec![0; n_resources],
                updates: vec![false; n_resources],
            }
        }

        pub fn ctx(&self) -> PolicyContext<'_> {
            PolicyContext {
                now: self.now,
                resources: ResourceStats {
                    active_eis: &self.active,
                    has_update: &self.updates,
                },
            }
        }
    }

    pub fn ei(r: u32, s: Chronon, e: Chronon) -> Ei {
        Ei::new(ResourceId(r), s, e)
    }

    /// Scores candidate `idx` of a CEI described by `eis` + `captured`.
    pub fn score_of(
        policy: &dyn Policy,
        ctx: &PolicyContext<'_>,
        eis: &[Ei],
        captured: &[bool],
        idx: usize,
        profile_rank: u16,
    ) -> i64 {
        let cand = Candidate {
            ei: eis[idx],
            ei_index: idx,
            cei: CeiView {
                eis,
                captured,
                n_captured: captured.iter().filter(|&&c| c).count() as u16,
                required: u16::try_from(eis.len()).expect("test CEIs stay u16-sized"),
                weight: 1.0,
                profile_rank,
            },
        };
        policy.score(ctx, &cand)
    }
}

#[cfg(test)]
mod tests {
    use super::test_util::*;
    use super::*;

    /// Reproduces the paper's Example 1 (Figure 6): a CEI with four EIs; at
    /// chronon T the policies assign S-EDF = 5, MRSF = 4, M-EDF = 22.
    ///
    /// Layout (T = 10): the candidate EI is active with 5 chronons left; the
    /// three uncaptured siblings are future EIs of lengths 6, 4, and 7.
    /// 5 + 6 + 4 + 7 = 22.
    #[test]
    fn figure6_policy_values() {
        let eis = vec![
            ei(0, 8, 14),  // active at T=10, remaining = 5
            ei(1, 16, 21), // future, |I| = 6
            ei(2, 23, 26), // future, |I| = 4
            ei(3, 28, 34), // future, |I| = 7
        ];
        let captured = vec![false; 4];
        let data = CtxData::new(10, 4);
        let ctx = data.ctx();

        assert_eq!(score_of(&SEdf, &ctx, &eis, &captured, 0, 4), 5);
        assert_eq!(score_of(&Mrsf, &ctx, &eis, &captured, 0, 4), 4);
        assert_eq!(score_of(&MEdf, &ctx, &eis, &captured, 0, 4), 22);
    }

    /// Reproduces the paper's Example 2 (Figure 7): CEI_1 (4 EIs, first two
    /// captured) vs CEI_2 (3 EIs, none captured). At chronon T with C_T = 1:
    /// S-EDF: 5 vs 6 → stick with CEI_1; MRSF: 2 vs 3 → stick with CEI_1;
    /// M-EDF: 19 vs 16 → preempt CEI_1 in favour of CEI_2.
    #[test]
    fn figure7_policy_decisions() {
        // CEI_1: EIs 0 and 1 captured; EI_2 active with 5 chronons left;
        // EI_3 future with |I| = 14. M-EDF = 5 + 14 = 19.
        let cei1 = vec![ei(0, 0, 3), ei(1, 4, 7), ei(2, 8, 16), ei(3, 20, 33)];
        let cap1 = vec![true, true, false, false];
        // CEI_2: EI active with 6 chronons left; futures of lengths 4 and 6.
        // M-EDF = 6 + 4 + 6 = 16.
        let cei2 = vec![ei(4, 10, 17), ei(5, 19, 22), ei(6, 24, 29)];
        let cap2 = vec![false, false, false];

        let data = CtxData::new(12, 7);
        let ctx = data.ctx();

        // S-EDF prefers CEI_1's EI (5 < 6).
        let s1 = score_of(&SEdf, &ctx, &cei1, &cap1, 2, 4);
        let s2 = score_of(&SEdf, &ctx, &cei2, &cap2, 0, 3);
        assert_eq!((s1, s2), (5, 6));
        assert!(s1 < s2);

        // MRSF prefers CEI_1 (2 remaining < 3 remaining).
        let m1 = score_of(&Mrsf, &ctx, &cei1, &cap1, 2, 4);
        let m2 = score_of(&Mrsf, &ctx, &cei2, &cap2, 0, 3);
        assert_eq!((m1, m2), (2, 3));
        assert!(m1 < m2);

        // M-EDF prefers CEI_2 (16 < 19) — preemption.
        let e1 = score_of(&MEdf, &ctx, &cei1, &cap1, 2, 4);
        let e2 = score_of(&MEdf, &ctx, &cei2, &cap2, 0, 3);
        assert_eq!((e1, e2), (19, 16));
        assert!(e2 < e1);
    }
}
