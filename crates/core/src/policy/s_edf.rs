//! Single Interval Early Deadline First (S-EDF).

use super::{Candidate, Policy, PolicyContext};

/// **S-EDF** — the individual-EI-level representative: prefer the execution
/// interval with the earliest deadline,
/// `S-EDF(I, T) = I.T_f − T + 1` (Section IV-A).
///
/// Modeled on classic EDF scheduling. The paper proves (Prop. 1) that with
/// `rank(P) = 1` and no intra-resource overlap, S-EDF is optimal; with
/// complex CEIs it is blind to the parent's residual work and is dominated
/// by [`Mrsf`](super::Mrsf) and [`MEdf`](super::MEdf).
#[derive(Debug, Clone, Copy, Default)]
pub struct SEdf;

impl Policy for SEdf {
    fn name(&self) -> &'static str {
        "S-EDF"
    }

    #[inline]
    fn score(&self, ctx: &PolicyContext<'_>, cand: &Candidate<'_>) -> i64 {
        i64::from(cand.ei.remaining(ctx.now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_util::*;

    #[test]
    fn deadline_counts_remaining_chronons() {
        let eis = vec![ei(0, 2, 9)];
        let cap = vec![false];
        let data = CtxData::new(4, 1);
        assert_eq!(score_of(&SEdf, &data.ctx(), &eis, &cap, 0, 1), 6);
    }

    #[test]
    fn expiring_interval_scores_one() {
        let eis = vec![ei(0, 0, 4)];
        let cap = vec![false];
        let data = CtxData::new(4, 1);
        assert_eq!(score_of(&SEdf, &data.ctx(), &eis, &cap, 0, 1), 1);
    }

    #[test]
    fn tighter_deadline_wins() {
        let eis = vec![ei(0, 0, 3), ei(1, 0, 8)];
        let cap = vec![false, false];
        let data = CtxData::new(1, 2);
        let ctx = data.ctx();
        let a = score_of(&SEdf, &ctx, &eis, &cap, 0, 2);
        let b = score_of(&SEdf, &ctx, &eis, &cap, 1, 2);
        assert!(a < b);
    }

    #[test]
    fn score_ignores_sibling_capture_state() {
        let eis = vec![ei(0, 0, 5), ei(1, 0, 5)];
        let data = CtxData::new(2, 2);
        let ctx = data.ctx();
        let none = score_of(&SEdf, &ctx, &eis, &[false, false], 0, 2);
        let one = score_of(&SEdf, &ctx, &eis, &[false, true], 0, 2);
        assert_eq!(none, one);
    }
}
