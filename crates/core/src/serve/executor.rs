//! Probe executors: how the daemon actually touches (or replays) the Web.
//!
//! The engine's fault machinery already speaks the right language — a probe
//! either succeeds or fails, failures feed retry/backoff, committed outages
//! feed shedding — so a live executor is just a [`FaultModel`] whose
//! answers come from the network instead of a seeded script.
//! [`ProbeExecutor`] is that trait, restated for implementors who think in
//! probes rather than faults, and [`ExecutorModel`] adapts any executor
//! into the [`FaultModel`] the engine runs against.
//!
//! Two executors ship:
//!
//! * [`ReplayExecutor`] — deterministic and fully offline. `faultless()`
//!   reports `fallible() == false`, so the engine monomorphizes to the
//!   exact unfaulted simulator path; `scripted(model)` delegates to any
//!   seeded [`FaultModel`], reproducing the simulator's faulted runs
//!   byte-for-byte.
//! * [`TcpProbeExecutor`] — a real network prober: one TCP connect with a
//!   per-probe timeout per probe, resources mapped round-robin onto the
//!   configured target addresses. Failures flow into the engine's
//!   `ProbeFailed` / retry / backoff machinery unchanged.

use crate::fault::{FaultModel, NoFaults};
use crate::model::{Chronon, ResourceId};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A source of probe outcomes for the serving engine.
///
/// The contract mirrors [`FaultModel`] exactly (the engine consumes
/// executors through [`ExecutorModel`]): [`begin_chronon`] is called once
/// per chronon before any probe, [`down_until`] reports committed outage
/// horizons, [`probe`] resolves one attempt, and [`fallible`] gates every
/// engine fault branch — an infallible executor runs the zero-cost
/// unfaulted loop.
///
/// [`begin_chronon`]: Self::begin_chronon
/// [`down_until`]: Self::down_until
/// [`probe`]: Self::probe
/// [`fallible`]: Self::fallible
pub trait ProbeExecutor {
    /// Advances the executor to chronon `t` (once per chronon, ascending).
    fn begin_chronon(&mut self, t: Chronon);

    /// The committed inclusive unavailability horizon for `resource`, or
    /// `None` if the resource is (as far as the executor knows) reachable.
    fn down_until(&self, resource: ResourceId) -> Option<Chronon>;

    /// Executes one probe of `resource` at chronon `t`; `attempt` counts
    /// the consecutive failures already observed on this resource. Returns
    /// whether the probe succeeded.
    fn probe(&mut self, t: Chronon, resource: ResourceId, attempt: u32) -> bool;

    /// Whether this executor can ever fail a probe. `false` routes the
    /// engine through the exact unfaulted instruction stream.
    fn fallible(&self) -> bool;

    /// A stable description of the executor's full identity — for scripted
    /// executors, the fault model's kind, parameters, and seed. Feeds the
    /// serve journal's configuration fingerprint so `--recover` under a
    /// same-shaped but differently-scripted executor is refused up front
    /// rather than diverging during replay.
    fn descriptor(&self) -> String {
        format!("fallible={}", self.fallible())
    }
}

/// Forwarding impl so boxed executors (`Box<dyn ProbeExecutor + Send>`)
/// plug into the generic driver.
impl<E: ProbeExecutor + ?Sized> ProbeExecutor for Box<E> {
    fn begin_chronon(&mut self, t: Chronon) {
        (**self).begin_chronon(t);
    }
    fn down_until(&self, resource: ResourceId) -> Option<Chronon> {
        (**self).down_until(resource)
    }
    fn probe(&mut self, t: Chronon, resource: ResourceId, attempt: u32) -> bool {
        (**self).probe(t, resource, attempt)
    }
    fn fallible(&self) -> bool {
        (**self).fallible()
    }
    fn descriptor(&self) -> String {
        (**self).descriptor()
    }
}

/// Adapts a [`ProbeExecutor`] into the [`FaultModel`] the engine consumes:
/// probe failures become fault-model failures, committed outages become
/// `down_until` horizons, and `fallible()` drives
/// [`FaultModel::enabled`] so infallible executors cost nothing.
#[derive(Debug, Clone, Default)]
pub struct ExecutorModel<E>(E);

impl<E: ProbeExecutor> ExecutorModel<E> {
    /// Wraps `executor` for the engine.
    pub fn new(executor: E) -> Self {
        ExecutorModel(executor)
    }

    /// Unwraps the executor.
    pub fn into_inner(self) -> E {
        self.0
    }
}

impl<E: ProbeExecutor> FaultModel for ExecutorModel<E> {
    fn begin_chronon(&mut self, t: Chronon) {
        self.0.begin_chronon(t);
    }
    fn down_until(&self, resource: ResourceId) -> Option<Chronon> {
        self.0.down_until(resource)
    }
    fn probe_succeeds(&mut self, t: Chronon, resource: ResourceId, attempt: u32) -> bool {
        self.0.probe(t, resource, attempt)
    }
    fn enabled(&self) -> bool {
        self.0.fallible()
    }
    fn descriptor(&self) -> String {
        self.0.descriptor()
    }
}

/// The deterministic offline executor: probe outcomes come from a seeded
/// [`FaultModel`] script instead of the network, so a serving run is a
/// pure function of its inputs — the keystone of the daemon-vs-simulator
/// equivalence contract.
#[derive(Debug, Clone, Default)]
pub struct ReplayExecutor<F = NoFaults> {
    model: F,
    fallible: bool,
}

impl ReplayExecutor {
    /// An executor whose every probe succeeds. `fallible()` is `false`, so
    /// the engine takes the exact unfaulted simulator path.
    pub fn faultless() -> Self {
        ReplayExecutor {
            model: NoFaults,
            fallible: false,
        }
    }
}

impl<F: FaultModel> ReplayExecutor<F> {
    /// An executor replaying `model`'s scripted failures — byte-identical
    /// to the simulator running the same model directly.
    pub fn scripted(model: F) -> Self {
        let fallible = model.enabled();
        ReplayExecutor { model, fallible }
    }
}

impl<F: FaultModel> ProbeExecutor for ReplayExecutor<F> {
    fn begin_chronon(&mut self, t: Chronon) {
        self.model.begin_chronon(t);
    }
    fn down_until(&self, resource: ResourceId) -> Option<Chronon> {
        self.model.down_until(resource)
    }
    fn probe(&mut self, t: Chronon, resource: ResourceId, attempt: u32) -> bool {
        self.model.probe_succeeds(t, resource, attempt)
    }
    fn fallible(&self) -> bool {
        self.fallible
    }
    fn descriptor(&self) -> String {
        format!("replay({})", self.model.descriptor())
    }
}

/// A live TCP prober: each probe is one `connect` with a per-probe timeout
/// against the target address the resource maps to (round-robin over the
/// configured targets), success iff the connection is established.
///
/// The executor is fully synchronous — no probe threads exist, so daemon
/// shutdown has nothing to leak; the shared stop flag
/// ([`stop_flag`](Self::stop_flag)) makes every probe after shutdown fail
/// immediately instead of waiting out its timeout, bounding exit latency
/// even mid-backoff.
#[derive(Debug)]
pub struct TcpProbeExecutor {
    targets: Vec<SocketAddr>,
    timeout: Duration,
    stop: Arc<AtomicBool>,
}

impl TcpProbeExecutor {
    /// A prober over `targets` with the given per-probe connect timeout.
    /// With no targets every probe fails (nothing to monitor is a fault,
    /// not a success).
    pub fn new(targets: Vec<SocketAddr>, timeout: Duration) -> Self {
        TcpProbeExecutor {
            targets,
            timeout,
            stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The shared stop flag: set it to make every subsequent probe fail
    /// fast (used by daemon shutdown).
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// The target address `resource` maps to.
    pub fn target_of(&self, resource: ResourceId) -> Option<SocketAddr> {
        if self.targets.is_empty() {
            None
        } else {
            Some(self.targets[resource.index() % self.targets.len()])
        }
    }
}

impl ProbeExecutor for TcpProbeExecutor {
    fn begin_chronon(&mut self, _t: Chronon) {}

    fn down_until(&self, _resource: ResourceId) -> Option<Chronon> {
        // A live network never commits to future unavailability; shedding
        // stays a simulator-side optimization.
        None
    }

    fn probe(&mut self, _t: Chronon, resource: ResourceId, _attempt: u32) -> bool {
        if self.stop.load(Ordering::Relaxed) {
            return false;
        }
        match self.target_of(resource) {
            Some(addr) => TcpStream::connect_timeout(&addr, self.timeout).is_ok(),
            None => false,
        }
    }

    fn fallible(&self) -> bool {
        true
    }

    fn descriptor(&self) -> String {
        format!(
            "tcp(targets={:?},timeout_ms={})",
            self.targets,
            self.timeout.as_millis(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::IidFaults;

    #[test]
    fn faultless_replay_is_infallible_and_always_succeeds() {
        let mut e = ReplayExecutor::faultless();
        assert!(!e.fallible());
        e.begin_chronon(0);
        assert_eq!(e.down_until(ResourceId(0)), None);
        assert!(e.probe(0, ResourceId(0), 0));
        // Adapter mirrors the executor verbatim.
        let m = ExecutorModel::new(e);
        assert!(!m.enabled());
    }

    #[test]
    fn scripted_replay_matches_its_model() {
        let mut model = IidFaults::new(0.5, 99);
        let mut exec = ReplayExecutor::scripted(IidFaults::new(0.5, 99));
        assert!(exec.fallible());
        for t in 0..50 {
            for r in 0..4 {
                assert_eq!(
                    exec.probe(t, ResourceId(r), 0),
                    model.probe_succeeds(t, ResourceId(r), 0),
                    "t={t} r={r}"
                );
            }
        }
    }

    #[test]
    fn scripted_replay_of_nofaults_is_infallible() {
        assert!(!ReplayExecutor::scripted(NoFaults).fallible());
    }

    #[test]
    fn tcp_executor_with_no_targets_fails_every_probe() {
        let mut e = TcpProbeExecutor::new(Vec::new(), Duration::from_millis(5));
        assert!(e.fallible());
        assert_eq!(e.target_of(ResourceId(3)), None);
        assert!(!e.probe(0, ResourceId(3), 0));
    }

    #[test]
    fn tcp_executor_stop_flag_fails_fast() {
        // A bound listener would accept, but the stop flag short-circuits
        // before any connect happens.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut e = TcpProbeExecutor::new(vec![addr], Duration::from_millis(200));
        assert!(e.probe(0, ResourceId(0), 0));
        e.stop_flag().store(true, Ordering::Relaxed);
        assert!(!e.probe(1, ResourceId(0), 1));
    }

    #[test]
    fn tcp_executor_maps_resources_round_robin() {
        let a: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let b: SocketAddr = "127.0.0.1:2".parse().unwrap();
        let e = TcpProbeExecutor::new(vec![a, b], Duration::from_millis(5));
        assert_eq!(e.target_of(ResourceId(0)), Some(a));
        assert_eq!(e.target_of(ResourceId(1)), Some(b));
        assert_eq!(e.target_of(ResourceId(2)), Some(a));
    }
}
