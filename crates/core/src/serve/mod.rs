//! Serving-mode building blocks: clocks, probe executors, and the chronon
//! driver that promote the discrete simulator into a long-running monitor.
//!
//! The design premise is that *serving must not fork the engine*. The
//! daemon runs the very same [`OnlineEngine`](crate::engine::OnlineEngine)
//! loop the simulator and conformance corpus exercise; this module only
//! supplies the adapters that bind that loop to real time and a real (or
//! replayed) network:
//!
//! * [`Clock`] decides when each chronon begins — [`WallClock`] for real
//!   deployments, [`ManualClock`] for deterministic tests, [`FreeClock`]
//!   for as-fast-as-possible drains. Pacing happens in the [`Paced`]
//!   observer layer, so it cannot perturb engine output.
//! * [`ProbeExecutor`] resolves probe attempts — [`TcpProbeExecutor`]
//!   against live TCP targets with per-probe timeouts, [`ReplayExecutor`]
//!   against deterministic scripts for fully offline serving.
//! * [`drive`] composes both with a [`MutationSource`] merging scripted
//!   churn and live registration traffic ([`DaemonSource`],
//!   [`LiveMutationQueue`]) and calls
//!   [`OnlineEngine::run_driven`](crate::engine::OnlineEngine::run_driven).
//!
//! **Equivalence contract.** A daemon run with [`ReplayExecutor`] under
//! any clock is byte-identical — schedule, stats, `RunMetrics`, JSONL
//! trace bytes — to the corresponding simulator entry point
//! (`run_observed` / `run_faulted` / `run_mutated`). Every invariant the
//! conformance harness checks therefore transfers to serving mode for
//! free; `tests/tests/serve.rs` and CI's `serve-smoke` job enforce it.
//!
//! [`MutationSource`]: crate::engine::MutationSource

mod clock;
mod driver;
mod executor;

pub use clock::{Clock, ClockRelease, FreeClock, ManualClock, ManualHandle, WallClock};
pub use driver::{drive, DaemonSource, LiveMutationQueue, Paced};
pub use executor::{ExecutorModel, ProbeExecutor, ReplayExecutor, TcpProbeExecutor};
