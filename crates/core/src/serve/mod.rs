//! Serving-mode building blocks: clocks, probe executors, and the chronon
//! driver that promote the discrete simulator into a long-running monitor.
//!
//! The design premise is that *serving must not fork the engine*. The
//! daemon runs the very same [`OnlineEngine`](crate::engine::OnlineEngine)
//! loop the simulator and conformance corpus exercise; this module only
//! supplies the adapters that bind that loop to real time and a real (or
//! replayed) network:
//!
//! * [`Clock`] decides when each chronon begins — [`WallClock`] for real
//!   deployments, [`ManualClock`] for deterministic tests, [`FreeClock`]
//!   for as-fast-as-possible drains. Pacing happens in the [`Paced`]
//!   observer layer, so it cannot perturb engine output.
//! * [`ProbeExecutor`] resolves probe attempts — [`TcpProbeExecutor`]
//!   against live TCP targets with per-probe timeouts, [`ReplayExecutor`]
//!   against deterministic scripts for fully offline serving.
//! * [`drive`] composes both with a [`MutationSource`] merging scripted
//!   churn and live registration traffic ([`DaemonSource`],
//!   [`LiveMutationQueue`]) and calls
//!   [`OnlineEngine::run_driven`](crate::engine::OnlineEngine::run_driven).
//!
//! **Equivalence contract.** A daemon run with [`ReplayExecutor`] under
//! any clock is byte-identical — schedule, stats, `RunMetrics`, JSONL
//! trace bytes — to the corresponding simulator entry point
//! (`run_observed` / `run_faulted` / `run_mutated`). Every invariant the
//! conformance harness checks therefore transfers to serving mode for
//! free; `tests/tests/serve.rs` and CI's `serve-smoke` job enforce it.
//!
//! **Durability.** [`journal`] append-logs everything nondeterministic a
//! driven run consumes (event frames, live mutations) plus periodic
//! [`EngineSnapshot`]s into a checksummed record log, and rebuilds a
//! [`Recovery`] plan from it after a crash. Because a replayed run is a
//! pure function of its journaled inputs, a daemon SIGKILLed at any chronon
//! and recovered produces the same bytes an uninterrupted run would — the
//! kill-resume identity `tests/tests/recovery.rs` pins.
//!
//! [`MutationSource`]: crate::engine::MutationSource

mod clock;
mod driver;
mod executor;
pub mod journal;
pub mod snapshot;

pub use clock::{Clock, ClockRelease, FreeClock, ManualClock, ManualHandle, WallClock};
pub use driver::{drive, drive_resumable, DaemonSource, LiveMutationQueue, Paced};
pub use executor::{ExecutorModel, ProbeExecutor, ReplayExecutor, TcpProbeExecutor};
pub use journal::{
    FsyncPolicy, JournalConfig, JournalError, JournalExecutor, JournalMutations, JournalObserver,
    JournalWriter, Recovery,
};
pub use snapshot::{CaptureAt, CeiState, EngineSnapshot, NoSnapshots, SnapshotSink};
