//! The chronon driver: running the discrete engine against a [`Clock`], a
//! [`ProbeExecutor`], and a live mutation feed.
//!
//! [`drive`] is the daemon's engine entry point. It composes three adapters
//! around [`OnlineEngine::run_driven`]:
//!
//! * [`Paced`] wraps the observer and blocks on every
//!   [`Event::ChrononStart`] until the clock admits that chronon — pacing
//!   lives entirely in the observer layer, so the engine's computation (and
//!   its event stream) is bit-identical under any clock;
//! * [`ExecutorModel`] turns the executor into the engine's fault model;
//! * [`DaemonSource`] merges a precompiled churn script with mutations
//!   submitted live over the registration API ([`LiveMutationQueue`]).
//!
//! [`Event::ChrononStart`]: crate::obs::Event::ChrononStart

use super::clock::Clock;
use super::executor::{ExecutorModel, ProbeExecutor};
use super::snapshot::{EngineSnapshot, NoSnapshots, SnapshotSink};
use crate::engine::{
    EngineConfig, Mutation, MutationSource, OnlineEngine, RunResult, ScriptedMutations,
};
use crate::fault::FaultConfig;
use crate::model::{CeiId, Chronon, Instance};
use crate::obs::{Event, Observer};
use crate::policy::Policy;
use std::sync::{Arc, Mutex};

/// An observer wrapper that paces the run: before forwarding each
/// [`Event::ChrononStart`] it blocks on the clock until that chronon may
/// begin. Once the clock reports released ([`Clock::wait_until`] returning
/// `false`) pacing is permanently off and events stream through untouched.
///
/// Pacing is invisible to the inner observer — the event sequence (and the
/// engine output it reflects) is identical to an unpaced run.
///
/// [`Event::ChrononStart`]: crate::obs::Event::ChrononStart
#[derive(Debug)]
pub struct Paced<C, O> {
    clock: C,
    inner: O,
    pacing: bool,
}

impl<C: Clock, O: Observer> Paced<C, O> {
    /// Wraps `inner` so chronon starts wait on `clock`.
    pub fn new(clock: C, inner: O) -> Self {
        Paced {
            clock,
            inner,
            pacing: true,
        }
    }

    /// Unwraps the clock and inner observer.
    pub fn into_inner(self) -> (C, O) {
        (self.clock, self.inner)
    }
}

impl<C: Clock, O: Observer> Observer for Paced<C, O> {
    fn on_event(&mut self, event: Event) {
        if self.pacing {
            if let Event::ChrononStart { t, .. } = event {
                self.pacing = self.clock.wait_until(t);
            }
        }
        self.inner.on_event(event);
    }

    fn enabled(&self) -> bool {
        self.inner.enabled()
    }
}

/// A thread-safe inbox for mutations submitted while the engine runs: the
/// daemon's registration API pushes here from client threads, and the
/// engine (through [`DaemonSource`]) drains everything pending at each
/// chronon start.
///
/// Every submission is stamped with a monotonically increasing sequence
/// number (starting at 1), and the inbox remembers the highest sequence the
/// engine has drained. The journal uses both: live mutations are journaled
/// by sequence before they are acknowledged, each journal frame records the
/// drained high-water mark, and recovery re-injects exactly the journaled
/// mutations whose sequence exceeds the last frame's mark.
///
/// Clones share the same inbox.
#[derive(Debug, Clone, Default)]
pub struct LiveMutationQueue {
    inbox: Arc<Mutex<Inbox>>,
}

#[derive(Debug, Default)]
struct Inbox {
    queue: Vec<(u64, Mutation)>,
    /// Sequence assigned to the most recent submission (0 = none yet).
    last_seq: u64,
    /// Highest sequence drained into the engine (0 = none yet).
    drained_seq: u64,
}

impl LiveMutationQueue {
    /// An empty inbox; sequences start at 1.
    pub fn new() -> Self {
        Self::default()
    }

    /// An inbox resuming a recovered run: sequence numbering continues
    /// after `last_seq` (the highest sequence in the journal) and the
    /// drained high-water mark starts at `drained_seq` (the last journaled
    /// frame's mark), so frames written before any post-recovery drain
    /// never regress the mark.
    pub fn resumed(last_seq: u64, drained_seq: u64) -> Self {
        LiveMutationQueue {
            inbox: Arc::new(Mutex::new(Inbox {
                queue: Vec::new(),
                last_seq,
                drained_seq,
            })),
        }
    }

    /// Enqueues `mutation` for the next chronon-start drain and returns its
    /// assigned sequence number.
    pub fn submit(&self, mutation: Mutation) -> u64 {
        let mut inbox = self.inbox.lock().unwrap();
        inbox.last_seq += 1;
        let seq = inbox.last_seq;
        inbox.queue.push((seq, mutation));
        seq
    }

    /// Reserves the next sequence number without enqueuing anything — the
    /// journal-before-ack path: the daemon journals the mutation under the
    /// reserved sequence first and enqueues it (via
    /// [`reinject`](Self::reinject)) only if the journal write succeeded, so
    /// a rejected submission is never half-applied. A burned sequence (the
    /// journal write failed) leaves a harmless gap in the numbering.
    pub fn reserve(&self) -> u64 {
        let mut inbox = self.inbox.lock().unwrap();
        inbox.last_seq += 1;
        inbox.last_seq
    }

    /// Re-enqueues a journaled mutation under its original sequence number
    /// — recovery's path for accepted-but-undrained submissions. Keeps the
    /// sequence counter ahead of every re-injected number.
    pub fn reinject(&self, seq: u64, mutation: Mutation) {
        let mut inbox = self.inbox.lock().unwrap();
        inbox.queue.push((seq, mutation));
        inbox.last_seq = inbox.last_seq.max(seq);
    }

    /// How many mutations are waiting to be drained.
    pub fn pending(&self) -> usize {
        self.inbox.lock().unwrap().queue.len()
    }

    /// Highest sequence number the engine has drained (0 = none yet).
    pub fn drained_seq(&self) -> u64 {
        self.inbox.lock().unwrap().drained_seq
    }

    fn drain_into(&self, out: &mut Vec<Mutation>) {
        let mut inbox = self.inbox.lock().unwrap();
        if let Some(&(seq, _)) = inbox.queue.last() {
            inbox.drained_seq = inbox.drained_seq.max(seq);
        }
        out.extend(inbox.queue.drain(..).map(|(_, m)| m));
    }
}

/// The daemon's [`MutationSource`]: a precompiled churn script (drained at
/// its scripted chronons, with its natural-release suppression) merged
/// with whatever the live registration API submitted since the previous
/// chronon — script first, then live arrivals in submission order.
///
/// The source is always active. For a run with an empty script and no live
/// traffic this is still bit-identical to the mutation-free engine path:
/// activity only gates a per-chronon drain, and an empty drain applies
/// nothing.
#[derive(Debug, Clone, Default)]
pub struct DaemonSource {
    script: ScriptedMutations,
    live: LiveMutationQueue,
}

impl DaemonSource {
    /// A source merging `script` with live submissions from `live`.
    pub fn new(script: ScriptedMutations, live: LiveMutationQueue) -> Self {
        DaemonSource { script, live }
    }
}

impl MutationSource for DaemonSource {
    fn active(&self) -> bool {
        true
    }

    fn drain_at(&mut self, t: Chronon, out: &mut Vec<Mutation>) {
        self.script.drain_at(t, out);
        self.live.drain_into(out);
    }

    fn suppresses_release(&self, cei: CeiId) -> bool {
        self.script.suppresses_release(cei)
    }
}

/// Runs `policy` over `instance` against a clock and a probe executor —
/// the daemon's engine entry point.
///
/// Equivalence contract: for any clock, `drive` with
/// [`ReplayExecutor::faultless`] and an empty [`DaemonSource`] is
/// byte-identical (schedule, stats, event stream) to
/// [`OnlineEngine::run_observed`]; with
/// [`ReplayExecutor::scripted`]`(model)` it matches
/// [`OnlineEngine::run_faulted`] on the same model; adding a compiled
/// churn script matches [`OnlineEngine::run_mutated`].
///
/// [`ReplayExecutor::faultless`]: super::ReplayExecutor::faultless
/// [`ReplayExecutor::scripted`]: super::ReplayExecutor::scripted
#[allow(clippy::too_many_arguments)]
pub fn drive<E, M, C, O>(
    instance: &Instance,
    policy: &dyn Policy,
    config: EngineConfig,
    executor: E,
    fault_config: FaultConfig,
    mutations: &mut M,
    clock: C,
    observer: O,
) -> RunResult
where
    E: ProbeExecutor,
    M: MutationSource,
    C: Clock,
    O: Observer,
{
    drive_resumable(
        instance,
        policy,
        config,
        executor,
        fault_config,
        mutations,
        clock,
        observer,
        None,
        &mut NoSnapshots,
    )
}

/// [`drive`] with crash-recovery hooks: boundary snapshots stream to
/// `snapshots`, and `resume` restarts the engine mid-run from a restored
/// [`EngineSnapshot`] — the daemon's `--recover` entry point. With
/// `resume = None` and a declining sink this is bit-identical to [`drive`].
#[allow(clippy::too_many_arguments)]
pub fn drive_resumable<E, M, C, O>(
    instance: &Instance,
    policy: &dyn Policy,
    config: EngineConfig,
    executor: E,
    fault_config: FaultConfig,
    mutations: &mut M,
    clock: C,
    observer: O,
    resume: Option<&EngineSnapshot>,
    snapshots: &mut dyn SnapshotSink,
) -> RunResult
where
    E: ProbeExecutor,
    M: MutationSource,
    C: Clock,
    O: Observer,
{
    let mut model = ExecutorModel::new(executor);
    let mut paced = Paced::new(clock, observer);
    OnlineEngine::run_driven_resumable(
        instance,
        policy,
        config,
        &mut model,
        fault_config,
        mutations,
        &mut paced,
        resume,
        snapshots,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MutationQueue;
    use crate::model::{Budget, InstanceBuilder};
    use crate::obs::MetricsObserver;
    use crate::policy::MEdf;
    use crate::serve::{FreeClock, ManualClock, ReplayExecutor};

    fn tiny_instance() -> Instance {
        let mut b = InstanceBuilder::new(2, 10, Budget::Uniform(1));
        let p = b.profile();
        b.cei(p, &[(0, 1, 4), (1, 2, 6)]);
        b.cei(p, &[(0, 3, 8)]);
        b.build()
    }

    #[test]
    fn drive_with_free_clock_matches_run_observed() {
        let instance = tiny_instance();
        let mut sim = MetricsObserver::default();
        let expected =
            OnlineEngine::run_observed(&instance, &MEdf, EngineConfig::preemptive(), &mut sim);

        let mut served = MetricsObserver::default();
        let mut source = DaemonSource::default();
        let got = drive(
            &instance,
            &MEdf,
            EngineConfig::preemptive(),
            ReplayExecutor::faultless(),
            FaultConfig::default(),
            &mut source,
            FreeClock,
            &mut served,
        );
        assert_eq!(expected.schedule, got.schedule);
        assert_eq!(expected.stats, got.stats);
        assert_eq!(expected.outcomes, got.outcomes);
        assert_eq!(sim.metrics(), served.metrics());
    }

    #[test]
    fn drive_with_released_manual_clock_free_runs_to_horizon() {
        let instance = tiny_instance();
        let (clock, handle) = ManualClock::new();
        handle.release();
        let mut source = DaemonSource::default();
        let got = drive(
            &instance,
            &MEdf,
            EngineConfig::preemptive(),
            ReplayExecutor::faultless(),
            FaultConfig::default(),
            &mut source,
            clock,
            &mut crate::obs::NoopObserver,
        );
        let expected = OnlineEngine::run(&instance, &MEdf, EngineConfig::preemptive());
        assert_eq!(expected.schedule, got.schedule);
    }

    #[test]
    fn live_queue_drains_at_next_chronon_start() {
        // A live SetBudget submitted before the run starts drains at
        // chronon 0 and (per run_mutated semantics) applies from chronon 1.
        let instance = tiny_instance();
        let live = LiveMutationQueue::new();
        live.submit(Mutation::SetBudget { budget: 0 });
        assert_eq!(live.pending(), 1);
        let mut source = DaemonSource::new(ScriptedMutations::default(), live.clone());
        let got = drive(
            &instance,
            &MEdf,
            EngineConfig::preemptive(),
            ReplayExecutor::faultless(),
            FaultConfig::default(),
            &mut source,
            FreeClock,
            &mut crate::obs::NoopObserver,
        );
        assert_eq!(live.pending(), 0);
        // Budget zeroed from chronon 1 on: nothing captures.
        assert_eq!(got.stats.ceis_captured, 0);

        // The same mutation prerecorded at chronon 0 is bit-identical.
        let mut queue = MutationQueue::new();
        queue.set_budget(0, 0);
        let expected = OnlineEngine::run_mutated(
            &instance,
            &MEdf,
            EngineConfig::preemptive(),
            &mut crate::fault::NoFaults,
            FaultConfig::default(),
            &queue,
            &mut crate::obs::NoopObserver,
        );
        assert_eq!(expected.schedule, got.schedule);
        assert_eq!(expected.stats, got.stats);
        assert_eq!(expected.outcomes, got.outcomes);
    }
}
