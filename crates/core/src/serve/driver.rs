//! The chronon driver: running the discrete engine against a [`Clock`], a
//! [`ProbeExecutor`], and a live mutation feed.
//!
//! [`drive`] is the daemon's engine entry point. It composes three adapters
//! around [`OnlineEngine::run_driven`]:
//!
//! * [`Paced`] wraps the observer and blocks on every
//!   [`Event::ChrononStart`] until the clock admits that chronon — pacing
//!   lives entirely in the observer layer, so the engine's computation (and
//!   its event stream) is bit-identical under any clock;
//! * [`ExecutorModel`] turns the executor into the engine's fault model;
//! * [`DaemonSource`] merges a precompiled churn script with mutations
//!   submitted live over the registration API ([`LiveMutationQueue`]).
//!
//! [`Event::ChrononStart`]: crate::obs::Event::ChrononStart

use super::clock::Clock;
use super::executor::{ExecutorModel, ProbeExecutor};
use crate::engine::{
    EngineConfig, Mutation, MutationSource, OnlineEngine, RunResult, ScriptedMutations,
};
use crate::fault::FaultConfig;
use crate::model::{CeiId, Chronon, Instance};
use crate::obs::{Event, Observer};
use crate::policy::Policy;
use std::sync::{Arc, Mutex};

/// An observer wrapper that paces the run: before forwarding each
/// [`Event::ChrononStart`] it blocks on the clock until that chronon may
/// begin. Once the clock reports released ([`Clock::wait_until`] returning
/// `false`) pacing is permanently off and events stream through untouched.
///
/// Pacing is invisible to the inner observer — the event sequence (and the
/// engine output it reflects) is identical to an unpaced run.
///
/// [`Event::ChrononStart`]: crate::obs::Event::ChrononStart
#[derive(Debug)]
pub struct Paced<C, O> {
    clock: C,
    inner: O,
    pacing: bool,
}

impl<C: Clock, O: Observer> Paced<C, O> {
    /// Wraps `inner` so chronon starts wait on `clock`.
    pub fn new(clock: C, inner: O) -> Self {
        Paced {
            clock,
            inner,
            pacing: true,
        }
    }

    /// Unwraps the clock and inner observer.
    pub fn into_inner(self) -> (C, O) {
        (self.clock, self.inner)
    }
}

impl<C: Clock, O: Observer> Observer for Paced<C, O> {
    fn on_event(&mut self, event: Event) {
        if self.pacing {
            if let Event::ChrononStart { t, .. } = event {
                self.pacing = self.clock.wait_until(t);
            }
        }
        self.inner.on_event(event);
    }

    fn enabled(&self) -> bool {
        self.inner.enabled()
    }
}

/// A thread-safe inbox for mutations submitted while the engine runs: the
/// daemon's registration API pushes here from client threads, and the
/// engine (through [`DaemonSource`]) drains everything pending at each
/// chronon start.
///
/// Clones share the same inbox.
#[derive(Debug, Clone, Default)]
pub struct LiveMutationQueue {
    inbox: Arc<Mutex<Vec<Mutation>>>,
}

impl LiveMutationQueue {
    /// An empty inbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues `mutation` for the next chronon-start drain.
    pub fn submit(&self, mutation: Mutation) {
        self.inbox.lock().unwrap().push(mutation);
    }

    /// How many mutations are waiting to be drained.
    pub fn pending(&self) -> usize {
        self.inbox.lock().unwrap().len()
    }

    fn drain_into(&self, out: &mut Vec<Mutation>) {
        out.append(&mut self.inbox.lock().unwrap());
    }
}

/// The daemon's [`MutationSource`]: a precompiled churn script (drained at
/// its scripted chronons, with its natural-release suppression) merged
/// with whatever the live registration API submitted since the previous
/// chronon — script first, then live arrivals in submission order.
///
/// The source is always active. For a run with an empty script and no live
/// traffic this is still bit-identical to the mutation-free engine path:
/// activity only gates a per-chronon drain, and an empty drain applies
/// nothing.
#[derive(Debug, Clone, Default)]
pub struct DaemonSource {
    script: ScriptedMutations,
    live: LiveMutationQueue,
}

impl DaemonSource {
    /// A source merging `script` with live submissions from `live`.
    pub fn new(script: ScriptedMutations, live: LiveMutationQueue) -> Self {
        DaemonSource { script, live }
    }
}

impl MutationSource for DaemonSource {
    fn active(&self) -> bool {
        true
    }

    fn drain_at(&mut self, t: Chronon, out: &mut Vec<Mutation>) {
        self.script.drain_at(t, out);
        self.live.drain_into(out);
    }

    fn suppresses_release(&self, cei: CeiId) -> bool {
        self.script.suppresses_release(cei)
    }
}

/// Runs `policy` over `instance` against a clock and a probe executor —
/// the daemon's engine entry point.
///
/// Equivalence contract: for any clock, `drive` with
/// [`ReplayExecutor::faultless`] and an empty [`DaemonSource`] is
/// byte-identical (schedule, stats, event stream) to
/// [`OnlineEngine::run_observed`]; with
/// [`ReplayExecutor::scripted`]`(model)` it matches
/// [`OnlineEngine::run_faulted`] on the same model; adding a compiled
/// churn script matches [`OnlineEngine::run_mutated`].
///
/// [`ReplayExecutor::faultless`]: super::ReplayExecutor::faultless
/// [`ReplayExecutor::scripted`]: super::ReplayExecutor::scripted
#[allow(clippy::too_many_arguments)]
pub fn drive<E, M, C, O>(
    instance: &Instance,
    policy: &dyn Policy,
    config: EngineConfig,
    executor: E,
    fault_config: FaultConfig,
    mutations: &mut M,
    clock: C,
    observer: O,
) -> RunResult
where
    E: ProbeExecutor,
    M: MutationSource,
    C: Clock,
    O: Observer,
{
    let mut model = ExecutorModel::new(executor);
    let mut paced = Paced::new(clock, observer);
    OnlineEngine::run_driven(
        instance,
        policy,
        config,
        &mut model,
        fault_config,
        mutations,
        &mut paced,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MutationQueue;
    use crate::model::{Budget, InstanceBuilder};
    use crate::obs::MetricsObserver;
    use crate::policy::MEdf;
    use crate::serve::{FreeClock, ManualClock, ReplayExecutor};

    fn tiny_instance() -> Instance {
        let mut b = InstanceBuilder::new(2, 10, Budget::Uniform(1));
        let p = b.profile();
        b.cei(p, &[(0, 1, 4), (1, 2, 6)]);
        b.cei(p, &[(0, 3, 8)]);
        b.build()
    }

    #[test]
    fn drive_with_free_clock_matches_run_observed() {
        let instance = tiny_instance();
        let mut sim = MetricsObserver::default();
        let expected =
            OnlineEngine::run_observed(&instance, &MEdf, EngineConfig::preemptive(), &mut sim);

        let mut served = MetricsObserver::default();
        let mut source = DaemonSource::default();
        let got = drive(
            &instance,
            &MEdf,
            EngineConfig::preemptive(),
            ReplayExecutor::faultless(),
            FaultConfig::default(),
            &mut source,
            FreeClock,
            &mut served,
        );
        assert_eq!(expected.schedule, got.schedule);
        assert_eq!(expected.stats, got.stats);
        assert_eq!(expected.outcomes, got.outcomes);
        assert_eq!(sim.metrics(), served.metrics());
    }

    #[test]
    fn drive_with_released_manual_clock_free_runs_to_horizon() {
        let instance = tiny_instance();
        let (clock, handle) = ManualClock::new();
        handle.release();
        let mut source = DaemonSource::default();
        let got = drive(
            &instance,
            &MEdf,
            EngineConfig::preemptive(),
            ReplayExecutor::faultless(),
            FaultConfig::default(),
            &mut source,
            clock,
            &mut crate::obs::NoopObserver,
        );
        let expected = OnlineEngine::run(&instance, &MEdf, EngineConfig::preemptive());
        assert_eq!(expected.schedule, got.schedule);
    }

    #[test]
    fn live_queue_drains_at_next_chronon_start() {
        // A live SetBudget submitted before the run starts drains at
        // chronon 0 and (per run_mutated semantics) applies from chronon 1.
        let instance = tiny_instance();
        let live = LiveMutationQueue::new();
        live.submit(Mutation::SetBudget { budget: 0 });
        assert_eq!(live.pending(), 1);
        let mut source = DaemonSource::new(ScriptedMutations::default(), live.clone());
        let got = drive(
            &instance,
            &MEdf,
            EngineConfig::preemptive(),
            ReplayExecutor::faultless(),
            FaultConfig::default(),
            &mut source,
            FreeClock,
            &mut crate::obs::NoopObserver,
        );
        assert_eq!(live.pending(), 0);
        // Budget zeroed from chronon 1 on: nothing captures.
        assert_eq!(got.stats.ceis_captured, 0);

        // The same mutation prerecorded at chronon 0 is bit-identical.
        let mut queue = MutationQueue::new();
        queue.set_budget(0, 0);
        let expected = OnlineEngine::run_mutated(
            &instance,
            &MEdf,
            EngineConfig::preemptive(),
            &mut crate::fault::NoFaults,
            FaultConfig::default(),
            &queue,
            &mut crate::obs::NoopObserver,
        );
        assert_eq!(expected.schedule, got.schedule);
        assert_eq!(expected.stats, got.stats);
        assert_eq!(expected.outcomes, got.outcomes);
    }
}
