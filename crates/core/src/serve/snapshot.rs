//! Engine-state snapshots: everything the online engine carries across a
//! chronon boundary, serialized so a crashed daemon can resume mid-run.
//!
//! A snapshot is captured at the *top* of the chronon loop — after chronon
//! `at - 1` completed, before any of chronon `at`'s work (including the
//! promotion of a pending budget reconfiguration, which is part of chronon
//! `at` and therefore recorded still-pending). Restoring a snapshot and
//! running chronons `at..horizon` with the same nondeterministic inputs is
//! bit-identical — schedule, stats, outcomes, event stream — to the
//! uninterrupted run; `tests/tests/recovery.rs` pins this contract across
//! the conformance corpus.
//!
//! Two details make the state closure exact rather than approximate:
//!
//! * the candidate index records the **live entries of every per-resource
//!   list in list order**, not merely a liveness set — shared captures
//!   ([`Event::EiCaptured`]) fire in list order, so order is observable in
//!   the event stream;
//! * the fault bookkeeping (`announced` outage horizons, failure streaks,
//!   backoff deadlines) rides along, so a resumed run neither re-announces
//!   a steady outage nor forgets a backoff.
//!
//! [`Event::EiCaptured`]: crate::obs::Event::EiCaptured

use crate::model::{Chronon, Schedule};
use crate::stats::{CeiOutcome, RunStats};
use serde::{Deserialize, Serialize};

/// One CEI's lifecycle state inside a snapshot, mirroring the engine's
/// private status enum. `Active` carries the per-EI captured/expired flags
/// (counts are recomputed on restore).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CeiState {
    /// Release chronon not reached yet.
    NotArrived,
    /// Released and still being tracked.
    Active {
        /// Per-EI captured flags, parallel to the CEI's EIs.
        captured: Vec<bool>,
        /// Per-EI expired-uncaptured flags, parallel to the CEI's EIs.
        expired: Vec<bool>,
    },
    /// Resolved: threshold met.
    Captured,
    /// Resolved: doomed by expiry or shedding.
    Failed,
    /// Resolved: cancelled through the mutation API.
    Cancelled,
}

/// The engine's complete cross-chronon state at a chronon boundary.
///
/// Everything per-chronon (candidate scores, retry usage, down snapshots,
/// probed-now flags) is recomputed by the resumed loop; everything here is
/// exactly the state that survives a boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// The chronon about to run when this snapshot was captured.
    pub at: Chronon,
    /// Per-CEI lifecycle state, indexed by CEI id.
    pub status: Vec<CeiState>,
    /// Per-CEI outcomes recorded so far, indexed by CEI id.
    pub outcomes: Vec<CeiOutcome>,
    /// Aggregate statistics through chronon `at - 1`.
    pub stats: RunStats,
    /// Probes issued through chronon `at - 1`.
    pub schedule: Schedule,
    /// The budget override in force (from an applied `SetBudget`).
    pub budget_override: Option<u32>,
    /// A `SetBudget` drained last chronon, not yet promoted — promotion is
    /// chronon `at`'s first action and must happen exactly once.
    pub pending_budget: Option<u32>,
    /// Last announced outage horizon per resource (empty when the run has
    /// no fault model).
    pub announced: Vec<Option<Chronon>>,
    /// Consecutive probe-failure streak per resource (empty when faultless).
    pub consec_failures: Vec<u32>,
    /// Backoff deadline per resource (empty when faultless).
    pub next_attempt_at: Vec<Chronon>,
    /// Live candidate entries `(cei, ei_idx)` of every per-resource list,
    /// in exact list order — the order shared captures fire in.
    pub index: Vec<Vec<(u32, u16)>>,
}

/// Receives engine snapshots at chronon boundaries.
///
/// The engine asks [`wants`](Self::wants) at the top of every chronon and
/// builds the (moderately expensive) [`EngineSnapshot`] only on `true`; a
/// sink that always declines costs one virtual call per chronon.
pub trait SnapshotSink {
    /// Whether a snapshot at the boundary of chronon `t` should be built.
    fn wants(&mut self, t: Chronon) -> bool;
    /// Receives the snapshot a `wants(t) == true` requested.
    fn accept(&mut self, snapshot: EngineSnapshot);
}

/// The no-op sink: never requests a snapshot.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSnapshots;

impl SnapshotSink for NoSnapshots {
    fn wants(&mut self, _t: Chronon) -> bool {
        false
    }
    fn accept(&mut self, _snapshot: EngineSnapshot) {}
}

/// A sink that captures every requested boundary into memory — the building
/// block tests use to snapshot at an exact chronon.
#[derive(Debug, Clone, Default)]
pub struct CaptureAt {
    /// The boundaries to capture.
    pub at: Vec<Chronon>,
    /// The captured snapshots, in boundary order.
    pub taken: Vec<EngineSnapshot>,
}

impl CaptureAt {
    /// A sink capturing exactly the boundaries in `at`.
    pub fn new(at: Vec<Chronon>) -> Self {
        CaptureAt {
            at,
            taken: Vec::new(),
        }
    }
}

impl SnapshotSink for CaptureAt {
    fn wants(&mut self, t: Chronon) -> bool {
        self.at.contains(&t)
    }
    fn accept(&mut self, snapshot: EngineSnapshot) {
        self.taken.push(snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Epoch;

    #[test]
    fn snapshot_serde_roundtrip() {
        let snap = EngineSnapshot {
            at: 7,
            status: vec![
                CeiState::NotArrived,
                CeiState::Active {
                    captured: vec![true, false],
                    expired: vec![false, false],
                },
                CeiState::Captured,
                CeiState::Failed,
                CeiState::Cancelled,
            ],
            outcomes: vec![
                CeiOutcome::Pending,
                CeiOutcome::Pending,
                CeiOutcome::Captured { at: 3 },
                CeiOutcome::Failed { at: 5 },
                CeiOutcome::Cancelled { at: 6 },
            ],
            stats: RunStats {
                n_ceis: 5,
                probes_used: 4,
                ..Default::default()
            },
            schedule: {
                let mut s = Schedule::new(3, Epoch::new(10));
                s.probe(crate::model::ResourceId(1), 2);
                s
            },
            budget_override: Some(9),
            pending_budget: None,
            announced: vec![None, Some(12), None],
            consec_failures: vec![0, 2, 0],
            next_attempt_at: vec![0, 9, 0],
            index: vec![vec![(1, 0)], vec![(1, 1), (4, 0)], vec![]],
        };
        let json = serde_json::to_string(&snap).unwrap();
        let back: EngineSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
