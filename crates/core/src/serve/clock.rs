//! Clocks: mapping discrete chronons onto real (or test-controlled) time.
//!
//! The engine itself is purely discrete — chronon `t` begins the instant
//! chronon `t - 1` ends. A [`Clock`] decides *when* that instant occurs on
//! the host: [`FreeClock`] as fast as the CPU allows, [`WallClock`] at a
//! fixed number of milliseconds per chronon, [`ManualClock`] only when a
//! test explicitly advances it. Every clock can be *released* from another
//! thread (see [`Clock::release_handle`]): a released clock stops pacing
//! permanently and the engine free-runs to the horizon, which is how the
//! daemon's `shutdown` command drains a run cleanly instead of killing it.

use crate::model::Chronon;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A thread-safe handle that releases a [`Clock`]: after invocation every
/// pending and future [`Clock::wait_until`] returns `false` immediately.
pub type ClockRelease = Arc<dyn Fn() + Send + Sync>;

/// Decides when each chronon may begin.
///
/// The chronon driver calls [`wait_until`](Self::wait_until) with strictly
/// increasing `t` immediately before the engine performs chronon `t`'s
/// work. Pacing never changes *what* the engine computes — only when — so
/// any two clocks yield bit-identical schedules, stats, and event streams.
pub trait Clock {
    /// Blocks until chronon `t` may begin. Returns `true` when the chronon
    /// was paced normally, `false` once the clock has been released — the
    /// caller then stops pacing entirely and free-runs to the horizon.
    fn wait_until(&mut self, t: Chronon) -> bool;

    /// A handle that releases this clock from any thread.
    fn release_handle(&self) -> ClockRelease;
}

/// Forwarding impl so boxed clocks (`Box<dyn Clock + Send>`) plug into
/// generic drivers.
impl<C: Clock + ?Sized> Clock for Box<C> {
    fn wait_until(&mut self, t: Chronon) -> bool {
        (**self).wait_until(t)
    }
    fn release_handle(&self) -> ClockRelease {
        (**self).release_handle()
    }
}

/// The unpaced clock: every chronon may begin immediately. Releasing it is
/// a no-op (it never blocks in the first place).
#[derive(Debug, Clone, Copy, Default)]
pub struct FreeClock;

impl Clock for FreeClock {
    fn wait_until(&mut self, _t: Chronon) -> bool {
        true
    }
    fn release_handle(&self) -> ClockRelease {
        Arc::new(|| {})
    }
}

/// Shared released-flag + condvar a blocked waiter sleeps on.
#[derive(Debug, Default)]
struct Release {
    released: Mutex<bool>,
    cv: Condvar,
}

impl Release {
    fn release(&self) {
        *self.released.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

/// Real-time pacing: chronon `t` begins no earlier than
/// `start + t * chronon_ms`, where `start` is sampled at the first wait.
///
/// The sleep is interruptible: a [`ClockRelease`] wakes any in-flight wait
/// immediately, so daemon shutdown never stalls on a long chronon period.
/// A run that falls behind wall time (a chronon's work exceeded its
/// period) does not sleep at all until the schedule catches up — deadlines
/// are absolute, not relative.
#[derive(Debug)]
pub struct WallClock {
    period: Duration,
    start: Option<Instant>,
    /// Chronon mapped to the sampled start instant. A fresh run anchors at
    /// 0; a recovered run anchors at its first live chronon so the replayed
    /// prefix (whose chronons are all below the anchor) never sleeps.
    anchor: Chronon,
    release: Arc<Release>,
}

impl WallClock {
    /// A clock running at `chronon_ms` milliseconds per chronon
    /// (clamped ≥ 1; use [`FreeClock`] for unpaced runs).
    pub fn new(chronon_ms: u64) -> Self {
        Self::anchored(chronon_ms, 0)
    }

    /// A clock whose deadline for chronon `t` is
    /// `start + (t - anchor) * chronon_ms` — recovery's clock: replaying
    /// journaled chronons (`t < anchor`) free-runs, and live pacing resumes
    /// exactly at the anchor chronon.
    pub fn anchored(chronon_ms: u64, anchor: Chronon) -> Self {
        WallClock {
            period: Duration::from_millis(chronon_ms.max(1)),
            start: None,
            anchor,
            release: Arc::new(Release::default()),
        }
    }
}

impl Clock for WallClock {
    fn wait_until(&mut self, t: Chronon) -> bool {
        let start = *self.start.get_or_insert_with(Instant::now);
        let deadline = start + self.period * t.saturating_sub(self.anchor);
        let mut released = self.release.released.lock().unwrap();
        loop {
            if *released {
                return false;
            }
            let now = Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return true;
            };
            released = self.release.cv.wait_timeout(released, remaining).unwrap().0;
        }
    }

    fn release_handle(&self) -> ClockRelease {
        let release = Arc::clone(&self.release);
        Arc::new(move || release.release())
    }
}

/// Shared gate state of a [`ManualClock`].
#[derive(Debug, Default)]
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct GateState {
    /// Highest chronon allowed to begin.
    allowed: Chronon,
    released: bool,
}

/// Test-controlled pacing: chronon `t` begins only once a [`ManualHandle`]
/// has advanced the gate to `t` or beyond (or released the clock).
///
/// Chronon 0 is allowed from construction, so a freshly built manual clock
/// lets the run reach its first wait point before the controlling test has
/// to do anything.
#[derive(Debug, Default)]
pub struct ManualClock {
    gate: Arc<Gate>,
}

impl ManualClock {
    /// A manual clock gating at chronon 0, plus the handle that advances it.
    pub fn new() -> (Self, ManualHandle) {
        let clock = ManualClock::default();
        let handle = ManualHandle {
            gate: Arc::clone(&clock.gate),
        };
        (clock, handle)
    }
}

impl Clock for ManualClock {
    fn wait_until(&mut self, t: Chronon) -> bool {
        let mut state = self.gate.state.lock().unwrap();
        loop {
            if state.released {
                return false;
            }
            if t <= state.allowed {
                return true;
            }
            state = self.gate.cv.wait(state).unwrap();
        }
    }

    fn release_handle(&self) -> ClockRelease {
        let gate = Arc::clone(&self.gate);
        Arc::new(move || {
            gate.state.lock().unwrap().released = true;
            gate.cv.notify_all();
        })
    }
}

/// Cloneable controller for a [`ManualClock`], usable from any thread.
#[derive(Debug, Clone)]
pub struct ManualHandle {
    gate: Arc<Gate>,
}

impl ManualHandle {
    /// Allows every chronon up to and including `t` to begin. The gate only
    /// moves forward; an earlier `t` is a no-op.
    pub fn advance_to(&self, t: Chronon) {
        let mut state = self.gate.state.lock().unwrap();
        if t > state.allowed {
            state.allowed = t;
            self.gate.cv.notify_all();
        }
    }

    /// Advances the gate by `n` chronons.
    pub fn advance(&self, n: Chronon) {
        let mut state = self.gate.state.lock().unwrap();
        state.allowed = state.allowed.saturating_add(n);
        self.gate.cv.notify_all();
    }

    /// Releases the clock: the run free-runs to the horizon from here on.
    pub fn release(&self) {
        let mut state = self.gate.state.lock().unwrap();
        state.released = true;
        self.gate.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_clock_never_blocks() {
        let mut c = FreeClock;
        for t in 0..100 {
            assert!(c.wait_until(t));
        }
        (c.release_handle())(); // no-op, must not panic
    }

    #[test]
    fn manual_clock_gates_until_advanced() {
        let (mut clock, handle) = ManualClock::new();
        assert!(
            clock.wait_until(0),
            "chronon 0 is allowed from construction"
        );
        handle.advance_to(2);
        assert!(clock.wait_until(1));
        assert!(clock.wait_until(2));
        // Advancing backwards is a no-op; advance(n) is relative.
        handle.advance_to(1);
        handle.advance(1);
        assert!(clock.wait_until(3));
    }

    #[test]
    fn manual_clock_blocks_across_threads_and_releases() {
        let (mut clock, handle) = ManualClock::new();
        let release = clock.release_handle();
        let waiter = std::thread::spawn(move || clock.wait_until(5));
        // The waiter cannot proceed until the gate moves; release instead.
        std::thread::sleep(Duration::from_millis(10));
        release();
        assert!(!waiter.join().unwrap(), "released wait reports free-run");
        handle.release(); // idempotent
    }

    #[test]
    fn anchored_wall_clock_free_runs_below_the_anchor() {
        let mut clock = WallClock::anchored(50, 100);
        let t0 = Instant::now();
        // Every chronon at or below the anchor is already due.
        for t in 0..=100 {
            assert!(clock.wait_until(t));
        }
        assert!(t0.elapsed() < Duration::from_millis(40), "replay paced");
        // The first post-anchor chronon paces one period from the anchor.
        assert!(clock.wait_until(101));
        assert!(t0.elapsed() >= Duration::from_millis(50));
    }

    #[test]
    fn wall_clock_paces_and_releases() {
        let mut clock = WallClock::new(5);
        let t0 = Instant::now();
        assert!(clock.wait_until(0));
        assert!(clock.wait_until(2));
        assert!(t0.elapsed() >= Duration::from_millis(10));
        (clock.release_handle())();
        assert!(!clock.wait_until(1000), "released clock never sleeps again");
    }
}
