//! The durable run journal: crash-safe serving for the daemon.
//!
//! A driven run is a pure function of `(instance, policy, config,
//! fault/executor outcomes, mutations)` — PR 8's daemon-vs-simulator
//! identity proves it. The journal therefore append-logs exactly the
//! nondeterministic inputs as the run consumes them, and recovery re-runs
//! the engine against the log:
//!
//! * a **header** record pins the journal format version and a
//!   configuration fingerprint (instance content, policy spec, engine
//!   mode, fault configuration, churn script, executor descriptor) so a
//!   recovery under different arguments fails loudly;
//! * one **frame** record per completed chronon carries the chronon's full
//!   JSONL event block — which subsumes every nondeterministic input: probe
//!   outcomes (`ProbeIssued`/`ProbeFailed` in attempt order), outage
//!   transitions (`ResourceDown`/`ResourceUp`), and applied mutations
//!   (`CeiRegistered`/`CeiCancelled`/`BudgetReconfigured` in drain order) —
//!   plus the live-mutation drain high-water mark;
//! * **snapshot** records ([`EngineSnapshot`]) interleave periodically so
//!   the engine resumes `O(chronons since snapshot)` instead of replaying
//!   from chronon 0;
//! * **live-mutation** records are written *before* the registration API
//!   acknowledges a submission, so an acknowledged mutation survives a
//!   crash even if no frame drained it yet.
//!
//! Records ride the checksummed framing of [`webmon_streams::record`]: a
//! crash mid-append leaves a torn tail that the scanner detects (truncated
//! extent or checksum failure on the final record) and cleanly discards —
//! reported, never silently replayed. Before the recovered run continues
//! the journal, the discarded bytes are physically truncated
//! ([`JournalWriter::append_to`]) so the continuation never appends after
//! garbage. Damage strictly *before* the tail is a hard
//! [`JournalError::Corrupt`]: acknowledged history must not be guessed
//! around.
//!
//! Recovery ([`scan_journal`] → [`Recovery::plan`]) restores the latest
//! snapshot, replays the frames after it through [`JournalExecutor`] /
//! [`JournalMutations`] (the engine re-executes and re-emits those chronons
//! byte-identically), re-injects acknowledged-but-undrained live mutations,
//! and hands the run over to the real executor at the first unjournaled
//! chronon. `tests/tests/recovery.rs` pins the end-to-end contract: a
//! daemon SIGKILLed at any chronon and recovered produces a final trace,
//! schedule, and `RunMetrics` byte-identical to an uninterrupted run.
//!
//! [`webmon_streams::record`]: ../../../webmon_streams/record/index.html

use super::driver::LiveMutationQueue;
use super::executor::ProbeExecutor;
use super::snapshot::{EngineSnapshot, SnapshotSink};
use crate::engine::{Mutation, MutationSource};
use crate::model::{CeiId, Chronon, ResourceId};
use crate::obs::{replay_events, Event, Observer};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use webmon_streams::record::{parse_record, write_record, RecordError};

/// Journal format version; bumped on any incompatible record change.
pub const JOURNAL_VERSION: u32 = 1;

/// The journal file name inside a `--journal-dir`.
pub const JOURNAL_FILE: &str = "run.journal";

const KIND_HEADER: u8 = 1;
const KIND_FRAME: u8 = 2;
const KIND_SNAPSHOT: u8 = 3;
const KIND_LIVE_MUTATION: u8 = 4;

/// When journal appends reach the disk platter, not just the page cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every chronon frame — at most one chronon of history
    /// is lost to a power failure; slowest.
    EveryChronon,
    /// `fsync` after every `N` frames — bounded loss window, amortized
    /// cost.
    EveryN(u32),
    /// Flush to the OS page cache only — a process crash (`kill -9`) loses
    /// nothing, a power failure may lose the cached suffix; fastest.
    Os,
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::EveryChronon => write!(f, "every-chronon"),
            FsyncPolicy::EveryN(n) => write!(f, "every-{n}"),
            FsyncPolicy::Os => write!(f, "os"),
        }
    }
}

impl std::str::FromStr for FsyncPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "every-chronon" => Ok(FsyncPolicy::EveryChronon),
            "os" => Ok(FsyncPolicy::Os),
            other => other
                .strip_prefix("every-")
                .and_then(|n| n.parse::<u32>().ok())
                .filter(|&n| n > 0)
                .map(FsyncPolicy::EveryN)
                .ok_or_else(|| format!("expected every-chronon, every-<n>, or os, got '{other}'")),
        }
    }
}

/// Where and how a daemon run journals itself.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Directory holding the journal file.
    pub dir: PathBuf,
    /// Durability policy for frame appends.
    pub fsync: FsyncPolicy,
    /// Snapshot cadence in chronons (`0` disables snapshots; recovery then
    /// replays from chronon 0).
    pub snapshot_every: u32,
}

impl JournalConfig {
    /// The journal file path inside [`dir`](Self::dir).
    pub fn path(&self) -> PathBuf {
        self.dir.join(JOURNAL_FILE)
    }
}

/// A structured journal failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// Filesystem-level failure, tagged with the journal path.
    Io {
        /// The journal file.
        path: String,
        /// Failure detail (including partial-write byte counts).
        detail: String,
    },
    /// Unrecoverable damage before the journal's tail.
    Corrupt {
        /// Byte offset of the damaged record.
        offset: usize,
        /// What was wrong.
        detail: String,
    },
    /// The journal was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the header.
        found: u32,
        /// Version this build writes.
        expected: u32,
    },
    /// The journal's configuration fingerprint disagrees with the serve
    /// arguments — recovering under a different instance, policy, or
    /// executor would not reproduce the run.
    FingerprintMismatch {
        /// Fingerprint found in the header.
        found: String,
        /// Fingerprint derived from the current arguments.
        expected: String,
    },
    /// The file has no (valid) header record.
    MissingHeader,
    /// Replay consumed the journal differently than the recording — the
    /// engine attempted more (or fewer) probes in a replayed chronon than
    /// the frame recorded. The journal describes a different run; the
    /// recovery's output must be discarded.
    ReplayDivergence {
        /// What diverged, and where.
        detail: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, detail } => write!(f, "journal {path}: {detail}"),
            JournalError::Corrupt { offset, detail } => {
                write!(f, "journal corrupt at byte {offset}: {detail}")
            }
            JournalError::VersionMismatch { found, expected } => write!(
                f,
                "journal version {found} is not the supported version {expected}"
            ),
            JournalError::FingerprintMismatch { found, expected } => write!(
                f,
                "journal fingerprint '{found}' does not match the serve configuration '{expected}'"
            ),
            JournalError::MissingHeader => write!(f, "journal has no valid header record"),
            JournalError::ReplayDivergence { detail } => {
                write!(f, "journal replay diverged from the recording: {detail}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<RecordError> for JournalError {
    fn from(e: RecordError) -> Self {
        match e {
            RecordError::Io { path, detail } => JournalError::Io { path, detail },
            RecordError::Truncated { offset } => JournalError::Corrupt {
                offset,
                detail: "record truncated".into(),
            },
            RecordError::BadChecksum { offset } => JournalError::Corrupt {
                offset,
                detail: "checksum mismatch".into(),
            },
            RecordError::BadLength { offset } => JournalError::Corrupt {
                offset,
                detail: "impossible record length".into(),
            },
        }
    }
}

#[derive(Debug, Serialize, Deserialize)]
struct HeaderRecord {
    version: u32,
    fingerprint: String,
}

#[derive(Debug, Serialize, Deserialize)]
struct LiveRecord {
    seq: u64,
    mutation: Mutation,
}

/// The append side of the journal: one writer shared (behind a mutex) by
/// the engine-side observer, the snapshot sink, and the registration API's
/// journal-before-ack path.
///
/// Frame and snapshot appends record failures internally (the engine loop
/// must not panic mid-run; the daemon surfaces [`errors`](Self::errors) as
/// a JSON summary and exits nonzero). [`live_mutation`](Self::live_mutation)
/// returns its error instead — an un-journaled mutation must not be
/// acknowledged.
#[derive(Debug)]
pub struct JournalWriter {
    file: BufWriter<File>,
    path: PathBuf,
    fsync: FsyncPolicy,
    frames_since_sync: u32,
    errors: Vec<String>,
    /// Frames and snapshots at chronons `<= suppress_until` are already on
    /// disk (a recovery replaying them) and are skipped.
    suppress_until: Option<Chronon>,
    /// A boundary snapshot stashed by the sink, flushed in record order by
    /// the observer (after the preceding chronon's frame).
    pending_snapshot: Option<EngineSnapshot>,
}

impl JournalWriter {
    /// Creates a fresh journal at `path` (truncating any previous file) and
    /// writes the header record.
    pub fn create(
        path: &Path,
        fsync: FsyncPolicy,
        fingerprint: &str,
    ) -> Result<Self, JournalError> {
        // A fresh journal creates its own directory; only recovery
        // (`append_to`) requires one to already exist.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).map_err(|e| JournalError::Io {
                path: dir.display().to_string(),
                detail: e.to_string(),
            })?;
        }
        let file = File::create(path).map_err(|e| JournalError::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        let mut w = JournalWriter {
            file: BufWriter::new(file),
            path: path.to_path_buf(),
            fsync,
            frames_since_sync: 0,
            errors: Vec::new(),
            suppress_until: None,
            pending_snapshot: None,
        };
        let header = serde_json::to_string(&HeaderRecord {
            version: JOURNAL_VERSION,
            fingerprint: fingerprint.to_string(),
        })
        .map_err(|e| JournalError::Io {
            path: path.display().to_string(),
            detail: format!("header serialization: {e}"),
        })?;
        write_record(&mut w.file, KIND_HEADER, header.as_bytes(), &w.path)?;
        w.sync(true)?;
        Ok(w)
    }

    /// Reopens an existing journal for append — recovery's continuation
    /// path. The file is first truncated to `valid_len` (the scan's
    /// [`JournalScan::valid_len`]) so a discarded torn tail is physically
    /// removed before anything is appended after it: continuing past the
    /// garbage would make the next scan fail hard (valid records after
    /// damage) or mistake the appended suffix for a larger tear. Frames
    /// and snapshots at chronons `<= suppress_until` are skipped (the
    /// recovered engine re-emits them, but they are already on disk).
    pub fn append_to(
        path: &Path,
        fsync: FsyncPolicy,
        suppress_until: Option<Chronon>,
        valid_len: u64,
    ) -> Result<Self, JournalError> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| JournalError::Io {
                path: path.display().to_string(),
                detail: e.to_string(),
            })?;
        file.set_len(valid_len).map_err(|e| JournalError::Io {
            path: path.display().to_string(),
            detail: format!("truncating torn tail to {valid_len} bytes: {e}"),
        })?;
        Ok(JournalWriter {
            file: BufWriter::new(file),
            path: path.to_path_buf(),
            fsync,
            frames_since_sync: 0,
            errors: Vec::new(),
            suppress_until,
            pending_snapshot: None,
        })
    }

    fn sync(&mut self, force: bool) -> Result<(), JournalError> {
        self.file.flush().map_err(|e| JournalError::Io {
            path: self.path.display().to_string(),
            detail: e.to_string(),
        })?;
        let due = force
            || match self.fsync {
                FsyncPolicy::EveryChronon => true,
                FsyncPolicy::EveryN(n) => self.frames_since_sync >= n,
                FsyncPolicy::Os => false,
            };
        if due {
            self.frames_since_sync = 0;
            self.file
                .get_ref()
                .sync_data()
                .map_err(|e| JournalError::Io {
                    path: self.path.display().to_string(),
                    detail: format!("fsync: {e}"),
                })?;
        }
        Ok(())
    }

    fn record_err(&mut self, e: JournalError) {
        self.errors.push(e.to_string());
    }

    /// Appends a chronon frame: the chronon, the live-mutation drain
    /// high-water mark, and the chronon's JSONL event block. Failures are
    /// recorded, not returned.
    pub fn frame(&mut self, t: Chronon, drained_seq: u64, lines: &str) {
        if self.suppress_until.is_some_and(|u| t <= u) {
            return;
        }
        let mut payload = Vec::with_capacity(12 + lines.len());
        payload.extend_from_slice(&t.to_le_bytes());
        payload.extend_from_slice(&drained_seq.to_le_bytes());
        payload.extend_from_slice(lines.as_bytes());
        self.frames_since_sync += 1;
        if let Err(e) = write_record(&mut self.file, KIND_FRAME, &payload, &self.path)
            .map_err(JournalError::from)
            .and_then(|()| self.sync(false))
        {
            self.record_err(e);
        }
    }

    /// Appends an engine snapshot. Failures are recorded, not returned (a
    /// lost snapshot only lengthens the next recovery's replay).
    pub fn snapshot(&mut self, snap: &EngineSnapshot) {
        if self.suppress_until.is_some_and(|u| snap.at <= u) {
            return;
        }
        match serde_json::to_string(snap) {
            Ok(json) => {
                if let Err(e) =
                    write_record(&mut self.file, KIND_SNAPSHOT, json.as_bytes(), &self.path)
                        .map_err(JournalError::from)
                        .and_then(|()| self.sync(true))
                {
                    self.record_err(e);
                }
            }
            Err(e) => self.record_err(JournalError::Io {
                path: self.path.display().to_string(),
                detail: format!("snapshot serialization: {e}"),
            }),
        }
    }

    /// Durably appends an accepted live mutation *before* it is
    /// acknowledged. Unlike frames, the error is returned: the caller must
    /// reject the submission if it cannot be journaled.
    pub fn live_mutation(&mut self, seq: u64, mutation: Mutation) -> Result<(), JournalError> {
        let json =
            serde_json::to_string(&LiveRecord { seq, mutation }).map_err(|e| JournalError::Io {
                path: self.path.display().to_string(),
                detail: format!("mutation serialization: {e}"),
            })?;
        write_record(
            &mut self.file,
            KIND_LIVE_MUTATION,
            json.as_bytes(),
            &self.path,
        )?;
        // `Os` keeps even acks cache-only (the documented trade-off);
        // either fsync policy makes the ack durable.
        self.sync(!matches!(self.fsync, FsyncPolicy::Os))
    }

    /// Flushes and syncs the final suffix.
    pub fn finish(&mut self) {
        if let Err(e) = self.sync(!matches!(self.fsync, FsyncPolicy::Os)) {
            self.record_err(e);
        }
    }

    /// Structured descriptions of every append failure so far.
    pub fn errors(&self) -> &[String] {
        &self.errors
    }

    /// Stashes a boundary snapshot for the observer to flush in record
    /// order (after the preceding chronon's frame).
    pub fn stash_snapshot(&mut self, snap: EngineSnapshot) {
        self.pending_snapshot = Some(snap);
    }
}

/// A shared handle to one [`JournalWriter`].
pub type SharedJournal = Arc<Mutex<JournalWriter>>;

/// The engine-side journal adapter: an [`Observer`] that buffers each
/// chronon's serialized event lines and appends the finished frame when the
/// next chronon starts (plus any snapshot stashed at that boundary), and a
/// [`SnapshotSink`] ([`JournalSink`]) that requests snapshots on the
/// configured cadence.
///
/// The drain high-water mark read at `ChrononStart { t + 1 }` reflects
/// exactly the drains through chronon `t`: the engine emits the start event
/// before draining chronon `t + 1`'s mutations.
#[derive(Debug)]
pub struct JournalObserver {
    core: SharedJournal,
    queue: LiveMutationQueue,
    buf: String,
    cur: Option<Chronon>,
}

impl JournalObserver {
    /// An observer appending frames to `core`, reading the drain high-water
    /// mark from `queue`.
    pub fn new(core: SharedJournal, queue: LiveMutationQueue) -> Self {
        JournalObserver {
            core,
            queue,
            buf: String::new(),
            cur: None,
        }
    }

    fn finalize_frame(&mut self) {
        if let Some(t) = self.cur.take() {
            let drained = self.queue.drained_seq();
            let mut core = self.core.lock().unwrap();
            core.frame(t, drained, &self.buf);
            if let Some(snap) = core.pending_snapshot.take() {
                core.snapshot(&snap);
            }
        }
        self.buf.clear();
    }

    /// Appends the final chronon's frame; call once after the run returns.
    pub fn finish(&mut self) {
        self.finalize_frame();
        self.core.lock().unwrap().finish();
    }
}

impl Observer for JournalObserver {
    fn on_event(&mut self, event: Event) {
        if let Event::ChrononStart { .. } = event {
            self.finalize_frame();
        }
        match serde_json::to_string(&event) {
            Ok(json) => {
                if let Event::ChrononStart { t, .. } = event {
                    self.cur = Some(t);
                }
                self.buf.push_str(&json);
                self.buf.push('\n');
            }
            Err(e) => {
                let path = self.core.lock().unwrap().path.display().to_string();
                self.core.lock().unwrap().record_err(JournalError::Io {
                    path,
                    detail: format!("event serialization: {e}"),
                });
            }
        }
    }
}

/// The snapshot side of the journal adapter: requests an [`EngineSnapshot`]
/// every `every` chronons and stashes it on the shared writer for the
/// observer to flush in record order.
#[derive(Debug)]
pub struct JournalSink {
    core: SharedJournal,
    every: u32,
    suppress_until: Option<Chronon>,
}

impl JournalSink {
    /// A sink snapshotting every `every` chronons (`0` disables);
    /// boundaries at or below `suppress_until` are already journaled and
    /// skipped.
    pub fn new(core: SharedJournal, every: u32, suppress_until: Option<Chronon>) -> Self {
        JournalSink {
            core,
            every,
            suppress_until,
        }
    }
}

impl SnapshotSink for JournalSink {
    fn wants(&mut self, t: Chronon) -> bool {
        // `is_multiple_of` / `is_none_or` need Rust 1.87/1.82; the
        // workspace MSRV is 1.75.
        #[allow(clippy::manual_is_multiple_of, clippy::nonminimal_bool)]
        let boundary = self.every > 0 && t > 0 && t % self.every == 0;
        let suppressed = self.suppress_until.is_some_and(|u| t <= u);
        boundary && !suppressed
    }
    fn accept(&mut self, snapshot: EngineSnapshot) {
        self.core.lock().unwrap().stash_snapshot(snapshot);
    }
}

/// One frame as scanned off disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScannedFrame {
    /// The chronon this frame covers.
    pub t: Chronon,
    /// Live-mutation drain high-water mark after this chronon's drain.
    pub drained_seq: u64,
    /// The chronon's JSONL event block, exactly as the trace carries it.
    pub lines: String,
    /// Byte offset of the frame record in the file.
    pub offset: usize,
    /// Byte offset one past the frame record — truncating the file here
    /// simulates a crash right after this chronon.
    pub end: usize,
}

/// Everything a valid journal contains, in file order.
#[derive(Debug, Clone)]
pub struct JournalScan {
    /// The header's configuration fingerprint.
    pub fingerprint: String,
    /// Chronon frames, contiguous from 0.
    pub frames: Vec<ScannedFrame>,
    /// Interleaved engine snapshots, in append order.
    pub snapshots: Vec<EngineSnapshot>,
    /// Journaled live mutations with their sequence numbers.
    pub live: Vec<(u64, Mutation)>,
    /// Report of a discarded torn tail (`None` for a clean file).
    pub torn_tail: Option<String>,
    /// Byte length of the valid prefix: the whole file for a clean
    /// journal, the torn record's start offset otherwise. A continuation
    /// writer must truncate here before appending
    /// ([`JournalWriter::append_to`]).
    pub valid_len: u64,
}

impl JournalScan {
    /// Fails with [`JournalError::FingerprintMismatch`] unless the journal
    /// was written under `expected`.
    pub fn verify_fingerprint(&self, expected: &str) -> Result<(), JournalError> {
        if self.fingerprint == expected {
            Ok(())
        } else {
            Err(JournalError::FingerprintMismatch {
                found: self.fingerprint.clone(),
                expected: expected.to_string(),
            })
        }
    }
}

/// Reads and validates a journal file.
///
/// A damaged **final** record — truncated extent or checksum failure, the
/// signature a crash mid-append leaves — is discarded and reported in
/// [`JournalScan::torn_tail`]; the scan still succeeds with everything
/// before it. Damage with valid data after it, an unknown record kind, or
/// non-contiguous frames are hard [`JournalError`]s.
pub fn scan_journal(path: &Path) -> Result<JournalScan, JournalError> {
    let buf = std::fs::read(path).map_err(|e| JournalError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    })?;
    let mut offset = 0usize;
    let mut header: Option<HeaderRecord> = None;
    let mut scan = JournalScan {
        fingerprint: String::new(),
        frames: Vec::new(),
        snapshots: Vec::new(),
        live: Vec::new(),
        torn_tail: None,
        valid_len: 0,
    };
    loop {
        let rec = match parse_record(&buf, offset) {
            Ok(None) => break,
            Ok(Some(rec)) => rec,
            Err(err) => {
                // A record whose extent reaches (or overruns) the end of
                // the file is the torn tail a crash leaves; anything with
                // valid bytes after it is real corruption.
                let tail = match err {
                    RecordError::Truncated { .. } => true,
                    RecordError::BadChecksum { .. } | RecordError::BadLength { .. } => {
                        let len = u32::from_le_bytes(buf[offset..offset + 4].try_into().unwrap())
                            as usize;
                        offset + 4 + len + 4 >= buf.len()
                    }
                    RecordError::Io { .. } => false,
                };
                if tail && header.is_some() {
                    scan.torn_tail = Some(format!(
                        "discarded torn tail at byte {offset} ({} of {} bytes): {err}",
                        buf.len() - offset,
                        buf.len(),
                    ));
                    break;
                }
                if header.is_none() {
                    return Err(JournalError::MissingHeader);
                }
                return Err(JournalError::from(err));
            }
        };
        let payload_str = || {
            std::str::from_utf8(rec.payload).map_err(|e| JournalError::Corrupt {
                offset: rec.offset,
                detail: format!("non-UTF-8 payload: {e}"),
            })
        };
        match rec.kind {
            KIND_HEADER => {
                if header.is_some() {
                    return Err(JournalError::Corrupt {
                        offset: rec.offset,
                        detail: "duplicate header record".into(),
                    });
                }
                let h: HeaderRecord =
                    serde_json::from_str(payload_str()?).map_err(|e| JournalError::Corrupt {
                        offset: rec.offset,
                        detail: format!("unreadable header: {e}"),
                    })?;
                if h.version != JOURNAL_VERSION {
                    return Err(JournalError::VersionMismatch {
                        found: h.version,
                        expected: JOURNAL_VERSION,
                    });
                }
                scan.fingerprint = h.fingerprint.clone();
                header = Some(h);
            }
            _ if header.is_none() => return Err(JournalError::MissingHeader),
            KIND_FRAME => {
                if rec.payload.len() < 12 {
                    return Err(JournalError::Corrupt {
                        offset: rec.offset,
                        detail: "frame payload shorter than its fixed fields".into(),
                    });
                }
                let t = Chronon::from_le_bytes(rec.payload[0..4].try_into().unwrap());
                let drained_seq = u64::from_le_bytes(rec.payload[4..12].try_into().unwrap());
                let expected = scan.frames.len() as Chronon;
                if t != expected {
                    return Err(JournalError::Corrupt {
                        offset: rec.offset,
                        detail: format!("frame for chronon {t} where {expected} was expected"),
                    });
                }
                let lines = std::str::from_utf8(&rec.payload[12..])
                    .map_err(|e| JournalError::Corrupt {
                        offset: rec.offset,
                        detail: format!("non-UTF-8 frame lines: {e}"),
                    })?
                    .to_string();
                scan.frames.push(ScannedFrame {
                    t,
                    drained_seq,
                    lines,
                    offset: rec.offset,
                    end: rec.end,
                });
            }
            KIND_SNAPSHOT => {
                let snap: EngineSnapshot =
                    serde_json::from_str(payload_str()?).map_err(|e| JournalError::Corrupt {
                        offset: rec.offset,
                        detail: format!("unreadable snapshot: {e}"),
                    })?;
                scan.snapshots.push(snap);
            }
            KIND_LIVE_MUTATION => {
                let lr: LiveRecord =
                    serde_json::from_str(payload_str()?).map_err(|e| JournalError::Corrupt {
                        offset: rec.offset,
                        detail: format!("unreadable live mutation: {e}"),
                    })?;
                scan.live.push((lr.seq, lr.mutation));
            }
            other => {
                return Err(JournalError::Corrupt {
                    offset: rec.offset,
                    detail: format!("unknown record kind {other} (newer journal version?)"),
                })
            }
        }
        offset = rec.end;
    }
    // `offset` stopped at the end of the last valid record — the file's
    // length for a clean journal, the torn record's start otherwise.
    scan.valid_len = offset as u64;
    if header.is_none() {
        return Err(JournalError::MissingHeader);
    }
    Ok(scan)
}

/// One journaled chronon parsed into the engine's nondeterministic inputs.
#[derive(Debug, Clone)]
struct ReplayFrame {
    /// Probe outcomes in attempt order (`ProbeIssued` → success,
    /// `ProbeFailed` → failure).
    outcomes: Vec<bool>,
    /// Outage transitions in event order.
    downs: Vec<(u32, Option<Chronon>)>,
    /// Applied mutations in drain order.
    mutations: Vec<Mutation>,
}

/// A recovery plan distilled from a [`JournalScan`]: what to restore, what
/// to replay, what to re-inject, and where live execution resumes.
#[derive(Debug, Clone)]
pub struct Recovery {
    /// The snapshot to restore (`None`: resume from chronon 0).
    pub resume: Option<EngineSnapshot>,
    /// Last fully journaled chronon (`None`: no frames survived; the whole
    /// run re-executes live).
    pub replay_until: Option<Chronon>,
    /// Trace JSONL for chronons before the snapshot boundary — the prefix
    /// the resumed engine will not re-emit.
    pub prefix_lines: String,
    /// Number of event lines in [`prefix_lines`](Self::prefix_lines).
    pub prefix_events: u64,
    /// Acknowledged live mutations no frame drained, in sequence order.
    pub undrained: Vec<(u64, Mutation)>,
    /// Highest live-mutation sequence in the journal.
    pub last_seq: u64,
    /// The last frame's drain high-water mark.
    pub drained_seq: u64,
    /// Report of a discarded torn tail, forwarded from the scan.
    pub torn_tail: Option<String>,
    /// Valid-prefix byte length, forwarded from the scan — the length the
    /// continuation writer truncates the file to before appending.
    pub valid_len: u64,
    /// Parsed frames for the replayed range `resume_at..=replay_until`.
    frames: Vec<(Chronon, ReplayFrame)>,
}

impl Recovery {
    /// Distills `scan` into a recovery plan. Fails if a frame's event block
    /// does not parse back into events (journal bytes passed their
    /// checksum but are not a trace — real corruption).
    pub fn plan(scan: &JournalScan) -> Result<Self, JournalError> {
        // The latest snapshot wins; frames from its boundary on replay
        // through the engine, frames before it become the trace prefix.
        let resume = scan.snapshots.last().cloned();
        let resume_at = resume.as_ref().map_or(0, |s| s.at);
        let replay_until = scan.frames.last().map(|f| f.t);
        let drained_seq = scan.frames.last().map_or(0, |f| f.drained_seq);

        let mut prefix_lines = String::new();
        let mut prefix_events = 0u64;
        let mut frames = Vec::new();
        for f in &scan.frames {
            if f.t < resume_at {
                prefix_lines.push_str(&f.lines);
                prefix_events += f.lines.lines().count() as u64;
                continue;
            }
            let events = replay_events(&f.lines).map_err(|e| JournalError::Corrupt {
                offset: f.offset,
                detail: format!("frame {} line {}: {}", f.t, e.line, e.detail),
            })?;
            let mut rf = ReplayFrame {
                outcomes: Vec::new(),
                downs: Vec::new(),
                mutations: Vec::new(),
            };
            for e in events {
                match e {
                    Event::ProbeIssued { .. } => rf.outcomes.push(true),
                    Event::ProbeFailed { .. } => rf.outcomes.push(false),
                    Event::ResourceDown {
                        resource, until, ..
                    } => rf.downs.push((resource.0, Some(until))),
                    Event::ResourceUp { resource, .. } => rf.downs.push((resource.0, None)),
                    Event::CeiRegistered { cei, .. } => {
                        rf.mutations.push(Mutation::Register { cei });
                    }
                    Event::CeiCancelled { cei, .. } => {
                        rf.mutations.push(Mutation::Cancel { cei });
                    }
                    Event::BudgetReconfigured { budget, .. } => {
                        rf.mutations.push(Mutation::SetBudget { budget });
                    }
                    _ => {}
                }
            }
            frames.push((f.t, rf));
        }

        let mut undrained: Vec<(u64, Mutation)> = scan
            .live
            .iter()
            .filter(|&&(seq, _)| seq > drained_seq)
            .copied()
            .collect();
        undrained.sort_by_key(|&(seq, _)| seq);
        let last_seq = scan.live.iter().map(|&(seq, _)| seq).max().unwrap_or(0);

        Ok(Recovery {
            resume,
            replay_until,
            prefix_lines,
            prefix_events,
            undrained,
            last_seq,
            drained_seq,
            torn_tail: scan.torn_tail.clone(),
            valid_len: scan.valid_len,
            frames,
        })
    }

    /// The chronon the engine restarts at (the snapshot boundary, or 0).
    pub fn resume_at(&self) -> Chronon {
        self.resume.as_ref().map_or(0, |s| s.at)
    }

    /// The first chronon that executes live (everything before it replays
    /// from the journal).
    pub fn first_live_chronon(&self) -> Chronon {
        self.replay_until.map_or(0, |u| u + 1)
    }

    /// A live queue resuming this journal's sequence numbering, with every
    /// acknowledged-but-undrained mutation re-injected in sequence order.
    pub fn live_queue(&self) -> LiveMutationQueue {
        let queue = LiveMutationQueue::resumed(self.last_seq, self.drained_seq);
        for &(seq, m) in &self.undrained {
            queue.reinject(seq, m);
        }
        queue
    }

    /// Wraps `inner` so journaled chronons replay recorded probe outcomes
    /// and outage state; see [`JournalExecutor`].
    pub fn executor<E: ProbeExecutor>(
        &self,
        inner: E,
        n_resources: u32,
        sync_inner: bool,
    ) -> JournalExecutor<E> {
        let mut mirror = vec![None; n_resources as usize];
        if let Some(snap) = &self.resume {
            for (m, &a) in mirror.iter_mut().zip(&snap.announced) {
                *m = a;
            }
        }
        JournalExecutor {
            inner,
            sync_inner,
            frames: self
                .frames
                .iter()
                .map(|(t, f)| (*t, (f.outcomes.clone(), f.downs.clone())))
                .collect(),
            mirror,
            replay_until: self.replay_until,
            now: 0,
            staged: VecDeque::new(),
            diverged: Arc::new(Mutex::new(None)),
        }
    }

    /// Wraps `inner` so journaled chronons drain the recorded mutations;
    /// see [`JournalMutations`].
    pub fn mutations<M: MutationSource>(&self, inner: M) -> JournalMutations<M> {
        JournalMutations {
            inner,
            frames: self
                .frames
                .iter()
                .map(|(t, f)| (*t, f.mutations.clone()))
                .collect(),
            replay_until: self.replay_until,
        }
    }
}

/// A journaled chronon's executor-visible inputs: probe outcomes in
/// attempt order, and outage transitions as `(resource, Some(until))` for
/// a down edge or `(resource, None)` for an up edge, in event order.
type ExecutorFrame = (Vec<bool>, Vec<(u32, Option<Chronon>)>);

/// A [`ProbeExecutor`] that replays journaled chronons and delegates to the
/// wrapped executor from the first unjournaled chronon on.
///
/// During replay, probe outcomes come from the journal in attempt order and
/// outage state from a mirror of the journaled `ResourceDown`/`ResourceUp`
/// transitions (seeded from the restored snapshot's announced horizons).
/// With `sync_inner` (deterministic replay executors whose fault models
/// step per chronon or per probe — Gilbert-Elliott chains, rate limiters),
/// the wrapped executor is stepped through every replayed chronon and
/// attempt so its state is exact at the handover; a live network executor
/// sets `sync_inner = false` and is not touched during replay.
///
/// If the engine consumes a replayed chronon differently than the frame
/// recorded — more probes than outcomes, or staged outcomes left over —
/// the replay has **diverged**: the journal describes a different run
/// (the header fingerprint should have refused it, but the fingerprint is
/// a hash, not the inputs themselves). Divergence is recorded on the
/// shared [`divergence`](Self::divergence) cell — never a panic — and the
/// driver surfaces it as a failed recovery whose output is discarded;
/// probes past exhaustion report failure in the meantime.
#[derive(Debug)]
pub struct JournalExecutor<E> {
    inner: E,
    sync_inner: bool,
    frames: std::collections::BTreeMap<Chronon, ExecutorFrame>,
    mirror: Vec<Option<Chronon>>,
    replay_until: Option<Chronon>,
    now: Chronon,
    staged: VecDeque<bool>,
    diverged: Arc<Mutex<Option<String>>>,
}

impl<E> JournalExecutor<E> {
    fn replaying(&self, t: Chronon) -> bool {
        self.replay_until.is_some_and(|u| t <= u)
    }

    /// The shared divergence cell: `Some(detail)` once replay has consumed
    /// the journal differently than the recording. Clone the handle before
    /// handing the executor to the engine and check it after the run.
    pub fn divergence(&self) -> Arc<Mutex<Option<String>>> {
        Arc::clone(&self.diverged)
    }

    fn mark_diverged(&self, detail: String) {
        let mut cell = self.diverged.lock().unwrap();
        if cell.is_none() {
            *cell = Some(detail);
        }
    }
}

impl<E: ProbeExecutor> ProbeExecutor for JournalExecutor<E> {
    fn begin_chronon(&mut self, t: Chronon) {
        if !self.staged.is_empty() {
            self.mark_diverged(format!(
                "{} recorded probe outcome(s) for chronon {} were never consumed",
                self.staged.len(),
                self.now,
            ));
        }
        self.now = t;
        if self.replaying(t) {
            if self.sync_inner {
                self.inner.begin_chronon(t);
            }
            self.staged.clear();
            if let Some((outcomes, downs)) = self.frames.get(&t) {
                self.staged.extend(outcomes.iter().copied());
                for &(r, until) in downs {
                    self.mirror[r as usize] = until;
                }
            }
        } else {
            self.inner.begin_chronon(t);
        }
    }

    fn down_until(&self, resource: ResourceId) -> Option<Chronon> {
        if self.replaying(self.now) {
            self.mirror[resource.index()]
        } else {
            self.inner.down_until(resource)
        }
    }

    fn probe(&mut self, t: Chronon, resource: ResourceId, attempt: u32) -> bool {
        if self.replaying(t) {
            if self.sync_inner {
                let _ = self.inner.probe(t, resource, attempt);
            }
            self.staged.pop_front().unwrap_or_else(|| {
                self.mark_diverged(format!(
                    "frame {t} exhausted mid-chronon: the engine attempted more probes \
                     than the journal recorded (next: {resource:?} attempt {attempt})",
                ));
                false
            })
        } else {
            self.inner.probe(t, resource, attempt)
        }
    }

    fn fallible(&self) -> bool {
        self.inner.fallible()
    }

    fn descriptor(&self) -> String {
        self.inner.descriptor()
    }
}

/// A [`MutationSource`] that drains the journaled mutations for replayed
/// chronons and delegates to the wrapped source (the daemon's script +
/// live queue) from the first unjournaled chronon on. Release suppression
/// always delegates — it is a property of the recompiled churn script, not
/// of the journal.
#[derive(Debug)]
pub struct JournalMutations<M> {
    inner: M,
    frames: std::collections::BTreeMap<Chronon, Vec<Mutation>>,
    replay_until: Option<Chronon>,
}

impl<M: MutationSource> MutationSource for JournalMutations<M> {
    fn active(&self) -> bool {
        true
    }

    fn drain_at(&mut self, t: Chronon, out: &mut Vec<Mutation>) {
        if self.replay_until.is_some_and(|u| t <= u) {
            if let Some(ms) = self.frames.get(&t) {
                out.extend_from_slice(ms);
            }
        } else {
            self.inner.drain_at(t, out);
        }
    }

    fn suppresses_release(&self, cei: CeiId) -> bool {
        self.inner.suppresses_release(cei)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ResourceId;

    fn temp_journal(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);
        let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "webmon-journal-{tag}-{}-{n}.journal",
            std::process::id()
        ))
    }

    fn sample_lines(t: Chronon) -> String {
        let start = serde_json::to_string(&Event::ChrononStart { t, budget: 2 }).unwrap();
        let end = serde_json::to_string(&Event::ChrononEnd {
            t,
            spent: 1,
            budget: 2,
        })
        .unwrap();
        format!("{start}\n{end}\n")
    }

    #[test]
    fn write_scan_roundtrip() {
        let path = temp_journal("roundtrip");
        let mut w = JournalWriter::create(&path, FsyncPolicy::Os, "fp=1").unwrap();
        w.frame(0, 0, &sample_lines(0));
        w.live_mutation(1, Mutation::SetBudget { budget: 7 })
            .unwrap();
        w.frame(1, 1, &sample_lines(1));
        w.finish();
        assert!(w.errors().is_empty(), "{:?}", w.errors());
        drop(w);

        let scan = scan_journal(&path).unwrap();
        assert_eq!(scan.fingerprint, "fp=1");
        assert_eq!(scan.frames.len(), 2);
        assert_eq!(scan.frames[1].drained_seq, 1);
        assert_eq!(scan.frames[0].lines, sample_lines(0));
        assert_eq!(scan.live, vec![(1, Mutation::SetBudget { budget: 7 })]);
        assert!(scan.torn_tail.is_none());
        scan.verify_fingerprint("fp=1").unwrap();
        assert!(matches!(
            scan.verify_fingerprint("fp=2"),
            Err(JournalError::FingerprintMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_discarded_and_reported() {
        let path = temp_journal("torn");
        let mut w = JournalWriter::create(&path, FsyncPolicy::EveryChronon, "fp").unwrap();
        w.frame(0, 0, &sample_lines(0));
        w.frame(1, 0, &sample_lines(1));
        w.finish();
        drop(w);
        let full = std::fs::read(&path).unwrap();
        let clean = scan_journal(&path).unwrap();
        let last = clean.frames.last().unwrap().clone();
        // Cut anywhere strictly inside the final record: frame 1 must be
        // discarded with a report, frame 0 must survive.
        for cut in last.offset + 1..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let scan = scan_journal(&path).unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
            assert_eq!(scan.frames.len(), 1, "cut at {cut}");
            assert!(scan.torn_tail.is_some(), "cut at {cut} not reported");
            assert_eq!(scan.valid_len, last.offset as u64, "cut at {cut}");
        }
        // Cutting exactly at the record boundary is a clean, shorter file.
        std::fs::write(&path, &full[..last.offset]).unwrap();
        let scan = scan_journal(&path).unwrap();
        assert_eq!(scan.frames.len(), 1);
        assert!(scan.torn_tail.is_none());
        assert_eq!(scan.valid_len, last.offset as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_after_torn_tail_truncates_the_garbage() {
        let path = temp_journal("truncate");
        let mut w = JournalWriter::create(&path, FsyncPolicy::Os, "fp").unwrap();
        w.frame(0, 0, &sample_lines(0));
        w.frame(1, 0, &sample_lines(1));
        w.finish();
        drop(w);
        let full = std::fs::read(&path).unwrap();
        let clean = scan_journal(&path).unwrap();
        assert_eq!(
            clean.valid_len,
            full.len() as u64,
            "clean file: whole length"
        );
        let last = clean.frames.last().unwrap().clone();

        // Tear the final record, then continue the journal exactly as a
        // recovery does: truncate to the valid prefix, re-append from the
        // first unjournaled chronon with the surviving prefix suppressed.
        std::fs::write(&path, &full[..last.end - 3]).unwrap();
        let torn = scan_journal(&path).unwrap();
        assert!(torn.torn_tail.is_some());
        assert_eq!(torn.valid_len, last.offset as u64);
        let mut w =
            JournalWriter::append_to(&path, FsyncPolicy::Os, Some(0), torn.valid_len).unwrap();
        w.frame(0, 0, &sample_lines(0)); // suppressed: already on disk
        w.frame(1, 0, &sample_lines(1));
        w.frame(2, 0, &sample_lines(2));
        w.finish();
        assert!(w.errors().is_empty(), "{:?}", w.errors());
        drop(w);

        // The continued journal is whole again: contiguous frames, no torn
        // bytes left behind the appended records, nothing discarded.
        let rescan = scan_journal(&path).unwrap();
        assert_eq!(rescan.frames.len(), 3);
        assert!(rescan.torn_tail.is_none(), "{:?}", rescan.torn_tail);
        assert_eq!(rescan.frames[1].offset as u64, torn.valid_len);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_divergence_is_reported_not_a_panic() {
        use crate::serve::executor::ReplayExecutor;

        let path = temp_journal("diverge");
        let mut w = JournalWriter::create(&path, FsyncPolicy::Os, "fp").unwrap();
        let issued = serde_json::to_string(&Event::ProbeIssued {
            t: 0,
            resource: ResourceId(0),
            cost: 1,
            shared_eis: 1,
        })
        .unwrap();
        w.frame(0, 0, &format!("{issued}\n"));
        w.finish();
        drop(w);

        let rec = Recovery::plan(&scan_journal(&path).unwrap()).unwrap();
        let mut exec = rec.executor(ReplayExecutor::faultless(), 1, true);
        let divergence = exec.divergence();
        exec.begin_chronon(0);
        assert!(exec.probe(0, ResourceId(0), 0), "recorded outcome replays");
        assert!(divergence.lock().unwrap().is_none());
        // A second attempt has no recorded outcome: the divergence is
        // flagged on the shared cell and the probe reports failure — the
        // run ends with a structured error, never a panic.
        assert!(!exec.probe(0, ResourceId(0), 1));
        let detail = divergence
            .lock()
            .unwrap()
            .clone()
            .expect("divergence flagged");
        assert!(detail.contains("frame 0"), "{detail}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_file_corruption_is_a_hard_error() {
        let path = temp_journal("midfile");
        let mut w = JournalWriter::create(&path, FsyncPolicy::Os, "fp").unwrap();
        w.frame(0, 0, &sample_lines(0));
        w.frame(1, 0, &sample_lines(1));
        w.finish();
        drop(w);
        let clean = scan_journal(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte of frame 0 — valid data follows, so this is
        // not a discardable tail.
        bytes[clean.frames[0].offset + 6] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            scan_journal(&path),
            Err(JournalError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatch_is_structured() {
        let path = temp_journal("version");
        let header = serde_json::to_string(&HeaderRecord {
            version: JOURNAL_VERSION + 1,
            fingerprint: "fp".into(),
        })
        .unwrap();
        let mut buf = Vec::new();
        webmon_streams::record::write_record(&mut buf, KIND_HEADER, header.as_bytes(), &path)
            .unwrap();
        std::fs::write(&path, &buf).unwrap();
        assert_eq!(
            scan_journal(&path).unwrap_err(),
            JournalError::VersionMismatch {
                found: JOURNAL_VERSION + 1,
                expected: JOURNAL_VERSION,
            }
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_and_headerless_journals() {
        let path = temp_journal("empty");
        std::fs::write(&path, b"").unwrap();
        assert_eq!(
            scan_journal(&path).unwrap_err(),
            JournalError::MissingHeader
        );
        // A header-only journal is a valid, empty run.
        let w = JournalWriter::create(&path, FsyncPolicy::Os, "fp").unwrap();
        drop(w);
        let scan = scan_journal(&path).unwrap();
        assert!(scan.frames.is_empty() && scan.snapshots.is_empty());
        let rec = Recovery::plan(&scan).unwrap();
        assert_eq!(rec.replay_until, None);
        assert_eq!(rec.first_live_chronon(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fsync_policy_parses() {
        use std::str::FromStr;
        assert_eq!(
            FsyncPolicy::from_str("every-chronon").unwrap(),
            FsyncPolicy::EveryChronon
        );
        assert_eq!(FsyncPolicy::from_str("os").unwrap(), FsyncPolicy::Os);
        assert_eq!(
            FsyncPolicy::from_str("every-16").unwrap(),
            FsyncPolicy::EveryN(16)
        );
        assert!(FsyncPolicy::from_str("every-0").is_err());
        assert!(FsyncPolicy::from_str("sometimes").is_err());
        assert_eq!(FsyncPolicy::EveryN(16).to_string(), "every-16");
    }

    #[test]
    fn recovery_plan_extracts_inputs() {
        let path = temp_journal("plan");
        let mut w = JournalWriter::create(&path, FsyncPolicy::Os, "fp").unwrap();
        let issued = serde_json::to_string(&Event::ProbeIssued {
            t: 0,
            resource: ResourceId(2),
            cost: 1,
            shared_eis: 1,
        })
        .unwrap();
        let failed = serde_json::to_string(&Event::ProbeFailed {
            t: 0,
            resource: ResourceId(1),
            cost: 1,
            attempt: 0,
            charged: true,
        })
        .unwrap();
        let down = serde_json::to_string(&Event::ResourceDown {
            t: 0,
            resource: ResourceId(1),
            until: 4,
        })
        .unwrap();
        let reg = serde_json::to_string(&Event::CeiRegistered {
            cei: CeiId(3),
            at: 0,
        })
        .unwrap();
        w.frame(0, 2, &format!("{down}\n{reg}\n{failed}\n{issued}\n"));
        w.live_mutation(1, Mutation::Register { cei: CeiId(3) })
            .unwrap();
        w.live_mutation(2, Mutation::Cancel { cei: CeiId(0) })
            .unwrap();
        w.live_mutation(3, Mutation::SetBudget { budget: 5 })
            .unwrap();
        w.finish();
        drop(w);

        let rec = Recovery::plan(&scan_journal(&path).unwrap()).unwrap();
        assert_eq!(rec.replay_until, Some(0));
        assert_eq!(rec.first_live_chronon(), 1);
        assert_eq!(rec.drained_seq, 2);
        assert_eq!(rec.undrained, vec![(3, Mutation::SetBudget { budget: 5 })]);
        assert_eq!(rec.last_seq, 3);
        let (_, rf) = &rec.frames[0];
        assert_eq!(rf.outcomes, vec![false, true]);
        assert_eq!(rf.downs, vec![(1, Some(4))]);
        assert_eq!(rf.mutations, vec![Mutation::Register { cei: CeiId(3) }]);

        // The live queue resumes numbering and re-injects the undrained.
        let q = rec.live_queue();
        assert_eq!(q.pending(), 1);
        assert_eq!(q.drained_seq(), 2);
        assert_eq!(q.submit(Mutation::SetBudget { budget: 1 }), 4);
        std::fs::remove_file(&path).ok();
    }
}
