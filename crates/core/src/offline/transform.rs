//! The `P → P^[1]` transformation of Prop. 5.
//!
//! Any CEI `η = {I_1, ..., I_k}` with EI lengths `n_1, ..., n_k` expands into
//! `Π_q n_q` *combination CEIs*, one per choice of a single chronon from each
//! EI; every combination CEI has unit-width EIs. Capturing any one
//! combination CEI captures the original (the probes land inside every
//! original window), so a solution of the expanded `P^[1]` instance realizes
//! a solution of the original `P`.
//!
//! The paper's proof adds a `(k+1)`-th shared unit EI to each combination so
//! that, in the *independent-set* formulation fed to the Local Ratio scheme,
//! sibling combinations of one original CEI are pairwise conflicting and an
//! independent set never double-counts an original CEI. We keep the origin
//! mapping explicit ([`UnitExpansion::origin`]) instead of materializing a
//! virtual resource; [`local_ratio`](super::local_ratio) treats sibling
//! combinations as conflicting, which is the same constraint.
//!
//! The expansion is exponential in the rank (the product of EI lengths), so
//! it carries an explicit output cap.

use crate::model::{Cei, CeiId, Ei, Instance, Profile};
use std::fmt;

/// The result of expanding an instance to unit width.
#[derive(Debug, Clone)]
pub struct UnitExpansion {
    /// The expanded `P^[1]` instance. Same resources, epoch, and budget;
    /// one profile per original profile.
    pub instance: Instance,
    /// `origin[j]` = id of the original CEI that expanded CEI `j` realizes.
    pub origin: Vec<CeiId>,
}

impl UnitExpansion {
    /// Number of expanded CEIs realizing original CEI `id`.
    pub fn combinations_of(&self, id: CeiId) -> usize {
        self.origin.iter().filter(|&&o| o == id).count()
    }
}

/// Expansion failed. Both variants are structured so CLI and bench call
/// sites can surface a diagnostic instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpansionError {
    /// The combination product exceeds the cap.
    CapExceeded {
        /// The CEI whose expansion overflowed the cap.
        cei: CeiId,
        /// Number of expanded CEIs accumulated when the cap was hit.
        reached: usize,
        /// The configured cap.
        cap: usize,
    },
    /// A threshold-semantics CEI (`required < |η|`) cannot be expanded: the
    /// combination construction realizes AND semantics only, and silently
    /// treating a threshold CEI as AND would understate the offline
    /// baseline.
    ThresholdSemantics {
        /// The offending CEI.
        cei: CeiId,
        /// Its satisfaction threshold.
        required: u16,
        /// Its EI count `|η|`.
        size: usize,
    },
}

impl fmt::Display for ExpansionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpansionError::CapExceeded { cei, reached, cap } => write!(
                f,
                "P^[1] expansion of {cei} exceeds cap of {cap} CEIs (reached {reached})"
            ),
            ExpansionError::ThresholdSemantics {
                cei,
                required,
                size,
            } => write!(
                f,
                "{cei}: Prop. 5 expansion requires AND semantics \
                 (required {required} < size {size})"
            ),
        }
    }
}

impl std::error::Error for ExpansionError {}

/// Expands `instance` into the `P^[1]` class per Prop. 5, capping the total
/// number of expanded CEIs at `max_ceis`. Threshold-semantics CEIs
/// (`required < |η|`) yield [`ExpansionError::ThresholdSemantics`] — the
/// construction realizes AND semantics only. (Weights are carried through
/// to the combinations.)
pub fn expand_to_unit(
    instance: &Instance,
    max_ceis: usize,
) -> Result<UnitExpansion, ExpansionError> {
    let mut ceis: Vec<Cei> = Vec::new();
    let mut origin: Vec<CeiId> = Vec::new();
    let mut profiles: Vec<Profile> = instance
        .profiles
        .iter()
        .map(|p| Profile::new(p.id))
        .collect();

    for cei in &instance.ceis {
        if usize::from(cei.required) != cei.size() {
            return Err(ExpansionError::ThresholdSemantics {
                cei: cei.id,
                required: cei.required,
                size: cei.size(),
            });
        }
        // Iterate the Cartesian product of per-EI chronon choices with a
        // mixed-radix counter.
        let k = cei.size();
        let mut choice: Vec<u32> = vec![0; k]; // offset within each EI
        loop {
            if ceis.len() >= max_ceis {
                return Err(ExpansionError::CapExceeded {
                    cei: cei.id,
                    reached: ceis.len(),
                    cap: max_ceis,
                });
            }
            let eis: Vec<Ei> = cei
                .eis
                .iter()
                .zip(&choice)
                .map(|(ei, &off)| Ei::new(ei.resource, ei.start + off, ei.start + off))
                .collect();
            let id = CeiId(ceis.len() as u32);
            // Keep the original release so the expanded instance stays a
            // valid online input.
            let new_cei = Cei::with_release(
                id,
                cei.profile,
                cei.release
                    .min(eis.iter().map(|e| e.start).min().expect("non-empty")),
                eis,
            )
            .with_weight(cei.weight);
            let profile = &mut profiles[cei.profile.index()];
            profile.ceis.push(id);
            profile.rank = profile.rank.max(k as u16);
            ceis.push(new_cei);
            origin.push(cei.id);

            // Advance the mixed-radix counter.
            let mut pos = 0;
            loop {
                if pos == k {
                    break;
                }
                choice[pos] += 1;
                if choice[pos] < cei.eis[pos].len() {
                    break;
                }
                choice[pos] = 0;
                pos += 1;
            }
            if pos == k {
                break;
            }
        }
    }

    let instance = Instance::from_parts(
        instance.n_resources,
        instance.epoch,
        instance.budget.clone(),
        ceis,
        profiles,
    );
    Ok(UnitExpansion { instance, origin })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Budget, InstanceBuilder};

    #[test]
    fn expansion_size_is_product_of_lengths() {
        let mut b = InstanceBuilder::new(2, 10, Budget::Uniform(1));
        let p = b.profile();
        // Lengths 3 and 2 → 6 combinations.
        b.cei(p, &[(0, 0, 2), (1, 4, 5)]);
        let inst = b.build();
        let exp = expand_to_unit(&inst, 1000).unwrap();
        assert_eq!(exp.instance.ceis.len(), 6);
        assert_eq!(exp.combinations_of(CeiId(0)), 6);
        assert!(exp.instance.is_unit_width());
        assert_eq!(exp.instance.rank(), 2);
    }

    #[test]
    fn unit_instance_expands_to_itself() {
        let mut b = InstanceBuilder::new(2, 10, Budget::Uniform(1));
        let p = b.profile();
        b.cei(p, &[(0, 1, 1), (1, 3, 3)]);
        b.cei(p, &[(0, 5, 5)]);
        let inst = b.build();
        let exp = expand_to_unit(&inst, 1000).unwrap();
        assert_eq!(exp.instance.ceis.len(), 2);
        for (new, old) in exp.instance.ceis.iter().zip(&inst.ceis) {
            assert_eq!(new.eis, old.eis);
        }
    }

    #[test]
    fn combinations_cover_every_chronon_choice() {
        let mut b = InstanceBuilder::new(2, 10, Budget::Uniform(1));
        let p = b.profile();
        b.cei(p, &[(0, 0, 1), (1, 5, 6)]);
        let inst = b.build();
        let exp = expand_to_unit(&inst, 1000).unwrap();
        let mut combos: Vec<(u32, u32)> = exp
            .instance
            .ceis
            .iter()
            .map(|c| (c.eis[0].start, c.eis[1].start))
            .collect();
        combos.sort_unstable();
        assert_eq!(combos, vec![(0, 5), (0, 6), (1, 5), (1, 6)]);
    }

    #[test]
    fn cap_aborts_oversized_expansion() {
        let mut b = InstanceBuilder::new(3, 40, Budget::Uniform(1));
        let p = b.profile();
        // 10 × 10 × 10 = 1000 combinations.
        b.cei(p, &[(0, 0, 9), (1, 10, 19), (2, 20, 29)]);
        let inst = b.build();
        let err = expand_to_unit(&inst, 100).unwrap_err();
        match err {
            ExpansionError::CapExceeded { cei, cap, .. } => {
                assert_eq!(cap, 100);
                assert_eq!(cei, CeiId(0));
            }
            other => panic!("expected CapExceeded, got {other:?}"),
        }
    }

    #[test]
    fn threshold_cei_is_a_structured_error_not_a_panic() {
        let mut b = InstanceBuilder::new(2, 10, Budget::Uniform(1));
        let p = b.profile();
        b.cei(p, &[(0, 0, 1), (1, 4, 5)]);
        let mut inst = b.build();
        inst.ceis[0] = inst.ceis[0].clone().with_required(1);
        let err = expand_to_unit(&inst, 1000).unwrap_err();
        assert_eq!(
            err,
            ExpansionError::ThresholdSemantics {
                cei: CeiId(0),
                required: 1,
                size: 2,
            }
        );
        assert!(err.to_string().contains("AND semantics"));
    }

    #[test]
    fn capturing_a_combination_captures_the_original() {
        use crate::model::{evaluate_schedule, Epoch, ResourceId, Schedule};
        let mut b = InstanceBuilder::new(2, 10, Budget::Uniform(2));
        let p = b.profile();
        b.cei(p, &[(0, 0, 2), (1, 4, 6)]);
        let inst = b.build();
        let exp = expand_to_unit(&inst, 1000).unwrap();

        // Capture an arbitrary combination.
        let combo = &exp.instance.ceis[4];
        let mut s = Schedule::new(2, Epoch::new(10));
        for ei in &combo.eis {
            s.probe(ei.resource, ei.start);
        }
        // The original instance is captured by the same schedule.
        let stats = evaluate_schedule(&inst, &s);
        assert_eq!(stats.ceis_captured, 1);
        // Sanity: the probes land on both resources.
        assert!(s.iter().any(|(_, r)| r == ResourceId(0)));
        assert!(s.iter().any(|(_, r)| r == ResourceId(1)));
    }
}
