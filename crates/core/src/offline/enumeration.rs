//! Exact optimum by bounded branch-and-bound enumeration (Prop. 4).
//!
//! Prop. 4 puts full enumeration at `O(K · n^(K·C_max + 1))`; this module
//! prunes aggressively but remains exponential, so it carries an explicit
//! node budget and is meant for tiny instances — primarily as ground truth
//! for testing the online policies and the Local-Ratio baseline.

use crate::model::{evaluate_schedule, Chronon, Instance, ResourceId, Schedule};
use crate::stats::RunStats;
use std::fmt;

/// Caps on the branch-and-bound search.
#[derive(Debug, Clone, Copy)]
pub struct SearchLimits {
    /// Maximum number of search nodes to expand before giving up.
    pub max_nodes: u64,
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits {
            max_nodes: 5_000_000,
        }
    }
}

/// The search exceeded its node budget; the instance is too large for exact
/// enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchAborted {
    /// Nodes expanded before aborting.
    pub nodes: u64,
}

impl fmt::Display for SearchAborted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "exact enumeration aborted after {} nodes; instance too large",
            self.nodes
        )
    }
}

impl std::error::Error for SearchAborted {}

/// Finds a schedule maximizing gained completeness by branch-and-bound over
/// per-chronon probe subsets. Returns the optimal schedule and its stats.
///
/// Only *useful* resources (those with an active, still-needed EI) are
/// considered at each chronon, and since probes are free up to the budget,
/// exactly `min(C_j, useful)` resources are probed on every branch.
pub fn optimal_schedule(
    instance: &Instance,
    limits: SearchLimits,
) -> Result<(Schedule, RunStats), SearchAborted> {
    let mut search = Search::new(instance, limits);
    search.dfs(0)?;
    let schedule = search
        .best_schedule
        .unwrap_or_else(|| Schedule::new(instance.n_resources, instance.epoch));
    let stats = evaluate_schedule(instance, &schedule);
    Ok((schedule, stats))
}

/// Per-CEI progress during the search.
#[derive(Clone)]
struct CeiProgress {
    /// Capture flag per EI.
    captured: Vec<bool>,
    n_captured: usize,
    /// EIs whose windows closed uncaptured.
    n_expired: usize,
    /// EIs needed for satisfaction (threshold semantics; `len` for AND).
    required: usize,
    failed: bool,
}

impl CeiProgress {
    fn is_satisfied(&self) -> bool {
        !self.failed && self.n_captured >= self.required
    }

    fn is_open(&self) -> bool {
        !self.failed && self.n_captured < self.required
    }
}

struct Search<'a> {
    instance: &'a Instance,
    limits: SearchLimits,
    nodes: u64,
    best_captured: i64,
    best_schedule: Option<Schedule>,
    current: Schedule,
    progress: Vec<CeiProgress>,
}

impl<'a> Search<'a> {
    fn new(instance: &'a Instance, limits: SearchLimits) -> Self {
        let progress = instance
            .ceis
            .iter()
            .map(|c| CeiProgress {
                captured: vec![false; c.size()],
                n_captured: 0,
                n_expired: 0,
                required: usize::from(c.required),
                failed: false,
            })
            .collect();
        Search {
            instance,
            limits,
            nodes: 0,
            best_captured: -1,
            best_schedule: None,
            current: Schedule::new(instance.n_resources, instance.epoch),
            progress,
        }
    }

    fn captured_count(&self) -> i64 {
        self.progress.iter().filter(|p| p.is_satisfied()).count() as i64
    }

    /// CEIs that could still complete (not failed, not yet satisfied).
    fn open_count(&self) -> i64 {
        self.progress.iter().filter(|p| p.is_open()).count() as i64
    }

    fn dfs(&mut self, t: Chronon) -> Result<(), SearchAborted> {
        self.nodes += 1;
        if self.nodes > self.limits.max_nodes {
            return Err(SearchAborted { nodes: self.nodes });
        }

        if t == self.instance.epoch.len() {
            let captured = self.captured_count();
            if captured > self.best_captured {
                self.best_captured = captured;
                self.best_schedule = Some(self.current.clone());
            }
            return Ok(());
        }

        // Upper bound: everything open might still complete.
        if self.captured_count() + self.open_count() <= self.best_captured {
            return Ok(());
        }

        // Useful resources at t: active uncaptured EIs of live CEIs.
        let mut useful: Vec<ResourceId> = Vec::new();
        for (cei, prog) in self.instance.ceis.iter().zip(&self.progress) {
            if !prog.is_open() {
                continue;
            }
            for (idx, ei) in cei.eis.iter().enumerate() {
                if !prog.captured[idx] && ei.is_active(t) && !useful.contains(&ei.resource) {
                    useful.push(ei.resource);
                }
            }
        }
        useful.sort_unstable();

        let budget = self.instance.budget.at(t).min(useful.len() as u32) as usize;
        if budget == 0 {
            let undo = self.apply_chronon(&[], t);
            self.dfs(t + 1)?;
            self.undo_chronon(undo, t);
            return Ok(());
        }

        // Enumerate all subsets of `useful` of size exactly `budget`.
        let mut chosen: Vec<ResourceId> = Vec::with_capacity(budget);
        self.enumerate_subsets(&useful, budget, 0, &mut chosen, t)?;
        Ok(())
    }

    fn enumerate_subsets(
        &mut self,
        useful: &[ResourceId],
        want: usize,
        from: usize,
        chosen: &mut Vec<ResourceId>,
        t: Chronon,
    ) -> Result<(), SearchAborted> {
        if chosen.len() == want {
            let undo = self.apply_chronon(chosen, t);
            self.dfs(t + 1)?;
            self.undo_chronon(undo, t);
            return Ok(());
        }
        let remaining = want - chosen.len();
        for i in from..=useful.len().saturating_sub(remaining) {
            chosen.push(useful[i]);
            self.enumerate_subsets(useful, want, i + 1, chosen, t)?;
            chosen.pop();
        }
        Ok(())
    }

    /// Probes `resources` at chronon `t`, marks captures and expiries, and
    /// returns an undo log of `(cei index, ei index or FAIL marker)`.
    fn apply_chronon(&mut self, resources: &[ResourceId], t: Chronon) -> Vec<(usize, UndoOp)> {
        let mut undo = Vec::new();
        for &r in resources {
            self.current.probe(r, t);
        }
        for (ci, cei) in self.instance.ceis.iter().enumerate() {
            let prog = &mut self.progress[ci];
            if !prog.is_open() {
                continue;
            }
            for (idx, ei) in cei.eis.iter().enumerate() {
                if !prog.captured[idx] && ei.is_active(t) && resources.contains(&ei.resource) {
                    prog.captured[idx] = true;
                    prog.n_captured += 1;
                    undo.push((ci, UndoOp::Capture(idx)));
                }
            }
            // Expiry after probing: count windows closing uncaptured; the
            // CEI fails once fewer than `required` EIs remain possible.
            for (idx, ei) in cei.eis.iter().enumerate() {
                if !prog.captured[idx] && ei.end == t {
                    prog.n_expired += 1;
                    undo.push((ci, UndoOp::Expire));
                }
            }
            if !prog.failed
                && prog.n_captured < prog.required
                && prog.captured.len() - prog.n_expired < prog.required
            {
                prog.failed = true;
                undo.push((ci, UndoOp::Fail));
            }
        }
        undo
    }

    fn undo_chronon(&mut self, undo: Vec<(usize, UndoOp)>, t: Chronon) {
        for (ci, op) in undo.into_iter().rev() {
            match op {
                UndoOp::Capture(idx) => {
                    self.progress[ci].captured[idx] = false;
                    self.progress[ci].n_captured -= 1;
                }
                UndoOp::Expire => self.progress[ci].n_expired -= 1,
                UndoOp::Fail => self.progress[ci].failed = false,
            }
        }
        // All probes at `t` were placed by the matching apply_chronon call,
        // so clearing the row backtracks them exactly.
        self.current.clear_chronon(t);
    }
}

#[derive(Debug, Clone, Copy)]
enum UndoOp {
    Capture(usize),
    Expire,
    Fail,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, OnlineEngine};
    use crate::model::{Budget, InstanceBuilder};
    use crate::policy::SEdf;

    #[test]
    fn trivial_instance_fully_captured() {
        let mut b = InstanceBuilder::new(1, 4, Budget::Uniform(1));
        let p = b.profile();
        b.cei(p, &[(0, 0, 1)]);
        b.cei(p, &[(0, 2, 3)]);
        let inst = b.build();
        let (schedule, stats) = optimal_schedule(&inst, SearchLimits::default()).unwrap();
        assert_eq!(stats.ceis_captured, 2);
        assert!(schedule.is_feasible(&inst.budget));
    }

    #[test]
    fn optimal_sacrifices_the_right_cei() {
        // Three unit CEIs all needing chronon 1 on distinct resources with
        // C=1: exactly one can be captured.
        let mut b = InstanceBuilder::new(3, 3, Budget::Uniform(1));
        let p = b.profile();
        b.cei(p, &[(0, 1, 1)]);
        b.cei(p, &[(1, 1, 1)]);
        b.cei(p, &[(2, 1, 1)]);
        let inst = b.build();
        let (_, stats) = optimal_schedule(&inst, SearchLimits::default()).unwrap();
        assert_eq!(stats.ceis_captured, 1);
    }

    #[test]
    fn optimal_exploits_probe_sharing() {
        // Two CEIs on the same resource overlapping at chronon 2, plus a
        // third on another resource only at chronon 2, C=1 and only chronons
        // 2..3 matter: sharing lets the optimum capture 2 of 3.
        let mut b = InstanceBuilder::new(2, 4, Budget::Uniform(1));
        let p = b.profile();
        b.cei(p, &[(0, 0, 2)]);
        b.cei(p, &[(0, 2, 3)]);
        b.cei(p, &[(1, 2, 2)]);
        let inst = b.build();
        let (_, stats) = optimal_schedule(&inst, SearchLimits::default()).unwrap();
        // Probe r0@2 (captures both r0 CEIs) and r1 cannot be probed at 2
        // (C=1); but r0@0/r0@3 + r1@2 also yields all three? r0@0 captures
        // CEI0, r1@2 captures CEI2, r0@3 captures CEI1 → 3 captured.
        assert_eq!(stats.ceis_captured, 3);
    }

    #[test]
    fn online_never_beats_offline_optimum() {
        let mut b = InstanceBuilder::new(3, 8, Budget::Uniform(1));
        let p = b.profile();
        b.cei(p, &[(0, 0, 2), (1, 1, 3)]);
        b.cei(p, &[(1, 2, 4), (2, 3, 5)]);
        b.cei(p, &[(0, 4, 6), (2, 5, 7)]);
        let inst = b.build();
        let (_, opt) = optimal_schedule(&inst, SearchLimits::default()).unwrap();
        let online = OnlineEngine::run(&inst, &SEdf, EngineConfig::preemptive());
        assert!(online.stats.ceis_captured <= opt.ceis_captured);
    }

    #[test]
    fn node_limit_aborts_gracefully() {
        let mut b = InstanceBuilder::new(6, 12, Budget::Uniform(2));
        let p = b.profile();
        for k in 0..10u32 {
            b.cei(p, &[(k % 6, k, k + 2), ((k + 1) % 6, k, k + 2)]);
        }
        let inst = b.build();
        let res = optimal_schedule(&inst, SearchLimits { max_nodes: 10 });
        assert!(matches!(res, Err(SearchAborted { nodes }) if nodes > 10));
    }

    #[test]
    fn zero_budget_captures_nothing() {
        let mut b = InstanceBuilder::new(1, 3, Budget::Uniform(0));
        let p = b.profile();
        b.cei(p, &[(0, 0, 2)]);
        let inst = b.build();
        let (schedule, stats) = optimal_schedule(&inst, SearchLimits::default()).unwrap();
        assert_eq!(stats.ceis_captured, 0);
        assert_eq!(schedule.total_probes(), 0);
    }
}
